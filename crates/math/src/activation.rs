//! Floating-point reference activations and their polynomial
//! approximations.
//!
//! The f64 versions define ground truth for accuracy experiments. The
//! `poly_*` variants replicate THE-X-style polynomial approximations that
//! FHE-only systems must use — they are what costs THE-X its ~8 accuracy
//! points in the paper's Figure 2 / Table I.

/// Numerically-stable softmax.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "softmax of an empty slice");
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| (x - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// GELU in its sigmoid form `x·σ(1.702x)` (matches the fixed-point path).
pub fn gelu(x: f64) -> f64 {
    x / (1.0 + (-1.702 * x).exp())
}

/// ReLU.
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// LayerNorm with affine parameters.
pub fn layer_norm(xs: &[f64], gamma: &[f64], beta: &[f64], eps: f64) -> Vec<f64> {
    assert_eq!(xs.len(), gamma.len(), "gamma length mismatch");
    assert_eq!(xs.len(), beta.len(), "beta length mismatch");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let denom = (var + eps).sqrt();
    xs.iter()
        .zip(gamma.iter().zip(beta))
        .map(|(x, (g, b))| g * (x - mean) / denom + b)
        .collect()
}

/// THE-X-style softmax replacement: exponentials are replaced by a
/// clipped quadratic and the division by a crude linear-feedback estimate.
/// This deliberately mirrors the accuracy-losing approximations that pure
/// FHE systems apply so comparisons are fair.
pub fn poly_softmax(xs: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "softmax of an empty slice");
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // Quadratic surrogate of exp on [-4, 0], clipped to zero below -4.
    let surrogate = |d: f64| {
        if d <= -4.0 {
            0.0
        } else {
            let u = 1.0 + d / 4.0;
            u * u
        }
    };
    let es: Vec<f64> = xs.iter().map(|&x| surrogate(x - m)).collect();
    let sum: f64 = es.iter().sum::<f64>().max(1e-9);
    es.into_iter().map(|e| e / sum).collect()
}

/// THE-X-style GELU replacement: a quadratic fit on `[-4, 4]`, clipped to
/// the ReLU asymptotes outside.
pub fn poly_gelu(x: f64) -> f64 {
    if x <= -4.0 {
        0.0
    } else if x >= 4.0 {
        x
    } else {
        0.125 * x * x + 0.5 * x + 0.4
    }
}

/// THE-X-style LayerNorm: the inverse square root is replaced by a
/// first-order Taylor estimate around a fixed operating point, as done by
/// approximation-based FHE transformers.
pub fn poly_layer_norm(xs: &[f64], gamma: &[f64], beta: &[f64], eps: f64) -> Vec<f64> {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n + eps;
    // 1/sqrt(v) ≈ 1.5/sqrt(c) - 0.5*v/c^1.5 around operating point c = 1.
    let inv_denom = (1.5 - 0.5 * var).max(0.05);
    xs.iter()
        .zip(gamma.iter().zip(beta))
        .map(|(x, (g, b))| g * (x - mean) * inv_denom + b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_a_distribution() {
        let y = softmax(&[0.3, -1.0, 2.0]);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn softmax_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[11.0, 12.0, 13.0]);
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gelu_asymptotes() {
        assert!(gelu(10.0) > 9.99);
        assert!(gelu(-10.0).abs() < 1e-6);
        assert!((gelu(0.0)).abs() < 1e-12);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let y = layer_norm(&xs, &[1.0; 4], &[0.0; 4], 1e-9);
        let mean = y.iter().sum::<f64>() / 4.0;
        let var = y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn poly_softmax_deviates_from_exact() {
        // The approximation must be "close but measurably off" — this gap
        // is what produces THE-X's accuracy loss.
        let xs = [0.0, 1.0, -2.0, 0.5];
        let exact = softmax(&xs);
        let approx = poly_softmax(&xs);
        let dev: f64 =
            exact.iter().zip(&approx).map(|(a, b)| (a - b).abs()).sum();
        assert!(dev > 1e-3, "approximation suspiciously exact");
        assert!(dev < 0.5, "approximation uselessly bad: {dev}");
        assert!((approx.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poly_gelu_tracks_gelu_loosely() {
        for i in -20..=20 {
            let x = i as f64 / 2.5;
            assert!((poly_gelu(x) - gelu(x)).abs() < 0.45, "at {x}");
        }
    }
}
