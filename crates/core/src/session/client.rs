//! The client side of a persistent two-party session.

use super::offline::{produce_client_bundle, ClientBundle};
use super::pool::OfflinePool;
use super::{online, ProtocolVariant};
use crate::gcmod::GcMode;
use crate::system::SystemConfig;
use crate::wire;
use primer_gc::{Circuit, OtGroup};
use primer_he::{BatchEncoder, Encryptor, KeyGenerator};
use primer_math::rng::derive;
use primer_net::MemTransport;
use primer_nn::FixedTransformer;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Long-lived client session state: everything Setup establishes once —
/// the secret key, encoder, encryptor, OT group and step circuits — plus
/// a pool of precomputed offline bundles.
///
/// The Galois keys generated here are shipped to the server as real
/// serialized bytes during [`ClientSession::setup`]; the client itself
/// never rotates, so it keeps only the secret key.
pub struct ClientSession {
    pub(crate) sys: SystemConfig,
    pub(crate) variant: ProtocolVariant,
    pub(crate) mode: GcMode,
    pub(crate) fixed: Arc<FixedTransformer>,
    pub(crate) circuits: Arc<Vec<Circuit>>,
    pub(crate) rng: StdRng,
    pub(crate) encoder: BatchEncoder,
    pub(crate) encryptor: Encryptor,
    pub(crate) group: OtGroup,
    pool: OfflinePool<ClientBundle>,
    pool_target: usize,
    total_queries: usize,
    produced: usize,
}

impl ClientSession {
    /// Setup phase: derives the client RNG, generates the secret and
    /// Galois keys, and ships the Galois keys to the server (the one
    /// Setup flight). Runs once per session.
    #[allow(clippy::too_many_arguments)]
    pub fn setup(
        sys: SystemConfig,
        variant: ProtocolVariant,
        mode: GcMode,
        fixed: Arc<FixedTransformer>,
        circuits: Arc<Vec<Circuit>>,
        seed: u64,
        total_queries: usize,
        pool_target: usize,
        t: &MemTransport,
    ) -> Self {
        let mut rng = derive(seed, "client");
        let encoder = BatchEncoder::new(&sys.he);
        let keygen = KeyGenerator::new(&sys.he, &mut rng);
        let encryptor = Encryptor::new(&sys.he, keygen.secret_key().clone(), seed ^ 0x5eed);
        let group = sys.ot_group.group();
        let simd = sys.simd_width();
        let stride = sys.padded_tokens();
        let gk = keygen.galois_keys_pow2(&[1, stride, simd - 1, simd - stride], false, &mut rng);
        wire::send_galois_keys(t, &gk);
        Self {
            sys,
            variant,
            mode,
            fixed,
            circuits,
            rng,
            encoder,
            encryptor,
            group,
            pool: OfflinePool::new(),
            pool_target: pool_target.max(1),
            total_queries,
            produced: 0,
        }
    }

    /// Unconsumed offline bundles waiting in the pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Produces `k` offline bundles into the pool. The server must run
    /// the matching [`super::ServerSession::refill`] with the same `k`
    /// — both sessions derive the same refill schedule from the shared
    /// (total, pool) parameters, keeping the wire in lockstep.
    pub fn refill(&mut self, t: &MemTransport, k: usize) {
        for _ in 0..k {
            let bundle = produce_client_bundle(self, t);
            self.pool.put(bundle);
            self.produced += 1;
        }
    }

    /// Runs one online inference, consuming one pooled offline bundle
    /// (refilling the pool first if it has drained).
    pub fn infer(&mut self, tokens: &[usize], t: &MemTransport) -> Vec<i64> {
        if self.pool.is_empty() {
            let k =
                super::pool::refill_quota(self.pool_target, self.total_queries, self.produced);
            self.refill(t, k);
        }
        let bundle = self.pool.take().expect("pool refilled above");
        online::client_online(self, bundle, tokens, t)
    }
}
