//! Scalar/AVX2 bit-identity (DESIGN.md §11): the SIMD lane width is a
//! pure performance knob — every vectorized kernel must produce the
//! exact canonical residues the scalar reference produces, for every
//! RNS prime and the plain modulus of every parameter profile. On a
//! machine without AVX2 the `Avx2` level silently degrades to scalar,
//! so the suite stays green (and vacuous) there.

use primer_he::modulus::Modulus;
use primer_he::ntt::NttTables;
use primer_he::simd::{self, SimdLevel};
use primer_he::{HeContext, HeParams};
use primer_math::rng::seeded;
use proptest::prelude::*;
use rand::Rng;

fn profiles() -> [HeParams; 3] {
    [HeParams::toy(), HeParams::test_2k(), HeParams::test_2k_wide()]
}

/// Every modulus the pipeline reduces by: each profile's RNS primes
/// plus its plaintext modulus.
fn profile_moduli() -> Vec<Modulus> {
    let mut out = Vec::new();
    for params in profiles() {
        let ctx = HeContext::new(params.clone());
        for tbl in ctx.ntt() {
            out.push(tbl.modulus());
        }
        out.push(Modulus::new(params.t()));
    }
    out.sort_by_key(Modulus::value);
    out.dedup_by_key(|m| m.value());
    out
}

fn rand_residues(rng: &mut rand::rngs::StdRng, p: u64, len: usize) -> Vec<u64> {
    (0..len).map(|_| rng.gen_range(0..p)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All slice kernels agree between forced-scalar and AVX2 on every
    /// modulus profile, including lengths that exercise both the vector
    /// body and the scalar remainder tail.
    #[test]
    fn slice_kernels_bit_identical(seed in 0u64..10_000, len in 1usize..67) {
        for m in profile_moduli() {
            let p = m.value();
            let mut rng = seeded(seed ^ p);
            let a = rand_residues(&mut rng, p, len);
            let b = rand_residues(&mut rng, p, len);
            let acc = rand_residues(&mut rng, p, len);
            let w = rng.gen_range(1..p);
            let ws = (((w as u128) << 64) / p as u128) as u64;

            let run = |lvl: SimdLevel| {
                let mut r_add = a.clone();
                simd::add_mod(m, &mut r_add, &b, lvl);
                let mut r_sub = a.clone();
                simd::sub_mod(m, &mut r_sub, &b, lvl);
                let mut r_neg = a.clone();
                simd::neg_mod(m, &mut r_neg, lvl);
                let mut r_mul = a.clone();
                simd::mul_mod(m, &mut r_mul, &b, lvl);
                let mut r_fma = acc.clone();
                simd::add_mul_mod(m, &mut r_fma, &a, &b, lvl);
                let mut r_shoup = a.clone();
                simd::mul_shoup_slice(p, w, ws, &mut r_shoup, lvl);
                (r_add, r_sub, r_neg, r_mul, r_fma, r_shoup)
            };
            prop_assert_eq!(
                run(SimdLevel::Scalar),
                run(SimdLevel::Avx2),
                "modulus {} len {}",
                p,
                len
            );
        }
    }

    /// Butterfly kernels agree lane-for-lane, including the boundary
    /// residues `0` and `p − 1` mixed into random data.
    #[test]
    fn butterfly_kernels_bit_identical(seed in 0u64..10_000, len in 1usize..67) {
        for m in profile_moduli() {
            let p = m.value();
            let mut rng = seeded(seed ^ p ^ 0xB7);
            let mut lo = rand_residues(&mut rng, p, len);
            let mut hi = rand_residues(&mut rng, p, len);
            lo[0] = 0;
            hi[0] = p - 1;
            let w = rng.gen_range(1..p);
            let ws = (((w as u128) << 64) / p as u128) as u64;

            for fwd in [true, false] {
                let run = |lvl: SimdLevel| {
                    let (mut l, mut h) = (lo.clone(), hi.clone());
                    if fwd {
                        simd::forward_butterflies(p, w, ws, &mut l, &mut h, lvl);
                    } else {
                        simd::inverse_butterflies(p, w, ws, &mut l, &mut h, lvl);
                    }
                    (l, h)
                };
                prop_assert_eq!(
                    run(SimdLevel::Scalar),
                    run(SimdLevel::Avx2),
                    "modulus {} len {} fwd {}",
                    p,
                    len,
                    fwd
                );
            }
        }
    }

    /// Whole-transform bit-identity: `forward_at`/`inverse_at` pinned at
    /// each level produce identical vectors (and still round-trip), for
    /// every RNS prime of every profile at full ring degree.
    #[test]
    fn ntt_transforms_bit_identical(seed in 0u64..10_000) {
        for params in profiles() {
            let ctx = HeContext::new(params.clone());
            for tbl in ctx.ntt() {
                let p = tbl.modulus().value();
                let mut rng = seeded(seed ^ p ^ 0xF0);
                let orig = rand_residues(&mut rng, p, tbl.len());

                let mut f_scalar = orig.clone();
                tbl.forward_at(&mut f_scalar, SimdLevel::Scalar);
                let mut f_avx2 = orig.clone();
                tbl.forward_at(&mut f_avx2, SimdLevel::Avx2);
                prop_assert_eq!(&f_scalar, &f_avx2, "forward n={} p={}", tbl.len(), p);

                // Cross levels on the way back: any divergence hiding in
                // either direction breaks the round-trip.
                let mut back = f_avx2.clone();
                tbl.inverse_at(&mut back, SimdLevel::Scalar);
                prop_assert_eq!(&back, &orig, "avx2→scalar roundtrip n={} p={}", tbl.len(), p);
                let mut back = f_scalar;
                tbl.inverse_at(&mut back, SimdLevel::Avx2);
                prop_assert_eq!(&back, &orig, "scalar→avx2 roundtrip n={} p={}", tbl.len(), p);
            }
        }
    }
}

/// `Ntt::forward`/`inverse` reject mismatched slice lengths loudly (the
/// SIMD dispatch must not relax the precondition the scalar path
/// asserts).
#[test]
fn ntt_length_mismatch_panics() {
    let tbl = NttTables::new(16, Modulus::new(97));
    for lvl in [SimdLevel::Scalar, SimdLevel::Avx2] {
        for len in [0usize, 8, 17] {
            let fwd = std::panic::catch_unwind(|| {
                let mut a = vec![1u64; len];
                tbl.forward_at(&mut a, lvl);
            });
            assert!(fwd.is_err(), "forward_at accepted len {len} at {lvl:?}");
            let inv = std::panic::catch_unwind(|| {
                let mut a = vec![1u64; len];
                tbl.inverse_at(&mut a, lvl);
            });
            assert!(inv.is_err(), "inverse_at accepted len {len} at {lvl:?}");
        }
    }
}
