//! `primer-server` — serve a Primer model to TCP clients.
//!
//! ```text
//! primer-server [--addr 127.0.0.1:9470] [--model test-tiny] [--profile test|paper]
//!               [--weight-seed 7] [--seed 40] [--max-workers 4] [--pool 2]
//!               [--threads N] [--sessions N] [--wan | --lan]
//!               [--shed-max-waiting N] [--suspend-dir PATH]
//!               [--idle-timeout SECS] [--plane-cache N]
//! ```
//!
//! `--threads` overrides the `PRIMER_THREADS` environment variable (the
//! offline/HE thread-pool size; default = available cores). The served
//! thread count is reported in every session summary and the stats table.
//!
//! `--shed-max-waiting N` turns on load shedding: once every worker slot
//! is taken and N hellos are already queued, further hellos get a typed
//! busy reply instead of waiting. `--suspend-dir PATH` enables session
//! suspend/resume: suspended sessions park their images under PATH and a
//! restarted server pointed at the same PATH resumes them by token.
//!
//! Prints `listening on <addr>` once bound (machine-readable for smoke
//! tests with `--addr 127.0.0.1:0`). With `--sessions N` it serves
//! exactly N **concluded** sessions (suspended sessions don't count),
//! prints the aggregated stats table and exits; otherwise it serves
//! forever.

use primer_net::NetworkModel;
use primer_serve::{model_by_name, Profile, ServerBuilder, ServerConfig, ShedPolicy};
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: primer-server [--addr HOST:PORT] [--model NAME] [--profile test|paper] \
         [--weight-seed N] [--seed N] [--max-workers N] [--pool N] [--threads N] \
         [--sessions N] [--wan | --lan] [--shed-max-waiting N] [--suspend-dir PATH] \
         [--idle-timeout SECS] [--plane-cache N]"
    );
    exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:9470".to_string();
    let mut config = ServerConfig::test_default(
        model_by_name("test-tiny").expect("known model"),
    );
    let mut sessions: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = value(&mut i),
            "--model" => {
                let name = value(&mut i);
                config.model = model_by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown model {name:?}");
                    usage()
                });
            }
            "--profile" => {
                config.profile = match value(&mut i).as_str() {
                    "test" => Profile::Test,
                    "paper" => Profile::Paper,
                    other => {
                        eprintln!("unknown profile {other:?}");
                        usage()
                    }
                };
            }
            "--weight-seed" => config.weight_seed = parse(&value(&mut i)),
            "--seed" => config.seed = parse(&value(&mut i)),
            "--max-workers" => config.max_workers = parse(&value(&mut i)) as usize,
            "--pool" => config.pool = parse(&value(&mut i)) as usize,
            // Overrides PRIMER_THREADS for this process; set before any
            // parallel work so the first pool use sees it.
            "--threads" => std::env::set_var("PRIMER_THREADS", value(&mut i)),
            "--sessions" => sessions = Some(parse(&value(&mut i)) as usize),
            "--wan" => config.shape = Some(NetworkModel::paper_wan()),
            "--lan" => config.shape = Some(NetworkModel::paper_lan()),
            "--shed-max-waiting" => {
                config.shed = ShedPolicy::Shed { max_waiting: parse(&value(&mut i)) as usize };
            }
            "--suspend-dir" => config.suspend_dir = Some(value(&mut i).into()),
            "--idle-timeout" => config.idle_timeout = Duration::from_secs(parse(&value(&mut i))),
            "--plane-cache" => config.plane_cache = parse(&value(&mut i)) as usize,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }

    let server = ServerBuilder::from_config(config).bind(&addr).unwrap_or_else(|e| {
        eprintln!("bind {addr}: {e}");
        exit(1);
    });
    let bound = server.local_addr().expect("bound address");
    println!("listening on {bound}");

    match sessions {
        Some(n) => {
            let stats = server.serve_sessions(n);
            print!("{}", stats.render());
        }
        None => {
            if let Err(e) = server.run_forever() {
                eprintln!("serve: {e}");
                exit(1);
            }
        }
    }
}

fn parse(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s:?}");
        usage()
    })
}
