//! Garbling/evaluation throughput (per-AND costs for the cost model) and
//! gate counts of the protocol's non-linear step circuits.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use primer_core::gcmod::{build_step_circuit, GcStepKind};
use primer_gc::garble::{evaluate, garble};
use primer_gc::{CircuitBuilder, GcNumCfg};
use primer_math::rng::seeded;
use primer_math::{FixedSpec, Ring};
use primer_nn::PipelineSpec;

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_gates");
    group.sample_size(10);

    // A 32×32 multiplier: the canonical AND-heavy circuit.
    let mut b = CircuitBuilder::new();
    let x = b.garbler_input(32);
    let y = b.evaluator_input(32);
    let p = b.mul(&x, &y);
    let circuit = b.build(&p);
    group.throughput(Throughput::Elements(circuit.and_count() as u64));
    group.bench_function("garble_mul32", |bch| {
        let mut rng = seeded(510);
        bch.iter(|| garble(&circuit, &mut rng))
    });
    let mut rng = seeded(511);
    let (garbled, enc) = garble(&circuit, &mut rng);
    let gl: Vec<u128> = (0..32).map(|i| enc.garbler_label(i, false)).collect();
    let el: Vec<u128> = (0..32).map(|i| enc.evaluator_pair(i).0).collect();
    group.bench_function("evaluate_mul32", |bch| {
        bch.iter(|| evaluate(&circuit, &garbled, &gl, &el))
    });

    // A protocol step circuit at test numerics.
    let spec = PipelineSpec::new(Ring::new((1 << 29) + 11), FixedSpec::new(12, 5), 12);
    let gc = GcNumCfg { width: 32, frac: 12 };
    let softmax = build_step_circuit(
        &GcStepKind::Softmax { rows: 4, cols: 4, prescale: 1 << 11 },
        &spec,
        gc,
    );
    group.throughput(Throughput::Elements(softmax.and_count() as u64));
    group.bench_function("garble_softmax_4x4", |bch| {
        let mut rng = seeded(512);
        bch.iter(|| garble(&softmax, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_gc);
criterion_main!(benches);
