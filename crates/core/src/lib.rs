//! The Primer private-transformer protocols — the paper's contribution.
//!
//! * [`packing`] — feature-based vs tokens-first ciphertext packing with
//!   exact encrypted matmul (Fig. 6),
//! * [`hgs`] — offline/online split for ciphertext–plaintext products
//!   (Fig. 4),
//! * [`fhgs`] — Beaver-style ciphertext–ciphertext products with
//!   additive-only HE (Fig. 5),
//! * [`chgs`] — the combined embed+QKV module (Fig. 3d),
//! * [`gcmod`] — garbled non-polynomial steps, bit-exact against
//!   `primer_nn::FixedTransformer`,
//! * [`session`] — the session-structured client/server inference engine
//!   for the Base / F / FP / FPC variants, with explicit Setup / Offline
//!   / Online phases, pooled offline bundles and a batched serving API,
//! * [`costmodel`] — analytic extrapolation to paper-scale latencies
//!   (Tables I–III, Fig. 2) plus the THE-X and GCFormer baselines,
//! * [`system`], [`stats`], [`wire`] — configuration, Table II + phase
//!   accounting, transport framing.
//!
//! The repository-level integration tests assert the headline invariant:
//! for every protocol variant, the private inference output equals the
//! plaintext fixed-point reference **bit for bit**.

pub mod chgs;
pub mod costmodel;
pub mod fhgs;
pub mod gcmod;
pub mod hgs;
pub mod packing;
mod serial;
pub mod session;
pub mod stats;
pub mod system;
pub mod wire;

pub use costmodel::{gcformer_latency, thex_latency, CostModel, GcGateModel, OpCosts};
pub use gcmod::{GcMode, GcStepKind};
pub use packing::{matmul_counts, MatmulCounts, MatmulWeights, Packing, PreparedMatmul};
pub use session::{
    build_session_circuits, ClientOnline, ClientProducer, ClientSession, Engine, ModelPlane,
    OfflinePool, PoolWatch, ProtocolVariant, ServeRound, ServerOnline, ServerProducer,
    ServerSession, ServerSuspendImage, SuspendError, SuspendedClientSession,
    SUSPEND_FORMAT_VERSION,
};
pub use stats::{
    argmax_logits, InferenceReport, PhaseCost, PhaseTotals, StepBreakdown, StepCategory,
};
pub use system::{ConfigError, OtGroupKind, SystemConfig};
