//! The THE-X baseline's core mechanic, live: evaluating a polynomial
//! activation **inside** FHE via ciphertext–ciphertext multiplication and
//! relinearization — the operation Primer's FHGS exists to avoid.
//!
//! Computes a quadratic surrogate `act(x) = 0.125x² + 0.5x + 0.4` (the
//! THE-X-style GELU replacement from `primer_math::activation`) over an
//! encrypted vector, and shows both the mechanics and the accuracy gap
//! against the exact GELU.
//!
//! Run: `cargo run --release --example thex_baseline`

use primer::he::{mult, BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator};
use primer::math::activation;
use primer::math::rng::seeded;
use primer::math::{FixedSpec, Ring};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // THE-X runs on a single-prime profile (ct–ct tensoring fits u128).
    let ctx = HeContext::new(HeParams::toy());
    let encoder = BatchEncoder::new(&ctx);
    let mut rng = seeded(51);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 52);
    let eval = Evaluator::new(&ctx);
    let rk = kg.relin_key(&mut rng);
    let ring = Ring::new(ctx.params().t());
    // Coarse fixed point: the polynomial is evaluated at scale 2^(3f),
    // which must fit the toy profile's ~15-bit plaintext ring.
    let fixed = FixedSpec::new(10, 3);

    // Encrypt a few activations.
    let xs: Vec<f64> = vec![-2.0, -0.5, 0.0, 0.7, 1.5, 3.0];
    let raw: Vec<u64> = xs.iter().map(|&x| fixed.encode(&ring, x)).collect();
    let ct = encryptor.encrypt(&encoder.encode(&raw));

    // act(x) = 0.125·x² + 0.5·x + 0.4 homomorphically:
    // x² via ct–ct multiply + relinearize (scale 2^(2f)), then the linear
    // terms scale-matched to 2^(2f) before adding.
    let sq = mult::multiply(&ctx, eval.counters(), &ct, &ct)?;
    let sq = eval.relinearize(&sq, &rk)?;
    let c_eighth = encoder.encode(&vec![fixed.quantize(0.125) as u64; xs.len()]);
    let term2 = eval.mul_plain(&sq, &eval.prepare_mul_plain(&c_eighth));
    // 0.5·x at scale 2^(3f)… keep everything at 3f: term2 is (2f+f)=3f
    // after the plaintext multiply; x·(0.5·2^(2f)) matches it.
    let half_2f = (0.5 * fixed.scale() * fixed.scale()).round() as u64;
    let c_half = encoder.encode(&vec![half_2f % ring.modulus(); xs.len()]);
    let term1 = eval.mul_plain(&ct, &eval.prepare_mul_plain(&c_half));
    let bias = (0.4 * fixed.scale() * fixed.scale() * fixed.scale()).round() as u64;
    let c_bias = encoder.encode(&vec![bias % ring.modulus(); xs.len()]);
    let sum = eval.add_plain(&eval.add(&term2, &term1), &c_bias);

    println!("budget after ct–ct mult + relin + poly: {:.1} bits", encryptor.noise_budget(&sum));
    let decoded = encoder.decode(&encryptor.decrypt(&sum));
    println!("{:>6} {:>12} {:>12} {:>10}", "x", "FHE poly", "exact GELU", "error");
    let scale3 = fixed.scale().powi(3);
    for (i, &x) in xs.iter().enumerate() {
        let got = ring.to_signed(decoded[i]) as f64 / scale3;
        let exact = activation::gelu(x);
        println!("{:>6.2} {:>12.3} {:>12.3} {:>10.3}", x, got, exact, (got - exact).abs());
    }
    println!();
    println!("this per-element error is the mechanism behind THE-X's accuracy loss;");
    println!("Primer's FHGS+GC pipeline computes the exact function instead.");
    Ok(())
}
