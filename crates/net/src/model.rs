//! Analytic network time model.
//!
//! The paper's testbed: two instances, average delay 2.3 ms, ~100 MB/s.
//! Protocol executions run in-process; the network's wall-clock
//! contribution is computed from metered traffic using this model.

use crate::metering::TrafficSnapshot;
use std::time::Duration;

/// Latency + bandwidth model for a sequential two-party link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// The paper's LAN: 2.3 ms delay, 100 MB/s.
    pub fn paper_lan() -> Self {
        Self { latency: Duration::from_micros(2300), bandwidth_bps: 100.0e6 }
    }

    /// A WAN setting: 40 ms one-way delay, 9 MB/s (~72 Mbit/s). These
    /// are the round numbers the 2PC-inference literature evaluates
    /// under (Cheetah/Iron-style WAN: tens of ms RTT, sub-100 Mbit
    /// links); the paper itself only reports LAN, so this profile is
    /// what "Primer over a real WAN" is measured against.
    pub fn paper_wan() -> Self {
        Self { latency: Duration::from_millis(40), bandwidth_bps: 9.0e6 }
    }

    /// An ideal link (zero cost) for isolating compute time.
    pub fn ideal() -> Self {
        Self { latency: Duration::ZERO, bandwidth_bps: f64::INFINITY }
    }

    /// Time for `messages` sequential flights carrying `bytes` total.
    pub fn time_for(&self, messages: u64, bytes: u64) -> Duration {
        let latency = self.latency * (messages as u32);
        let transfer = if self.bandwidth_bps.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
        } else {
            Duration::ZERO
        };
        latency + transfer
    }

    /// Time for the traffic captured in a snapshot.
    pub fn time_for_snapshot(&self, snap: &TrafficSnapshot) -> Duration {
        self.time_for(snap.total_messages(), snap.total_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lan_numbers() {
        let m = NetworkModel::paper_lan();
        // 10 messages, 100 MB → 10×2.3ms + 1s.
        let t = m.time_for(10, 100_000_000);
        assert!((t.as_secs_f64() - 1.023).abs() < 1e-9);
    }

    #[test]
    fn paper_wan_numbers() {
        let m = NetworkModel::paper_wan();
        // 5 messages, 9 MB → 5×40ms + 1s.
        let t = m.time_for(5, 9_000_000);
        assert!((t.as_secs_f64() - 1.2).abs() < 1e-9);
        // WAN dominates LAN for the same transcript.
        assert!(t > NetworkModel::paper_lan().time_for(5, 9_000_000));
    }

    #[test]
    fn ideal_is_free() {
        let m = NetworkModel::ideal();
        assert_eq!(m.time_for(1000, u64::MAX), Duration::ZERO);
    }
}
