//! Shared precomputed state for one parameter set.

use crate::modulus::Modulus;
use crate::ntt::NttTables;
use crate::params::HeParams;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Precomputed context: moduli wrappers, NTT tables per RNS prime, the
/// plaintext-side NTT, CRT (Garner) constants and the BFV scaling factor
/// `Δ = ⌊q/t⌋`.
///
/// Contexts are cheap to clone (`Arc` inside) and shared by every key,
/// ciphertext operation and encoder.
#[derive(Debug, Clone)]
pub struct HeContext {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    params: HeParams,
    moduli: Vec<Modulus>,
    ntt: Vec<NttTables>,
    plain: Modulus,
    plain_ntt: NttTables,
    q: u128,
    delta: u128,
    delta_mod_qi: Vec<u64>,
    // Shoup companions of delta_mod_qi, so the base-conversion combine
    // (`round(q·m/t)` scaling) runs as a vector Shoup multiply per limb.
    delta_mod_qi_shoup: Vec<u64>,
    // True when t < every RNS prime — the precondition for the
    // vectorized centered-lift and scale-combine fast paths (all stock
    // profiles satisfy it; the scalar u128 path remains as fallback).
    plain_below_primes: bool,
    // Garner mixed-radix constants: garner_inv[i] = (q_0·…·q_{i-1})^{-1} mod q_i.
    garner_inv: Vec<u64>,
    // NTT-domain Galois permutations, one per element, built on first
    // use and shared by every evaluator cloned from this context (the
    // automorphism x → x^g permutes NTT evaluation points, so rotations
    // never have to leave the evaluation domain).
    galois_perms: Mutex<HashMap<u64, Arc<Vec<u32>>>>,
}

impl HeContext {
    /// Builds the context for a parameter set.
    pub fn new(params: HeParams) -> Self {
        let moduli: Vec<Modulus> = params.moduli().iter().map(|&q| Modulus::new(q)).collect();
        let ntt = moduli.iter().map(|m| NttTables::new(params.n(), *m)).collect();
        let plain = Modulus::new(params.t());
        let plain_ntt = NttTables::new(params.n(), plain);
        let q = params.q();
        let delta = q / params.t() as u128;
        let delta_mod_qi: Vec<u64> = moduli.iter().map(|m| m.reduce_u128(delta)).collect();
        let delta_mod_qi_shoup = moduli
            .iter()
            .zip(&delta_mod_qi)
            .map(|(m, &d)| (((d as u128) << 64) / m.value() as u128) as u64)
            .collect();
        let plain_below_primes = moduli.iter().all(|m| params.t() < m.value());
        let mut garner_inv = vec![0u64; moduli.len()];
        for i in 1..moduli.len() {
            let mi = moduli[i];
            let mut prod = 1u64;
            for m in &moduli[..i] {
                prod = mi.mul(prod, mi.reduce(m.value()));
            }
            garner_inv[i] = mi.inv(prod);
        }
        Self {
            inner: Arc::new(Inner {
                params,
                moduli,
                ntt,
                plain,
                plain_ntt,
                q,
                delta,
                delta_mod_qi,
                delta_mod_qi_shoup,
                plain_below_primes,
                garner_inv,
                galois_perms: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The parameter set.
    #[inline]
    pub fn params(&self) -> &HeParams {
        &self.inner.params
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.inner.params.n()
    }

    /// Number of RNS primes.
    #[inline]
    pub fn num_primes(&self) -> usize {
        self.inner.moduli.len()
    }

    /// RNS prime wrappers.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.inner.moduli
    }

    /// NTT tables per RNS prime.
    #[inline]
    pub fn ntt(&self) -> &[NttTables] {
        &self.inner.ntt
    }

    /// Plaintext modulus wrapper.
    #[inline]
    pub fn plain(&self) -> Modulus {
        self.inner.plain
    }

    /// Plaintext-side NTT tables (mod `t`), used by the batching encoder.
    #[inline]
    pub fn plain_ntt(&self) -> &NttTables {
        &self.inner.plain_ntt
    }

    /// `q` as a u128.
    #[inline]
    pub fn q(&self) -> u128 {
        self.inner.q
    }

    /// `Δ = ⌊q/t⌋`.
    #[inline]
    pub fn delta(&self) -> u128 {
        self.inner.delta
    }

    /// `Δ mod q_i` per prime.
    #[inline]
    pub fn delta_mod_qi(&self) -> &[u64] {
        &self.inner.delta_mod_qi
    }

    /// Shoup companions of [`Self::delta_mod_qi`]
    /// (`floor((Δ mod q_i)·2^64 / q_i)`), for the vectorized
    /// base-conversion combine.
    #[inline]
    pub fn delta_mod_qi_shoup(&self) -> &[u64] {
        &self.inner.delta_mod_qi_shoup
    }

    /// True when `t < q_i` for every RNS prime — the precondition for
    /// the vectorized centered-lift / scale-combine fast paths in
    /// [`crate::poly::RnsPoly`]. Holds for every stock profile.
    #[inline]
    pub fn plain_below_primes(&self) -> bool {
        self.inner.plain_below_primes
    }

    /// Recombines RNS residues of one coefficient into the integer
    /// representative in `[0, q)` (Garner's mixed-radix algorithm; exact
    /// because `q < 2^125`).
    pub fn crt_compose(&self, residues: &[u64]) -> u128 {
        debug_assert_eq!(residues.len(), self.num_primes());
        let moduli = &self.inner.moduli;
        // Mixed-radix digits: v = d0 + d1·q0 + d2·q0·q1 + …
        let mut digits = vec![0u64; residues.len()];
        digits[0] = residues[0];
        for i in 1..residues.len() {
            let mi = moduli[i];
            // u = (r_i - value-so-far) * inv mod q_i
            let mut val = mi.reduce(digits[0]);
            let mut radix = 1u64;
            for (j, &d) in digits.iter().enumerate().take(i).skip(1) {
                radix = mi.mul(radix, mi.reduce(moduli[j - 1].value()));
                val = mi.add(val, mi.mul(mi.reduce(d), radix));
            }
            let diff = mi.sub(mi.reduce(residues[i]), val);
            digits[i] = mi.mul(diff, self.inner.garner_inv[i]);
        }
        let mut acc = 0u128;
        let mut radix = 1u128;
        for (i, &d) in digits.iter().enumerate() {
            acc += d as u128 * radix;
            radix *= moduli[i].value() as u128;
        }
        acc
    }

    /// The NTT-domain permutation realizing the Galois automorphism
    /// `x → x^g`: `ntt(σ_g(f))[i] = ntt(f)[perm[i]]` for every RNS prime
    /// (the output ordering of the negacyclic NTT is structural —
    /// position `i` holds the evaluation at `ψ^(2·bitrev(i)+1)` for that
    /// prime's own `ψ` — so one index permutation serves all primes;
    /// `proptest_he` asserts this against the coefficient-domain
    /// automorphism per parameter profile).
    ///
    /// Built once per element and cached; cheap to clone out (`Arc`).
    ///
    /// # Panics
    ///
    /// Panics if `g` is even or out of `1..2n` (not a Galois element).
    pub fn galois_perm(&self, g: u64) -> Arc<Vec<u32>> {
        let n = self.n();
        let two_n = 2 * n as u64;
        assert!(g % 2 == 1 && g < two_n, "galois element must be odd and < 2n");
        let mut cache = self.inner.galois_perms.lock().expect("galois perm cache poisoned");
        Arc::clone(cache.entry(g).or_insert_with(|| {
            // The bit-reversal permutation is cached on every NTT table
            // (same n everywhere); borrow it instead of recomputing.
            let bitrev = self.inner.ntt[0].bit_rev_perm();
            let perm = bitrev
                .iter()
                .map(|&r| {
                    // Evaluation point at position i is ψ^e with
                    // e = 2·bitrev(i)+1; σ_g(f) there equals f at ψ^(g·e),
                    // which lives at position bitrev(((g·e mod 2n)−1)/2).
                    let e = 2 * r as u64 + 1;
                    let src_e = (g * e) % two_n;
                    bitrev[(src_e >> 1) as usize]
                })
                .collect();
            Arc::new(perm)
        }))
    }

    /// Centers an integer in `[0, q)` to the signed representative in
    /// `(-q/2, q/2]`, returned as `(negative, magnitude)`.
    pub fn center_q(&self, v: u128) -> (bool, u128) {
        if v > self.inner.q / 2 {
            (true, self.inner.q - v)
        } else {
            (false, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crt_compose_roundtrip() {
        let ctx = HeContext::new(HeParams::test_2k());
        let q = ctx.q();
        for v in [0u128, 1, 12345, q / 3, q - 1] {
            let residues: Vec<u64> =
                ctx.moduli().iter().map(|m| m.reduce_u128(v)).collect();
            assert_eq!(ctx.crt_compose(&residues), v);
        }
    }

    #[test]
    fn single_prime_compose_is_identity() {
        let ctx = HeContext::new(HeParams::toy());
        assert_eq!(ctx.crt_compose(&[777]), 777);
    }

    #[test]
    fn delta_relation() {
        let ctx = HeContext::new(HeParams::test_2k());
        let t = ctx.params().t() as u128;
        assert!(ctx.delta() * t <= ctx.q());
        assert!((ctx.delta() + 1) * t > ctx.q());
    }

    #[test]
    fn galois_perm_is_cached_and_identity_at_one() {
        let ctx = HeContext::new(HeParams::toy());
        let p1 = ctx.galois_perm(1);
        assert!(p1.iter().enumerate().all(|(i, &s)| s as usize == i));
        let p3a = ctx.galois_perm(3);
        let p3b = ctx.galois_perm(3);
        assert!(Arc::ptr_eq(&p3a, &p3b), "second lookup must hit the cache");
        // Every galois perm is a permutation (g odd ⇒ bijective on points).
        let mut seen = vec![false; ctx.n()];
        for &s in p3a.iter() {
            assert!(!seen[s as usize], "duplicate source index");
            seen[s as usize] = true;
        }
    }

    #[test]
    fn galois_perm_matches_coefficient_automorphism() {
        use crate::poly::RnsPoly;
        for params in [HeParams::toy(), HeParams::test_2k()] {
            let ctx = HeContext::new(params);
            let mut rng = primer_math::rng::seeded(77);
            let p = RnsPoly::uniform(&ctx, &mut rng);
            for g in [3u64, 9, 2 * ctx.n() as u64 - 1] {
                let mut via_coeff = p.apply_automorphism(&ctx, g);
                via_coeff.to_ntt(&ctx);
                let mut p_ntt = p.clone();
                p_ntt.to_ntt(&ctx);
                let via_perm = p_ntt.permute_ntt(&ctx, &ctx.galois_perm(g));
                assert_eq!(via_perm, via_coeff, "element {g}");
            }
        }
    }

    #[test]
    fn center_q_halves() {
        let ctx = HeContext::new(HeParams::toy());
        let q = ctx.q();
        assert_eq!(ctx.center_q(0), (false, 0));
        assert_eq!(ctx.center_q(1), (false, 1));
        assert_eq!(ctx.center_q(q - 1), (true, 1));
    }
}
