//! End-to-end protocol benchmarks: a full tiny private inference per
//! Primer variant (the engine exercised exactly as in the tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use primer_core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer_math::rng::seeded;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(10);
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(530));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    for variant in [ProtocolVariant::F, ProtocolVariant::Fp, ProtocolVariant::Fpc] {
        let engine = Engine::new(sys.clone(), variant, fixed.clone(), GcMode::Simulated, 531);
        group.bench_function(BenchmarkId::new("inference", variant.name()), |b| {
            b.iter(|| {
                let report = engine.run(&[3, 1, 4, 1]);
                assert!(report.matches_plaintext_reference());
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
