//! The server's session-constant model plane: ring-domain weights plus
//! (by default) the prepared NTT-form mask planes for every HGS/CHGS
//! matmul, built **once** and shared read-only.
//!
//! A [`ModelPlane`] is a pure function of `(system config, variant,
//! quantized model)` — no session randomness touches it — so it is
//! immutable after construction and `Sync`. The in-process engine
//! builds one per session during Setup; the TCP serving registry caches
//! one `Arc` per variant and hands it to every concurrent session of
//! the same model, amortizing the mask encoding across the whole fleet
//! (see DESIGN.md §10 for the lifecycle).

use super::server::{BlockRing, CombinedRing, ServerWeights};
use super::{lambda_scaled, to_ring, ProtocolVariant};
use crate::costmodel::layout;
use crate::packing::{MatmulWeights, Packing, PreparedMatmul, RotationMode};
use crate::system::SystemConfig;
use primer_he::{BatchEncoder, Evaluator};
use primer_math::MatZ;
use primer_nn::FixedTransformer;

/// Prepared mask planes for one encoder block's HGS matmuls.
pub(crate) struct PreparedBlock {
    /// Q/K/V projection planes (absent in block 0 under CHGS, where the
    /// combined module subsumes them).
    pub qkv: Option<[PreparedMatmul; 3]>,
    pub wo: PreparedMatmul,
    pub w1: PreparedMatmul,
    pub w2: PreparedMatmul,
}

/// Prepared mask planes for every session-constant matmul of a model.
pub(crate) struct PreparedWeights {
    /// Embedding (`W_E`, or `Ā_e` under CHGS) against the one-hot input.
    pub we: PreparedMatmul,
    /// CHGS combined projections `Ā_q`, `Ā_k`, `Ā_v` (Fpc only).
    pub combined: Option<[PreparedMatmul; 3]>,
    pub blocks: Vec<PreparedBlock>,
    pub classifier: PreparedMatmul,
}

/// The rotation mode the layout selector picked for each weight-chain
/// site (blocks share shapes, so one choice per site class). Computed
/// once at plane build from *public shapes*, so the fresh and prepared
/// arms — and the client's key plan — all agree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlaneModes {
    pub we: RotationMode,
    pub combined: RotationMode,
    pub qkv: RotationMode,
    pub wo: RotationMode,
    pub w1: RotationMode,
    pub w2: RotationMode,
    pub classifier: RotationMode,
}

impl PlaneModes {
    fn select(sys: &SystemConfig, variant: ProtocolVariant, w: &ServerWeights) -> Self {
        let packing = variant.packing();
        let params = sys.he.params();
        let n = sys.model.n_tokens;
        let pick = |rows: usize, wm: &MatZ| {
            layout::chain_mode(params, packing, rows, wm.rows(), wm.cols())
        };
        let blk = w.blocks.first();
        Self {
            we: pick(n, &w.we),
            combined: w
                .combined
                .as_ref()
                .map_or(RotationMode::Output, |c| pick(n, &c.a_q)),
            qkv: blk.map_or(RotationMode::Output, |b| pick(n, &b.wq)),
            wo: blk.map_or(RotationMode::Output, |b| pick(n, &b.wo)),
            w1: blk.map_or(RotationMode::Output, |b| pick(n, &b.w1)),
            w2: blk.map_or(RotationMode::Output, |b| pick(n, &b.w2)),
            classifier: pick(1, &w.classifier),
        }
    }
}

/// Ring weights + optional prepared mask planes for one (model,
/// variant). See the module docs.
pub struct ModelPlane {
    pub(crate) variant: ProtocolVariant,
    pub(crate) weights: ServerWeights,
    pub(crate) modes: PlaneModes,
    pub(crate) prepared: Option<PreparedWeights>,
}

impl ModelPlane {
    /// Builds the plane with prepared masks (the default, NTT-resident
    /// serving path). All mask encoding — the entire per-weight
    /// `mask_prep` budget — runs here, inside Setup.
    pub fn build(sys: &SystemConfig, variant: ProtocolVariant, fixed: &FixedTransformer) -> Self {
        Self::assemble(sys, variant, fixed, true)
    }

    /// Builds the plane **without** prepared masks: every matmul encodes
    /// its masks fresh, per call — the pre-refactor behaviour, kept as
    /// the reference arm of the prepared-vs-fresh equivalence suite.
    pub fn build_raw(
        sys: &SystemConfig,
        variant: ProtocolVariant,
        fixed: &FixedTransformer,
    ) -> Self {
        Self::assemble(sys, variant, fixed, false)
    }

    fn assemble(
        sys: &SystemConfig,
        variant: ProtocolVariant,
        fixed: &FixedTransformer,
        prepare: bool,
    ) -> Self {
        let ring = sys.ring();
        let frac = fixed.spec().fixed.frac();
        let combined = variant.combined().then(|| {
            let cw = fixed.combined_weights();
            CombinedRing {
                a_q: to_ring(&ring, &cw.a_q),
                a_k: to_ring(&ring, &cw.a_k),
                a_v: to_ring(&ring, &cw.a_v),
                lam_q: lambda_scaled(&ring, &cw.lam_q, frac),
                lam_k: lambda_scaled(&ring, &cw.lam_k, frac),
                lam_v: lambda_scaled(&ring, &cw.lam_v, frac),
            }
        });
        let weights = ServerWeights {
            we: to_ring(&ring, &fixed.we),
            lam: lambda_scaled(&ring, &fixed.pos, frac),
            combined,
            blocks: fixed
                .blocks
                .iter()
                .map(|blk| BlockRing {
                    wq: to_ring(&ring, &blk.wq),
                    wk: to_ring(&ring, &blk.wk),
                    wv: to_ring(&ring, &blk.wv),
                    wo: to_ring(&ring, &blk.wo),
                    w1: to_ring(&ring, &blk.w1),
                    w2: to_ring(&ring, &blk.w2),
                })
                .collect(),
            classifier: to_ring(&ring, &fixed.classifier),
        };
        let modes = PlaneModes::select(sys, variant, &weights);
        let prepared = prepare.then(|| Self::prepare(sys, variant, &weights, modes));
        Self { variant, weights, modes, prepared }
    }

    /// Encodes every session-constant mask once (a pure function of the
    /// weights, parallel across masks).
    fn prepare(
        sys: &SystemConfig,
        variant: ProtocolVariant,
        w: &ServerWeights,
        modes: PlaneModes,
    ) -> PreparedWeights {
        let packing = variant.packing();
        let n = sys.model.n_tokens;
        // Scratch evaluator/encoder: the `mask_prep` ops belong to plane
        // construction (Setup), not to any query's phase counters.
        let encoder = BatchEncoder::new(&sys.he);
        let eval = Evaluator::new(&sys.he);
        let plan = |rows: usize, wm: &MatZ, mode: RotationMode| {
            PreparedMatmul::new_with_mode(packing, rows, wm, &eval, &encoder, mode)
        };
        PreparedWeights {
            we: plan(n, &w.we, modes.we),
            combined: w.combined.as_ref().map(|cw| {
                [
                    plan(n, &cw.a_q, modes.combined),
                    plan(n, &cw.a_k, modes.combined),
                    plan(n, &cw.a_v, modes.combined),
                ]
            }),
            blocks: w
                .blocks
                .iter()
                .enumerate()
                .map(|(b, blk)| PreparedBlock {
                    qkv: (b > 0 || !variant.combined()).then(|| {
                        [
                            plan(n, &blk.wq, modes.qkv),
                            plan(n, &blk.wk, modes.qkv),
                            plan(n, &blk.wv, modes.qkv),
                        ]
                    }),
                    wo: plan(n, &blk.wo, modes.wo),
                    w1: plan(n, &blk.w1, modes.w1),
                    w2: plan(n, &blk.w2, modes.w2),
                })
                .collect(),
            classifier: plan(1, &w.classifier, modes.classifier),
        }
    }

    /// The variant this plane was built for.
    pub fn variant(&self) -> ProtocolVariant {
        self.variant
    }

    /// Whether the prepared mask planes are present (false only for the
    /// fresh-mask reference arm).
    pub fn is_prepared(&self) -> bool {
        self.prepared.is_some()
    }

    /// Resident memory pinned by the prepared masks, in bytes (0 when
    /// unprepared). Surfaced in `ServerStats`.
    pub fn mask_bytes(&self) -> u64 {
        self.prepared.as_ref().map_or(0, |p| {
            let mut total = p.we.mask_bytes() + p.classifier.mask_bytes();
            if let Some(c) = &p.combined {
                total += c.iter().map(PreparedMatmul::mask_bytes).sum::<u64>();
            }
            for blk in &p.blocks {
                if let Some(qkv) = &blk.qkv {
                    total += qkv.iter().map(PreparedMatmul::mask_bytes).sum::<u64>();
                }
                total += blk.wo.mask_bytes() + blk.w1.mask_bytes() + blk.w2.mask_bytes();
            }
            total
        })
    }

    /// Every rotation step the prepared chains will issue — the rotation
    /// plan Setup checks dedicated Galois keys against.
    pub fn rotation_steps(&self) -> Vec<usize> {
        let mut steps: Vec<usize> = Vec::new();
        let mut add = |p: &PreparedMatmul| {
            for &s in p.rotation_steps() {
                if !steps.contains(&s) {
                    steps.push(s);
                }
            }
        };
        if let Some(p) = &self.prepared {
            add(&p.we);
            if let Some(c) = &p.combined {
                c.iter().for_each(&mut add);
            }
            for blk in &p.blocks {
                if let Some(qkv) = &blk.qkv {
                    qkv.iter().for_each(&mut add);
                }
                add(&blk.wo);
                add(&blk.w1);
                add(&blk.w2);
            }
            add(&p.classifier);
        }
        steps.sort_unstable();
        steps
    }

    /// Every step the prepared chains issue through **hoisted**
    /// `rotate_many` calls (input-rotation planes). Hoisted steps cannot
    /// fall back to a power-of-two decomposition, so Setup must verify a
    /// dedicated key exists for each — see `ServerSession::setup`.
    pub fn hoisted_steps(&self) -> Vec<usize> {
        let mut steps: Vec<usize> = Vec::new();
        let mut add = |p: &PreparedMatmul| {
            for &s in p.hoisted_steps() {
                if !steps.contains(&s) {
                    steps.push(s);
                }
            }
        };
        if let Some(p) = &self.prepared {
            add(&p.we);
            if let Some(c) = &p.combined {
                c.iter().for_each(&mut add);
            }
            for blk in &p.blocks {
                if let Some(qkv) = &blk.qkv {
                    qkv.iter().for_each(&mut add);
                }
                add(&blk.wo);
                add(&blk.w1);
                add(&blk.w2);
            }
            add(&p.classifier);
        }
        steps.sort_unstable();
        steps
    }

    /// The embed-module matmul weights in reply order (1 flight for
    /// HGS, 4 for the CHGS combined module), prepared when available.
    pub(crate) fn embed_weights<'a>(
        &'a self,
        encoder: &'a BatchEncoder,
    ) -> Vec<MatmulWeights<'a>> {
        match (&self.prepared, &self.weights.combined) {
            (Some(p), Some(_)) => {
                let c = p.combined.as_ref().expect("combined planes prepared");
                vec![
                    MatmulWeights::Prepared(&p.we),
                    MatmulWeights::Prepared(&c[0]),
                    MatmulWeights::Prepared(&c[1]),
                    MatmulWeights::Prepared(&c[2]),
                ]
            }
            (Some(p), None) => vec![MatmulWeights::Prepared(&p.we)],
            (None, Some(cw)) => vec![
                MatmulWeights::Fresh { w: &self.weights.we, encoder, mode: self.modes.we },
                MatmulWeights::Fresh { w: &cw.a_q, encoder, mode: self.modes.combined },
                MatmulWeights::Fresh { w: &cw.a_k, encoder, mode: self.modes.combined },
                MatmulWeights::Fresh { w: &cw.a_v, encoder, mode: self.modes.combined },
            ],
            (None, None) => {
                vec![MatmulWeights::Fresh { w: &self.weights.we, encoder, mode: self.modes.we }]
            }
        }
    }

    /// Block `b`'s Q/K/V projection weights (only meaningful when the
    /// block runs the QKV HGS module).
    pub(crate) fn qkv_weights<'a>(
        &'a self,
        b: usize,
        encoder: &'a BatchEncoder,
    ) -> [MatmulWeights<'a>; 3] {
        if let Some(p) = &self.prepared {
            let qkv = p.blocks[b].qkv.as_ref().expect("qkv planes prepared for this block");
            [
                MatmulWeights::Prepared(&qkv[0]),
                MatmulWeights::Prepared(&qkv[1]),
                MatmulWeights::Prepared(&qkv[2]),
            ]
        } else {
            let blk = &self.weights.blocks[b];
            [
                MatmulWeights::Fresh { w: &blk.wq, encoder, mode: self.modes.qkv },
                MatmulWeights::Fresh { w: &blk.wk, encoder, mode: self.modes.qkv },
                MatmulWeights::Fresh { w: &blk.wv, encoder, mode: self.modes.qkv },
            ]
        }
    }

    /// Block `b`'s WO / W1 / W2 weights in module order.
    pub(crate) fn linear_weights<'a>(
        &'a self,
        b: usize,
        encoder: &'a BatchEncoder,
    ) -> [MatmulWeights<'a>; 3] {
        if let Some(p) = &self.prepared {
            let blk = &p.blocks[b];
            [
                MatmulWeights::Prepared(&blk.wo),
                MatmulWeights::Prepared(&blk.w1),
                MatmulWeights::Prepared(&blk.w2),
            ]
        } else {
            let blk = &self.weights.blocks[b];
            [
                MatmulWeights::Fresh { w: &blk.wo, encoder, mode: self.modes.wo },
                MatmulWeights::Fresh { w: &blk.w1, encoder, mode: self.modes.w1 },
                MatmulWeights::Fresh { w: &blk.w2, encoder, mode: self.modes.w2 },
            ]
        }
    }

    /// The classifier head's weights.
    pub(crate) fn classifier_weights<'a>(
        &'a self,
        encoder: &'a BatchEncoder,
    ) -> MatmulWeights<'a> {
        match &self.prepared {
            Some(p) => MatmulWeights::Prepared(&p.classifier),
            None => MatmulWeights::Fresh {
                w: &self.weights.classifier,
                encoder,
                mode: self.modes.classifier,
            },
        }
    }

    /// The packing the plane's prepared masks were laid out for.
    pub fn packing(&self) -> Packing {
        self.variant.packing()
    }
}

impl std::fmt::Debug for ModelPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelPlane")
            .field("variant", &self.variant)
            .field("prepared", &self.is_prepared())
            .field("mask_bytes", &self.mask_bytes())
            .finish_non_exhaustive()
    }
}
