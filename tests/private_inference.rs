//! Cross-crate integration tests: full private inference through every
//! workspace layer (math → he/gc/ss/net → nn → core).

use primer::core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer::math::rng::seeded;
use primer::nn::{FixedTransformer, TransformerConfig, TransformerWeights};

fn fixed_model(cfg: &TransformerConfig, sys: &SystemConfig, seed: u64) -> FixedTransformer {
    let weights = TransformerWeights::random(cfg, &mut seeded(seed));
    FixedTransformer::quantize(cfg, &weights, sys.pipeline)
}

/// The headline reproduction claim: for every Primer variant, the private
/// protocol output equals the plaintext fixed-point reference bit for
/// bit — "no polynomial approximation" made checkable.
#[test]
fn all_variants_are_bit_exact_against_reference() {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let fixed = fixed_model(&cfg, &sys, 600);
    for variant in ProtocolVariant::all() {
        let engine = Engine::new(sys.clone(), variant, fixed.clone(), GcMode::Simulated, 601);
        let report = engine.run(&[7, 2, 19, 30]);
        assert!(
            report.matches_plaintext_reference(),
            "{}: private {:?} != reference {:?}",
            variant.name(),
            report.logits,
            report.reference_logits
        );
    }
}

/// Different inputs produce different predictions through the private
/// pipeline (the protocol is not constant). Served through one warm
/// session so the expensive Setup phase runs once, not per input.
#[test]
fn private_predictions_depend_on_input() {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let fixed = fixed_model(&cfg, &sys, 602);
    let engine = Engine::new(sys, ProtocolVariant::Fp, fixed, GcMode::Simulated, 603);
    let reports = engine.serve(&[vec![0, 1, 2, 3], vec![31, 30, 29, 28]]);
    let (a, b) = (&reports[0], &reports[1]);
    assert!(a.matches_plaintext_reference());
    assert!(b.matches_plaintext_reference());
    assert_ne!(a.logits, b.logits, "logits must depend on the input");
}

/// A two-block model exercises the block-to-block share threading.
#[test]
fn two_block_model_is_bit_exact() {
    let cfg = TransformerConfig::test_small();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let fixed = fixed_model(&cfg, &sys, 604);
    let engine = Engine::new(sys, ProtocolVariant::Fpc, fixed, GcMode::Simulated, 605);
    let report = engine.run(&[5, 60, 33, 2, 47, 11]);
    assert!(report.matches_plaintext_reference());
}

/// The FHGS/HGS offline split: the online phase must execute far fewer
/// HE rotations than the offline phase (the paper's core latency claim).
#[test]
fn offline_phase_carries_the_rotations() {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let fixed = fixed_model(&cfg, &sys, 606);
    let engine = Engine::new(sys, ProtocolVariant::Fp, fixed, GcMode::Simulated, 607);
    let report = engine.run(&[1, 2, 3, 4]);
    assert!(report.he_ops_offline.rotations > 0);
    // At this tiny scale the FHGS online matmuls keep a visible share of
    // rotations; at paper shapes the offline share dominates by orders of
    // magnitude (see the cost-model tests). Here we check the direction.
    assert!(
        report.he_ops_online.rotations < report.he_ops_offline.rotations,
        "online rotations {} should be below offline {}",
        report.he_ops_online.rotations,
        report.he_ops_offline.rotations
    );
    // And no ciphertext–ciphertext multiplications anywhere.
    assert_eq!(report.he_ops_offline.mul_ct + report.he_ops_online.mul_ct, 0);
}
