//! The Combined-HGS protocol (CHGS, Fig. 3d / Fig. 6c): the embedding and
//! the three QKV projections collapse into a single module.
//!
//! The server pre-combines weights in plaintext — `Ā_q = trunc(W_E·W_Q)`,
//! `Ā_k = trunc(W_E·W_K)`, `Ā_v = trunc(W_E·W_V)`, `Ā_e = W_E` — so one
//! client mask `R_c` over the one-hot input and **one** interaction
//! produce the shares of all four linear outputs (`X·Ā + λ̄·2^f`),
//! removing the separate Embed and QKV HGS modules entirely: their
//! offline HE work and their online interactions fold into the Q×K step,
//! exactly the cost migration Table II reports for Primer-FPC.
//!
//! Fixed-point note (documented in DESIGN.md): combining weight matrices
//! changes where truncation happens — `trunc(X·trunc(W_E·W_Q) + λ̄·2^f)`
//! instead of `trunc(trunc(X·W_E + λ·2^f)·W_Q)`. The reference model in
//! `primer-nn` exposes the same combined semantics so the protocol stays
//! bit-exact against its reference.

use crate::hgs::add_plain_matrix;
use crate::packing::{
    encrypt_matrix_with, matmul_out_layout, matmul_weights, Layout, MatmulWeights, Packing,
    PackedMatrix,
};
use crate::wire::{recv_packed, send_packed};
use primer_he::{BatchEncoder, Encryptor, Evaluator, GaloisKeys, HeContext};
use primer_math::{MatZ, Ring};
use primer_net::Transport;
use rand::rngs::StdRng;
use rand::Rng;

/// Client state: one mask, one share per combined projection.
#[derive(Debug, Clone)]
pub struct ChgsClient {
    /// The single input mask `R_c` (rows × in_cols).
    pub rc: MatZ,
    /// Client shares `R_c·Ā_i + R_s,i`, one per projection.
    pub shares: Vec<MatZ>,
}

/// Client offline phase: one encryption of `R_c`, then one decryption
/// per combined projection.
///
/// # Errors
///
/// [`primer_he::HeError::Malformed`] on a corrupt reply flight.
#[allow(clippy::too_many_arguments)]
pub fn client_offline<R: Rng + ?Sized>(
    ring: &Ring,
    packing: Packing,
    rows: usize,
    in_cols: usize,
    out_cols: &[usize],
    ctx: &HeContext,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    transport: &dyn Transport,
    rng: &mut R,
) -> Result<ChgsClient, primer_he::HeError> {
    let rc = MatZ::random(ring, rows, in_cols, rng);
    client_offline_with_mask(packing, rc, out_cols, ctx, encoder, encryptor, transport)
}

/// Client offline with an externally chosen input mask.
///
/// # Errors
///
/// [`primer_he::HeError::Malformed`] on a corrupt reply flight.
pub fn client_offline_with_mask(
    packing: Packing,
    rc: MatZ,
    out_cols: &[usize],
    ctx: &HeContext,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    transport: &dyn Transport,
) -> Result<ChgsClient, primer_he::HeError> {
    let mut rng = encryptor.fork_rng();
    let (pending, request) =
        client_request(packing, rc, out_cols, encoder, encryptor, &mut rng);
    send_packed(transport, &request);
    let replies = pending
        .reply_layouts(encoder.row_size())
        .into_iter()
        .map(|layout| recv_packed(transport, ctx, layout))
        .collect::<Result<Vec<PackedMatrix>, _>>()?;
    Ok(client_finish(pending, &replies, encoder, encryptor))
}

/// A client CHGS instance between its single request flight and the
/// per-projection replies (the pipelined form of the offline phase).
#[derive(Debug)]
pub struct ChgsPending {
    packing: Packing,
    rc: MatZ,
    out_cols: Vec<usize>,
}

impl ChgsPending {
    /// Layouts of the reply flights this instance expects, in wire order.
    pub fn reply_layouts(&self, simd: usize) -> Vec<Layout> {
        let (rows, in_cols) = self.rc.shape();
        self.out_cols
            .iter()
            .map(|&oc| matmul_out_layout(self.packing, rows, in_cols, oc, simd))
            .collect()
    }
}

/// Pipelined client half 1: encrypts the single combined mask into the
/// request flight. Pure local compute with explicit randomness.
pub fn client_request(
    packing: Packing,
    rc: MatZ,
    out_cols: &[usize],
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    rng: &mut StdRng,
) -> (ChgsPending, PackedMatrix) {
    let request = encrypt_matrix_with(packing, &rc, encoder, encryptor, rng);
    (ChgsPending { packing, rc, out_cols: out_cols.to_vec() }, request)
}

/// Pipelined client half 2: decrypts one reply per combined projection.
///
/// # Panics
///
/// Panics if the reply count or layouts mismatch the request.
pub fn client_finish(
    pending: ChgsPending,
    replies: &[PackedMatrix],
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
) -> ChgsClient {
    let layouts = pending.reply_layouts(encoder.row_size());
    assert_eq!(replies.len(), layouts.len(), "CHGS reply count mismatch");
    let shares = replies
        .iter()
        .zip(&layouts)
        .map(|(reply, layout)| {
            assert_eq!(&reply.layout, layout, "CHGS reply layout mismatch");
            crate::packing::decrypt_matrix(reply, encoder, encryptor)
        })
        .collect();
    ChgsClient { rc: pending.rc, shares }
}

/// Pipelined server half: every combined projection's masked product
/// from the one received `Enc(R_c)` and pre-sampled correction masks.
/// Pure local compute, one reply flight per projection in weight order.
/// Each projection's weights are either raw (masks encoded per call) or
/// a Setup-prepared plane (no per-query mask encoding).
///
/// # Panics
///
/// Panics on shape mismatch or missing Galois keys (engine setup bugs).
pub fn server_compute(
    request: &PackedMatrix,
    combined_weights: &[MatmulWeights<'_>],
    rss: &[&MatZ],
    eval: &Evaluator,
    encoder: &BatchEncoder,
    keys: &GaloisKeys,
) -> Vec<PackedMatrix> {
    assert_eq!(combined_weights.len(), rss.len(), "one R_s per projection");
    combined_weights
        .iter()
        .zip(rss)
        .map(|(w, rs)| {
            let product = matmul_weights(request, w, eval, keys).expect("galois keys provisioned");
            add_plain_matrix(&product, rs, eval, encoder)
        })
        .collect()
}

/// Server offline phase against pre-combined weights; returns one `R_s`
/// per projection. The single received `Enc(R_c)` feeds every matmul.
///
/// # Errors
///
/// [`primer_he::HeError::Malformed`] on a corrupt request flight.
#[allow(clippy::too_many_arguments)]
pub fn server_offline<R: Rng + ?Sized>(
    ring: &Ring,
    packing: Packing,
    rows: usize,
    combined_weights: &[&MatZ],
    ctx: &HeContext,
    encoder: &BatchEncoder,
    eval: &Evaluator,
    keys: &GaloisKeys,
    transport: &dyn Transport,
    rng: &mut R,
) -> Result<Vec<MatZ>, primer_he::HeError> {
    let in_cols = combined_weights[0].rows();
    for w in combined_weights {
        assert_eq!(w.rows(), in_cols, "combined weights share the input width");
    }
    let in_layout = Layout::plan(packing, rows, in_cols, encoder.row_size());
    let enc_rc = recv_packed(transport, ctx, in_layout)?;
    let rss: Vec<MatZ> = combined_weights
        .iter()
        .map(|w| MatZ::random(ring, rows, w.cols(), rng))
        .collect();
    let rs_refs: Vec<&MatZ> = rss.iter().collect();
    let weights: Vec<MatmulWeights<'_>> = combined_weights
        .iter()
        .map(|&w| MatmulWeights::Fresh { w, encoder, mode: crate::packing::RotationMode::Output })
        .collect();
    for reply in server_compute(&enc_rc, &weights, &rs_refs, eval, encoder, keys) {
        send_packed(transport, &reply);
    }
    Ok(rss)
}

/// Server online share for projection `i`: `U·Ā_i − R_s,i` plus the
/// public positional term `λ̄_i·2^f` (added to the server's share).
pub fn server_online(
    ring: &Ring,
    u: &MatZ,
    combined_w: &MatZ,
    rs: &MatZ,
    lambda_scaled: &MatZ,
) -> MatZ {
    u.matmul(ring, combined_w).sub(ring, rs).add(ring, lambda_scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_he::{HeParams, KeyGenerator};
    use primer_math::rng::seeded;
    use primer_net::run_two_party;
    use std::sync::Arc;

    /// One interaction, four products: every projection's shares must
    /// reconstruct `X·Ā_i + λ̄_i·2^f`.
    #[test]
    fn chgs_reconstructs_all_projections() {
        let ctx = HeContext::new(HeParams::toy());
        let ring = Ring::new(ctx.params().t());
        let mut rng = seeded(260);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key().clone();
        let simd = ctx.params().row_size();
        let keys = Arc::new(kg.galois_keys_pow2(&[1, 4, simd - 1, simd - 4], false, &mut rng));

        let (rows, in_cols) = (4usize, 16usize);
        let out_cols = vec![6usize, 6, 6, 16];
        let x = MatZ::from_fn(rows, in_cols, |i, j| u64::from(j == (i * 3) % in_cols) * 32);
        let ws: Vec<MatZ> = out_cols
            .iter()
            .enumerate()
            .map(|(idx, &oc)| {
                MatZ::from_fn(in_cols, oc, |i, j| ((i * 3 + j * 5 + idx) % 25) as u64)
            })
            .collect();
        let lambdas: Vec<MatZ> = out_cols
            .iter()
            .map(|&oc| MatZ::from_fn(rows, oc, |i, j| ((i + j) % 10) as u64))
            .collect();

        let (ctx_c, ctx_s) = (ctx.clone(), ctx.clone());
        let (x_c, out_cols_c) = (x.clone(), out_cols.clone());
        let (ws_s, lambdas_s) = (ws.clone(), lambdas.clone());
        let keys_s = Arc::clone(&keys);

        let (client_shares, server_shares, meter) = run_two_party(
            move |t| {
                let encoder = BatchEncoder::new(&ctx_c);
                let encryptor = Encryptor::new(&ctx_c, sk, 261);
                let ring = Ring::new(ctx_c.params().t());
                let pre = client_offline(
                    &ring,
                    Packing::TokensFirst,
                    rows,
                    in_cols,
                    &out_cols_c,
                    &ctx_c,
                    &encoder,
                    &encryptor,
                    &t,
                    &mut seeded(262),
                )
                .expect("in-process flight");
                let u = x_c.sub(&ring, &pre.rc);
                crate::wire::send_matrix(&t, &u);
                pre.shares
            },
            move |t| {
                let encoder = BatchEncoder::new(&ctx_s);
                let eval = Evaluator::new(&ctx_s);
                let ring = Ring::new(ctx_s.params().t());
                let refs: Vec<&MatZ> = ws_s.iter().collect();
                let rss = server_offline(
                    &ring,
                    Packing::TokensFirst,
                    rows,
                    &refs,
                    &ctx_s,
                    &encoder,
                    &eval,
                    &keys_s,
                    &t,
                    &mut seeded(263),
                )
                .expect("in-process flight");
                let u = crate::wire::recv_matrix(&t).expect("in-process flight");
                ws_s.iter()
                    .zip(rss.iter().zip(&lambdas_s))
                    .map(|(w, (rs, lam))| server_online(&ring, &u, w, rs, lam))
                    .collect::<Vec<_>>()
            },
        );
        for i in 0..out_cols.len() {
            let got = client_shares[i].add(&ring, &server_shares[i]);
            let want = x.matmul(&ring, &ws[i]).add(&ring, &lambdas[i]);
            assert_eq!(got, want, "projection {i}");
        }
        // Exactly one client→server encrypted flight (plus U) — the
        // merged-interaction property.
        assert_eq!(meter.c2s.messages(), 2);
    }
}
