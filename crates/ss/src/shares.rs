//! Additive secret sharing over `Z_t`.

use primer_math::{MatZ, Ring};
use rand::Rng;

/// Splits a matrix into two additive shares: `x = s0 + s1 (mod t)`.
pub fn share_matrix<R: Rng + ?Sized>(ring: &Ring, x: &MatZ, rng: &mut R) -> (MatZ, MatZ) {
    let mask = MatZ::random(ring, x.rows(), x.cols(), rng);
    let other = x.sub(ring, &mask);
    (mask, other)
}

/// Reconstructs `s0 + s1 (mod t)`.
pub fn open_matrix(ring: &Ring, s0: &MatZ, s1: &MatZ) -> MatZ {
    s0.add(ring, s1)
}

/// Splits a vector of ring elements into two additive shares.
pub fn share_vec<R: Rng + ?Sized>(ring: &Ring, xs: &[u64], rng: &mut R) -> (Vec<u64>, Vec<u64>) {
    let mask: Vec<u64> = xs.iter().map(|_| ring.random(rng)).collect();
    let other: Vec<u64> = xs.iter().zip(&mask).map(|(&x, &m)| ring.sub(x, m)).collect();
    (mask, other)
}

/// Reconstructs a shared vector.
pub fn open_vec(ring: &Ring, s0: &[u64], s1: &[u64]) -> Vec<u64> {
    assert_eq!(s0.len(), s1.len(), "share length mismatch");
    s0.iter().zip(s1).map(|(&a, &b)| ring.add(a, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_math::rng::seeded;

    #[test]
    fn matrix_share_open_roundtrip() {
        let ring = Ring::new(65537);
        let mut rng = seeded(70);
        let x = MatZ::random(&ring, 3, 4, &mut rng);
        let (s0, s1) = share_matrix(&ring, &x, &mut rng);
        assert_ne!(s0, x, "share must not reveal the secret");
        assert_eq!(open_matrix(&ring, &s0, &s1), x);
    }

    #[test]
    fn vec_share_open_roundtrip() {
        let ring = Ring::new(97);
        let mut rng = seeded(71);
        let xs = vec![1u64, 50, 96, 0];
        let (a, b) = share_vec(&ring, &xs, &mut rng);
        assert_eq!(open_vec(&ring, &a, &b), xs);
    }

    #[test]
    fn shares_are_uniformly_masked() {
        // The first share is independent of the secret (it *is* the mask):
        // sharing two different secrets with the same RNG stream yields
        // identical first shares.
        let ring = Ring::new(101);
        let x1 = MatZ::filled(2, 2, 7);
        let x2 = MatZ::filled(2, 2, 55);
        let (m1, _) = share_matrix(&ring, &x1, &mut seeded(72));
        let (m2, _) = share_matrix(&ring, &x2, &mut seeded(72));
        assert_eq!(m1, m2);
    }
}
