//! Regenerates **Figure 2**: latency (offline/online stacked) and
//! accuracy of THE-X, GCFormer, Primer-base, Primer-F on BERT-base,
//! as a CSV series.
//!
//! Run: `cargo run --release -p primer-bench --bin fig2 [--measure]`

use primer_bench::measure_accuracy;
use primer_core::{gcformer_latency, thex_latency, CostModel, OpCosts, ProtocolVariant};
use primer_net::NetworkModel;
use primer_nn::{Task, TransformerConfig};

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");
    let costs = if measure { OpCosts::measure() } else { OpCosts::paper_defaults() };
    let model = CostModel::paper();
    let net = NetworkModel::paper_lan();
    let cfg = TransformerConfig::bert_base();
    let acc = measure_accuracy(42, 60);
    let mnli = acc.iter().find(|(t, _)| *t == Task::MnliM).expect("MNLI row").1;

    println!("# Figure 2 — latency & accuracy series (CSV)");
    println!("method,offline_s,online_s,accuracy_pct");
    let thex = thex_latency(&cfg, &costs, &net, model.simd);
    println!("THE-X,0.0,{:.1},{:.1}", thex, mnli.poly_approx);
    let (gc_off, gc_on) = gcformer_latency(&cfg, &costs, &net, &model.gates, 15.0);
    println!("GCFormer,{:.1},{:.1},{:.1}", gc_off, gc_on, mnli.float_exact);
    for variant in [ProtocolVariant::Base, ProtocolVariant::F] {
        let (off, on) = model.variant_latency(&cfg, variant, &costs, &net);
        println!("{},{:.1},{:.1},{:.1}", variant.name(), off, on, mnli.fixed_point);
    }
}
