//! Observability neutrality: tracing must be a pure side channel.
//!
//! For every protocol variant, an end-to-end multi-query session run
//! with `PRIMER_TRACE` enabled must be **bit-identical** — logits AND
//! every frame either party puts on the wire — to the same session run
//! with tracing disabled. This is the DESIGN.md §13 contract: spans
//! read the clock and write a file; they never touch protocol state,
//! randomness, or the wire schedule.
//!
//! Everything runs in ONE `#[test]` because the trace sink is
//! process-global state (like `PRIMER_THREADS` in
//! `thread_determinism.rs`); integration-test files get their own
//! process, so no other suite observes the toggling.

use primer_core::{
    build_session_circuits, ClientSession, GcMode, ProtocolVariant, ServerSession, SystemConfig,
};
use primer_math::rng::seeded;
use primer_net::{MemTransport, RecordingTransport};
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};
use std::sync::Arc;

/// Per-query logit rows plus both parties' full wire transcripts
/// (client frames, server frames) from one session run.
type SessionTrace = (Vec<Vec<i64>>, Vec<Vec<u8>>, Vec<Vec<u8>>);

/// One complete session (setup + pooled refills + queries) over
/// transcript-recording in-memory transports.
fn run_session(variant: ProtocolVariant) -> SessionTrace {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("test profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(1300));
    let fixed = Arc::new(FixedTransformer::quantize(&cfg, &weights, sys.pipeline));
    let circuits = Arc::new(build_session_circuits(&sys, variant, &fixed));
    let queries = [vec![3usize, 17, 0, 29], vec![5, 5, 30, 1], vec![9, 2, 31, 12]];
    let (total, pool) = (queries.len(), 2usize);

    let (ct, st, _meter) = MemTransport::pair();
    let (ct, client_transcript) = RecordingTransport::new(ct);
    let (st, server_transcript) = RecordingTransport::new(st);

    let (sys_s, fixed_s, circuits_s) = (sys.clone(), Arc::clone(&fixed), Arc::clone(&circuits));
    let server = std::thread::spawn(move || {
        let mut session = ServerSession::setup(
            sys_s, variant, GcMode::Simulated, fixed_s, circuits_s, 1301, total, pool, &st,
        )
        .expect("in-process key transfer");
        for _ in 0..total {
            session.serve_one(&st).expect("in-process flight");
        }
    });

    let mut session = ClientSession::setup(
        sys, variant, GcMode::Simulated, fixed, circuits, 1301, total, pool, &ct,
    );
    let logits: Vec<Vec<i64>> = queries
        .iter()
        .map(|q| session.infer(q, &ct).expect("in-process flight"))
        .collect();
    server.join().expect("server thread");
    (logits, client_transcript.frames(), server_transcript.frames())
}

fn trace_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("primer_trace_neutrality_{tag}_{}.jsonl", std::process::id()))
}

#[test]
fn tracing_never_changes_logits_or_wire_bytes() {
    for variant in ProtocolVariant::all() {
        // Baseline: tracing explicitly off.
        primer_obs::trace::set_sink(None).expect("disable tracing");
        let (logits_off, client_off, server_off) = run_session(variant);
        assert!(!client_off.is_empty() && !server_off.is_empty());

        // Same session with the sink live.
        let path = trace_path(variant.name());
        primer_obs::trace::set_sink(Some(&path)).expect("enable tracing");
        let (logits_on, client_on, server_on) = run_session(variant);
        primer_obs::trace::set_sink(None).expect("disable tracing");

        assert_eq!(
            logits_on,
            logits_off,
            "{}: logits changed under tracing",
            variant.name()
        );
        assert_eq!(
            client_on,
            client_off,
            "{}: client wire bytes changed under tracing",
            variant.name()
        );
        assert_eq!(
            server_on,
            server_off,
            "{}: server wire bytes changed under tracing",
            variant.name()
        );

        // The trace itself is non-trivial, well-formed JSONL covering
        // the span taxonomy's phase roots.
        let text = std::fs::read_to_string(&path).expect("trace file");
        let _ = std::fs::remove_file(&path);
        let records = primer_obs::trace::validate_jsonl(&text)
            .unwrap_or_else(|e| panic!("{}: trace JSONL invalid: {e}", variant.name()));
        assert!(records > 0, "{}: tracing was on but wrote no spans", variant.name());
        for span in ["session.setup", "offline.refill", "online.infer"] {
            assert!(
                text.contains(&format!("\"name\":\"{span}\"")),
                "{}: span {span:?} missing from trace",
                variant.name()
            );
        }
    }

    // Disabled-path micro-check: with the sink off, a span is two
    // relaxed loads — no sink file appears and the field closure is
    // never evaluated.
    let evaluated = std::cell::Cell::new(false);
    {
        let _g = primer_obs::trace::Span::enter("neutrality.check", || {
            evaluated.set(true);
            vec![("k", "v".to_string())]
        });
    }
    assert!(!evaluated.get(), "disabled span must not evaluate its fields");
}
