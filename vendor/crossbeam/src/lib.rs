//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides only `crossbeam::channel::{unbounded, Sender, Receiver}` —
//! the subset `primer_net` uses. Both endpoints are `Clone + Send +
//! Sync`, like the real crossbeam MPMC channel, implemented over a
//! mutex-guarded queue with a condvar (throughput is not a concern: the
//! transport layer batches protocol messages into large frames).

pub mod channel;
