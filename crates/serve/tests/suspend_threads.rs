//! A suspended session costs zero threads: once the image is parked on
//! disk, the worker, producer, and per-connection reader threads are
//! all gone and the process is back to its idle-serving baseline.
//!
//! This file holds exactly one test: thread counts come from
//! `/proc/self/task` and are process-wide, so no other test may run in
//! this binary concurrently.

mod common;

use common::start_server_with;
use primer_core::ProtocolVariant;
use primer_nn::TransformerConfig;
use primer_serve::ClientBuilder;
use std::time::{Duration, Instant};

fn thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

#[test]
fn suspended_sessions_cost_zero_threads() {
    let model = TransformerConfig::test_tiny();
    let dir = std::env::temp_dir().join(format!("primer-suspend-{}-threads", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create suspend dir");
    let (addr, server) = start_server_with(model, 2, {
        let dir = dir.clone();
        move |c| c.suspend_dir = Some(dir)
    });

    // A full warmup session first, so every lazily-spawned pool (HE
    // thread pool, …) is already in the baseline count.
    ClientBuilder::new(ProtocolVariant::Fpc)
        .run(addr, &[vec![3usize, 1, 4, 1]])
        .expect("warmup session");
    std::thread::sleep(Duration::from_millis(300));
    let baseline = thread_count();

    let mut handle = ClientBuilder::new(ProtocolVariant::Fpc).open(addr, 2).expect("open");
    handle.infer(&[3usize, 1, 4, 1]).expect("query 0");
    let parked = handle.suspend().expect("suspend");

    // Worker, offline producers, and connection readers unwind
    // asynchronously after the ack; poll until the process settles back
    // to (at most) its pre-session thread count.
    if let Some(before) = baseline {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let now = thread_count().expect("/proc/self/task");
            if now <= before {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "suspended session still holds {} extra threads after 10s",
                now - before
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // The parked session still works after costing nothing while idle.
    let mut handle = parked.resume(addr).expect("resume");
    handle.infer(&[2usize, 7, 1, 8]).expect("query 1");
    handle.finish().expect("finish");
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions().len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
