//! Shared harness for the serving integration tests.

use primer_core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer_math::rng::seeded;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};
use primer_serve::{ServerBuilder, ServerConfig, ServerStats};
use std::net::SocketAddr;
use std::thread::JoinHandle;

/// The weight seed every test server announces (clients rebuild the
/// same model from it, and so do the in-process reference engines).
pub const WEIGHT_SEED: u64 = 7;

/// Starts a test-profile server for `sessions` **concluded** sessions
/// on an OS port.
#[allow(dead_code)]
pub fn start_server(
    model: TransformerConfig,
    sessions: usize,
    max_workers: usize,
    pool: usize,
) -> (SocketAddr, JoinHandle<ServerStats>) {
    start_server_with(model, sessions, move |c| {
        c.max_workers = max_workers;
        c.pool = pool;
    })
}

/// [`start_server`] with full config control (shed policy, suspend
/// directory, plane-cache bound, …). Each test binary compiles its own
/// copy of this module, so suites that only use the simple form don't
/// reference this one.
#[allow(dead_code)]
pub fn start_server_with(
    model: TransformerConfig,
    sessions: usize,
    tweak: impl FnOnce(&mut ServerConfig),
) -> (SocketAddr, JoinHandle<ServerStats>) {
    let mut config = ServerConfig::test_default(model);
    config.weight_seed = WEIGHT_SEED;
    tweak(&mut config);
    let server = ServerBuilder::from_config(config).bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve_sessions(sessions));
    (addr, handle)
}

/// The in-process reference engine for the same model the test servers
/// serve: bit-identical logits are the acceptance bar for the TCP path.
/// (Each test binary compiles its own copy of this module; suites that
/// only exercise the admin surface don't call it.)
#[allow(dead_code)]
pub fn reference_engine(
    model: &TransformerConfig,
    variant: ProtocolVariant,
    mode: GcMode,
) -> Engine {
    let sys = SystemConfig::test_profile(model).expect("profile");
    let weights = TransformerWeights::random(model, &mut seeded(WEIGHT_SEED));
    let fixed = FixedTransformer::quantize(model, &weights, sys.pipeline);
    // The engine seed drives masks/keys only; the protocol reconstructs
    // exact values regardless, so any seed yields the same logits.
    Engine::new(sys, variant, fixed, mode, 0xe16)
}
