//! Regenerates **Table III**: the five BERT models × accuracy (5 tasks),
//! offline/online latency, throughput, and message size.
//!
//! Run: `cargo run --release -p primer-bench --bin table3 [--measure]`

use primer_bench::{fmt_gb, fmt_s, measure_accuracy};
use primer_core::{CostModel, OpCosts, ProtocolVariant};
use primer_net::NetworkModel;
use primer_nn::TransformerConfig;

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");
    let costs = if measure { OpCosts::measure() } else { OpCosts::paper_defaults() };
    let model = CostModel::paper();
    let net = NetworkModel::paper_lan();

    // Accuracy columns: measured once on the scaled teacher tasks; the
    // per-model spread follows capacity (documented substitution).
    let acc = measure_accuracy(42, 60);

    println!("# Table III — Primer (FPC) across BERT models");
    println!(
        "{:<12} {:>2} {:>5} {:>3} {:>3} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>10} {:>10} {:>9} {:>8}",
        "Model", "N", "d", "H", "n", "MNLI-m", "MRPC", "SST-2", "SQuAD1", "SQuAD2",
        "offline(s)", "online(s)", "tokens/s", "Msg(GB)"
    );
    for cfg in TransformerConfig::table3_models() {
        let (off, on) = model.variant_latency(&cfg, ProtocolVariant::Fpc, &costs, &net);
        let bytes = model.variant_message_bytes(&cfg, ProtocolVariant::Fpc, &costs);
        let throughput = cfg.n_tokens as f64 / on;
        print!(
            "{:<12} {:>2} {:>5} {:>3} {:>3} |",
            cfg.name, cfg.n_blocks, cfg.d_model, cfg.n_heads, cfg.n_tokens
        );
        for (_, r) in &acc {
            print!(" {:>7.1}", r.fixed_point);
        }
        println!(
            " | {:>10} {:>10} {:>9.2} {:>8}",
            fmt_s(off),
            fmt_s(on),
            throughput,
            fmt_gb(bytes)
        );
    }
    println!();
    println!("# accuracy columns are the measured fixed-point teacher-agreement of the");
    println!("# scaled tasks (identical across rows by construction — the paper's per-model");
    println!("# spread needs trained checkpoints; see EXPERIMENTS.md for the mapping)");
}
