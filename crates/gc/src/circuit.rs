//! Boolean circuit intermediate representation.
//!
//! Gates operate on wire ids; inputs are split between the garbler's and
//! the evaluator's words. The representation keeps only {XOR, AND, INV}:
//! XOR and INV are free under free-XOR garbling, AND costs two
//! ciphertexts (half-gates).

/// Wire identifier.
pub type WireId = u32;

/// A gate: `out` is implicit (gates are stored in topological order and
/// gate `k` drives wire `first_gate_wire + k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// `out = a ⊕ b` (free).
    Xor(WireId, WireId),
    /// `out = a ∧ b` (2 ciphertexts).
    And(WireId, WireId),
    /// `out = ¬a` (free).
    Inv(WireId),
}

/// An output bit: either a wire or a constant folded at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutBit {
    /// Output driven by a wire.
    Wire(WireId),
    /// Output is a build-time constant.
    Const(bool),
}

/// A complete boolean circuit.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Number of garbler input wires (wires `0..garbler_inputs`).
    pub garbler_inputs: u32,
    /// Number of evaluator input wires (following the garbler's).
    pub evaluator_inputs: u32,
    /// Gates in topological order.
    pub gates: Vec<Gate>,
    /// Output bits.
    pub outputs: Vec<OutBit>,
}

impl Circuit {
    /// Wire id of the first gate-driven wire.
    #[inline]
    pub fn first_gate_wire(&self) -> u32 {
        self.garbler_inputs + self.evaluator_inputs
    }

    /// Total number of wires.
    #[inline]
    pub fn num_wires(&self) -> usize {
        self.first_gate_wire() as usize + self.gates.len()
    }

    /// Number of AND gates (the garbling cost driver).
    pub fn and_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::And(_, _))).count()
    }

    /// Number of XOR gates (free).
    pub fn xor_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::Xor(_, _))).count()
    }

    /// Garbled-table wire size: 2 ciphertexts of 16 bytes per AND gate.
    pub fn garbled_size_bytes(&self) -> usize {
        self.and_count() * 32
    }

    /// Evaluates the circuit in the clear (test oracle for garbling and
    /// for checking builder gadgets against reference algorithms).
    ///
    /// # Panics
    ///
    /// Panics if the input slices have the wrong lengths.
    pub fn eval_plain(&self, garbler_in: &[bool], evaluator_in: &[bool]) -> Vec<bool> {
        assert_eq!(garbler_in.len(), self.garbler_inputs as usize, "garbler input len");
        assert_eq!(evaluator_in.len(), self.evaluator_inputs as usize, "evaluator input len");
        let mut wires = Vec::with_capacity(self.num_wires());
        wires.extend_from_slice(garbler_in);
        wires.extend_from_slice(evaluator_in);
        for g in &self.gates {
            let v = match *g {
                Gate::Xor(a, b) => wires[a as usize] ^ wires[b as usize],
                Gate::And(a, b) => wires[a as usize] & wires[b as usize],
                Gate::Inv(a) => !wires[a as usize],
            };
            wires.push(v);
        }
        self.outputs
            .iter()
            .map(|o| match *o {
                OutBit::Wire(w) => wires[w as usize],
                OutBit::Const(c) => c,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built 1-bit adder: inputs a (garbler), b (evaluator);
    /// outputs (sum, carry).
    fn adder() -> Circuit {
        Circuit {
            garbler_inputs: 1,
            evaluator_inputs: 1,
            gates: vec![Gate::Xor(0, 1), Gate::And(0, 1)],
            outputs: vec![OutBit::Wire(2), OutBit::Wire(3)],
        }
    }

    #[test]
    fn truth_table() {
        let c = adder();
        assert_eq!(c.eval_plain(&[false], &[false]), vec![false, false]);
        assert_eq!(c.eval_plain(&[true], &[false]), vec![true, false]);
        assert_eq!(c.eval_plain(&[false], &[true]), vec![true, false]);
        assert_eq!(c.eval_plain(&[true], &[true]), vec![false, true]);
    }

    #[test]
    fn counts() {
        let c = adder();
        assert_eq!(c.and_count(), 1);
        assert_eq!(c.xor_count(), 1);
        assert_eq!(c.garbled_size_bytes(), 32);
    }
}
