//! Random-teacher transformer weights.
//!
//! We cannot fine-tune real BERT checkpoints in this environment, so
//! accuracy experiments use the *random-teacher* substitution documented
//! in DESIGN.md: a randomly initialized transformer defines ground-truth
//! labels, and every approximation's "accuracy" is its agreement with
//! that teacher.

use crate::config::TransformerConfig;
use primer_math::MatF;
use rand::Rng;

/// Weights of one encoder block.
#[derive(Debug, Clone)]
pub struct BlockWeights {
    /// Query projection (d × d).
    pub wq: MatF,
    /// Key projection (d × d).
    pub wk: MatF,
    /// Value projection (d × d).
    pub wv: MatF,
    /// Output projection (d × d).
    pub wo: MatF,
    /// LayerNorm 1 scale (d).
    pub ln1_gamma: Vec<f64>,
    /// LayerNorm 1 shift (d).
    pub ln1_beta: Vec<f64>,
    /// Feed-forward expansion (d × d_ff).
    pub w1: MatF,
    /// Feed-forward contraction (d_ff × d).
    pub w2: MatF,
    /// LayerNorm 2 scale (d).
    pub ln2_gamma: Vec<f64>,
    /// LayerNorm 2 shift (d).
    pub ln2_beta: Vec<f64>,
}

/// Full model weights.
#[derive(Debug, Clone)]
pub struct TransformerWeights {
    /// Word embedding (vocab × d).
    pub we: MatF,
    /// Positional embedding λ (n × d).
    pub pos: MatF,
    /// Encoder blocks.
    pub blocks: Vec<BlockWeights>,
    /// Classification head (d × classes).
    pub classifier: MatF,
    /// Span head for SQuAD-style tasks (d × 2: start/end scores).
    pub span_head: MatF,
}

impl TransformerWeights {
    /// Samples a random teacher with fan-in-scaled uniform init.
    pub fn random<R: Rng + ?Sized>(cfg: &TransformerConfig, rng: &mut R) -> Self {
        let d = cfg.d_model;
        let a_d = (3.0 / d as f64).sqrt();
        let a_ff = (3.0 / cfg.d_ff as f64).sqrt();
        let mat = |r: usize, c: usize, a: f64, rng: &mut R| MatF::random_uniform(r, c, a, rng);
        let blocks = (0..cfg.n_blocks)
            .map(|_| BlockWeights {
                wq: mat(d, d, a_d, rng),
                wk: mat(d, d, a_d, rng),
                wv: mat(d, d, a_d, rng),
                wo: mat(d, d, a_d, rng),
                ln1_gamma: (0..d).map(|_| 1.0 + rng.gen_range(-0.1..0.1)).collect(),
                ln1_beta: (0..d).map(|_| rng.gen_range(-0.1..0.1)).collect(),
                w1: mat(d, cfg.d_ff, a_d, rng),
                w2: mat(cfg.d_ff, d, a_ff, rng),
                ln2_gamma: (0..d).map(|_| 1.0 + rng.gen_range(-0.1..0.1)).collect(),
                ln2_beta: (0..d).map(|_| rng.gen_range(-0.1..0.1)).collect(),
            })
            .collect();
        Self {
            we: mat(cfg.vocab, d, 1.0, rng),
            pos: mat(cfg.n_tokens, d, 0.3, rng),
            blocks,
            classifier: mat(d, cfg.n_classes, a_d, rng),
            span_head: mat(d, 2, a_d, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_math::rng::seeded;

    #[test]
    fn shapes_match_config() {
        let cfg = TransformerConfig::test_small();
        let w = TransformerWeights::random(&cfg, &mut seeded(140));
        assert_eq!(w.we.shape(), (cfg.vocab, cfg.d_model));
        assert_eq!(w.pos.shape(), (cfg.n_tokens, cfg.d_model));
        assert_eq!(w.blocks.len(), cfg.n_blocks);
        assert_eq!(w.blocks[0].w1.shape(), (cfg.d_model, cfg.d_ff));
        assert_eq!(w.blocks[0].w2.shape(), (cfg.d_ff, cfg.d_model));
        assert_eq!(w.classifier.shape(), (cfg.d_model, cfg.n_classes));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TransformerConfig::test_tiny();
        let a = TransformerWeights::random(&cfg, &mut seeded(141));
        let b = TransformerWeights::random(&cfg, &mut seeded(141));
        assert_eq!(a.we, b.we);
    }
}
