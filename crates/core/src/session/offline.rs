//! The Offline phase: input-independent per-query precomputation,
//! produced into pools ahead of the queries that consume it.
//!
//! One **bundle** holds everything a single inference consumes beyond
//! the session state: the client's masks and HGS/FHGS/CHGS shares, the
//! server's correction masks and encrypted FHGS triples, and the garbled
//! sessions for every GC step. Bundles are *moved* out of an
//! [`super::OfflinePool`] — a consumed bundle (and with it its one-time masks)
//! can never be silently reused.

use super::client::ClientCore;
use super::column_slice;
use super::server::ServerCore;
use crate::chgs;
use crate::fhgs::{self, FhgsDims};
use crate::gcmod::{GcClientStep, GcServerStep};
use crate::hgs;
use crate::stats::{StepBreakdown, StepCategory};
use primer_he::{Evaluator, OpCounts};
use primer_math::MatZ;
use primer_net::{MeteredTransport, Transport, TrafficSnapshot};
use rand::rngs::StdRng;
use std::time::Instant;

/// Client-side masks for one block.
pub(crate) struct BlockMasks {
    pub q: MatZ,
    pub k: MatZ,
    pub v: MatZ,
    pub probs: Vec<MatZ>,
    pub av: MatZ,
    pub ln1: MatZ,
    pub gelu: MatZ,
    pub ln2: MatZ,
}

/// Client-side per-block precomputed protocol state.
pub(crate) struct BlockClientPre {
    pub qkv_shares: Option<[MatZ; 3]>,
    pub score_pre: Vec<fhgs::FhgsClient>,
    pub av_pre: Vec<fhgs::FhgsClient>,
    pub wo: hgs::HgsClient,
    pub w1: hgs::HgsClient,
    pub w2: hgs::HgsClient,
}

/// Everything the client's online phase consumes for one query.
pub(crate) struct ClientBundle {
    pub m_embed_in: MatZ,
    pub m_x1: MatZ,
    pub blocks: Vec<BlockMasks>,
    pub embed_shares: Vec<MatZ>,
    pub bclients: Vec<BlockClientPre>,
    pub cls: hgs::HgsClient,
    pub gc: Vec<GcClientStep>,
}

/// Server-side per-block precomputed protocol state.
pub(crate) struct BlockServerPre {
    pub qkv_rs: Option<[MatZ; 3]>,
    pub score_pre: Vec<fhgs::FhgsServer>,
    pub av_pre: Vec<fhgs::FhgsServer>,
    pub wo_rs: MatZ,
    pub w1_rs: MatZ,
    pub w2_rs: MatZ,
}

/// Everything the server's online phase consumes for one query, plus
/// the cost attribution of producing it.
pub(crate) struct ServerBundle {
    pub embed_rs: Vec<MatZ>,
    pub bservers: Vec<BlockServerPre>,
    pub cls_rs: MatZ,
    pub gc: Vec<GcServerStep>,
    /// Offline-phase costs of producing this bundle (per category).
    pub steps: StepBreakdown,
    /// HE ops spent producing this bundle.
    pub he: OpCounts,
    /// Traffic spent producing this bundle.
    pub traffic: TrafficSnapshot,
}

/// Server-side per-step wall-clock + traffic attribution.
pub(crate) struct StepTimer<'a> {
    transport: &'a dyn MeteredTransport,
    mark: Instant,
    last: TrafficSnapshot,
}

impl<'a> StepTimer<'a> {
    /// Resumes from the previous phase's final snapshot rather than a
    /// fresh meter capture. The client pipelines its sends, so a fresh
    /// capture could already contain the client's next flights — bytes
    /// that would then be attributed to *no* phase. Chaining snapshots
    /// keeps the union of all phase deltas equal to the total wire
    /// traffic exactly (per-step attribution stays best-effort).
    pub fn resume(transport: &'a dyn MeteredTransport, last: TrafficSnapshot) -> Self {
        Self { transport, mark: Instant::now(), last }
    }

    /// The meter snapshot at the last absorb (phase boundary).
    pub fn snapshot(&self) -> TrafficSnapshot {
        self.last
    }

    pub fn absorb(&mut self, steps: &mut StepBreakdown, cat: StepCategory, offline: bool) {
        let elapsed = self.mark.elapsed();
        let now = TrafficSnapshot::capture(self.transport.meter());
        let delta = now.since(&self.last);
        self.mark = Instant::now();
        self.last = now;
        let entry = steps.entry(cat);
        let slot = if offline { entry.0 } else { entry.1 };
        slot.absorb(elapsed, delta);
    }
}

/// Produces one client offline bundle: samples every mask, runs the
/// client half of the HGS/FHGS/CHGS offline protocols against them, and
/// garbles (or simulates) every GC step in consumption order.
pub(crate) fn produce_client_bundle(
    core: &ClientCore,
    rng: &mut StdRng,
    t: &dyn Transport,
) -> ClientBundle {
    let cfg = core.sys.model.clone();
    let ring = core.sys.ring();
    let packing = core.variant.packing();
    let (n, d, dff, heads) = (cfg.n_tokens, cfg.d_model, cfg.d_ff, cfg.n_heads);
    let dh = cfg.d_head();

    // Masks.
    let m_embed_in = MatZ::random(&ring, n, cfg.vocab, rng);
    let m_x1 = MatZ::random(&ring, n, d, rng); // block-0 input / residual
    let blocks: Vec<BlockMasks> = (0..cfg.n_blocks)
        .map(|_| BlockMasks {
            q: MatZ::random(&ring, n, d, rng),
            k: MatZ::random(&ring, n, d, rng),
            v: MatZ::random(&ring, n, d, rng),
            probs: (0..heads).map(|_| MatZ::random(&ring, n, n, rng)).collect(),
            av: MatZ::random(&ring, n, d, rng),
            ln1: MatZ::random(&ring, n, d, rng),
            gelu: MatZ::random(&ring, n, dff, rng),
            ln2: MatZ::random(&ring, n, d, rng),
        })
        .collect();

    // Embed / combined module.
    let (embed_shares, qkv_first): (Vec<MatZ>, bool) = if core.variant.combined() {
        let pre = chgs::client_offline_with_mask(
            packing,
            m_embed_in.clone(),
            &[d, d, d, d],
            &core.sys.he,
            &core.encoder,
            &core.encryptor,
            t,
        );
        (pre.shares, false)
    } else {
        let h = hgs::client_offline_with_mask(
            &ring,
            packing,
            m_embed_in.clone(),
            d,
            &core.sys.he,
            &core.encoder,
            &core.encryptor,
            t,
        );
        (vec![h.share], true)
    };

    // Per-block linear offline.
    let block_inputs: Vec<MatZ> = (0..cfg.n_blocks)
        .map(|b| if b == 0 { m_x1.clone() } else { blocks[b - 1].ln2.clone() })
        .collect();
    let bclients: Vec<BlockClientPre> = (0..cfg.n_blocks)
        .map(|b| {
            let bm = &blocks[b];
            let qkv_shares = if b > 0 || qkv_first {
                let mut shares = Vec::new();
                for _ in 0..3 {
                    let h = hgs::client_offline_with_mask(
                        &ring,
                        packing,
                        block_inputs[b].clone(),
                        d,
                        &core.sys.he,
                        &core.encoder,
                        &core.encryptor,
                        t,
                    );
                    shares.push(h.share);
                }
                Some([shares.remove(0), shares.remove(0), shares.remove(0)])
            } else {
                None
            };
            let score_pre = (0..heads)
                .map(|h| {
                    fhgs::client_offline_with_masks(
                        &ring,
                        packing,
                        column_slice(&bm.q, h * dh, dh),
                        column_slice(&bm.k, h * dh, dh).transpose(),
                        &core.encoder,
                        &core.encryptor,
                        t,
                    )
                })
                .collect();
            let av_pre = (0..heads)
                .map(|h| {
                    fhgs::client_offline_with_masks(
                        &ring,
                        packing,
                        bm.probs[h].clone(),
                        column_slice(&bm.v, h * dh, dh),
                        &core.encoder,
                        &core.encryptor,
                        t,
                    )
                })
                .collect();
            let wo = hgs::client_offline_with_mask(
                &ring,
                packing,
                bm.av.clone(),
                d,
                &core.sys.he,
                &core.encoder,
                &core.encryptor,
                t,
            );
            let w1 = hgs::client_offline_with_mask(
                &ring,
                packing,
                bm.ln1.clone(),
                dff,
                &core.sys.he,
                &core.encoder,
                &core.encryptor,
                t,
            );
            let w2 = hgs::client_offline_with_mask(
                &ring,
                packing,
                bm.gelu.clone(),
                d,
                &core.sys.he,
                &core.encoder,
                &core.encryptor,
                t,
            );
            BlockClientPre { qkv_shares, score_pre, av_pre, wo, w1, w2 }
        })
        .collect();
    // Classifier (row 0 of the last LN2 mask).
    let last_mask = &blocks[cfg.n_blocks - 1].ln2;
    let cls_mask = MatZ::from_fn(1, d, |_, j| last_mask[(0, j)]);
    let cls = hgs::client_offline_with_mask(
        &ring,
        packing,
        cls_mask,
        cfg.n_classes,
        &core.sys.he,
        &core.encoder,
        &core.encryptor,
        t,
    );

    // GC offline sessions (consumption order).
    let gc: Vec<GcClientStep> = core
        .circuits
        .iter()
        .map(|c| GcClientStep::offline(c, core.mode, &core.group, t, rng))
        .collect();

    ClientBundle { m_embed_in, m_x1, blocks, embed_shares, bclients, cls, gc }
}

/// Produces one server offline bundle, attributing wall-clock and
/// traffic per Table II category as it goes.
pub(crate) fn produce_server_bundle(
    core: &ServerCore,
    eval: &Evaluator,
    rng: &mut StdRng,
    t: &dyn MeteredTransport,
    wire_mark: &mut TrafficSnapshot,
) -> ServerBundle {
    let cfg = core.sys.model.clone();
    let ring = core.sys.ring();
    let packing = core.variant.packing();
    let (n, dh, heads) = (cfg.n_tokens, cfg.d_head(), cfg.n_heads);

    let mut steps = StepBreakdown::new();
    let he_before = eval.counts();
    let mut timer = StepTimer::resume(t, *wire_mark);
    let start = timer.snapshot();

    // Embed / combined offline.
    let (embed_rs, embed_cat) = if core.variant.combined() {
        let cw = core.weights.combined.as_ref().expect("combined weights prepared");
        let rs = chgs::server_offline(
            &ring,
            packing,
            n,
            &[&core.weights.we, &cw.a_q, &cw.a_k, &cw.a_v],
            &core.sys.he,
            &core.encoder,
            eval,
            &core.gk,
            t,
            rng,
        );
        (rs, StepCategory::QxK)
    } else {
        let rs = hgs::server_offline(
            &ring,
            packing,
            n,
            &core.weights.we,
            &core.sys.he,
            &core.encoder,
            eval,
            &core.gk,
            t,
            rng,
        );
        (vec![rs], StepCategory::Embed)
    };
    timer.absorb(&mut steps, embed_cat, true);

    let qkv_first = !core.variant.combined();
    let bservers: Vec<BlockServerPre> = (0..cfg.n_blocks)
        .map(|b| {
            let blk = &core.weights.blocks[b];
            let qkv_rs = if b > 0 || qkv_first {
                let mut rs = Vec::new();
                for w in [&blk.wq, &blk.wk, &blk.wv] {
                    rs.push(hgs::server_offline(
                        &ring,
                        packing,
                        n,
                        w,
                        &core.sys.he,
                        &core.encoder,
                        eval,
                        &core.gk,
                        t,
                        rng,
                    ));
                }
                timer.absorb(&mut steps, StepCategory::Qkv, true);
                Some([rs.remove(0), rs.remove(0), rs.remove(0)])
            } else {
                None
            };
            let score_pre: Vec<_> = (0..heads)
                .map(|_| {
                    fhgs::server_offline(
                        &ring,
                        packing,
                        FhgsDims { n, k: dh, m: n },
                        &core.sys.he,
                        &core.encoder,
                        t,
                        rng,
                    )
                })
                .collect();
            timer.absorb(&mut steps, StepCategory::QxK, true);
            let av_pre: Vec<_> = (0..heads)
                .map(|_| {
                    fhgs::server_offline(
                        &ring,
                        packing,
                        FhgsDims { n, k: n, m: dh },
                        &core.sys.he,
                        &core.encoder,
                        t,
                        rng,
                    )
                })
                .collect();
            timer.absorb(&mut steps, StepCategory::AttnValue, true);
            let wo_rs = hgs::server_offline(
                &ring,
                packing,
                n,
                &blk.wo,
                &core.sys.he,
                &core.encoder,
                eval,
                &core.gk,
                t,
                rng,
            );
            let w1_rs = hgs::server_offline(
                &ring,
                packing,
                n,
                &blk.w1,
                &core.sys.he,
                &core.encoder,
                eval,
                &core.gk,
                t,
                rng,
            );
            let w2_rs = hgs::server_offline(
                &ring,
                packing,
                n,
                &blk.w2,
                &core.sys.he,
                &core.encoder,
                eval,
                &core.gk,
                t,
                rng,
            );
            timer.absorb(&mut steps, StepCategory::Others, true);
            BlockServerPre { qkv_rs, score_pre, av_pre, wo_rs, w1_rs, w2_rs }
        })
        .collect();
    let cls_rs = hgs::server_offline(
        &ring,
        packing,
        1,
        &core.weights.classifier,
        &core.sys.he,
        &core.encoder,
        eval,
        &core.gk,
        t,
        rng,
    );
    timer.absorb(&mut steps, StepCategory::Others, true);

    // GC offline.
    let gc: Vec<GcServerStep> = core
        .circuits
        .iter()
        .map(|c| GcServerStep::offline(c, core.mode, &core.group, t, rng))
        .collect();
    timer.absorb(&mut steps, StepCategory::Others, true);

    let he = eval.counts().since(&he_before);
    let traffic = timer.snapshot().since(&start);
    *wire_mark = timer.snapshot();
    ServerBundle { embed_rs, bservers, cls_rs, gc, steps, he, traffic }
}
