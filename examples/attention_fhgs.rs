//! The FHGS protocol in isolation: a private attention-score product
//! `X_Q · X_Kᵀ` where **both** matrices are secret-shared — the
//! ciphertext–ciphertext case that plain HGS cannot handle — computed
//! with additive-only HE (zero ciphertext–ciphertext multiplications).
//!
//! Run: `cargo run --release --example attention_fhgs`

use primer::core::fhgs::{self, FhgsDims, FhgsMode};
use primer::core::{wire, Packing};
use primer::he::{BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator};
use primer::math::rng::seeded;
use primer::math::{MatZ, Ring};
use primer::net::run_two_party;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = HeContext::new(HeParams::toy());
    let ring = Ring::new(ctx.params().t());
    let mut rng = seeded(31);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.secret_key().clone();
    let simd = ctx.params().row_size();
    let keys = Arc::new(kg.galois_keys_pow2(&[1, 4, 8, simd - 1, simd - 4, simd - 8], false, &mut rng));

    // Q (4×6) and Kᵀ (6×4): attention scores for 4 tokens.
    let dims = FhgsDims { n: 4, k: 6, m: 4 };
    let q = MatZ::from_fn(4, 6, |i, j| ((i * 13 + j * 5) % 60) as u64);
    let kt = MatZ::from_fn(6, 4, |i, j| ((i * 7 + j * 11) % 60) as u64);
    let expected = q.matmul(&ring, &kt);

    let (ctx_c, ctx_s) = (ctx.clone(), ctx.clone());
    let (q_c, kt_c) = (q.clone(), kt.clone());
    let keys_s = Arc::clone(&keys);

    let (client_share, (server_share, ct_ct_mults), meter) = run_two_party(
        move |t| {
            let encoder = BatchEncoder::new(&ctx_c);
            let encryptor = Encryptor::new(&ctx_c, sk, 32);
            let ring = Ring::new(ctx_c.params().t());
            // Offline: ship the Beaver-style encrypted triple.
            let pre = fhgs::client_offline(
                &ring,
                FhgsMode::Diagonal(Packing::TokensFirst),
                dims,
                &encoder,
                &encryptor,
                &t,
                &mut seeded(33),
            );
            // Online: the server works on masked operands only.
            wire::send_matrix(&t, &q_c.sub(&ring, &pre.rc_a));
            wire::send_matrix(&t, &kt_c.sub(&ring, &pre.rc_b));
            fhgs::client_online(&pre, &ring, &ctx_c, &encoder, &encryptor, &t)
                .expect("in-process flight")
        },
        move |t| {
            let encoder = BatchEncoder::new(&ctx_s);
            let eval = Evaluator::new(&ctx_s);
            let ring = Ring::new(ctx_s.params().t());
            let pre = fhgs::server_offline(
                &ring,
                FhgsMode::Diagonal(Packing::TokensFirst),
                dims,
                &ctx_s,
                &encoder,
                &t,
                &mut seeded(34),
            )
            .expect("in-process flight");
            let ua = wire::recv_matrix(&t).expect("in-process flight");
            let ub = wire::recv_matrix(&t).expect("in-process flight");
            let share = fhgs::server_online(&pre, &ring, &ua, &ub, &encoder, &eval, &keys_s, &t);
            (share, eval.counts().mul_ct)
        },
    );

    let got = client_share.add(&ring, &server_share);
    println!("X_Q · X_Kᵀ via FHGS:");
    println!("  shares reconstruct the exact product: {}", got == expected);
    println!("  ciphertext–ciphertext multiplications used: {ct_ct_mults}");
    println!("  total traffic: {:.1} KB", meter.total_bytes() as f64 / 1e3);
    assert_eq!(got, expected);
    assert_eq!(ct_ct_mults, 0, "FHGS is additive-only, as the paper claims");
    Ok(())
}
