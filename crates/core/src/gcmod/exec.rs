//! Execution of garbled step circuits: the client (garbler) and server
//! (evaluator) halves of one step, in both real-garbled and simulated
//! modes, with wire traffic padded to the exact garbled sizes.

use super::GcMode;
use primer_gc::{Circuit, EvaluatorSession, GarblerSession, OtGroup};
use rand::Rng;
use primer_net::Transport;

fn pack_bools(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bools(bytes: &[u8], len: usize) -> Vec<bool> {
    (0..len).map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1).collect()
}

/// Wire-size estimates for simulated mode (mirrors what the garbled path
/// actually ships, so byte metering stays honest).
fn offline_bytes(circuit: &Circuit) -> usize {
    // Garbled tables + output decode + IKNP columns (128 columns of
    // ceil(inputs/128) blocks) + base-OT flights (~128 × 2 × 256B).
    let tables = circuit.and_count() * 32 + circuit.outputs.len();
    let iknp = 128 * (circuit.evaluator_inputs as usize).div_ceil(128) * 16;
    tables + iknp + 128 * 512
}

fn online_bytes(circuit: &Circuit) -> usize {
    // Garbler labels + flip bits + OT corrections.
    circuit.garbler_inputs as usize * 16
        + (circuit.evaluator_inputs as usize).div_ceil(8)
        + circuit.evaluator_inputs as usize * 32
}

/// Client (garbler) half of one step execution.
#[derive(Debug)]
pub struct GcClientStep {
    mode: GcMode,
    session: Option<GarblerSession>,
}

impl GcClientStep {
    /// An already-consumed placeholder (for take-and-replace patterns).
    pub fn offline_noop() -> Self {
        Self { mode: GcMode::Simulated, session: None }
    }

    /// Offline phase: garble (or ship placeholder traffic).
    pub fn offline<R: Rng + ?Sized>(
        circuit: &Circuit,
        mode: GcMode,
        group: &OtGroup,
        transport: &dyn Transport,
        rng: &mut R,
    ) -> Self {
        match mode {
            GcMode::Garbled => {
                let session = GarblerSession::offline(circuit, group, transport, rng);
                Self { mode, session: Some(session) }
            }
            GcMode::Simulated => {
                crate::wire::send_placeholder(transport, offline_bytes(circuit));
                Self { mode, session: None }
            }
        }
    }

    /// Online phase: provide the client's input bits.
    pub fn online(self, circuit: &Circuit, transport: &dyn Transport, bits: &[bool]) {
        assert_eq!(bits.len(), circuit.garbler_inputs as usize, "garbler input width");
        match self.mode {
            GcMode::Garbled => {
                self.session.expect("offline ran").online(transport, bits);
            }
            GcMode::Simulated => {
                let mut payload = pack_bools(bits);
                // Pad to the real online label traffic.
                payload.resize(payload.len() + online_bytes(circuit), 0);
                transport.send_owned(payload);
            }
        }
    }
}

/// Server (evaluator) half of one step execution.
#[derive(Debug)]
pub struct GcServerStep {
    mode: GcMode,
    session: Option<EvaluatorSession>,
}

impl GcServerStep {
    /// An already-consumed placeholder (for take-and-replace patterns).
    pub fn offline_noop() -> Self {
        Self { mode: GcMode::Simulated, session: None }
    }

    /// Offline phase.
    pub fn offline<R: Rng + ?Sized>(
        circuit: &Circuit,
        mode: GcMode,
        group: &OtGroup,
        transport: &dyn Transport,
        rng: &mut R,
    ) -> Self {
        match mode {
            GcMode::Garbled => {
                let session = EvaluatorSession::offline(circuit, group, transport, rng);
                Self { mode, session: Some(session) }
            }
            GcMode::Simulated => {
                let _ = transport.recv();
                Self { mode, session: None }
            }
        }
    }

    /// Online phase: provide the server's input bits; returns outputs.
    pub fn online(
        self,
        circuit: &Circuit,
        transport: &dyn Transport,
        bits: &[bool],
    ) -> Vec<bool> {
        assert_eq!(bits.len(), circuit.evaluator_inputs as usize, "evaluator input width");
        match self.mode {
            GcMode::Garbled => {
                self.session.expect("offline ran").online(circuit, transport, bits)
            }
            GcMode::Simulated => {
                let payload = transport.recv();
                let g_bits =
                    unpack_bools(&payload, circuit.garbler_inputs as usize);
                circuit.eval_plain(&g_bits, bits)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{
        build_step_circuit, reference_step, ring_words_to_bits, bits_to_ring_words, GcStepKind,
    };
    use super::*;
    use primer_gc::arith::ring_bits;
    use primer_gc::GcNumCfg;
    use primer_math::rng::seeded;
    use primer_math::{fxp, FixedSpec, MatZ, Ring};
    use primer_net::run_two_party;
    use primer_nn::PipelineSpec;
    use primer_ss::share_vec;

    fn spec() -> PipelineSpec {
        PipelineSpec::new(Ring::new((1 << 29) + 11), FixedSpec::new(12, 5), 12)
    }

    /// Runs a step both in the simulated and garbled modes and checks
    /// the result against the reference semantics.
    fn check_step(kind: GcStepKind, raw: Vec<i64>, residual: Vec<i64>, mode: GcMode) {
        let spec = spec();
        let gc = GcNumCfg { width: 32, frac: 12 };
        let ring = spec.ring;
        let t = ring.modulus();
        let rb = ring_bits(t);
        let circuit = build_step_circuit(&kind, &spec, gc);
        let n = kind.elems();

        // Share the raw inputs (and residuals) between the parties.
        let mut rng = seeded(300);
        let raw_ring: Vec<u64> = raw.iter().map(|&v| ring.from_signed(v)).collect();
        let (c_share, s_share) = share_vec(&ring, &raw_ring, &mut rng);
        let res_ring: Vec<u64> = residual.iter().map(|&v| ring.from_signed(v)).collect();
        let (rc_share, rs_share) = share_vec(&ring, &res_ring, &mut rng);
        let masks = MatZ::random(&ring, 1, n, &mut rng).into_vec();

        // Client bits: shares, [residual shares], masks.
        let mut client_vals = c_share.clone();
        if kind.has_residual() {
            client_vals.extend_from_slice(&rc_share);
        }
        client_vals.extend_from_slice(&masks);
        let client_bits = ring_words_to_bits(&client_vals, rb);
        let mut server_vals = s_share.clone();
        if kind.has_residual() {
            server_vals.extend_from_slice(&rs_share);
        }
        let server_bits = ring_words_to_bits(&server_vals, rb);

        let (c1, c2) = (circuit.clone(), circuit.clone());
        let (_, out_bits, _) = run_two_party(
            move |tr| {
                let mut rng = seeded(301);
                let step =
                    GcClientStep::offline(&c1, mode, &OtGroup::test_768(), &tr, &mut rng);
                step.online(&c1, &tr, &client_bits);
            },
            move |tr| {
                let mut rng = seeded(302);
                let step =
                    GcServerStep::offline(&c2, mode, &OtGroup::test_768(), &tr, &mut rng);
                step.online(&c2, &tr, &server_bits)
            },
        );
        let server_out = bits_to_ring_words(&out_bits, rb);
        // Reconstruct: server share + client mask must equal reference.
        let want = reference_step(&kind, &spec, &raw, &residual);
        for i in 0..n {
            let got = ring.to_signed(ring.add(server_out[i], masks[i]));
            assert_eq!(got, want[i], "elem {i} ({kind:?}, {mode:?})");
        }
    }

    #[test]
    fn trunc_sat_step_simulated() {
        let raw: Vec<i64> = vec![0, 1, -1, 1000, -1000, 123_456, -99_999, 32 << 5];
        check_step(GcStepKind::TruncSat { elems: 8 }, raw, vec![], GcMode::Simulated);
    }

    #[test]
    fn trunc_sat_step_garbled() {
        let raw: Vec<i64> = vec![700, -4096, 88_888, -3];
        check_step(GcStepKind::TruncSat { elems: 4 }, raw, vec![], GcMode::Garbled);
    }

    #[test]
    fn relu_and_gelu_steps_simulated() {
        let raw: Vec<i64> = vec![5000, -5000, 64, -64, 0, 20_000];
        check_step(GcStepKind::Relu { elems: 6 }, raw.clone(), vec![], GcMode::Simulated);
        check_step(GcStepKind::Gelu { elems: 6 }, raw, vec![], GcMode::Simulated);
    }

    #[test]
    fn softmax_step_simulated() {
        // Raw scores at double scale (2·frac = 10 bits).
        let raw: Vec<i64> =
            vec![1 << 10, 2 << 10, 0, -(1 << 10), 3 << 10, 1 << 9, -(1 << 9), 1 << 10];
        let prescale = fxp::const_q(0.5, 12);
        check_step(
            GcStepKind::Softmax { rows: 2, cols: 4, prescale },
            raw,
            vec![],
            GcMode::Simulated,
        );
    }

    #[test]
    fn layer_norm_residual_step_simulated() {
        let raw: Vec<i64> = (0..8).map(|i| (i - 4) << 10).collect();
        let residual: Vec<i64> = (0..8).map(|i| (8 - i) << 4).collect();
        let gamma: Vec<i64> = (0..4).map(|i| fxp::const_q(1.0 + i as f64 / 8.0, 12)).collect();
        let beta: Vec<i64> = (0..4).map(|i| fxp::const_q(i as f64 / 4.0 - 0.5, 12)).collect();
        check_step(
            GcStepKind::LayerNormResidual { rows: 2, cols: 4, gamma, beta },
            raw,
            residual,
            GcMode::Simulated,
        );
    }

    #[test]
    fn softmax_step_garbled_matches_simulated_circuit() {
        let raw: Vec<i64> = vec![1 << 10, 0, -(1 << 9), 2 << 10];
        let prescale = fxp::const_q(0.5, 12);
        check_step(
            GcStepKind::Softmax { rows: 1, cols: 4, prescale },
            raw,
            vec![],
            GcMode::Garbled,
        );
    }
}
