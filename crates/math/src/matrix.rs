//! Dense row-major matrices over arbitrary element types, with ring and
//! floating-point linear algebra used throughout the Primer stack.

use crate::ring::Ring;
use rand::Rng;

/// A dense row-major matrix.
///
/// ```
/// use primer_math::Matrix;
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as u64);
/// assert_eq!(m[(1, 2)], 5);
/// assert_eq!(m.transpose()[(2, 1)], 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone> Matrix<T> {
    /// A matrix filled with copies of `fill`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data: vec![fill; rows * cols] }
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the matrix, returning its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)].clone())
    }

    /// Element-wise map.
    pub fn map<U: Clone>(&self, mut f: impl FnMut(&T) -> U) -> Matrix<U> {
        Matrix::from_fn(self.rows, self.cols, |r, c| f(&self[(r, c)]))
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// A matrix over the ring `Z_t` (elements stored reduced in `[0, t)`).
pub type MatZ = Matrix<u64>;
/// A real-valued matrix.
pub type MatF = Matrix<f64>;

impl MatZ {
    /// The all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0)
    }

    /// A uniformly random matrix over `Z_t`.
    pub fn random<R: Rng + ?Sized>(ring: &Ring, rows: usize, cols: usize, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| ring.random(rng))
    }

    /// Element-wise sum mod `t`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, ring: &Ring, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        Self::from_fn(self.rows, self.cols, |r, c| ring.add(self[(r, c)], other[(r, c)]))
    }

    /// Element-wise difference mod `t`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, ring: &Ring, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        Self::from_fn(self.rows, self.cols, |r, c| ring.sub(self[(r, c)], other[(r, c)]))
    }

    /// Element-wise negation mod `t`.
    pub fn neg(&self, ring: &Ring) -> Self {
        self.map(|&x| ring.neg(x))
    }

    /// Matrix product mod `t`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, ring: &Ring, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch in matmul");
        let t = ring.modulus() as u128;
        let mut out = MatZ::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)] as u128;
                if a == 0 {
                    continue;
                }
                for c in 0..other.cols {
                    let cur = out[(r, c)] as u128;
                    out[(r, c)] = ((cur + a * other[(k, c)] as u128) % t) as u64;
                }
            }
        }
        out
    }

    /// Scalar multiply mod `t`.
    pub fn scale(&self, ring: &Ring, k: u64) -> Self {
        self.map(|&x| ring.mul(x, k))
    }

    /// Centered signed view of every element.
    pub fn to_signed(&self, ring: &Ring) -> Matrix<i64> {
        self.map(|&x| ring.to_signed(x))
    }

    /// Embeds a signed matrix into the ring.
    pub fn from_signed(ring: &Ring, m: &Matrix<i64>) -> Self {
        m.map(|&x| ring.from_signed(x))
    }
}

impl MatF {
    /// The all-zero matrix.
    pub fn zeros_f(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Real matrix product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_f(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch in matmul");
        let mut out = MatF::zeros_f(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Element-wise sum.
    pub fn add_f(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        Self::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + other[(r, c)])
    }

    /// A matrix with i.i.d. uniform entries in `[-a, a]`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        a: f64,
        rng: &mut R,
    ) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as u64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let ring = Ring::new(97);
        let mut rng = StdRng::seed_from_u64(3);
        let a = MatZ::random(&ring, 4, 4, &mut rng);
        let id = MatZ::from_fn(4, 4, |r, c| u64::from(r == c));
        assert_eq!(a.matmul(&ring, &id), a);
        assert_eq!(id.matmul(&ring, &a), a);
    }

    #[test]
    fn matmul_matches_schoolbook() {
        let ring = Ring::new(1_000_003);
        let mut rng = StdRng::seed_from_u64(4);
        let a = MatZ::random(&ring, 3, 7, &mut rng);
        let b = MatZ::random(&ring, 7, 2, &mut rng);
        let c = a.matmul(&ring, &b);
        for r in 0..3 {
            for col in 0..2 {
                let mut acc = 0u64;
                for k in 0..7 {
                    acc = ring.add(acc, ring.mul(a[(r, k)], b[(k, col)]));
                }
                assert_eq!(c[(r, col)], acc);
            }
        }
    }

    #[test]
    fn add_sub_inverse() {
        let ring = Ring::new(65537);
        let mut rng = StdRng::seed_from_u64(5);
        let a = MatZ::random(&ring, 2, 3, &mut rng);
        let b = MatZ::random(&ring, 2, 3, &mut rng);
        assert_eq!(a.add(&ring, &b).sub(&ring, &b), a);
        assert_eq!(a.add(&ring, &a.neg(&ring)), MatZ::zeros(2, 3));
    }

    #[test]
    fn signed_roundtrip_matrix() {
        let ring = Ring::new(101);
        let m = Matrix::from_fn(2, 2, |r, c| (r as i64 - c as i64) * 7);
        let z = MatZ::from_signed(&ring, &m);
        assert_eq!(z.to_signed(&ring), m);
    }

    #[test]
    fn matmul_f_associates_with_transpose() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = MatF::random_uniform(3, 4, 1.0, &mut rng);
        let b = MatF::random_uniform(4, 2, 1.0, &mut rng);
        let ab_t = a.matmul_f(&b).transpose();
        let bt_at = b.transpose().matmul_f(&a.transpose());
        for r in 0..2 {
            for c in 0..3 {
                assert!((ab_t[(r, c)] - bt_at[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_checked() {
        let ring = Ring::new(97);
        let a = MatZ::zeros(2, 3);
        let b = MatZ::zeros(2, 3);
        let _ = a.matmul(&ring, &b);
    }
}
