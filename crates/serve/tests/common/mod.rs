//! Shared harness for the serving integration tests.

use primer_core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer_math::rng::seeded;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};
use primer_serve::{Server, ServerConfig, ServerStats};
use std::net::SocketAddr;
use std::thread::JoinHandle;

/// The weight seed every test server announces (clients rebuild the
/// same model from it, and so do the in-process reference engines).
pub const WEIGHT_SEED: u64 = 7;

/// Starts a test-profile server for `sessions` sessions on an OS port.
pub fn start_server(
    model: TransformerConfig,
    sessions: usize,
    max_workers: usize,
    pool: usize,
) -> (SocketAddr, JoinHandle<ServerStats>) {
    let mut config = ServerConfig::test_default(model);
    config.max_workers = max_workers;
    config.pool = pool;
    config.weight_seed = WEIGHT_SEED;
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve_sessions(sessions));
    (addr, handle)
}

/// The in-process reference engine for the same model the test servers
/// serve: bit-identical logits are the acceptance bar for the TCP path.
/// (Each test binary compiles its own copy of this module; suites that
/// only exercise the admin surface don't call it.)
#[allow(dead_code)]
pub fn reference_engine(
    model: &TransformerConfig,
    variant: ProtocolVariant,
    mode: GcMode,
) -> Engine {
    let sys = SystemConfig::test_profile(model).expect("profile");
    let weights = TransformerWeights::random(model, &mut seeded(WEIGHT_SEED));
    let fixed = FixedTransformer::quantize(model, &weights, sys.pipeline);
    // The engine seed drives masks/keys only; the protocol reconstructs
    // exact values regardless, so any seed yields the same logits.
    Engine::new(sys, variant, fixed, mode, 0xe16)
}
