//! Full-fidelity garbled execution: the same step circuits the engine
//! uses, run through real half-gates garbling and IKNP OTs.

use primer::core::gcmod::{
    bits_to_ring_words, build_step_circuit, reference_step, ring_words_to_bits, GcClientStep,
    GcMode, GcServerStep, GcStepKind,
};
use primer::gc::arith::ring_bits;
use primer::gc::{GcNumCfg, OtGroup};
use primer::math::rng::seeded;
use primer::math::{FixedSpec, MatZ, Ring};
use primer::net::run_two_party;
use primer::nn::PipelineSpec;
use primer::ss::share_vec;

/// Runs the TruncSat step garbled and simulated; both must agree with the
/// reference (and therefore with each other).
#[test]
fn garbled_and_simulated_agree_with_reference() {
    let spec = PipelineSpec::new(Ring::new((1 << 29) + 11), FixedSpec::new(12, 5), 12);
    let gc = GcNumCfg { width: 32, frac: 12 };
    let ring = spec.ring;
    let rb = ring_bits(ring.modulus());
    let kind = GcStepKind::TruncSat { elems: 4 };
    let circuit = build_step_circuit(&kind, &spec, gc);

    let raw: Vec<i64> = vec![12_345, -9_876, 1 << 12, -(1 << 14)];
    let raw_ring: Vec<u64> = raw.iter().map(|&v| ring.from_signed(v)).collect();
    let mut rng = seeded(700);
    let (c_share, s_share) = share_vec(&ring, &raw_ring, &mut rng);
    let masks = MatZ::random(&ring, 1, 4, &mut rng).into_vec();

    let mut client_vals = c_share.clone();
    client_vals.extend_from_slice(&masks);
    let client_bits = ring_words_to_bits(&client_vals, rb);
    let server_bits = ring_words_to_bits(&s_share, rb);

    for mode in [GcMode::Garbled, GcMode::Simulated] {
        let (c1, c2) = (circuit.clone(), circuit.clone());
        let (cb, sb) = (client_bits.clone(), server_bits.clone());
        let (_, out_bits, _) = run_two_party(
            move |t| {
                let mut rng = seeded(701);
                let step = GcClientStep::offline(&c1, mode, &OtGroup::test_768(), &t, &mut rng);
                step.online(&c1, &t, &cb);
            },
            move |t| {
                let mut rng = seeded(702);
                let step = GcServerStep::offline(&c2, mode, &OtGroup::test_768(), &t, &mut rng);
                step.online(&c2, &t, &sb)
            },
        );
        let server_out = bits_to_ring_words(&out_bits, rb);
        let want = reference_step(&kind, &spec, &raw, &[]);
        for i in 0..4 {
            let got = ring.to_signed(ring.add(server_out[i], masks[i]));
            assert_eq!(got, want[i], "elem {i} in {mode:?}");
        }
    }
}
