//! Oblivious transfer: Chou–Orlandi base OTs over MODP groups, extended
//! by IKNP to arbitrarily many precomputed random OTs.

pub mod base;
pub mod bignum;
pub mod iknp;

pub use base::{base_ot_receive, base_ot_send, OtGroup};
pub use iknp::{rot_receiver_offline, rot_sender_offline, RotReceiver, RotSender};
