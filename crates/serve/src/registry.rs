//! Session registry and server-wide stats aggregation.

use primer_core::{PhaseCost, PhaseTotals, ProtocolVariant};
use primer_net::TrafficSnapshot;
use std::net::SocketAddr;
use std::sync::Mutex;

/// What one completed session leaves behind.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// Server-assigned session id (handshake order).
    pub id: u64,
    /// The client's socket address.
    pub peer: SocketAddr,
    /// Variant the session ran.
    pub variant: ProtocolVariant,
    /// GC mode the session ran.
    pub garbled: bool,
    /// Queries served.
    pub queries: usize,
    /// Thread-pool size the server ran this session with.
    pub threads: usize,
    /// Setup + summed per-query offline/online costs.
    pub phases: PhaseTotals,
    /// Summed per-query traffic (offline + online, both directions;
    /// setup traffic is inside `phases.setup`).
    pub traffic: TrafficSnapshot,
}

/// Prepared-weights plane cache accounting: how often concurrent
/// sessions shared one Setup-encoded mask set instead of re-encoding
/// it, and how much memory the cached planes pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreparedPlaneStats {
    /// Cache misses: planes actually built (one per distinct variant of
    /// the served model).
    pub built: u64,
    /// Cache hits: sessions served from an already-encoded plane.
    pub reused: u64,
    /// Bytes pinned by the cached planes' NTT-form masks (sum over
    /// distinct planes, not per session).
    pub resident_mask_bytes: u64,
    /// Wall-clock spent encoding planes, milliseconds (misses only).
    pub build_ms: u64,
}

/// Thread-shared registry the accept loop and workers write into.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    completed: Mutex<Vec<SessionRecord>>,
    prepared: Mutex<PreparedPlaneStats>,
}

impl Registry {
    pub fn record(&self, rec: SessionRecord) {
        self.completed.lock().expect("registry mutex poisoned").push(rec);
    }

    pub fn record_plane_built(&self, mask_bytes: u64, build_ms: u64) {
        let mut p = self.prepared.lock().expect("registry mutex poisoned");
        p.built += 1;
        p.resident_mask_bytes += mask_bytes;
        p.build_ms += build_ms;
    }

    pub fn record_plane_reused(&self) {
        self.prepared.lock().expect("registry mutex poisoned").reused += 1;
    }

    pub fn into_stats(self) -> ServerStats {
        let mut sessions = self.completed.into_inner().expect("registry mutex poisoned");
        sessions.sort_by_key(|r| r.id);
        let prepared = self.prepared.into_inner().expect("registry mutex poisoned");
        ServerStats { sessions, prepared }
    }

    pub fn snapshot(&self) -> ServerStats {
        let mut sessions = self.completed.lock().expect("registry mutex poisoned").clone();
        sessions.sort_by_key(|r| r.id);
        let prepared = *self.prepared.lock().expect("registry mutex poisoned");
        ServerStats { sessions, prepared }
    }
}

/// Aggregated view over every completed session.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Per-session records, in session-id order.
    pub sessions: Vec<SessionRecord>,
    /// Prepared-weights plane cache counters.
    pub prepared: PreparedPlaneStats,
}

impl ServerStats {
    /// Total queries served across sessions.
    pub fn total_queries(&self) -> usize {
        self.sessions.iter().map(|s| s.queries).sum()
    }

    /// Total bytes on the wire across sessions (setup + offline +
    /// online).
    pub fn total_bytes(&self) -> u64 {
        self.sessions.iter().map(|s| s.traffic.total_bytes() + s.phases.setup.bytes).sum()
    }

    /// Summed phase costs across sessions.
    pub fn phase_totals(&self) -> PhaseTotals {
        let mut acc = PhaseTotals::default();
        for s in &self.sessions {
            acc.setup.merge(&s.phases.setup);
            acc.offline.merge(&s.phases.offline);
            acc.online.merge(&s.phases.online);
        }
        acc
    }

    /// Sessions that ran a given variant.
    pub fn sessions_for(&self, variant: ProtocolVariant) -> usize {
        self.sessions.iter().filter(|s| s.variant == variant).count()
    }

    /// One line per session plus a totals line (the server binary's
    /// shutdown report).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4}  {:<21} {:<11} {:>7}  {:>7}  {:>12}  {:>9}  {:>9}",
            "id", "peer", "variant", "queries", "threads", "bytes", "off(ms)", "on(ms)"
        );
        for s in &self.sessions {
            let _ = writeln!(
                out,
                "{:>4}  {:<21} {:<11} {:>7}  {:>7}  {:>12}  {:>9.1}  {:>9.1}",
                s.id,
                s.peer.to_string(),
                s.variant.name(),
                s.queries,
                s.threads,
                s.traffic.total_bytes(),
                s.phases.offline.compute.as_secs_f64() * 1e3,
                s.phases.online.compute.as_secs_f64() * 1e3,
            );
        }
        let _ = writeln!(
            out,
            "total: {} sessions, {} queries, {} bytes on the wire",
            self.sessions.len(),
            self.total_queries(),
            self.total_bytes()
        );
        let _ = writeln!(
            out,
            "prepared planes: {} built ({} ms), {} reused, {:.1} MiB resident masks",
            self.prepared.built,
            self.prepared.build_ms,
            self.prepared.reused,
            self.prepared.resident_mask_bytes as f64 / (1024.0 * 1024.0),
        );
        out
    }
}

/// Accumulates one session's rounds into a [`SessionRecord`].
pub(crate) fn accumulate_phases(rounds: &[PhaseTotals], setup: PhaseCost) -> PhaseTotals {
    let mut acc = PhaseTotals { setup, ..Default::default() };
    for r in rounds {
        acc.offline.merge(&r.offline);
        acc.online.merge(&r.online);
    }
    acc
}
