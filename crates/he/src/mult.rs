//! Ciphertext–ciphertext multiplication (BFV tensoring).
//!
//! **Used only by the THE-X baseline.** The Primer protocols never
//! multiply two ciphertexts — FHGS moves those products offline — which is
//! why this operation is restricted to single-prime parameter profiles
//! where the exact integer tensor fits in 256-bit accumulators.

use crate::cipher::Ciphertext;
use crate::context::HeContext;
use crate::counters::OpCounters;
use crate::error::HeError;
use crate::poly::RnsPoly;
use crate::u256::U256;

/// Multiplies two size-2 ciphertexts, producing a size-3 ciphertext
/// (relinearize afterwards, or decrypt directly with `s²`).
///
/// # Errors
///
/// [`HeError::MultiPrimeUnsupported`] on multi-prime profiles and
/// [`HeError::WrongCiphertextSize`] unless both inputs have 2 parts.
pub fn multiply(
    ctx: &HeContext,
    counters: &OpCounters,
    a: &Ciphertext,
    b: &Ciphertext,
) -> Result<Ciphertext, HeError> {
    if ctx.num_primes() != 1 {
        return Err(HeError::MultiPrimeUnsupported { op: "ciphertext multiplication" });
    }
    if a.size() != 2 {
        return Err(HeError::WrongCiphertextSize { expected: 2, actual: a.size() });
    }
    if b.size() != 2 {
        return Err(HeError::WrongCiphertextSize { expected: 2, actual: b.size() });
    }
    counters.bump(|c| c.mul_ct += 1);

    let centered = |p: &RnsPoly| -> Vec<(bool, u64)> {
        let m = ctx.moduli()[0];
        let mut q = p.clone();
        q.to_coeff(ctx);
        q.residues(0)
            .iter()
            .map(|&x| {
                let s = m.to_signed(x);
                (s < 0, s.unsigned_abs())
            })
            .collect()
    };
    let a0 = centered(a.part(0));
    let a1 = centered(a.part(1));
    let b0 = centered(b.part(0));
    let b1 = centered(b.part(1));

    let c0 = scaled_negacyclic(ctx, &a0, &b0, None);
    let c1 = scaled_negacyclic(ctx, &a0, &b1, Some((&a1, &b0)));
    let c2 = scaled_negacyclic(ctx, &a1, &b1, None);

    let build = |coeffs: Vec<u64>| {
        let m = ctx.moduli()[0];
        let signed: Vec<i64> = coeffs.iter().map(|&c| m.to_signed(c)).collect();
        let mut p = RnsPoly::from_signed(ctx, &signed);
        p.to_ntt(ctx);
        p
    };
    Ok(Ciphertext::new(vec![build(c0), build(c1), build(c2)], None))
}

/// Computes `round(t/q · (x ⊛ y [+ x2 ⊛ y2]))` coefficient-wise, where `⊛`
/// is the exact negacyclic convolution over the integers.
/// Centered coefficients as (sign, magnitude) pairs.
type SignedCoeffs<'a> = &'a [(bool, u64)];

fn scaled_negacyclic(
    ctx: &HeContext,
    x: SignedCoeffs<'_>,
    y: SignedCoeffs<'_>,
    extra: Option<(SignedCoeffs<'_>, SignedCoeffs<'_>)>,
) -> Vec<u64> {
    let n = x.len();
    let mut pos = vec![U256::ZERO; n];
    let mut neg = vec![U256::ZERO; n];
    let mut accumulate = |u: SignedCoeffs<'_>, v: SignedCoeffs<'_>| {
        for (i, &(sx, mx)) in u.iter().enumerate() {
            if mx == 0 {
                continue;
            }
            for (j, &(sy, my)) in v.iter().enumerate() {
                if my == 0 {
                    continue;
                }
                let k = i + j;
                let (idx, wrap) = if k < n { (k, false) } else { (k - n, true) };
                let negative = sx ^ sy ^ wrap;
                let prod = U256::from_u128(mx as u128 * my as u128);
                if negative {
                    neg[idx] = neg[idx].add(prod);
                } else {
                    pos[idx] = pos[idx].add(prod);
                }
            }
        }
    };
    accumulate(x, y);
    if let Some((x2, y2)) = extra {
        accumulate(x2, y2);
    }

    let t = ctx.params().t();
    let q = ctx.q();
    let m = ctx.moduli()[0];
    (0..n)
        .map(|k| {
            let (negative, mag) = if pos[k] >= neg[k] {
                (false, pos[k].sub(neg[k]))
            } else {
                (true, neg[k].sub(pos[k]))
            };
            let scaled = mag.mul_small(t).div_round_u128(q);
            let reduced = m.reduce_u128(scaled);
            if negative {
                m.neg(reduced)
            } else {
                reduced
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BatchEncoder;
    use crate::encryptor::Encryptor;
    use crate::eval::Evaluator;
    use crate::keys::KeyGenerator;
    use crate::params::HeParams;
    use primer_math::rng::seeded;

    #[test]
    fn slotwise_product_decrypts_at_size_3() {
        let ctx = HeContext::new(HeParams::toy());
        let enc = BatchEncoder::new(&ctx);
        let mut rng = seeded(60);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encr = Encryptor::new(&ctx, kg.secret_key().clone(), 61);
        let eval = Evaluator::new(&ctx);
        let t = ctx.params().t();

        let a: Vec<u64> = (0..64).map(|i| (i * 11 + 1) % 200).collect();
        let b: Vec<u64> = (0..64).map(|i| (i * 7 + 3) % 200).collect();
        let ca = encr.encrypt(&enc.encode(&a));
        let cb = encr.encrypt(&enc.encode(&b));
        let prod = multiply(&ctx, eval.counters(), &ca, &cb).expect("single prime");
        assert_eq!(prod.size(), 3);
        let got = enc.decode(&encr.decrypt(&prod));
        for i in 0..64 {
            assert_eq!(got[i], a[i] * b[i] % t, "slot {i}");
        }
    }

    #[test]
    fn relinearized_product_decrypts_at_size_2() {
        let ctx = HeContext::new(HeParams::toy());
        let enc = BatchEncoder::new(&ctx);
        let mut rng = seeded(62);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encr = Encryptor::new(&ctx, kg.secret_key().clone(), 63);
        let eval = Evaluator::new(&ctx);
        let rk = kg.relin_key(&mut rng);
        let t = ctx.params().t();

        let a = vec![3u64, 50, 111];
        let b = vec![7u64, 2, 90];
        let ca = encr.encrypt(&enc.encode(&a));
        let cb = encr.encrypt(&enc.encode(&b));
        let prod = multiply(&ctx, eval.counters(), &ca, &cb).expect("single prime");
        let lin = eval.relinearize(&prod, &rk).expect("size 3 input");
        assert_eq!(lin.size(), 2);
        let budget = encr.noise_budget(&lin);
        assert!(budget > 1.0, "post-relin budget {budget}");
        let got = enc.decode(&encr.decrypt(&lin));
        for i in 0..3 {
            assert_eq!(got[i], a[i] * b[i] % t);
        }
    }

    #[test]
    fn multi_prime_profiles_are_rejected() {
        let ctx = HeContext::new(HeParams::test_2k());
        let enc = BatchEncoder::new(&ctx);
        let mut rng = seeded(64);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encr = Encryptor::new(&ctx, kg.secret_key().clone(), 65);
        let eval = Evaluator::new(&ctx);
        let ct = encr.encrypt(&enc.encode(&[1]));
        let err = multiply(&ctx, eval.counters(), &ct, &ct).unwrap_err();
        assert_eq!(err, HeError::MultiPrimeUnsupported { op: "ciphertext multiplication" });
    }
}
