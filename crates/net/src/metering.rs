//! Traffic meters shared by the two endpoints of a channel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative traffic statistics for one direction of a channel.
#[derive(Debug, Default)]
pub struct DirectionMeter {
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl DirectionMeter {
    pub(crate) fn record(&self, bytes: usize) {
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes sent in this direction.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages sent in this direction.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

/// Bidirectional traffic meter (shared between both endpoints).
#[derive(Debug, Default)]
pub struct Meter {
    /// Client → server traffic (endpoint 0 sends).
    pub c2s: DirectionMeter,
    /// Server → client traffic (endpoint 1 sends).
    pub s2c: DirectionMeter,
}

impl Meter {
    /// Fresh shared meter.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.c2s.bytes() + self.s2c.bytes()
    }

    /// Total messages in both directions. In a sequential two-party
    /// protocol this equals the number of latency-bearing flights.
    pub fn total_messages(&self) -> u64 {
        self.c2s.messages() + self.s2c.messages()
    }
}

/// An immutable snapshot of a meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Bytes client → server.
    pub c2s_bytes: u64,
    /// Bytes server → client.
    pub s2c_bytes: u64,
    /// Messages client → server.
    pub c2s_messages: u64,
    /// Messages server → client.
    pub s2c_messages: u64,
}

impl TrafficSnapshot {
    /// Captures the current state of a meter.
    pub fn capture(meter: &Meter) -> Self {
        Self {
            c2s_bytes: meter.c2s.bytes(),
            s2c_bytes: meter.s2c.bytes(),
            c2s_messages: meter.c2s.messages(),
            s2c_messages: meter.s2c.messages(),
        }
    }

    /// Traffic since an earlier snapshot.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            c2s_bytes: self.c2s_bytes - earlier.c2s_bytes,
            s2c_bytes: self.s2c_bytes - earlier.s2c_bytes,
            c2s_messages: self.c2s_messages - earlier.c2s_messages,
            s2c_messages: self.s2c_messages - earlier.s2c_messages,
        }
    }

    /// Element-wise sum with another snapshot (combining per-phase deltas
    /// into a per-query total).
    pub fn plus(&self, other: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            c2s_bytes: self.c2s_bytes + other.c2s_bytes,
            s2c_bytes: self.s2c_bytes + other.s2c_bytes,
            c2s_messages: self.c2s_messages + other.c2s_messages,
            s2c_messages: self.s2c_messages + other.s2c_messages,
        }
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.c2s_bytes + self.s2c_bytes
    }

    /// Total messages in both directions.
    pub fn total_messages(&self) -> u64 {
        self.c2s_messages + self.s2c_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let m = Meter::new();
        m.c2s.record(100);
        m.c2s.record(50);
        m.s2c.record(7);
        assert_eq!(m.c2s.bytes(), 150);
        assert_eq!(m.c2s.messages(), 2);
        assert_eq!(m.total_bytes(), 157);
        assert_eq!(m.total_messages(), 3);
    }

    #[test]
    fn snapshot_diff() {
        let m = Meter::new();
        m.c2s.record(10);
        let early = TrafficSnapshot::capture(&m);
        m.s2c.record(20);
        let late = TrafficSnapshot::capture(&m);
        let d = late.since(&early);
        assert_eq!(d.c2s_bytes, 0);
        assert_eq!(d.s2c_bytes, 20);
        assert_eq!(d.total_messages(), 1);
    }
}
