//! Polynomials in RNS (double-CRT) representation.

use crate::context::HeContext;
use crate::error::HeError;
use crate::simd;
use rand::Rng;

/// A polynomial in `R_q`, stored as one residue vector per RNS prime,
/// in either coefficient or NTT (evaluation) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    values: Vec<Vec<u64>>,
    ntt_form: bool,
}

impl RnsPoly {
    /// The zero polynomial (form is caller's choice — zero is both).
    pub fn zero(ctx: &HeContext, ntt_form: bool) -> Self {
        Self { values: vec![vec![0; ctx.n()]; ctx.num_primes()], ntt_form }
    }

    /// Embeds small signed coefficients (coefficient form).
    pub fn from_signed(ctx: &HeContext, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), ctx.n(), "coefficient count mismatch");
        let values = ctx
            .moduli()
            .iter()
            .map(|m| coeffs.iter().map(|&c| m.from_signed(c)).collect())
            .collect();
        Self { values, ntt_form: false }
    }

    /// Lifts a plaintext polynomial (coefficients mod `t`) into `R_q`
    /// using the **centered** representative, so that `‖lift‖∞ ≤ t/2`.
    /// This is the lift used for plaintext multiplication.
    pub fn lift_plain_centered(ctx: &HeContext, plain_coeffs: &[u64]) -> Self {
        assert_eq!(plain_coeffs.len(), ctx.n(), "coefficient count mismatch");
        let t = ctx.plain();
        if ctx.plain_below_primes() {
            // Vectorized fast path (PR 10): with t < q_i the signed round
            // trip collapses to a branchless select per limb —
            // `c > t/2 ? q_i − t + c : c` — bit-identical to
            // `from_signed(to_signed(c))`.
            let lvl = simd::level();
            let values = ctx
                .moduli()
                .iter()
                .map(|m| {
                    let mut row = vec![0u64; plain_coeffs.len()];
                    simd::lift_centered(m.value(), t.value(), plain_coeffs, &mut row, lvl);
                    row
                })
                .collect();
            return Self { values, ntt_form: false };
        }
        let signed: Vec<i64> = plain_coeffs.iter().map(|&c| t.to_signed(c)).collect();
        Self::from_signed(ctx, &signed)
    }

    /// Scales a plaintext polynomial into `R_q` as `round(q·m/t)` per
    /// coefficient — the exact-rational BFV embedding used by encryption
    /// and `add_plain`.
    ///
    /// The exact scaling (instead of `⌊q/t⌋·m`) is essential at Primer's
    /// plaintext sizes: with `t ≈ 2^43`, the classic embedding leaks a
    /// `(q mod t)·k` noise term through plaintext multiplication that
    /// would exceed the decryption bound; with `round(q·m/t)` the
    /// wraparound multiples of `t` map to exact multiples of `q` and
    /// vanish.
    pub fn scale_plain_to_q(ctx: &HeContext, plain_coeffs: &[u64]) -> Self {
        let mut out = Self::zero(ctx, false);
        Self::scale_plain_into(ctx, plain_coeffs, &mut out);
        out
    }

    /// [`Self::scale_plain_to_q`] into an existing (typically arena-
    /// recycled) polynomial, overwriting every residue.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not shaped for `ctx`.
    pub fn scale_plain_into(ctx: &HeContext, plain_coeffs: &[u64], out: &mut Self) {
        assert_eq!(plain_coeffs.len(), ctx.n(), "coefficient count mismatch");
        assert_eq!(out.values.len(), ctx.num_primes(), "prime count mismatch");
        let t = ctx.params().t() as u128;
        let delta = ctx.delta(); // floor(q/t) < 2^(128-43): Δ·m fits u128
        let r_t = ctx.q() - delta * t; // q mod t
        if ctx.plain_below_primes() {
            // Vectorized fast path (PR 10): round(q·m/t) = Δ·m + rt with
            // rt = round(r_t·m/t) < t, so per limb the residue is
            // `(Δ mod q_i)·m + rt (mod q_i)` — a Shoup multiply by the
            // cached `Δ mod q_i` plus a lazy add. The rounding term is
            // computed once per coefficient (u128, shared by all limbs).
            let lvl = simd::level();
            let rt: Vec<u64> = plain_coeffs
                .iter()
                .map(|&c| {
                    debug_assert!((c as u128) < t, "plaintext coefficient not reduced");
                    ((r_t * c as u128 + t / 2) / t) as u64
                })
                .collect();
            let delta_qi = ctx.delta_mod_qi();
            let delta_qi_shoup = ctx.delta_mod_qi_shoup();
            for (i, md) in ctx.moduli().iter().enumerate() {
                simd::scale_combine(
                    *md,
                    delta_qi[i],
                    delta_qi_shoup[i],
                    plain_coeffs,
                    &rt,
                    &mut out.values[i],
                    lvl,
                );
            }
            out.ntt_form = false;
            return;
        }
        for (j, &c) in plain_coeffs.iter().enumerate() {
            let m = c as u128;
            debug_assert!(m < t, "plaintext coefficient not reduced");
            // round(q·m/t) = Δ·m + round(r_t·m / t); both terms fit u128.
            let scaled = delta * m + (r_t * m + t / 2) / t;
            for (i, md) in ctx.moduli().iter().enumerate() {
                out.values[i][j] = md.reduce_u128(scaled);
            }
        }
        out.ntt_form = false;
    }

    /// Uniformly random element of `R_q` (coefficient form). Sampling
    /// reduces a random `u128` mod `q`; the modulo bias is negligible for
    /// the simulation purposes of this crate.
    pub fn uniform<R: Rng + ?Sized>(ctx: &HeContext, rng: &mut R) -> Self {
        let q = ctx.q();
        let n = ctx.n();
        let mut values = vec![Vec::with_capacity(n); ctx.num_primes()];
        for _ in 0..n {
            let v: u128 = rng.gen::<u128>() % q;
            for (i, m) in ctx.moduli().iter().enumerate() {
                values[i].push(m.reduce_u128(v));
            }
        }
        Self { values, ntt_form: false }
    }

    /// Discrete-Gaussian-ish error polynomial (Box–Muller, rounded),
    /// coefficient form.
    pub fn gaussian<R: Rng + ?Sized>(ctx: &HeContext, sigma: f64, rng: &mut R) -> Self {
        let coeffs: Vec<i64> = (0..ctx.n())
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (z * sigma).round() as i64
            })
            .collect();
        Self::from_signed(ctx, &coeffs)
    }

    /// Uniform ternary polynomial ({-1, 0, 1}), coefficient form.
    pub fn ternary<R: Rng + ?Sized>(ctx: &HeContext, rng: &mut R) -> Self {
        let coeffs: Vec<i64> = (0..ctx.n()).map(|_| rng.gen_range(-1i64..=1)).collect();
        Self::from_signed(ctx, &coeffs)
    }

    /// True if in NTT (evaluation) form.
    #[inline]
    pub fn is_ntt(&self) -> bool {
        self.ntt_form
    }

    /// Residues for prime `i`.
    #[inline]
    pub fn residues(&self, i: usize) -> &[u64] {
        &self.values[i]
    }

    /// Mutable residues for prime `i`.
    #[inline]
    pub fn residues_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.values[i]
    }

    /// Converts to NTT form in place (no-op if already there).
    pub fn to_ntt(&mut self, ctx: &HeContext) {
        if !self.ntt_form {
            for (tbl, v) in ctx.ntt().iter().zip(&mut self.values) {
                tbl.forward(v);
            }
            self.ntt_form = true;
        }
    }

    /// Converts to coefficient form in place (no-op if already there).
    pub fn to_coeff(&mut self, ctx: &HeContext) {
        if self.ntt_form {
            for (tbl, v) in ctx.ntt().iter().zip(&mut self.values) {
                tbl.inverse(v);
            }
            self.ntt_form = false;
        }
    }

    /// `self += other` (forms must match).
    pub fn add_assign(&mut self, ctx: &HeContext, other: &Self) {
        assert_eq!(self.ntt_form, other.ntt_form, "form mismatch in add");
        let lvl = simd::level();
        for ((m, a), b) in ctx.moduli().iter().zip(&mut self.values).zip(&other.values) {
            simd::add_mod(*m, a, b, lvl);
        }
    }

    /// `self -= other` (forms must match).
    pub fn sub_assign(&mut self, ctx: &HeContext, other: &Self) {
        assert_eq!(self.ntt_form, other.ntt_form, "form mismatch in sub");
        let lvl = simd::level();
        for ((m, a), b) in ctx.moduli().iter().zip(&mut self.values).zip(&other.values) {
            simd::sub_mod(*m, a, b, lvl);
        }
    }

    /// `self = -self`.
    pub fn negate(&mut self, ctx: &HeContext) {
        let lvl = simd::level();
        for (m, a) in ctx.moduli().iter().zip(&mut self.values) {
            simd::neg_mod(*m, a, lvl);
        }
    }

    /// Pointwise product (both operands must be in NTT form).
    pub fn mul_pointwise_assign(&mut self, ctx: &HeContext, other: &Self) {
        assert!(self.ntt_form && other.ntt_form, "pointwise mul needs NTT form");
        let lvl = simd::level();
        for ((m, a), b) in ctx.moduli().iter().zip(&mut self.values).zip(&other.values) {
            simd::mul_mod(*m, a, b, lvl);
        }
    }

    /// `self += a ⊙ b` (all three in NTT form) without an intermediate
    /// allocation — the accumulation pattern of encrypted matmul.
    pub fn add_mul_pointwise_assign(&mut self, ctx: &HeContext, a: &Self, b: &Self) {
        assert!(self.ntt_form && a.ntt_form && b.ntt_form, "needs NTT form");
        let lvl = simd::level();
        for (((m, acc), x), y) in
            ctx.moduli().iter().zip(&mut self.values).zip(&a.values).zip(&b.values)
        {
            simd::add_mul_mod(*m, acc, x, y, lvl);
        }
    }

    /// Fused key-switch accumulation (PR 10): `acc0 += x ⊙ b` and
    /// `acc1 += x ⊙ a` in one interleaved pass — each chunk of the shared
    /// digit `x` is loaded once and multiplied against both key halves,
    /// covering all RNS limbs in a single call (all five operands in NTT
    /// form). Bit-identical to two [`Self::add_mul_pointwise_assign`]
    /// calls; the fusion only changes memory traffic.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not in NTT form.
    pub fn add_mul2_pointwise_assign(
        ctx: &HeContext,
        acc0: &mut Self,
        acc1: &mut Self,
        x: &Self,
        b: &Self,
        a: &Self,
    ) {
        assert!(
            acc0.ntt_form && acc1.ntt_form && x.ntt_form && b.ntt_form && a.ntt_form,
            "needs NTT form"
        );
        let lvl = simd::level();
        let mut limbs: Vec<simd::KsLimb<'_>> = ctx
            .moduli()
            .iter()
            .zip(&mut acc0.values)
            .zip(&mut acc1.values)
            .zip(&x.values)
            .zip(&b.values)
            .zip(&a.values)
            .map(|(((((m, c0), c1), xv), bv), av)| simd::KsLimb {
                m: *m,
                acc0: c0,
                acc1: c1,
                x: xv,
                b: bv,
                a: av,
            })
            .collect();
        simd::ks_accumulate(&mut limbs, lvl);
    }

    /// Applies a Galois automorphism **in NTT form** via its evaluation-
    /// point permutation (see [`HeContext::galois_perm`]): output position
    /// `i` takes the value at `perm[i]`, per prime. This is how the
    /// NTT-resident pipeline rotates without leaving the evaluation
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if not in NTT form or the permutation length mismatches.
    pub fn permute_ntt(&self, ctx: &HeContext, perm: &[u32]) -> Self {
        let mut out = Self::zero(ctx, true);
        self.permute_ntt_into(ctx, perm, &mut out);
        out
    }

    /// [`Self::permute_ntt`] into an existing (typically arena-recycled)
    /// polynomial, overwriting every residue.
    ///
    /// # Panics
    ///
    /// Panics as [`Self::permute_ntt`], or if `out` is not shaped for
    /// `ctx`.
    pub fn permute_ntt_into(&self, ctx: &HeContext, perm: &[u32], out: &mut Self) {
        assert!(self.ntt_form, "NTT-domain automorphism needs NTT form");
        assert_eq!(perm.len(), ctx.n(), "permutation length mismatch");
        assert_eq!(out.values.len(), self.values.len(), "prime count mismatch");
        let lvl = simd::level();
        for (src, dst) in self.values.iter().zip(&mut out.values) {
            assert_eq!(dst.len(), perm.len(), "residue length mismatch");
            simd::gather(src, perm, dst, lvl);
        }
        out.ntt_form = true;
    }

    /// Rebuilds a polynomial from arena-recycled limb storage. The
    /// buffers must be shaped `num_primes × n` for the context the poly
    /// will be used with; contents are taken as-is (callers overwrite
    /// them fully or pass zeroed storage).
    pub fn from_raw_parts(values: Vec<Vec<u64>>, ntt_form: bool) -> Self {
        Self { values, ntt_form }
    }

    /// Surrenders the limb storage (for recycling into a scratch arena).
    pub fn into_raw_parts(self) -> Vec<Vec<u64>> {
        self.values
    }

    /// Applies the Galois automorphism `x → x^g` (coefficient form only).
    ///
    /// # Panics
    ///
    /// Panics if in NTT form or `g` is even / out of range.
    pub fn apply_automorphism(&self, ctx: &HeContext, g: u64) -> Self {
        assert!(!self.ntt_form, "automorphism operates on coefficient form");
        let n = ctx.n();
        let two_n = 2 * n as u64;
        assert!(g % 2 == 1 && g < two_n, "galois element must be odd and < 2n");
        let mut out = Self::zero(ctx, false);
        for (pi, m) in ctx.moduli().iter().enumerate() {
            let src = &self.values[pi];
            let dst = &mut out.values[pi];
            for (i, &c) in src.iter().enumerate() {
                let idx = (i as u64 * g) % two_n;
                if idx < n as u64 {
                    dst[idx as usize] = c;
                } else {
                    dst[(idx - n as u64) as usize] = m.neg(c);
                }
            }
        }
        out
    }

    /// Serialized size in bytes (8 bytes per residue + 2-byte header).
    pub fn serialized_size(&self) -> usize {
        2 + self.values.iter().map(|v| v.len() * 8).sum::<usize>()
    }

    /// Appends the wire encoding (form byte + residues LE) to `out`.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.ntt_form));
        out.push(self.values.len() as u8);
        for residues in &self.values {
            for &v in residues {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// Reads a polynomial written by [`RnsPoly::write_bytes`]; returns
    /// the poly and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`HeError::Malformed`] on truncated input or a prime count that
    /// does not match the context (network-facing: never panics).
    pub fn read_bytes(ctx: &HeContext, bytes: &[u8]) -> Result<(Self, usize), HeError> {
        if bytes.len() < 2 {
            return Err(HeError::Malformed { what: "poly header" });
        }
        let ntt_form = bytes[0] == 1;
        let primes = bytes[1] as usize;
        if primes != ctx.num_primes() {
            return Err(HeError::Malformed { what: "poly prime count" });
        }
        let n = ctx.n();
        let need = 2 + primes * n * 8;
        if bytes.len() < need {
            return Err(HeError::Malformed { what: "poly residues" });
        }
        let mut off = 2;
        let mut values = Vec::with_capacity(primes);
        for _ in 0..primes {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(u64::from_le_bytes(bytes[off..off + 8].try_into().expect("u64")));
                off += 8;
            }
            values.push(v);
        }
        Ok((Self { values, ntt_form }, off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HeParams;
    use primer_math::rng::seeded;

    fn ctx() -> HeContext {
        HeContext::new(HeParams::toy())
    }

    #[test]
    fn ntt_roundtrip() {
        let ctx = ctx();
        let mut rng = seeded(20);
        let p = RnsPoly::uniform(&ctx, &mut rng);
        let mut q = p.clone();
        q.to_ntt(&ctx);
        assert!(q.is_ntt());
        q.to_coeff(&ctx);
        assert_eq!(p, q);
    }

    #[test]
    fn add_sub_cancel() {
        let ctx = ctx();
        let mut rng = seeded(21);
        let a = RnsPoly::uniform(&ctx, &mut rng);
        let b = RnsPoly::uniform(&ctx, &mut rng);
        let mut c = a.clone();
        c.add_assign(&ctx, &b);
        c.sub_assign(&ctx, &b);
        assert_eq!(c, a);
    }

    #[test]
    fn automorphism_identity_element() {
        let ctx = ctx();
        let mut rng = seeded(22);
        let a = RnsPoly::uniform(&ctx, &mut rng);
        assert_eq!(a.apply_automorphism(&ctx, 1), a);
    }

    #[test]
    fn automorphism_composes() {
        let ctx = ctx();
        let n = ctx.n() as u64;
        let mut rng = seeded(23);
        let a = RnsPoly::uniform(&ctx, &mut rng);
        let g1 = 3u64;
        let g2 = 5u64;
        let lhs = a.apply_automorphism(&ctx, g1).apply_automorphism(&ctx, g2);
        let rhs = a.apply_automorphism(&ctx, (g1 * g2) % (2 * n));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ternary_is_small() {
        let ctx = ctx();
        let mut rng = seeded(24);
        let s = RnsPoly::ternary(&ctx, &mut rng);
        let m = ctx.moduli()[0];
        for &c in s.residues(0) {
            assert!(m.to_signed(c).abs() <= 1);
        }
    }

    #[test]
    fn gaussian_is_narrow() {
        let ctx = ctx();
        let mut rng = seeded(25);
        let e = RnsPoly::gaussian(&ctx, 3.2, &mut rng);
        let m = ctx.moduli()[0];
        for &c in e.residues(0) {
            assert!(m.to_signed(c).abs() < 40, "gaussian tail unreasonably fat");
        }
    }
}
