//! End-to-end serving over loopback TCP must be **bit-identical** to
//! the in-process `MemTransport` engine path — for every protocol
//! variant, and in real-garbling mode — with per-session traffic
//! attribution intact.

mod common;

use common::{reference_engine, start_server};
use primer_core::{GcMode, ProtocolVariant};
use primer_nn::TransformerConfig;
use primer_serve::ClientBuilder;

/// The acceptance bar: for all four Table II variants, a TCP client's
/// reconstructed logits equal the in-process engine's bit for bit, and
/// the client/server meters agree on the session's traffic.
#[test]
fn loopback_serving_is_bit_identical_for_all_variants() {
    let model = TransformerConfig::test_tiny();
    let tokens = vec![3usize, 17, 0, 29];
    for variant in ProtocolVariant::all() {
        let (addr, server) = start_server(model.clone(), 1, 1, 2);
        let outcome = ClientBuilder::new(variant)
            .run(addr, std::slice::from_ref(&tokens))
            .expect("client run");
        let stats = server.join().expect("server thread");

        let reference = reference_engine(&model, variant, GcMode::Simulated).run(&tokens);
        assert!(reference.matches_plaintext_reference(), "{}: reference", variant.name());
        assert_eq!(
            outcome.predictions[0].logits,
            reference.logits,
            "{}: TCP logits != MemTransport logits",
            variant.name()
        );
        assert_eq!(outcome.predictions[0].predicted, reference.predicted);

        // Traffic attribution: the server's summary (setup + per-query
        // phases) accounts for every byte the client metered on the
        // online + offline channels — nothing escapes the phase deltas.
        let summary = outcome.summary;
        assert_eq!(summary.queries, 1);
        assert!(summary.offline.bytes > 0 || variant == ProtocolVariant::Base);
        assert!(summary.online.bytes > 0);
        assert!(summary.setup.bytes > 0, "setup carries the Galois-key flight");
        assert_eq!(
            outcome.client_traffic.total_bytes(),
            summary.traffic.total_bytes() + summary.setup.bytes,
            "{}: client meter disagrees with server attribution",
            variant.name()
        );

        // The registry recorded the session with the same numbers.
        assert_eq!(stats.sessions().len(), 1);
        let rec = &stats.sessions()[0];
        assert_eq!(rec.variant, variant);
        assert_eq!(rec.queries, 1);
        assert_eq!(rec.traffic.total_bytes(), summary.traffic.total_bytes());
    }
}

/// Real garbling + OT over TCP: same bit-exactness bar as
/// `tests/garbled_mode.rs` runs in-process.
#[test]
fn loopback_serving_with_real_garbling_matches_engine() {
    let model = TransformerConfig::test_tiny();
    let tokens = vec![9usize, 2, 31, 12];
    let (addr, server) = start_server(model.clone(), 1, 1, 1);
    let outcome = ClientBuilder::new(ProtocolVariant::Fpc)
        .mode(GcMode::Garbled)
        .run(addr, std::slice::from_ref(&tokens))
        .expect("client run");
    server.join().expect("server thread");

    let reference = reference_engine(&model, ProtocolVariant::Fpc, GcMode::Garbled).run(&tokens);
    assert!(reference.matches_plaintext_reference());
    assert_eq!(outcome.predictions[0].logits, reference.logits);
}

/// A multi-query session exercises the pipelined offline producer: the
/// server clamps the session's pool to its configured bound of 1, so
/// its producer alternates strictly between producing ahead and being
/// blocked on the online consumer — and every query must still be
/// exact.
#[test]
fn multi_query_session_pipelines_and_stays_exact() {
    let model = TransformerConfig::test_tiny();
    let queries =
        vec![vec![4usize, 9, 23, 7], vec![31usize, 30, 29, 28], vec![7usize, 7, 7, 7]];
    let (addr, server) = start_server(model.clone(), 1, 1, 1);
    let outcome =
        ClientBuilder::new(ProtocolVariant::Fp).run(addr, &queries).expect("client run");
    server.join().expect("server thread");

    let engine = reference_engine(&model, ProtocolVariant::Fp, GcMode::Simulated);
    let reference = engine.serve(&queries);
    for (i, (got, want)) in outcome.predictions.iter().zip(&reference).enumerate() {
        assert!(want.matches_plaintext_reference(), "reference query {i}");
        assert_eq!(got.logits, want.logits, "query {i} diverged over TCP");
    }
    assert_eq!(outcome.summary.queries, 3);
    // Distinct inputs through one session produce distinct logits.
    assert_ne!(outcome.predictions[0].logits, outcome.predictions[1].logits);
}

/// A client whose queries do not fit the negotiated model fails cleanly
/// client-side (no bytes of a broken session hit the engine).
#[test]
fn mismatched_query_shape_is_rejected_client_side() {
    let model = TransformerConfig::test_tiny();
    let (addr, server) = start_server(model, 1, 1, 1);
    let err = ClientBuilder::new(ProtocolVariant::F)
        .run(addr, &[vec![1usize, 2]])
        .expect_err("wrong token count must fail");
    assert!(matches!(err, primer_serve::ClientError::Config(_)), "{err}");
    // The server session fails too (its worker sees the dead peer);
    // the server must survive and report zero completed sessions.
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions().len(), 0);
}
