//! Property-based tests of the HE scheme's homomorphisms.

use primer_he::{BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator};
use primer_math::rng::seeded;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

struct Fixture {
    ctx: HeContext,
    encoder: BatchEncoder,
    encryptor: Encryptor,
    eval: Evaluator,
    keys: primer_he::GaloisKeys,
}

thread_local! {
    static FX: Fixture = {
        let ctx = HeContext::new(HeParams::toy());
        let encoder = BatchEncoder::new(&ctx);
        let mut rng = seeded(900);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 901);
        let eval = Evaluator::new(&ctx);
        let keys = kg.galois_keys_pow2(&[], false, &mut rng);
        Fixture { ctx, encoder, encryptor, eval, keys }
    };
}

fn with_fixture(
    body: impl FnOnce(&Fixture) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    FX.with(|fx| body(fx))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Enc/Dec is the identity on arbitrary slot vectors.
    #[test]
    fn encrypt_decrypt_roundtrip(seed in 0u64..10_000) {
        with_fixture(|f| {
            let t = f.ctx.params().t();
            let mut rng = seeded(seed);
            let vals: Vec<u64> =
                (0..64).map(|_| rand::Rng::gen_range(&mut rng, 0..t)).collect();
            let ct = f.encryptor.encrypt(&f.encoder.encode(&vals));
            let got = f.encoder.decode(&f.encryptor.decrypt(&ct));
            prop_assert_eq!(&got[..64], &vals[..]);
            Ok(())
        })?;
    }

    /// Dec(Enc(a) + Enc(b)) == a + b mod t, slot-wise.
    #[test]
    fn addition_homomorphism(seed in 0u64..10_000) {
        with_fixture(|f| {
            let t = f.ctx.params().t();
            let mut rng = seeded(seed ^ 0xA);
            let a: Vec<u64> = (0..32).map(|_| rand::Rng::gen_range(&mut rng, 0..t)).collect();
            let b: Vec<u64> = (0..32).map(|_| rand::Rng::gen_range(&mut rng, 0..t)).collect();
            let ca = f.encryptor.encrypt(&f.encoder.encode(&a));
            let cb = f.encryptor.encrypt(&f.encoder.encode(&b));
            let got = f.encoder.decode(&f.encryptor.decrypt(&f.eval.add(&ca, &cb)));
            for i in 0..32 {
                prop_assert_eq!(got[i], (a[i] + b[i]) % t);
            }
            Ok(())
        })?;
    }

    /// Dec(Enc(a) ⊙ pt) == a·w mod t for bounded weights.
    #[test]
    fn plain_mult_homomorphism(seed in 0u64..10_000) {
        with_fixture(|f| {
            let t = f.ctx.params().t();
            let mut rng = seeded(seed ^ 0xB);
            let a: Vec<u64> =
                (0..32).map(|_| rand::Rng::gen_range(&mut rng, 0..1000)).collect();
            let w: Vec<u64> =
                (0..32).map(|_| rand::Rng::gen_range(&mut rng, 0..1000)).collect();
            let ca = f.encryptor.encrypt(&f.encoder.encode(&a));
            let mp = f.eval.prepare_mul_plain(&f.encoder.encode(&w));
            let got = f.encoder.decode(&f.encryptor.decrypt(&f.eval.mul_plain(&ca, &mp)));
            for i in 0..32 {
                prop_assert_eq!(got[i], a[i] * w[i] % t);
            }
            Ok(())
        })?;
    }

    /// Rotation by any step permutes slots cyclically per row.
    #[test]
    fn rotation_permutes(step in 1usize..511) {
        with_fixture(|f| {
            let rs = f.encoder.row_size();
            let vals: Vec<u64> = (0..2 * rs as u64).map(|v| v % 997).collect();
            let ct = f.encryptor.encrypt(&f.encoder.encode(&vals));
            let rot = f.eval.rotate_rows(&ct, step, &f.keys).expect("pow2 coverage");
            let got = f.encoder.decode(&f.encryptor.decrypt(&rot));
            for i in 0..rs {
                prop_assert_eq!(got[i], vals[(i + step) % rs]);
                prop_assert_eq!(got[rs + i], vals[rs + (i + step) % rs]);
            }
            Ok(())
        })?;
    }

    /// Serialization roundtrips ciphertexts exactly (fresh + evaluated).
    #[test]
    fn ciphertext_serialization_roundtrip(seed in 0u64..10_000) {
        with_fixture(|f| {
            let mut rng = seeded(seed ^ 0xC);
            let t = f.ctx.params().t();
            let vals: Vec<u64> =
                (0..16).map(|_| rand::Rng::gen_range(&mut rng, 0..t)).collect();
            let fresh = f.encryptor.encrypt(&f.encoder.encode(&vals));
            let evaluated = f.eval.add(&fresh, &fresh);
            for ct in [fresh, evaluated] {
                let bytes = ct.to_bytes();
                prop_assert_eq!(bytes.len(), ct.serialized_size());
                let (back, used) = primer_he::Ciphertext::from_bytes(&f.ctx, &bytes);
                prop_assert_eq!(used, bytes.len());
                prop_assert_eq!(back, ct);
            }
            Ok(())
        })?;
    }
}
