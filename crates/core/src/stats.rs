//! Per-step timing/traffic accounting in the paper's Table II categories.

use primer_net::{NetworkModel, TrafficSnapshot};
use std::time::Duration;

/// The six step categories of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StepCategory {
    /// Word + positional embedding.
    Embed,
    /// Q/K/V projections.
    Qkv,
    /// The Q×Kᵀ ciphertext–ciphertext product (and, under CHGS, the
    /// combined embed+QKV module the paper folds into this step).
    QxK,
    /// SoftMax (GC).
    Softmax,
    /// Attention × V.
    AttnValue,
    /// Everything else: output projection, LayerNorms, feed-forward,
    /// classifier, key material.
    Others,
}

impl StepCategory {
    /// All categories in Table II order.
    pub fn all() -> [StepCategory; 6] {
        [
            StepCategory::Embed,
            StepCategory::Qkv,
            StepCategory::QxK,
            StepCategory::Softmax,
            StepCategory::AttnValue,
            StepCategory::Others,
        ]
    }

    /// The paper's column header.
    pub fn name(&self) -> &'static str {
        match self {
            StepCategory::Embed => "Embed",
            StepCategory::Qkv => "QKV",
            StepCategory::QxK => "QxK",
            StepCategory::Softmax => "SoftMax",
            StepCategory::AttnValue => "Atten.Value",
            StepCategory::Others => "Others",
        }
    }
}

/// Accumulated cost of one category in one phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCost {
    /// Wall-clock compute time (both parties, serialized).
    pub compute: Duration,
    /// Bytes on the wire.
    pub bytes: u64,
    /// Message flights.
    pub messages: u64,
}

impl PhaseCost {
    /// Adds network time under a model: compute + latency/bandwidth.
    pub fn total_with_network(&self, net: &NetworkModel) -> Duration {
        self.compute + net.time_for(self.messages, self.bytes)
    }

    pub(crate) fn absorb(&mut self, elapsed: Duration, traffic: TrafficSnapshot) {
        self.compute += elapsed;
        self.bytes += traffic.total_bytes();
        self.messages += traffic.total_messages();
    }

    /// Merges another cost into this one.
    pub fn merge(&mut self, other: &PhaseCost) {
        self.compute += other.compute;
        self.bytes += other.bytes;
        self.messages += other.messages;
    }
}

/// Offline + online cost for every category.
#[derive(Debug, Clone, Default)]
pub struct StepBreakdown {
    costs: Vec<(StepCategory, PhaseCost, PhaseCost)>,
}

impl StepBreakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self { costs: StepCategory::all().iter().map(|&c| (c, PhaseCost::default(), PhaseCost::default())).collect() }
    }

    /// Mutable (offline, online) entry for a category.
    pub fn entry(&mut self, cat: StepCategory) -> (&mut PhaseCost, &mut PhaseCost) {
        let e = self
            .costs
            .iter_mut()
            .find(|(c, _, _)| *c == cat)
            .expect("all categories present");
        (&mut e.1, &mut e.2)
    }

    /// (offline, online) for a category.
    pub fn get(&self, cat: StepCategory) -> (PhaseCost, PhaseCost) {
        let e = self.costs.iter().find(|(c, _, _)| *c == cat).expect("present");
        (e.1, e.2)
    }

    /// Total offline cost across categories.
    pub fn offline_total(&self) -> PhaseCost {
        let mut acc = PhaseCost::default();
        for (_, off, _) in &self.costs {
            acc.merge(off);
        }
        acc
    }

    /// Total online cost across categories.
    pub fn online_total(&self) -> PhaseCost {
        let mut acc = PhaseCost::default();
        for (_, _, on) in &self.costs {
            acc.merge(on);
        }
        acc
    }

    /// Folds all offline cost into online (Primer-base: nothing is
    /// precomputed, the same work simply runs during inference).
    pub fn fold_offline_into_online(&mut self) {
        for (_, off, on) in &mut self.costs {
            on.merge(&*off);
            *off = PhaseCost::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_folds() {
        let mut b = StepBreakdown::new();
        b.entry(StepCategory::Embed).0.absorb(
            Duration::from_millis(5),
            TrafficSnapshot { c2s_bytes: 100, c2s_messages: 1, ..Default::default() },
        );
        b.entry(StepCategory::Embed).1.absorb(Duration::from_millis(2), Default::default());
        let (off, on) = b.get(StepCategory::Embed);
        assert_eq!(off.bytes, 100);
        assert_eq!(on.compute, Duration::from_millis(2));
        b.fold_offline_into_online();
        let (off, on) = b.get(StepCategory::Embed);
        assert_eq!(off.bytes, 0);
        assert_eq!(on.bytes, 100);
        assert_eq!(on.compute, Duration::from_millis(7));
    }

    #[test]
    fn network_time_is_added() {
        let mut c = PhaseCost::default();
        c.absorb(
            Duration::from_millis(10),
            TrafficSnapshot { c2s_bytes: 1_000_000, c2s_messages: 2, ..Default::default() },
        );
        let net = NetworkModel::paper_lan();
        let total = c.total_with_network(&net);
        // 10ms + 2×2.3ms + 10ms transfer = ~24.6ms
        assert!(total > Duration::from_millis(24) && total < Duration::from_millis(26));
    }
}
