//! Minimal big-unsigned arithmetic with Montgomery exponentiation, just
//! enough for discrete-log base OT over MODP groups.

/// A big unsigned integer, little-endian u64 limbs, fixed width per group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero with `n` limbs.
    pub fn zero(n: usize) -> Self {
        Self { limbs: vec![0; n] }
    }

    /// From a small value.
    pub fn from_u64(v: u64, n: usize) -> Self {
        let mut limbs = vec![0; n];
        limbs[0] = v;
        Self { limbs }
    }

    /// From big-endian hex (whitespace ignored), padded to `n` limbs.
    ///
    /// # Panics
    ///
    /// Panics on invalid hex or overflow of `n` limbs.
    pub fn from_hex(hex: &str, n: usize) -> Self {
        let clean: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
        let mut limbs = vec![0u64; n];
        let bytes: Vec<u8> = {
            let padded =
                if clean.len() % 2 == 1 { format!("0{clean}") } else { clean };
            (0..padded.len() / 2)
                .map(|i| u8::from_str_radix(&padded[2 * i..2 * i + 2], 16).expect("hex"))
                .collect()
        };
        for (i, b) in bytes.iter().rev().enumerate() {
            assert!(i / 8 < n, "hex value exceeds {n} limbs");
            limbs[i / 8] |= (*b as u64) << (8 * (i % 8));
        }
        Self { limbs }
    }

    /// Number of limbs.
    pub fn width(&self) -> usize {
        self.limbs.len()
    }

    /// Little-endian bytes.
    pub fn to_bytes_le(&self) -> Vec<u8> {
        self.limbs.iter().flat_map(|l| l.to_le_bytes()).collect()
    }

    /// From little-endian bytes, padded to `n` limbs.
    pub fn from_bytes_le(bytes: &[u8], n: usize) -> Self {
        let mut limbs = vec![0u64; n];
        for (i, b) in bytes.iter().enumerate() {
            assert!(i / 8 < n, "byte string exceeds {n} limbs");
            limbs[i / 8] |= (*b as u64) << (8 * (i % 8));
        }
        Self { limbs }
    }

    /// `self >= other` (equal widths).
    pub fn ge(&self, other: &Self) -> bool {
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != other.limbs[i] {
                return self.limbs[i] > other.limbs[i];
            }
        }
        true
    }

    /// Subtraction (caller guarantees `self >= other`).
    pub fn sub_assign(&mut self, other: &Self) {
        let borrow = self.sub_assign_wrapping(other);
        debug_assert_eq!(borrow, 0, "bignum underflow");
    }

    /// Wrapping subtraction mod `2^(64·limbs)`; returns the final borrow.
    /// Used when a conceptual carry bit above the top limb cancels the
    /// borrow (modular doubling / Montgomery final reduction).
    pub fn sub_assign_wrapping(&mut self, other: &Self) -> u64 {
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let (d1, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 || b2) as u64;
        }
        borrow
    }

    fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }
}

/// A Montgomery arithmetic context modulo an odd prime.
#[derive(Debug, Clone)]
pub struct MontCtx {
    /// The modulus.
    pub p: BigUint,
    n0_inv: u64, // -p^{-1} mod 2^64
    r2: BigUint, // R^2 mod p, R = 2^(64·limbs)
}

impl MontCtx {
    /// Builds a context for an odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if `p` is even.
    pub fn new(p: BigUint) -> Self {
        assert!(p.is_odd(), "Montgomery requires an odd modulus");
        // n0_inv = -p^{-1} mod 2^64 by Newton iteration.
        let p0 = p.limbs[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(p0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R mod p by repeated doubling, then square to get R².
        let n = p.width();
        let mut r = BigUint::zero(n);
        // Set r = 2^(64n - 1) mod p … simpler: start from 1 and double 64n times.
        r.limbs[0] = 1;
        let mut ctx = Self { p: p.clone(), n0_inv, r2: BigUint::zero(n) };
        for _ in 0..(64 * n * 2) {
            ctx.double_mod(&mut r);
        }
        ctx.r2 = r;
        ctx
    }

    fn double_mod(&self, x: &mut BigUint) {
        let mut carry = 0u64;
        for i in 0..x.limbs.len() {
            let v = x.limbs[i];
            x.limbs[i] = (v << 1) | carry;
            carry = v >> 63;
        }
        if carry == 1 {
            // 2x = 2^(64n) + x_lo; the wrap cancels the lost carry.
            x.sub_assign_wrapping(&self.p);
        } else if x.ge(&self.p) {
            x.sub_assign(&self.p);
        }
    }

    /// Montgomery product `a·b·R^{-1} mod p` (CIOS).
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let n = self.p.width();
        let mut t = vec![0u64; n + 2];
        for i in 0..n {
            // t += a[i] * b
            let mut carry = 0u128;
            for (tj, &bj) in t.iter_mut().zip(&b.limbs) {
                let v = *tj as u128 + a.limbs[i] as u128 * bj as u128 + carry;
                *tj = v as u64;
                carry = v >> 64;
            }
            let v = t[n] as u128 + carry;
            t[n] = v as u64;
            t[n + 1] = (v >> 64) as u64;
            // m = t[0] * n0_inv mod 2^64; t += m * p; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let v = t[0] as u128 + m as u128 * self.p.limbs[0] as u128;
            let mut carry = v >> 64;
            for j in 1..n {
                let v = t[j] as u128 + m as u128 * self.p.limbs[j] as u128 + carry;
                t[j - 1] = v as u64;
                carry = v >> 64;
            }
            let v = t[n] as u128 + carry;
            t[n - 1] = v as u64;
            t[n] = t[n + 1] + (v >> 64) as u64;
            t[n + 1] = 0;
        }
        let mut out = BigUint { limbs: t[..n].to_vec() };
        if t[n] != 0 {
            out.sub_assign_wrapping(&self.p);
        } else if out.ge(&self.p) {
            out.sub_assign(&self.p);
        }
        out
    }

    /// To Montgomery form.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &self.r2)
    }

    /// From Montgomery form.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        let one = BigUint::from_u64(1, self.p.width());
        self.mont_mul(a, &one)
    }

    /// Modular multiplication (plain domain).
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod p` (square-and-multiply over
    /// Montgomery representation). `exp` is little-endian bytes.
    pub fn pow_mod(&self, base: &BigUint, exp_le: &[u8]) -> BigUint {
        let n = self.p.width();
        let mut acc = self.to_mont(&BigUint::from_u64(1, n));
        let base_m = self.to_mont(base);
        // MSB-first over bits.
        for byte in exp_le.iter().rev() {
            for bit in (0..8).rev() {
                acc = self.mont_mul(&acc, &acc);
                if (byte >> bit) & 1 == 1 {
                    acc = self.mont_mul(&acc, &base_m);
                }
            }
        }
        self.from_mont(&acc)
    }

    /// Modular inverse via Fermat (`p` prime): `a^(p-2)`.
    pub fn inv_mod(&self, a: &BigUint) -> BigUint {
        let mut exp = self.p.clone();
        exp.sub_assign(&BigUint::from_u64(2, self.p.width()));
        self.pow_mod(a, &exp.to_bytes_le())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> MontCtx {
        // 2^61 - 1 is a Mersenne prime; use 4 limbs to exercise carries.
        MontCtx::new(BigUint::from_u64((1u64 << 61) - 1, 4))
    }

    #[test]
    fn mont_roundtrip() {
        let ctx = small_ctx();
        let a = BigUint::from_u64(123_456_789, 4);
        let am = ctx.to_mont(&a);
        assert_eq!(ctx.from_mont(&am), a);
    }

    #[test]
    fn mul_matches_u128() {
        let ctx = small_ctx();
        let p = (1u128 << 61) - 1;
        for (x, y) in [(3u64, 5u64), (1 << 60, 1 << 60), (999_999_937, 87_178_291_199)] {
            let got = ctx.mul_mod(&BigUint::from_u64(x, 4), &BigUint::from_u64(y, 4));
            let want = ((x as u128 * y as u128) % p) as u64;
            assert_eq!(got, BigUint::from_u64(want, 4), "{x}*{y}");
        }
    }

    #[test]
    fn pow_matches_u128() {
        let ctx = small_ctx();
        let p = (1u128 << 61) - 1;
        let base = 7u64;
        let exp = 1_000_003u64;
        let got = ctx.pow_mod(&BigUint::from_u64(base, 4), &exp.to_le_bytes());
        // Reference square-and-multiply in u128.
        let mut want: u128 = 1;
        let mut b = base as u128;
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                want = want * b % p;
            }
            b = b * b % p;
            e >>= 1;
        }
        assert_eq!(got, BigUint::from_u64(want as u64, 4));
    }

    #[test]
    fn fermat_inverse() {
        let ctx = small_ctx();
        let a = BigUint::from_u64(42_424_242, 4);
        let inv = ctx.inv_mod(&a);
        assert_eq!(ctx.mul_mod(&a, &inv), BigUint::from_u64(1, 4));
    }

    #[test]
    fn hex_roundtrip() {
        let v = BigUint::from_hex("ffffffff00000001deadbeef", 3);
        assert_eq!(v.limbs[0], 0x00000001deadbeef);
        assert_eq!(v.limbs[1], 0xffffffff);
        assert_eq!(v.limbs[2], 0);
    }
}
