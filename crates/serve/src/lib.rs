//! # `primer_serve` — concurrent private-inference serving over TCP
//!
//! The network serving stack on top of the session engine: a
//! [`Server`] accepts many TCP clients, negotiates a session with each
//! ([`proto`]), and serves them concurrently — one worker per
//! connection, bounded by [`ServerConfig::max_workers`] — while each
//! session's offline bundle production runs on a dedicated producer
//! thread, overlapping in-flight online queries.
//!
//! ## Connection anatomy
//!
//! Every connection is one multiplexed
//! [`TcpConnection`](primer_net::tcp::TcpConnection) carrying three
//! logical channels:
//!
//! | channel | constant | traffic |
//! |---------|----------|---------|
//! | 0 | [`CH_ONLINE`]  | Setup (Galois keys) + per-query online phases |
//! | 1 | [`CH_OFFLINE`] | pipelined offline bundle production |
//! | 2 | [`CH_CONTROL`] | handshake, suspend/resume, end-of-session stats, live `/stats` polls |
//!
//! Keeping the phases on separate channels (each with its own meter) is
//! what lets a session's offline producer run *while* online queries
//! are in flight without corrupting per-phase traffic attribution.
//!
//! ## Determinism
//!
//! The served model's weights are drawn from a seed the server announces
//! in its welcome frame, so both parties quantize bit-identical models —
//! the protocol then guarantees the reconstructed logits equal the
//! plaintext fixed-point reference exactly, regardless of session
//! randomness, concurrency or transport. The `tests/` suites assert
//! TCP serving is bit-identical to the in-process `Engine` path.
//!
//! Binaries: `primer-server` and `primer-client` wrap [`Server`] and
//! [`ClientBuilder`] with a tiny CLI (see the README quickstart).

pub(crate) mod cache;
pub mod client;
pub mod error;
pub mod proto;
pub mod registry;
pub mod server;
pub(crate) mod suspend;

#[allow(deprecated)]
pub use client::{
    poll_stats, run_queries, run_random_queries, sample_random_queries, ClientBuilder,
    ClientConfig, ClientError, Prediction, RunOutcome, SessionHandle, SuspendedSession,
};
pub use error::{ServeError, SessionOutcome};
pub use proto::{
    ClientHello, PhaseStat, Profile, ProtoError, ServerWelcome, SessionState, SessionStat,
    SessionSummary, StatsRequest, StatsSnapshot, StatsSnapshotBuilder, SuspendReply,
    SuspendRequest,
};
pub use registry::{PreparedPlaneStats, ServerStats, SessionRecord};
pub use server::{Server, ServerBuilder, ServerConfig, ShedPolicy};

use primer_core::{ConfigError, PhaseCost, SystemConfig};
use primer_net::{LinkShaper, MeteredTransport, ShapedTransport, TcpTransport};
use primer_nn::TransformerConfig;
use std::sync::Arc;

/// Connection channel carrying Setup + online query phases.
pub const CH_ONLINE: usize = 0;
/// Connection channel carrying pipelined offline bundle production.
pub const CH_OFFLINE: usize = 1;
/// Connection channel carrying the handshake and stats frames.
pub const CH_CONTROL: usize = 2;

/// Instantiates the [`SystemConfig`] a negotiated profile names.
///
/// # Errors
///
/// [`ConfigError`] when the model cannot be packed under the profile.
pub(crate) fn system_for(
    profile: Profile,
    model: &TransformerConfig,
) -> Result<SystemConfig, ConfigError> {
    match profile {
        Profile::Test => SystemConfig::test_profile(model),
        Profile::Paper => SystemConfig::paper_profile(model),
    }
}

/// Wraps a channel in a [`ShapedTransport`] charging the connection's
/// **shared** link shaper when one is configured — all channels of a
/// connection queue behind one modeled link, so a pipelined session
/// cannot exceed the modeled bandwidth in aggregate. Boxed so workers
/// hold either shape uniformly.
pub(crate) fn maybe_shaped(
    t: TcpTransport,
    shaper: Option<&Arc<LinkShaper>>,
) -> Box<dyn MeteredTransport + Send> {
    match shaper {
        Some(s) => Box::new(ShapedTransport::with_shaper(t, Arc::clone(s))),
        None => Box::new(t),
    }
}

/// Converts an engine [`PhaseCost`] into its wire summary form.
pub(crate) fn phase_summary(p: &PhaseCost) -> proto::PhaseSummary {
    proto::PhaseSummary {
        compute_ns: p.compute.as_nanos() as u64,
        bytes: p.bytes,
        messages: p.messages,
    }
}

/// Resolves a model name (`test-tiny`, `bert-base`, …) to its config —
/// shared by both binaries.
pub fn model_by_name(name: &str) -> Option<TransformerConfig> {
    Some(match name {
        "test-tiny" => TransformerConfig::test_tiny(),
        "test-small" => TransformerConfig::test_small(),
        "bert-tiny" => TransformerConfig::bert_tiny(),
        "bert-small" => TransformerConfig::bert_small(),
        "bert-base" => TransformerConfig::bert_base(),
        "bert-medium" => TransformerConfig::bert_medium(),
        "bert-large" => TransformerConfig::bert_large(),
        _ => return None,
    })
}
