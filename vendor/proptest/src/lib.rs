//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset of proptest the Primer test suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * range strategies (`0u64..10_000`, `-2048i64..2048`, `1usize..6`),
//! * [`collection::vec`] for vectors of range-strategy elements,
//! * [`prop_assert!`] / [`prop_assert_eq!`] and
//!   [`test_runner::TestCaseError`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! exact inputs instead), and case generation is deterministic — the
//! RNG for case `i` of test `t` is seeded from `hash(t) ⊕ i`, so every
//! run explores the same inputs. Case counts default to
//! [`test_runner::DEFAULT_CASES`] and can be raised globally with the
//! `PROPTEST_CASES` environment variable.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    // A `prop_assume!` reject regenerates the case from a
                    // perturbed seed (attempt 0 keeps the canonical seed,
                    // so suites without rejects are unaffected), capped
                    // like upstream so a vacuous property cannot pass.
                    let mut attempt: u64 = 0;
                    loop {
                        let mut runner_rng = $crate::test_runner::case_rng(
                            test_path,
                            case as u64 ^ (attempt << 32),
                        );
                        $(
                            let $arg = $crate::strategy::Strategy::new_value(
                                &($strategy),
                                &mut runner_rng,
                            );
                        )+
                        let inputs = || {
                            let mut s = String::new();
                            $(
                                s.push_str(concat!(stringify!($arg), " = "));
                                s.push_str(&format!("{:?}, ", $arg));
                            )+
                            s
                        };
                        let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        match outcome {
                            ::std::result::Result::Ok(()) => break,
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(reason)) => {
                                attempt += 1;
                                if attempt >= $crate::test_runner::MAX_REJECTS_PER_CASE {
                                    panic!(
                                        "proptest {}: case {}/{} rejected {} times \
                                         (last: {}); assumption too restrictive",
                                        test_path, case + 1, config.cases, attempt, reason,
                                    );
                                }
                            }
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                                panic!(
                                    "proptest {} failed at case {}/{}:\n  {}\n  inputs: {}",
                                    test_path, case + 1, config.cases, msg, inputs(),
                                );
                            }
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format_args!($($fmt)+),
            )));
        }
    };
}

/// `assert_eq!` that reports through [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n  {}",
                left, right,
                format_args!($($fmt)+),
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left,
            )));
        }
    }};
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
