//! Wire labels, the global free-XOR offset, and the garbling hash.

use crate::aes::Aes128;
use rand::Rng;

/// A 128-bit wire label. The least-significant bit is the point-and-
/// permute (color) bit.
pub type Label = u128;

/// Color bit of a label.
#[inline]
pub fn color(l: Label) -> bool {
    l & 1 == 1
}

/// Samples the global free-XOR offset `R` (color bit forced to 1 so the
/// two labels of every wire have opposite colors).
pub fn sample_delta<R: Rng + ?Sized>(rng: &mut R) -> Label {
    rng.gen::<u128>() | 1
}

/// Samples a fresh zero-label.
pub fn sample_label<R: Rng + ?Sized>(rng: &mut R) -> Label {
    rng.gen::<u128>()
}

/// The fixed-key garbling hash `H(L, tweak) = π(2L ⊕ tweak) ⊕ (2L ⊕
/// tweak)` with `π` = fixed-key AES-128 (the standard JustGarble /
/// half-gates instantiation).
#[derive(Debug, Clone)]
pub struct GarbleHash {
    aes: Aes128,
}

impl GarbleHash {
    /// The stack-wide fixed-key hash.
    pub fn new() -> Self {
        Self { aes: Aes128::fixed() }
    }

    /// Hashes a label under a gate-unique tweak.
    #[inline]
    pub fn hash(&self, label: Label, tweak: u64) -> u128 {
        let x = (label << 1) ^ (tweak as u128);
        self.aes.encrypt_block(x) ^ x
    }
}

impl Default for GarbleHash {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_math::rng::seeded;

    #[test]
    fn delta_has_color_one() {
        let mut rng = seeded(90);
        for _ in 0..10 {
            assert!(color(sample_delta(&mut rng)));
        }
    }

    #[test]
    fn hash_depends_on_tweak_and_label() {
        let h = GarbleHash::new();
        assert_ne!(h.hash(5, 1), h.hash(5, 2));
        assert_ne!(h.hash(5, 1), h.hash(6, 1));
        assert_eq!(h.hash(5, 1), h.hash(5, 1));
    }
}
