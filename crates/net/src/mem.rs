//! In-process channel transport between two party threads.

use crate::metering::Meter;
use crate::transport::{MeteredTransport, Transport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// One endpoint of an in-memory duplex channel.
#[derive(Debug)]
pub struct MemTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    meter: Arc<Meter>,
    is_client: bool,
}

impl MemTransport {
    /// Creates a connected (client, server) endpoint pair sharing a meter.
    pub fn pair() -> (MemTransport, MemTransport, Arc<Meter>) {
        let meter = Meter::new();
        let (tx_c2s, rx_c2s) = unbounded();
        let (tx_s2c, rx_s2c) = unbounded();
        let client = MemTransport {
            tx: tx_c2s,
            rx: rx_s2c,
            meter: Arc::clone(&meter),
            is_client: true,
        };
        let server = MemTransport {
            tx: tx_s2c,
            rx: rx_c2s,
            meter: Arc::clone(&meter),
            is_client: false,
        };
        (client, server, meter)
    }

    /// The shared traffic meter.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }
}

impl Transport for MemTransport {
    fn send(&self, bytes: &[u8]) {
        self.send_owned(bytes.to_vec());
    }

    /// Owned sends move straight into the channel — the in-process hot
    /// path stays zero-copy.
    fn send_owned(&self, bytes: Vec<u8>) {
        if self.is_client {
            self.meter.c2s.record(bytes.len());
        } else {
            self.meter.s2c.record(bytes.len());
        }
        self.tx.send(bytes).expect("peer endpoint dropped mid-protocol");
    }

    fn recv(&self) -> Vec<u8> {
        self.rx.recv().expect("peer endpoint dropped mid-protocol")
    }

    fn try_recv(&self) -> crate::transport::PollRecv {
        match self.rx.try_recv() {
            Ok(Some(bytes)) => crate::transport::PollRecv::Frame(bytes),
            Ok(None) => crate::transport::PollRecv::Empty,
            Err(_) => crate::transport::PollRecv::Disconnected,
        }
    }

    fn pending(&self) -> Option<usize> {
        Some(self.rx.len())
    }
}

impl MeteredTransport for MemTransport {
    fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }
}

/// Runs a two-party protocol: `client` and `server` closures execute on
/// their own threads with connected transports; returns both results and
/// the shared meter.
///
/// # Panics
///
/// Propagates panics from either party (protocol bugs fail loudly).
pub fn run_two_party<C, S, RC, RS>(client: C, server: S) -> (RC, RS, Arc<Meter>)
where
    C: FnOnce(MemTransport) -> RC + Send + 'static,
    S: FnOnce(MemTransport) -> RS + Send + 'static,
    RC: Send + 'static,
    RS: Send + 'static,
{
    let (ct, st, meter) = MemTransport::pair();
    let server_handle = std::thread::spawn(move || server(st));
    let client_out = client(ct);
    let server_out = server_handle.join().expect("server thread panicked");
    (client_out, server_out, meter)
}

/// Runs a **persistent** two-party protocol: one client/server thread
/// pair stays connected over a single [`MemTransport`] pair across many
/// protocol rounds (the serving model of the session engine).
///
/// Each party first runs its `setup` closure exactly once (key exchange,
/// weight preparation, …) producing its long-lived session state, then
/// its `round` closure once per query: the client consumes one query per
/// round, the server is driven by the round index alone (it never sees
/// the queries). Both parties execute the same number of rounds, so the
/// message schedule stays in lockstep by construction.
///
/// # Panics
///
/// Propagates panics from either party (protocol bugs fail loudly).
#[allow(clippy::type_complexity)]
pub fn run_two_party_persistent<Q, CSetup, CState, CRound, RC, SSetup, SState, SRound, RS>(
    queries: Vec<Q>,
    client_setup: CSetup,
    client_round: CRound,
    server_setup: SSetup,
    server_round: SRound,
) -> (Vec<RC>, Vec<RS>, Arc<Meter>)
where
    Q: Send + 'static,
    CSetup: FnOnce(&MemTransport) -> CState + Send + 'static,
    CRound: FnMut(&mut CState, Q, &MemTransport) -> RC + Send + 'static,
    RC: Send + 'static,
    SSetup: FnOnce(&MemTransport) -> SState + Send + 'static,
    SRound: FnMut(&mut SState, usize, &MemTransport) -> RS + Send + 'static,
    RS: Send + 'static,
{
    let rounds = queries.len();
    let (ct, st, meter) = MemTransport::pair();
    let server_handle = std::thread::spawn(move || {
        let mut state = server_setup(&st);
        let mut round = server_round;
        (0..rounds).map(|i| round(&mut state, i, &st)).collect::<Vec<RS>>()
    });
    let mut state = client_setup(&ct);
    let mut round = client_round;
    let client_out: Vec<RC> =
        queries.into_iter().map(|q| round(&mut state, q, &ct)).collect();
    let server_out = server_handle.join().expect("server thread panicked");
    (client_out, server_out, meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::wire;

    #[test]
    fn ping_pong() {
        let (c, s, meter) = MemTransport::pair();
        let h = std::thread::spawn(move || {
            let msg = s.recv();
            let vals = wire::decode_u64s(&msg);
            s.send(&wire::encode_u64s(&[vals.iter().sum::<u64>()]));
        });
        c.send(&wire::encode_u64s(&[1, 2, 3]));
        let reply = wire::decode_u64s(&c.recv());
        h.join().expect("server ok");
        assert_eq!(reply, vec![6]);
        assert_eq!(meter.c2s.messages(), 1);
        assert_eq!(meter.s2c.messages(), 1);
        assert!(meter.total_bytes() > 0);
    }

    #[test]
    fn persistent_parties_share_setup_state_across_rounds() {
        // Client sends a per-session base during setup; every round adds
        // a query to it on the server and returns the sum. The base is
        // exchanged exactly once, proving the transport pair persists.
        let (c_out, s_out, meter) = run_two_party_persistent(
            vec![10u64, 20, 30],
            |t: &MemTransport| {
                t.send(&wire::encode_u64s(&[100]));
                0u64 // client state: rounds seen
            },
            |seen: &mut u64, q: u64, t: &MemTransport| {
                *seen += 1;
                t.send(&wire::encode_u64s(&[q]));
                wire::decode_u64s(&t.recv())[0]
            },
            |t: &MemTransport| wire::decode_u64s(&t.recv())[0], // server state: base
            |base: &mut u64, round: usize, t: &MemTransport| {
                let q = wire::decode_u64s(&t.recv())[0];
                t.send(&wire::encode_u64s(&[*base + q]));
                round
            },
        );
        assert_eq!(c_out, vec![110, 120, 130]);
        assert_eq!(s_out, vec![0, 1, 2]);
        // 1 setup flight + 2 flights per round.
        assert_eq!(meter.total_messages(), 1 + 2 * 3);
    }

    #[test]
    fn persistent_parties_with_no_rounds_still_run_setup() {
        let (c_out, s_out, meter) = run_two_party_persistent(
            Vec::<u64>::new(),
            |t: &MemTransport| t.send(&[1, 2, 3]),
            |_: &mut (), q: u64, _: &MemTransport| q,
            |t: &MemTransport| t.recv().len(),
            |len: &mut usize, _: usize, _: &MemTransport| *len,
        );
        assert!(c_out.is_empty());
        assert!(s_out.is_empty());
        assert_eq!(meter.total_messages(), 1);
    }

    #[test]
    fn run_two_party_returns_both_results() {
        let (c_out, s_out, meter) = run_two_party(
            |t| {
                t.send(&[9]);
                t.recv()[0]
            },
            |t| {
                let v = t.recv()[0];
                t.send(&[v + 1]);
                v
            },
        );
        assert_eq!(c_out, 10);
        assert_eq!(s_out, 9);
        assert_eq!(meter.total_messages(), 2);
    }
}
