//! Uniform sampling from ranges: what `rng.gen_range(a..b)` uses.

use crate::distributions::SampleStandard;
use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// Marker for types `gen_range` can produce.
pub trait SampleUniform {}

/// Range shapes `gen_range` accepts for a given output type.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to `[0, span)` by fixed-point multiplication.
/// The modulo bias is at most `span / 2^64`, far below anything the
/// test suites could observe.
fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

fn sample_span_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        sample_span(rng, span as u64) as u128
    } else {
        // Rejection sampling over the full 128-bit space; `limit` is the
        // largest multiple of `span` that fits, so values below it are
        // bias-free.
        let limit = span * (u128::MAX / span);
        loop {
            let v = u128::sample_standard(rng);
            if v < limit {
                return v % span;
            }
        }
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end as u128 - self.start as u128;
                self.start + sample_span_u128(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end as u128 - start as u128 + 1;
                start + sample_span_u128(rng, span) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

impl SampleUniform for u128 {}

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + sample_span_u128(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        match (end - start).checked_add(1) {
            Some(span) => start + sample_span_u128(rng, span),
            None => u128::sample_standard(rng),
        }
    }
}

macro_rules! impl_range_sint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span_u128(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + sample_span_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_range_sint!(i8, i16, i32, i64, isize);

impl SampleUniform for i128 {}

impl SampleRange<i128> for Range<i128> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(sample_span_u128(rng, span) as i128)
    }
}

impl SampleRange<i128> for RangeInclusive<i128> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> i128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        match (end.wrapping_sub(start) as u128).checked_add(1) {
            Some(span) => start.wrapping_add(sample_span_u128(rng, span) as i128),
            None => i128::sample_standard(rng),
        }
    }
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; clamp back
                // into the half-open interval.
                if v >= self.end { self.start } else { v }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = <$t>::sample_standard(rng);
                let v = start + u * (end - start);
                // `end - start` can round up, pushing `v` one ulp past
                // `end`; clamp to honour the inclusive contract.
                if v > end { end } else { v }
            }
        }
    )*};
}

impl_range_float!(f32, f64);
