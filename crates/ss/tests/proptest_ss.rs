//! Property-based tests of secret sharing and Beaver triples.

use primer_math::rng::seeded;
use primer_math::{MatZ, Ring};
use primer_ss::{beaver_combine, deal_matrix_triple, open_matrix, open_vec, share_matrix, share_vec};
use proptest::prelude::*;

proptest! {
    /// share/open is the identity for arbitrary matrices and moduli.
    #[test]
    fn share_open_identity(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..5) {
        let ring = Ring::new(1_000_003);
        let mut rng = seeded(seed);
        let x = MatZ::random(&ring, rows, cols, &mut rng);
        let (a, b) = share_matrix(&ring, &x, &mut rng);
        prop_assert_eq!(open_matrix(&ring, &a, &b), x);
    }

    /// Vector sharing round-trips too.
    #[test]
    fn vec_share_open_identity(vals in proptest::collection::vec(0u64..65537, 1..20), seed in 0u64..10_000) {
        let ring = Ring::new(65537);
        let mut rng = seeded(seed);
        let (a, b) = share_vec(&ring, &vals, &mut rng);
        prop_assert_eq!(open_vec(&ring, &a, &b), vals);
    }

    /// Beaver multiplication computes the exact product for arbitrary
    /// shapes and secrets.
    #[test]
    fn beaver_product_exact(seed in 0u64..10_000, m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        let ring = Ring::new(65537);
        let mut rng = seeded(seed);
        let x = MatZ::random(&ring, m, k, &mut rng);
        let y = MatZ::random(&ring, k, n, &mut rng);
        let (x0, x1) = share_matrix(&ring, &x, &mut rng);
        let (y0, y1) = share_matrix(&ring, &y, &mut rng);
        let (t0, t1) = deal_matrix_triple(&ring, m, k, n, &mut rng);
        let e = open_matrix(&ring, &x0.sub(&ring, &t0.a), &x1.sub(&ring, &t1.a));
        let f = open_matrix(&ring, &y0.sub(&ring, &t0.b), &y1.sub(&ring, &t1.b));
        let z0 = beaver_combine(&ring, true, &e, &f, &t0);
        let z1 = beaver_combine(&ring, false, &e, &f, &t1);
        prop_assert_eq!(open_matrix(&ring, &z0, &z1), x.matmul(&ring, &y));
    }
}
