//! Circuit builder: words, adders, multipliers, comparators, shifters.
//!
//! Values are little-endian bit vectors ([`Word`]) in two's complement.
//! Constants are folded at build time, so multiplying by a constant or
//! XOR-ing with zero costs no gates — circuits stay as small as the
//! dataflow allows.

use crate::circuit::{Circuit, Gate, OutBit, WireId};

/// A single bit: a build-time constant or a live wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bit {
    /// Known constant.
    Const(bool),
    /// Circuit wire.
    Wire(WireId),
}

/// A little-endian two's-complement word.
pub type Word = Vec<Bit>;

/// Incremental circuit builder.
///
/// All inputs must be declared before the first gate is emitted.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    garbler_inputs: u32,
    evaluator_inputs: u32,
    gates: Vec<Gate>,
    frozen: bool,
}

impl CircuitBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a garbler input word of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if gates have already been emitted.
    pub fn garbler_input(&mut self, width: usize) -> Word {
        assert!(!self.frozen, "declare all inputs before emitting gates");
        let start = self.garbler_inputs;
        self.garbler_inputs += width as u32;
        (0..width).map(|i| Bit::Wire(start + i as u32)).collect()
    }

    /// Declares an evaluator input word of `width` bits.
    ///
    /// Evaluator wires are numbered after all garbler wires; because
    /// declaration order is caller-controlled, the builder records a
    /// placeholder id and fixes it up in [`Self::build`].
    pub fn evaluator_input(&mut self, width: usize) -> Word {
        assert!(!self.frozen, "declare all inputs before emitting gates");
        let start = self.evaluator_inputs;
        self.evaluator_inputs += width as u32;
        // Evaluator wires are provisionally tagged with the high bit set;
        // build() renumbers them to garbler_inputs + index.
        (0..width).map(|i| Bit::Wire(EVAL_TAG | (start + i as u32))).collect()
    }

    fn next_wire(&mut self) -> WireId {
        self.frozen = true;
        self.garbler_inputs + self.evaluator_inputs + self.gates.len() as u32
    }

    /// Strips the evaluator placeholder tag (inputs are frozen before the
    /// first gate, so `garbler_inputs` is final whenever this runs).
    fn resolve(&self, w: WireId) -> WireId {
        if w & EVAL_TAG != 0 {
            self.garbler_inputs + (w & !EVAL_TAG)
        } else {
            w
        }
    }

    /// `a ⊕ b` with constant folding.
    pub fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => Bit::Const(x ^ y),
            (Bit::Const(false), w) | (w, Bit::Const(false)) => w,
            (Bit::Const(true), w) | (w, Bit::Const(true)) => self.not(w),
            (Bit::Wire(x), Bit::Wire(y)) => {
                let (rx, ry) = (self.resolve(x), self.resolve(y));
                let out = self.next_wire();
                self.gates.push(Gate::Xor(rx, ry));
                Bit::Wire(out)
            }
        }
    }

    /// `a ∧ b` with constant folding.
    pub fn and(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => Bit::Const(x & y),
            (Bit::Const(false), _) | (_, Bit::Const(false)) => Bit::Const(false),
            (Bit::Const(true), w) | (w, Bit::Const(true)) => w,
            (Bit::Wire(x), Bit::Wire(y)) => {
                let (rx, ry) = (self.resolve(x), self.resolve(y));
                let out = self.next_wire();
                self.gates.push(Gate::And(rx, ry));
                Bit::Wire(out)
            }
        }
    }

    /// `¬a` (free).
    pub fn not(&mut self, a: Bit) -> Bit {
        match a {
            Bit::Const(x) => Bit::Const(!x),
            Bit::Wire(x) => {
                let rx = self.resolve(x);
                let out = self.next_wire();
                self.gates.push(Gate::Inv(rx));
                Bit::Wire(out)
            }
        }
    }

    /// `a ∨ b` (one AND).
    pub fn or(&mut self, a: Bit, b: Bit) -> Bit {
        let na = self.not(a);
        let nb = self.not(b);
        let n = self.and(na, nb);
        self.not(n)
    }

    /// `sel ? a : b` (one AND).
    pub fn mux(&mut self, sel: Bit, a: Bit, b: Bit) -> Bit {
        let d = self.xor(a, b);
        let m = self.and(sel, d);
        self.xor(b, m)
    }

    /// Word-wise `sel ? a : b`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux_word(&mut self, sel: Bit, a: &Word, b: &Word) -> Word {
        assert_eq!(a.len(), b.len(), "mux width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.mux(sel, x, y)).collect()
    }

    /// Constant word of `width` bits (two's complement of `value`,
    /// sign-extended beyond 64 bits).
    pub fn const_word(&self, value: i64, width: usize) -> Word {
        (0..width)
            .map(|i| {
                let bit = if i < 64 { (value >> i) & 1 == 1 } else { value < 0 };
                Bit::Const(bit)
            })
            .collect()
    }

    /// Word XOR.
    pub fn xor_word(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.len(), b.len(), "xor width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// Ripple-carry addition with explicit carry-in; returns (sum, carry).
    pub fn add_with_carry(&mut self, a: &Word, b: &Word, carry_in: Bit) -> (Word, Bit) {
        assert_eq!(a.len(), b.len(), "add width mismatch");
        let mut c = carry_in;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xc = self.xor(x, c);
            let yc = self.xor(y, c);
            let s = self.xor(xc, y);
            let t = self.and(xc, yc);
            c = self.xor(c, t);
            sum.push(s);
        }
        (sum, c)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        self.add_with_carry(a, b, Bit::Const(false)).0
    }

    /// Wrapping subtraction `a − b`.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        let nb: Word = b.iter().map(|&x| self.not(x)).collect();
        self.add_with_carry(a, &nb, Bit::Const(true)).0
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: &Word) -> Word {
        let zero = self.const_word(0, a.len());
        self.sub(&zero, a)
    }

    /// Sign-extends (or truncates) to `width`.
    pub fn resize_signed(&mut self, a: &Word, width: usize) -> Word {
        let mut out = a.clone();
        let sign = *a.last().expect("non-empty word");
        out.resize(width, sign);
        out.truncate(width);
        out
    }

    /// Zero-extends (or truncates) to `width`.
    pub fn resize_unsigned(&mut self, a: &Word, width: usize) -> Word {
        let mut out = a.clone();
        out.resize(width, Bit::Const(false));
        out.truncate(width);
        out
    }

    /// Full signed multiplication: `a × b` at width `a.len()+b.len()`.
    ///
    /// Shift-and-add over sign-extended operands; constant bits fold, so
    /// multiplying by a constant only costs adders for its set bits.
    pub fn mul_full_signed(&mut self, a: &Word, b: &Word) -> Word {
        let out_w = a.len() + b.len();
        let ax = self.resize_signed(a, out_w);
        let mut acc = self.const_word(0, out_w);
        for (i, &bi) in b.iter().enumerate() {
            // Partial product: (a << i) masked by b_i.
            let mut shifted = vec![Bit::Const(false); i];
            shifted.extend_from_slice(&ax[..out_w - i]);
            let masked: Word = shifted.iter().map(|&x| self.and(bi, x)).collect();
            if i + 1 == b.len() {
                // Two's complement: the top partial product is subtracted.
                acc = self.sub(&acc, &masked);
            } else {
                acc = self.add(&acc, &masked);
            }
        }
        acc
    }

    /// Wrapping signed multiplication at the operand width.
    pub fn mul(&mut self, a: &Word, b: &Word) -> Word {
        let full = self.mul_full_signed(a, b);
        full[..a.len()].to_vec()
    }

    /// Unsigned `a < b`.
    pub fn lt_unsigned(&mut self, a: &Word, b: &Word) -> Bit {
        // a < b  ⇔  no carry out of a + ¬b + 1.
        let nb: Word = b.iter().map(|&x| self.not(x)).collect();
        let (_, carry) = self.add_with_carry(a, &nb, Bit::Const(true));
        self.not(carry)
    }

    /// Signed `a < b`.
    pub fn lt_signed(&mut self, a: &Word, b: &Word) -> Bit {
        let w = a.len() + 1;
        let ax = self.resize_signed(a, w);
        let bx = self.resize_signed(b, w);
        let d = self.sub(&ax, &bx);
        *d.last().expect("non-empty")
    }

    /// `a == b`.
    pub fn eq(&mut self, a: &Word, b: &Word) -> Bit {
        assert_eq!(a.len(), b.len(), "eq width mismatch");
        let mut any_diff = Bit::Const(false);
        for (&x, &y) in a.iter().zip(b) {
            let d = self.xor(x, y);
            any_diff = self.or(any_diff, d);
        }
        self.not(any_diff)
    }

    /// Logical shift left by a constant (wrapping at word width).
    pub fn shl_const(&self, a: &Word, k: usize) -> Word {
        let w = a.len();
        let mut out = vec![Bit::Const(false); k.min(w)];
        out.extend_from_slice(&a[..w - k.min(w)]);
        out
    }

    /// Arithmetic shift right by a constant.
    pub fn shr_arith_const(&self, a: &Word, k: usize) -> Word {
        let w = a.len();
        let sign = *a.last().expect("non-empty");
        let k = k.min(w);
        let mut out: Word = a[k..].to_vec();
        out.resize(w, sign);
        out
    }

    /// Arithmetic shift right by a dynamic amount (unsigned word).
    /// Barrel shifter: one mux layer per amount bit.
    pub fn shr_arith_dyn(&mut self, a: &Word, amount: &Word) -> Word {
        let mut cur = a.clone();
        for (j, &aj) in amount.iter().enumerate() {
            if (1usize << j) >= 2 * a.len() {
                break;
            }
            let shifted = self.shr_arith_const(&cur, 1 << j);
            cur = self.mux_word(aj, &shifted, &cur);
        }
        cur
    }

    /// Logical shift left by a dynamic amount (unsigned word).
    pub fn shl_dyn(&mut self, a: &Word, amount: &Word) -> Word {
        let mut cur = a.clone();
        for (j, &aj) in amount.iter().enumerate() {
            if (1usize << j) >= 2 * a.len() {
                break;
            }
            let shifted = self.shl_const(&cur, 1 << j);
            cur = self.mux_word(aj, &shifted, &cur);
        }
        cur
    }

    /// Finalizes the circuit with the given output bits.
    pub fn build(self, outputs: &[Bit]) -> Circuit {
        let outs = outputs
            .iter()
            .map(|&b| match b {
                Bit::Const(c) => OutBit::Const(c),
                Bit::Wire(w) => OutBit::Wire(self.resolve_final(w)),
            })
            .collect();
        Circuit {
            garbler_inputs: self.garbler_inputs,
            evaluator_inputs: self.evaluator_inputs,
            gates: self.gates,
            outputs: outs,
        }
    }

    fn resolve_final(&self, w: WireId) -> WireId {
        if w & EVAL_TAG != 0 {
            self.garbler_inputs + (w & !EVAL_TAG)
        } else {
            w
        }
    }

    /// Current AND-gate count (cost preview while building).
    pub fn and_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::And(_, _))).count()
    }
}

const EVAL_TAG: u32 = 1 << 31;

/// Packs an integer into plaintext bits for [`Circuit::eval_plain`].
pub fn to_bits(value: i64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Recovers a signed integer from output bits (two's complement).
pub fn from_bits_signed(bits: &[bool]) -> i64 {
    let mut v: i64 = 0;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            v |= 1 << i;
        }
    }
    let w = bits.len();
    if w < 64 && bits[w - 1] {
        v -= 1 << w;
    }
    v
}

/// Recovers an unsigned integer from output bits.
pub fn from_bits_unsigned(bits: &[bool]) -> u64 {
    let mut v: u64 = 0;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            v |= 1 << i;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a two-input circuit computing `f(a, b)` and checks it
    /// against `reference` over a value grid.
    fn check_binop(
        width: usize,
        f: impl Fn(&mut CircuitBuilder, &Word, &Word) -> Word,
        reference: impl Fn(i64, i64) -> i64,
    ) {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(width);
        let y = b.evaluator_input(width);
        let out = f(&mut b, &x, &y);
        let circuit = b.build(&out);
        let lo = -(1i64 << (width - 1));
        let hi = 1i64 << (width - 1);
        for a in [lo, -3, -1, 0, 1, 2, 5, hi - 1] {
            for c in [lo, -2, -1, 0, 1, 3, hi - 1] {
                let got = from_bits_signed(
                    &circuit.eval_plain(&to_bits(a, width), &to_bits(c, width)),
                );
                let want = wrap(reference(a, c), width);
                assert_eq!(got, want, "f({a}, {c}) width {width}");
            }
        }
    }

    fn wrap(v: i64, width: usize) -> i64 {
        let m = 1i64 << width;
        let r = ((v % m) + m) % m;
        if r >= m / 2 {
            r - m
        } else {
            r
        }
    }

    #[test]
    fn adder_matches_reference() {
        check_binop(8, |b, x, y| b.add(x, y), |a, c| a + c);
    }

    #[test]
    fn subtractor_matches_reference() {
        check_binop(8, |b, x, y| b.sub(x, y), |a, c| a - c);
    }

    #[test]
    fn multiplier_matches_reference() {
        check_binop(8, |b, x, y| b.mul(x, y), |a, c| a.wrapping_mul(c));
    }

    #[test]
    fn full_multiplier_no_wrap() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(8);
        let y = b.evaluator_input(8);
        let out = b.mul_full_signed(&x, &y);
        let circuit = b.build(&out);
        for a in [-128i64, -77, -1, 0, 3, 127] {
            for c in [-128i64, -5, 0, 1, 99, 127] {
                let got =
                    from_bits_signed(&circuit.eval_plain(&to_bits(a, 8), &to_bits(c, 8)));
                assert_eq!(got, a * c, "{a}*{c}");
            }
        }
    }

    #[test]
    fn comparisons() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(8);
        let y = b.evaluator_input(8);
        let lt = b.lt_signed(&x, &y);
        let eq = b.eq(&x, &y);
        let circuit = b.build(&[lt, eq]);
        for a in [-128i64, -1, 0, 5, 127] {
            for c in [-128i64, -2, 0, 5, 126] {
                let out = circuit.eval_plain(&to_bits(a, 8), &to_bits(c, 8));
                assert_eq!(out[0], a < c, "{a} < {c}");
                assert_eq!(out[1], a == c, "{a} == {c}");
            }
        }
    }

    #[test]
    fn unsigned_comparison() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(8);
        let y = b.evaluator_input(8);
        let lt = b.lt_unsigned(&x, &y);
        let circuit = b.build(&[lt]);
        for a in [0i64, 1, 127, 200, 255] {
            for c in [0i64, 2, 128, 255] {
                let out = circuit.eval_plain(&to_bits(a, 8), &to_bits(c, 8));
                assert_eq!(out[0], (a as u64) < (c as u64), "{a} <u {c}");
            }
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = CircuitBuilder::new();
        let s = b.garbler_input(1);
        let x = b.evaluator_input(4);
        let y = b.const_word(5, 4);
        let out = b.mux_word(s[0], &x, &y);
        let circuit = b.build(&out);
        assert_eq!(from_bits_signed(&circuit.eval_plain(&[true], &to_bits(3, 4))), 3);
        assert_eq!(from_bits_signed(&circuit.eval_plain(&[false], &to_bits(3, 4))), 5);
    }

    #[test]
    fn dynamic_shifts() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(16);
        let amt = b.evaluator_input(4);
        let right = b.shr_arith_dyn(&x, &amt);
        let left = b.shl_dyn(&x, &amt);
        let mut outs = right.clone();
        outs.extend_from_slice(&left);
        let circuit = b.build(&outs);
        for v in [-30000i64, -5, 1234, 32767] {
            for k in [0usize, 1, 3, 7, 15] {
                let out = circuit.eval_plain(&to_bits(v, 16), &to_bits(k as i64, 4));
                let r = from_bits_signed(&out[..16]);
                let l = from_bits_signed(&out[16..]);
                assert_eq!(r, v >> k, "{v} >> {k}");
                assert_eq!(l, wrap(v << k, 16), "{v} << {k}");
            }
        }
    }

    #[test]
    fn constant_multiplication_costs_no_mask_ands() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(16);
        let c = b.const_word(5, 16);
        let _ = b.mul(&x, &c);
        // Multiplying by constant 5 (two set bits) must be far cheaper
        // than a full 16×16 multiplier (~2·16² = 512 ANDs).
        assert!(b.and_count() < 64, "and count {}", b.and_count());
    }
}
