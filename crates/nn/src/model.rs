//! Floating-point transformer forward pass — exact and THE-X-style
//! approximated variants.

use crate::config::TransformerConfig;
use crate::weights::TransformerWeights;
use primer_math::activation;
use primer_math::MatF;

/// Which non-polynomial implementations the forward pass uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationMode {
    /// Exact softmax / GELU / LayerNorm (ground truth; what Primer's GC
    /// phase preserves up to fixed-point quantization).
    Exact,
    /// THE-X-style polynomial surrogates (what FHE-only systems must
    /// use; costs accuracy).
    PolyApprox,
}

/// Floating-point model: configuration + weights.
#[derive(Debug, Clone)]
pub struct Transformer {
    cfg: TransformerConfig,
    weights: TransformerWeights,
}

impl Transformer {
    /// Wraps weights for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if block count disagrees with the config.
    pub fn new(cfg: TransformerConfig, weights: TransformerWeights) -> Self {
        assert_eq!(weights.blocks.len(), cfg.n_blocks, "block count mismatch");
        Self { cfg, weights }
    }

    /// The configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// The weights.
    pub fn weights(&self) -> &TransformerWeights {
        &self.weights
    }

    /// Embeds token ids: `X[1] = onehot(X[0])·W_E + λ`.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() != n_tokens` or an id exceeds the vocab.
    pub fn embed(&self, tokens: &[usize]) -> MatF {
        assert_eq!(tokens.len(), self.cfg.n_tokens, "token count mismatch");
        MatF::from_fn(self.cfg.n_tokens, self.cfg.d_model, |i, j| {
            assert!(tokens[i] < self.cfg.vocab, "token id out of vocabulary");
            self.weights.we[(tokens[i], j)] + self.weights.pos[(i, j)]
        })
    }

    /// Full encoder forward; returns the final hidden states (n × d).
    pub fn hidden_states(&self, tokens: &[usize], mode: ActivationMode) -> MatF {
        let mut x = self.embed(tokens);
        for block in &self.weights.blocks {
            x = self.encoder_block(&x, block, mode);
        }
        x
    }

    /// Classification logits (first-token pooling, like BERT's [CLS]).
    pub fn logits(&self, tokens: &[usize], mode: ActivationMode) -> Vec<f64> {
        let h = self.hidden_states(tokens, mode);
        let pooled = MatF::from_fn(1, self.cfg.d_model, |_, j| h[(0, j)]);
        pooled.matmul_f(&self.weights.classifier).row(0).to_vec()
    }

    /// Predicted class (argmax of logits).
    pub fn classify(&self, tokens: &[usize], mode: ActivationMode) -> usize {
        argmax(&self.logits(tokens, mode))
    }

    /// Per-token (start, end) span scores for SQuAD-style tasks.
    pub fn span_scores(&self, tokens: &[usize], mode: ActivationMode) -> (Vec<f64>, Vec<f64>) {
        let h = self.hidden_states(tokens, mode);
        let scores = h.matmul_f(&self.weights.span_head);
        let start = (0..self.cfg.n_tokens).map(|i| scores[(i, 0)]).collect();
        let end = (0..self.cfg.n_tokens).map(|i| scores[(i, 1)]).collect();
        (start, end)
    }

    /// Predicted answer span (start ≤ end by construction).
    pub fn predict_span(&self, tokens: &[usize], mode: ActivationMode) -> (usize, usize) {
        let (s, e) = self.span_scores(tokens, mode);
        let start = argmax(&s);
        let end_rel = argmax(&e[start..]);
        (start, start + end_rel)
    }

    fn encoder_block(&self, x: &MatF, b: &crate::weights::BlockWeights, mode: ActivationMode) -> MatF {
        let cfg = &self.cfg;
        let q = x.matmul_f(&b.wq);
        let k = x.matmul_f(&b.wk);
        let v = x.matmul_f(&b.wv);
        let scale = cfg.attn_scale();
        let dh = cfg.d_head();
        let n = cfg.n_tokens;

        // Multi-head attention.
        let mut concat = MatF::zeros_f(n, cfg.d_model);
        for h in 0..cfg.n_heads {
            let col0 = h * dh;
            for i in 0..n {
                // Row i of Q_h × K_hᵀ, scaled.
                let mut scores = vec![0.0; n];
                for (j, s) in scores.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for c in 0..dh {
                        acc += q[(i, col0 + c)] * k[(j, col0 + c)];
                    }
                    *s = acc * scale;
                }
                let probs = match mode {
                    ActivationMode::Exact => activation::softmax(&scores),
                    ActivationMode::PolyApprox => activation::poly_softmax(&scores),
                };
                for c in 0..dh {
                    let mut acc = 0.0;
                    for (j, p) in probs.iter().enumerate() {
                        acc += p * v[(j, col0 + c)];
                    }
                    concat[(i, col0 + c)] = acc;
                }
            }
        }
        let attn = concat.matmul_f(&b.wo);

        // Residual + LayerNorm 1.
        let mut x1 = MatF::zeros_f(n, cfg.d_model);
        for i in 0..n {
            let row: Vec<f64> =
                (0..cfg.d_model).map(|j| x[(i, j)] + attn[(i, j)]).collect();
            let normed = match mode {
                ActivationMode::Exact => {
                    activation::layer_norm(&row, &b.ln1_gamma, &b.ln1_beta, 1e-3)
                }
                ActivationMode::PolyApprox => {
                    activation::poly_layer_norm(&row, &b.ln1_gamma, &b.ln1_beta, 1e-3)
                }
            };
            for (j, val) in normed.into_iter().enumerate() {
                x1[(i, j)] = val;
            }
        }

        // Feed-forward with GELU.
        let inner = x1.matmul_f(&b.w1);
        let activated = inner.map(|&v| match mode {
            ActivationMode::Exact => activation::gelu(v),
            ActivationMode::PolyApprox => activation::poly_gelu(v),
        });
        let ff = activated.matmul_f(&b.w2);

        // Residual + LayerNorm 2.
        let mut out = MatF::zeros_f(n, cfg.d_model);
        for i in 0..n {
            let row: Vec<f64> =
                (0..cfg.d_model).map(|j| x1[(i, j)] + ff[(i, j)]).collect();
            let normed = match mode {
                ActivationMode::Exact => {
                    activation::layer_norm(&row, &b.ln2_gamma, &b.ln2_beta, 1e-3)
                }
                ActivationMode::PolyApprox => {
                    activation::poly_layer_norm(&row, &b.ln2_gamma, &b.ln2_beta, 1e-3)
                }
            };
            for (j, val) in normed.into_iter().enumerate() {
                out[(i, j)] = val;
            }
        }
        out
    }
}

/// Index of the maximum element, with the **lowest index winning ties**
/// (the tie-break every pipeline — float, fixed-point, private — must
/// share so predictions can never diverge on equal logits).
///
/// # Panics
///
/// Panics on an empty slice or a NaN comparison.
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "non-empty");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v.partial_cmp(&xs[best]).expect("no NaNs") == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::TransformerWeights;
    use primer_math::rng::seeded;

    #[test]
    fn argmax_prefers_lowest_index_on_ties() {
        assert_eq!(argmax(&[0.5, 2.0, 2.0, 1.0]), 1);
        assert_eq!(argmax(&[3.0, 3.0, 3.0]), 0);
        assert_eq!(argmax(&[-1.0, 0.0, 4.0]), 2);
    }
    use rand::Rng;

    fn model() -> Transformer {
        let cfg = TransformerConfig::test_small();
        let w = TransformerWeights::random(&cfg, &mut seeded(150));
        Transformer::new(cfg, w)
    }

    #[test]
    fn forward_is_deterministic() {
        let m = model();
        let tokens = vec![1, 5, 9, 13, 2, 0];
        let a = m.logits(&tokens, ActivationMode::Exact);
        let b = m.logits(&tokens, ActivationMode::Exact);
        assert_eq!(a, b);
    }

    #[test]
    fn outputs_are_finite_and_input_dependent() {
        let m = model();
        let a = m.logits(&[1, 5, 9, 13, 2, 0], ActivationMode::Exact);
        let b = m.logits(&[8, 8, 8, 8, 8, 8], ActivationMode::Exact);
        assert!(a.iter().all(|v| v.is_finite()));
        assert_ne!(a, b, "logits must depend on input");
    }

    #[test]
    fn approx_mode_differs_but_correlates() {
        let m = model();
        let mut rng = seeded(151);
        let mut agree = 0;
        let total = 40;
        for _ in 0..total {
            let tokens: Vec<usize> =
                (0..6).map(|_| rng.gen_range(0..m.config().vocab)).collect();
            let exact = m.classify(&tokens, ActivationMode::Exact);
            let approx = m.classify(&tokens, ActivationMode::PolyApprox);
            if exact == approx {
                agree += 1;
            }
        }
        // Approximation should agree often but not always — the THE-X
        // accuracy-loss mechanism.
        assert!(agree >= total / 2, "agreement too low: {agree}/{total}");
        assert!(agree < total, "approximation suspiciously exact");
    }

    #[test]
    fn span_prediction_is_ordered() {
        let m = model();
        let (s, e) = m.predict_span(&[3, 1, 4, 1, 5, 9], ActivationMode::Exact);
        assert!(s <= e);
        assert!(e < m.config().n_tokens);
    }

    #[test]
    fn embed_rejects_bad_tokens() {
        let m = model();
        let result = std::panic::catch_unwind(|| m.embed(&[9999, 0, 0, 0, 0, 0]));
        assert!(result.is_err());
    }
}
