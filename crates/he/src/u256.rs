//! Minimal 256-bit unsigned arithmetic for exact BFV decryption and
//! ciphertext–ciphertext tensoring.
//!
//! Decryption computes `round(t · v / q)` where `v < q < 2^124`; the
//! intermediate product needs up to ~170 bits. Only the handful of
//! operations required for that (and for the THE-X tensor product) are
//! implemented.

/// An unsigned 256-bit integer as `hi·2^128 + lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct U256 {
    /// High 128 bits.
    pub hi: u128,
    /// Low 128 bits.
    pub lo: u128,
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256 { hi: 0, lo: 0 };

    /// Constructs from a `u128`.
    #[inline]
    pub fn from_u128(x: u128) -> Self {
        Self { hi: 0, lo: x }
    }

    /// Full 128×128→256-bit product.
    pub fn mul_u128(a: u128, b: u128) -> Self {
        let (a_hi, a_lo) = (a >> 64, a & u64::MAX as u128);
        let (b_hi, b_lo) = (b >> 64, b & u64::MAX as u128);
        let ll = a_lo * b_lo;
        let lh = a_lo * b_hi;
        let hl = a_hi * b_lo;
        let hh = a_hi * b_hi;
        let mid = lh.wrapping_add(hl);
        let mid_carry = if mid < lh { 1u128 << 64 } else { 0 };
        let lo = ll.wrapping_add(mid << 64);
        let lo_carry = if lo < ll { 1u128 } else { 0 };
        let hi = hh + (mid >> 64) + mid_carry + lo_carry;
        Self { hi, lo }
    }

    /// Wrapping addition with carry-out ignored (values stay below 2^255
    /// in all call sites).
    #[allow(clippy::should_implement_trait)] // named form keeps the wrapping contract visible
    pub fn add(self, other: Self) -> Self {
        let lo = self.lo.wrapping_add(other.lo);
        let carry = if lo < self.lo { 1 } else { 0 };
        Self { hi: self.hi + other.hi + carry, lo }
    }

    /// Saturating-at-zero subtraction (callers guarantee `self >= other`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self < other`.
    #[allow(clippy::should_implement_trait)] // named form keeps the underflow contract visible
    pub fn sub(self, other: Self) -> Self {
        debug_assert!(self >= other, "u256 underflow");
        let (lo, borrow) = self.lo.overflowing_sub(other.lo);
        Self { hi: self.hi - other.hi - borrow as u128, lo }
    }

    /// True if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.hi == 0 && self.lo == 0
    }

    /// Left shift by one bit.
    #[inline]
    fn shl1(self) -> Self {
        Self { hi: (self.hi << 1) | (self.lo >> 127), lo: self.lo << 1 }
    }

    /// Division by a `u128` divisor, returning `(quotient, remainder)`.
    ///
    /// Simple bit-serial restoring division; 256 iterations, used only in
    /// decryption/tensoring inner loops where it is not the bottleneck.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or if the quotient would exceed 128 bits.
    pub fn div_rem_u128(self, d: u128) -> (u128, u128) {
        assert!(d != 0, "division by zero");
        let mut rem = U256::ZERO;
        let mut quo = U256::ZERO;
        for i in (0..256).rev() {
            rem = rem.shl1();
            let bit = if i >= 128 {
                (self.hi >> (i - 128)) & 1
            } else {
                (self.lo >> i) & 1
            };
            rem.lo |= bit; // rem < d <= 2^128 so hi bits stay clear
            if rem.hi > 0 || rem.lo >= d {
                // rem -= d (rem < 2d <= 2^129 so this is exact)
                if rem.lo >= d {
                    rem.lo -= d;
                } else {
                    rem.lo = rem.lo.wrapping_sub(d);
                    rem.hi -= 1;
                }
                quo = quo.shl1();
                quo.lo |= 1;
            } else {
                quo = quo.shl1();
            }
        }
        assert!(quo.hi == 0, "quotient exceeds 128 bits");
        (quo.lo, rem.lo)
    }

    /// Multiplies by a small factor (caller guarantees no 256-bit
    /// overflow, which holds for all tensoring call sites).
    pub fn mul_small(self, k: u64) -> Self {
        let k = k as u128;
        let (lo_hi, lo_lo) = ((self.lo >> 64) * k, (self.lo & u64::MAX as u128) * k);
        let lo = lo_lo.wrapping_add(lo_hi << 64);
        let carry = (lo_hi >> 64) + if lo < lo_lo { 1 } else { 0 };
        Self { hi: self.hi * k + carry, lo }
    }

    /// `round(self / d)` with ties away from zero, as a `u128`.
    pub fn div_round_u128(self, d: u128) -> u128 {
        let (q, r) = self.div_rem_u128(d);
        if r >= d - r {
            q + 1
        } else {
            q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_native_for_small() {
        for a in [0u128, 1, 7, u64::MAX as u128] {
            for b in [0u128, 1, 13, u64::MAX as u128] {
                let p = U256::mul_u128(a, b);
                assert_eq!(p.hi, 0);
                assert_eq!(p.lo, a * b);
            }
        }
    }

    #[test]
    fn mul_large_cross_check() {
        // (2^100)·(2^100) = 2^200
        let p = U256::mul_u128(1u128 << 100, 1u128 << 100);
        assert_eq!(p.hi, 1u128 << 72);
        assert_eq!(p.lo, 0);
    }

    #[test]
    fn div_rem_roundtrip() {
        let vals = [
            (U256::mul_u128(123_456_789_012_345u128, 987_654_321_098_765u128), 1_000_003u128),
            (U256::mul_u128(u128::MAX / 3, 12_345u128), (1u128 << 100) + 7),
            (U256::from_u128(42), 43u128),
        ];
        for (x, d) in vals {
            let (q, r) = x.div_rem_u128(d);
            assert!(r < d);
            let back = U256::mul_u128(q, d).add(U256::from_u128(r));
            assert_eq!(back, x);
        }
    }

    #[test]
    fn div_round_behaviour() {
        assert_eq!(U256::from_u128(7).div_round_u128(2), 4); // ties away
        assert_eq!(U256::from_u128(6).div_round_u128(4), 2); // 1.5 → 2
        assert_eq!(U256::from_u128(5).div_round_u128(4), 1); // 1.25 → 1
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::mul_u128(u128::MAX / 5, 3);
        let b = U256::mul_u128(u128::MAX / 7, 2);
        assert_eq!(a.add(b).sub(b), a);
    }
}
