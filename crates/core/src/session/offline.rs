//! The Offline phase: input-independent per-query precomputation,
//! produced into pools ahead of the queries that consume it.
//!
//! One **bundle** holds everything a single inference consumes beyond
//! the session state: the client's masks and HGS/FHGS/CHGS shares, the
//! server's correction masks and encrypted FHGS triples, and the garbled
//! sessions for every GC step. Bundles are *moved* out of an
//! [`super::OfflinePool`] — a consumed bundle (and with it its one-time masks)
//! can never be silently reused.
//!
//! # Parallel refills (DESIGN.md §9)
//!
//! Bundles are produced in **batches of `k`** so the heavy HE work fans
//! out across the `rayon` pool while the wire schedule stays fully
//! deterministic. Both parties run the same four stages:
//!
//! 1. **prepare** (client, parallel): per bundle, sample every mask from
//!    a per-bundle rng (forked from the session rng in bundle order, so
//!    masks are independent of the thread count) and encrypt every
//!    HGS/FHGS/CHGS request flight;
//! 2. **wire** (sequential): the client sends all request flights in
//!    bundle-major instance order; the server receives them in the same
//!    order and pre-samples every correction mask from its own
//!    per-bundle rng;
//! 3. **compute** (server, parallel): one pool task per HGS/CHGS
//!    instance — each runs the packed matmul plus masked add with a
//!    scratch evaluator (exact per-bundle op attribution without racing
//!    on shared counters); replies are then sent in bundle-major
//!    instance order, and the client decrypts them per bundle in
//!    parallel;
//! 4. **GC offline** (sequential): garbling / OT is interactive, so the
//!    GC sessions run per bundle in bundle order, continuing the same
//!    per-bundle rng.
//!
//! Every flight's content and order on the wire is a function of the
//! session seeds and the (negotiated) batch size alone — never of
//! `PRIMER_THREADS` — which is what the thread-count determinism suite
//! asserts end to end.

use super::client::ClientCore;
use super::column_slice;
use super::server::ServerCore;
use crate::chgs;
use crate::costmodel::layout;
use crate::fhgs::{self, FhgsDims, FhgsFlight};
use crate::gcmod::{GcClientStep, GcServerStep};
use crate::hgs;
use crate::packing::{Layout, MatmulWeights, PackedMatrix};
use crate::stats::{StepBreakdown, StepCategory};
use crate::wire::{recv_packed, send_packed};
use primer_he::{Evaluator, HeError, OpCounts};
use primer_math::rng::seeded;
use primer_math::MatZ;
use primer_net::{MeteredTransport, Transport, TrafficSnapshot};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Client-side masks for one block.
pub(crate) struct BlockMasks {
    pub q: MatZ,
    pub k: MatZ,
    pub v: MatZ,
    pub probs: Vec<MatZ>,
    pub av: MatZ,
    pub ln1: MatZ,
    pub gelu: MatZ,
    pub ln2: MatZ,
}

/// Client-side per-block precomputed protocol state.
pub(crate) struct BlockClientPre {
    pub qkv_shares: Option<[MatZ; 3]>,
    pub score_pre: Vec<fhgs::FhgsClient>,
    pub av_pre: Vec<fhgs::FhgsClient>,
    pub wo: hgs::HgsClient,
    pub w1: hgs::HgsClient,
    pub w2: hgs::HgsClient,
}

/// Everything the client's online phase consumes for one query.
pub(crate) struct ClientBundle {
    pub m_embed_in: MatZ,
    pub m_x1: MatZ,
    pub blocks: Vec<BlockMasks>,
    pub embed_shares: Vec<MatZ>,
    pub bclients: Vec<BlockClientPre>,
    pub cls: hgs::HgsClient,
    pub gc: Vec<GcClientStep>,
}

/// Server-side per-block precomputed protocol state.
pub(crate) struct BlockServerPre {
    pub qkv_rs: Option<[MatZ; 3]>,
    pub score_pre: Vec<fhgs::FhgsServer>,
    pub av_pre: Vec<fhgs::FhgsServer>,
    pub wo_rs: MatZ,
    pub w1_rs: MatZ,
    pub w2_rs: MatZ,
}

/// Everything the server's online phase consumes for one query, plus
/// the cost attribution of producing it.
pub(crate) struct ServerBundle {
    pub embed_rs: Vec<MatZ>,
    pub bservers: Vec<BlockServerPre>,
    pub cls_rs: MatZ,
    pub gc: Vec<GcServerStep>,
    /// Offline-phase costs of producing this bundle (per category).
    pub steps: StepBreakdown,
    /// HE ops spent producing this bundle.
    pub he: OpCounts,
    /// Traffic spent producing this bundle.
    pub traffic: TrafficSnapshot,
}

/// Server-side per-step wall-clock + traffic attribution.
pub(crate) struct StepTimer<'a> {
    transport: &'a dyn MeteredTransport,
    mark: Instant,
    last: TrafficSnapshot,
}

impl<'a> StepTimer<'a> {
    /// Resumes from the previous phase's final snapshot rather than a
    /// fresh meter capture. The client pipelines its sends, so a fresh
    /// capture could already contain the client's next flights — bytes
    /// that would then be attributed to *no* phase. Chaining snapshots
    /// keeps the union of all phase deltas equal to the total wire
    /// traffic exactly (per-step attribution stays best-effort).
    pub fn resume(transport: &'a dyn MeteredTransport, last: TrafficSnapshot) -> Self {
        Self { transport, mark: Instant::now(), last }
    }

    /// The meter snapshot at the last absorb (phase boundary).
    pub fn snapshot(&self) -> TrafficSnapshot {
        self.last
    }

    /// Restarts the wall-clock mark without absorbing anything — used
    /// when the elapsed time since the last absorb was already
    /// attributed elsewhere (the batched producer measures its parallel
    /// compute stage per task, so the timer must not count that span
    /// again in the next absorb).
    pub fn reset_clock(&mut self) {
        self.mark = Instant::now();
    }

    pub fn absorb(&mut self, steps: &mut StepBreakdown, cat: StepCategory, offline: bool) {
        self.absorb_returning(steps, cat, offline);
    }

    /// Like [`StepTimer::absorb`], also returning the traffic delta it
    /// attributed — the batched offline producer accumulates these into
    /// per-bundle traffic totals (whose union stays exactly the wire
    /// total, since every byte is absorbed exactly once).
    pub fn absorb_returning(
        &mut self,
        steps: &mut StepBreakdown,
        cat: StepCategory,
        offline: bool,
    ) -> TrafficSnapshot {
        let elapsed = self.mark.elapsed();
        let now = TrafficSnapshot::capture(self.transport.meter());
        let delta = now.since(&self.last);
        self.mark = Instant::now();
        self.last = now;
        let entry = steps.entry(cat);
        let slot = if offline { entry.0 } else { entry.1 };
        slot.absorb(elapsed, delta);
        delta
    }
}

/// Client embed-module state between request and reply.
enum EmbedPend {
    Chgs(chgs::ChgsPending),
    Hgs(hgs::HgsPending),
}

/// Client per-block pendings in instance order (FHGS instances complete
/// at request time — they expect no offline reply).
struct BlockPend {
    qkv: Option<[hgs::HgsPending; 3]>,
    score: Vec<fhgs::FhgsClient>,
    av: Vec<fhgs::FhgsClient>,
    wo: hgs::HgsPending,
    w1: hgs::HgsPending,
    w2: hgs::HgsPending,
}

/// A prepared client bundle paired with its received replies, handed
/// from the (sequential) wire stage to a parallel finish task by move.
type ClientFinishSlot = Mutex<Option<(ClientPrep, Vec<PackedMatrix>)>>;

/// One client bundle after the prepare stage: all masks sampled, every
/// request flight encrypted, every reply layout known.
struct ClientPrep {
    /// The bundle rng — continues into the GC offline stage.
    rng: StdRng,
    m_embed_in: MatZ,
    m_x1: MatZ,
    blocks: Vec<BlockMasks>,
    embed: EmbedPend,
    bpends: Vec<BlockPend>,
    cls: hgs::HgsPending,
    /// Request flights in wire order.
    requests: Vec<FhgsFlight>,
    /// Expected reply flights in wire order (HGS/CHGS only).
    reply_layouts: Vec<Layout>,
}

/// Prepare stage of one client bundle: pure local compute driven by the
/// bundle seed — safe to run concurrently with other bundles' prepares.
fn prepare_client_bundle(core: &ClientCore, seed: u64) -> ClientPrep {
    let cfg = core.sys.model.clone();
    let ring = core.sys.ring();
    let packing = core.variant.packing();
    let simd = core.encoder.row_size();
    let (n, d, dff, heads) = (cfg.n_tokens, cfg.d_model, cfg.d_ff, cfg.n_heads);
    let dh = cfg.d_head();
    let mut rng = seeded(seed);

    // Masks (sampled before any encryption, in a fixed order).
    let m_embed_in = MatZ::random(&ring, n, cfg.vocab, &mut rng);
    let m_x1 = MatZ::random(&ring, n, d, &mut rng); // block-0 input / residual
    let blocks: Vec<BlockMasks> = (0..cfg.n_blocks)
        .map(|_| BlockMasks {
            q: MatZ::random(&ring, n, d, &mut rng),
            k: MatZ::random(&ring, n, d, &mut rng),
            v: MatZ::random(&ring, n, d, &mut rng),
            probs: (0..heads).map(|_| MatZ::random(&ring, n, n, &mut rng)).collect(),
            av: MatZ::random(&ring, n, d, &mut rng),
            ln1: MatZ::random(&ring, n, d, &mut rng),
            gelu: MatZ::random(&ring, n, dff, &mut rng),
            ln2: MatZ::random(&ring, n, d, &mut rng),
        })
        .collect();

    let mut requests = Vec::new();
    let mut reply_layouts = Vec::new();

    // Embed / combined module.
    let (embed, qkv_first) = if core.variant.combined() {
        let (pend, req) = chgs::client_request(
            packing,
            m_embed_in.clone(),
            &[d, d, d, d],
            &core.encoder,
            &core.encryptor,
            &mut rng,
        );
        requests.push(FhgsFlight::Packed(req));
        reply_layouts.extend(pend.reply_layouts(simd));
        (EmbedPend::Chgs(pend), false)
    } else {
        let (pend, req) = hgs::client_request(
            packing,
            m_embed_in.clone(),
            d,
            &core.encoder,
            &core.encryptor,
            &mut rng,
        );
        requests.push(FhgsFlight::Packed(req));
        reply_layouts.push(pend.reply_layout(simd));
        (EmbedPend::Hgs(pend), true)
    };

    // Per-block linear offline.
    let block_inputs: Vec<MatZ> = (0..cfg.n_blocks)
        .map(|b| if b == 0 { m_x1.clone() } else { blocks[b - 1].ln2.clone() })
        .collect();
    let bpends: Vec<BlockPend> = (0..cfg.n_blocks)
        .map(|b| {
            let bm = &blocks[b];
            let qkv = (b > 0 || qkv_first).then(|| {
                [0; 3].map(|_| {
                    let (pend, req) = hgs::client_request(
                        packing,
                        block_inputs[b].clone(),
                        d,
                        &core.encoder,
                        &core.encryptor,
                        &mut rng,
                    );
                    requests.push(FhgsFlight::Packed(req));
                    reply_layouts.push(pend.reply_layout(simd));
                    pend
                })
            });
            let score_mode =
                layout::fhgs_mode(core.sys.he.params(), packing, FhgsDims { n, k: dh, m: n });
            let score = (0..heads)
                .map(|h| {
                    let (client, flights) = fhgs::client_request(
                        &ring,
                        score_mode,
                        column_slice(&bm.q, h * dh, dh),
                        column_slice(&bm.k, h * dh, dh).transpose(),
                        &core.encoder,
                        &core.encryptor,
                        &mut rng,
                    );
                    requests.extend(flights);
                    client
                })
                .collect();
            let av_mode =
                layout::fhgs_mode(core.sys.he.params(), packing, FhgsDims { n, k: n, m: dh });
            let av = (0..heads)
                .map(|h| {
                    let (client, flights) = fhgs::client_request(
                        &ring,
                        av_mode,
                        bm.probs[h].clone(),
                        column_slice(&bm.v, h * dh, dh),
                        &core.encoder,
                        &core.encryptor,
                        &mut rng,
                    );
                    requests.extend(flights);
                    client
                })
                .collect();
            let mut linear = |mask: MatZ, out_cols: usize| {
                let (pend, req) = hgs::client_request(
                    packing,
                    mask,
                    out_cols,
                    &core.encoder,
                    &core.encryptor,
                    &mut rng,
                );
                requests.push(FhgsFlight::Packed(req));
                reply_layouts.push(pend.reply_layout(simd));
                pend
            };
            let wo = linear(bm.av.clone(), d);
            let w1 = linear(bm.ln1.clone(), dff);
            let w2 = linear(bm.gelu.clone(), d);
            BlockPend { qkv, score, av, wo, w1, w2 }
        })
        .collect();
    // Classifier (row 0 of the last LN2 mask).
    let last_mask = &blocks[cfg.n_blocks - 1].ln2;
    let cls_mask = MatZ::from_fn(1, d, |_, j| last_mask[(0, j)]);
    let (cls, req) = hgs::client_request(
        packing,
        cls_mask,
        cfg.n_classes,
        &core.encoder,
        &core.encryptor,
        &mut rng,
    );
    requests.push(FhgsFlight::Packed(req));
    reply_layouts.push(cls.reply_layout(simd));

    ClientPrep {
        rng,
        m_embed_in,
        m_x1,
        blocks,
        embed,
        bpends,
        cls,
        requests,
        reply_layouts,
    }
}

/// Finish stage of one client bundle: decrypt every reply (in the same
/// instance order the requests went out) into the bundle's shares. Pure
/// local compute; returns the bundle (GC sessions still empty) and the
/// bundle rng for the GC stage.
fn finish_client_bundle(
    core: &ClientCore,
    prep: ClientPrep,
    replies: Vec<PackedMatrix>,
) -> (ClientBundle, StdRng) {
    let ClientPrep { rng, m_embed_in, m_x1, blocks, embed, bpends, cls, .. } = prep;
    let mut replies = replies.into_iter();
    let mut next = || replies.next().expect("one reply per HGS/CHGS request");

    let embed_shares = match embed {
        EmbedPend::Chgs(pend) => {
            let count = pend.reply_layouts(core.encoder.row_size()).len();
            let flights: Vec<PackedMatrix> = (0..count).map(|_| next()).collect();
            chgs::client_finish(pend, &flights, &core.encoder, &core.encryptor).shares
        }
        EmbedPend::Hgs(pend) => {
            vec![hgs::client_finish(pend, &next(), &core.encoder, &core.encryptor).share]
        }
    };
    let bclients: Vec<BlockClientPre> = bpends
        .into_iter()
        .map(|bp| {
            let qkv_shares = bp.qkv.map(|pends| {
                pends.map(|pend| {
                    hgs::client_finish(pend, &next(), &core.encoder, &core.encryptor).share
                })
            });
            let mut finish =
                |pend| hgs::client_finish(pend, &next(), &core.encoder, &core.encryptor);
            BlockClientPre {
                qkv_shares,
                score_pre: bp.score,
                av_pre: bp.av,
                wo: finish(bp.wo),
                w1: finish(bp.w1),
                w2: finish(bp.w2),
            }
        })
        .collect();
    let cls = hgs::client_finish(cls, &next(), &core.encoder, &core.encryptor);
    assert!(replies.next().is_none(), "unconsumed offline reply");

    let bundle =
        ClientBundle { m_embed_in, m_x1, blocks, embed_shares, bclients, cls, gc: Vec::new() };
    (bundle, rng)
}

/// Produces `k` client offline bundles as one batch: prepares (masks +
/// request encryption) in parallel, puts every flight on the wire in
/// bundle-major order, decrypts replies in parallel, then runs the
/// interactive GC offline sessions per bundle in order. See the module
/// docs for the stage/wire contract with [`produce_server_bundles`].
///
/// # Errors
///
/// [`HeError::Malformed`] on a corrupt or truncated reply flight — the
/// whole batch fails (no partial bundles are returned).
pub(crate) fn produce_client_bundles(
    core: &ClientCore,
    rng: &mut StdRng,
    t: &dyn Transport,
    k: usize,
) -> Result<Vec<ClientBundle>, HeError> {
    let _span = primer_obs::span!("offline.refill", side = "client", k = k);
    // Per-bundle seeds drawn in bundle order: masks and encryption
    // randomness become a function of the session rng alone, not of
    // worker scheduling.
    let seeds: Vec<u64> = (0..k).map(|_| rng.gen()).collect();
    let preps = rayon::par_iter_chunks(k, |i| prepare_client_bundle(core, seeds[i]));

    // Wire: all requests out in bundle-major instance order, then all
    // replies back in the same order (the server replies in our order).
    for prep in &preps {
        for flight in &prep.requests {
            flight.send(t);
        }
    }
    let mut slots: Vec<ClientFinishSlot> = Vec::with_capacity(k);
    for prep in preps {
        let mut replies: Vec<PackedMatrix> = Vec::with_capacity(prep.reply_layouts.len());
        for layout in &prep.reply_layouts {
            replies.push(recv_packed(t, &core.sys.he, layout.clone())?);
        }
        slots.push(Mutex::new(Some((prep, replies))));
    }
    let slots = slots;

    let finished = rayon::par_iter_chunks(k, |i| {
        let (prep, replies) =
            slots[i].lock().expect("bundle slot poisoned").take().expect("bundle slot taken once");
        finish_client_bundle(core, prep, replies)
    });

    // GC offline is interactive (garbling + OT flights), so it stays
    // sequential per bundle, in bundle order, on this thread.
    Ok(finished
        .into_iter()
        .map(|(mut bundle, mut bundle_rng)| {
            bundle.gc = core
                .circuits
                .iter()
                .map(|c| GcClientStep::offline(c, core.mode, &core.group, t, &mut bundle_rng))
                .collect();
            bundle
        })
        .collect())
}

/// One received HGS request with its pre-sampled correction mask.
struct HgsRecv {
    req: PackedMatrix,
    rs: MatZ,
}

/// Server embed-module state after the receive stage.
enum EmbedRecv {
    Chgs { req: PackedMatrix, rss: Vec<MatZ> },
    Hgs(HgsRecv),
}

/// Server per-block receive-stage state (FHGS instances are complete —
/// their offline half is receive + mask sampling only).
struct BlockRecv {
    qkv: Option<[HgsRecv; 3]>,
    score: Vec<fhgs::FhgsServer>,
    av: Vec<fhgs::FhgsServer>,
    wo: HgsRecv,
    w1: HgsRecv,
    w2: HgsRecv,
}

/// One server bundle after the receive stage.
struct ServerRecv {
    /// The bundle rng — continues into the GC offline stage.
    rng: StdRng,
    embed: EmbedRecv,
    blocks: Vec<BlockRecv>,
    cls: HgsRecv,
    steps: StepBreakdown,
    /// Wire traffic attributed to this bundle so far.
    traffic: TrafficSnapshot,
}

/// Receive stage of one server bundle: pulls every request flight off
/// the wire in the client's instance order, samples every correction
/// mask from the bundle rng, and attributes the received traffic per
/// Table II category. Sequential (it owns the wire).
///
/// # Errors
///
/// [`HeError::Malformed`] on a corrupt or truncated request flight.
fn recv_server_bundle(
    core: &ServerCore,
    seed: u64,
    t: &dyn MeteredTransport,
    timer: &mut StepTimer<'_>,
) -> Result<ServerRecv, HeError> {
    let cfg = core.sys.model.clone();
    let ring = core.sys.ring();
    let packing = core.variant.packing();
    let simd = core.encoder.row_size();
    let (n, d, dff, heads) = (cfg.n_tokens, cfg.d_model, cfg.d_ff, cfg.n_heads);
    let dh = cfg.d_head();
    let mut rng = seeded(seed);
    let start = timer.snapshot();
    let mut steps = StepBreakdown::new();

    let recv_hgs = |rows: usize,
                    in_cols: usize,
                    out_cols: usize,
                    rng: &mut StdRng|
     -> Result<HgsRecv, HeError> {
        let req = recv_packed(t, &core.sys.he, Layout::plan(packing, rows, in_cols, simd))?;
        Ok(HgsRecv { req, rs: MatZ::random(&ring, rows, out_cols, rng) })
    };

    // Embed / combined module.
    let embed = if core.variant.combined() {
        let req = recv_packed(t, &core.sys.he, Layout::plan(packing, n, cfg.vocab, simd))?;
        let rss = (0..4).map(|_| MatZ::random(&ring, n, d, &mut rng)).collect();
        timer.absorb(&mut steps, StepCategory::QxK, true);
        EmbedRecv::Chgs { req, rss }
    } else {
        let r = recv_hgs(n, cfg.vocab, d, &mut rng)?;
        timer.absorb(&mut steps, StepCategory::Embed, true);
        EmbedRecv::Hgs(r)
    };

    let qkv_first = !core.variant.combined();
    let recv_fhgs = |dims: FhgsDims, rng: &mut StdRng| -> Result<fhgs::FhgsServer, HeError> {
        // Both parties derive the same per-shape mode from public
        // dimensions, so the wire stays in lockstep without negotiation.
        let mode = layout::fhgs_mode(core.sys.he.params(), packing, dims);
        fhgs::server_offline(&ring, mode, dims, &core.sys.he, &core.encoder, t, rng)
    };
    let mut blocks: Vec<BlockRecv> = Vec::with_capacity(cfg.n_blocks);
    for b in 0..cfg.n_blocks {
        let qkv = if b > 0 || qkv_first {
            let r = [
                recv_hgs(n, d, d, &mut rng)?,
                recv_hgs(n, d, d, &mut rng)?,
                recv_hgs(n, d, d, &mut rng)?,
            ];
            timer.absorb(&mut steps, StepCategory::Qkv, true);
            Some(r)
        } else {
            None
        };
        let score = (0..heads)
            .map(|_| recv_fhgs(FhgsDims { n, k: dh, m: n }, &mut rng))
            .collect::<Result<Vec<_>, _>>()?;
        timer.absorb(&mut steps, StepCategory::QxK, true);
        let av = (0..heads)
            .map(|_| recv_fhgs(FhgsDims { n, k: n, m: dh }, &mut rng))
            .collect::<Result<Vec<_>, _>>()?;
        timer.absorb(&mut steps, StepCategory::AttnValue, true);
        let wo = recv_hgs(n, d, d, &mut rng)?;
        let w1 = recv_hgs(n, d, dff, &mut rng)?;
        let w2 = recv_hgs(n, dff, d, &mut rng)?;
        timer.absorb(&mut steps, StepCategory::Others, true);
        blocks.push(BlockRecv { qkv, score, av, wo, w1, w2 });
    }
    let cls = recv_hgs(1, d, cfg.n_classes, &mut rng)?;
    timer.absorb(&mut steps, StepCategory::Others, true);

    let traffic = timer.snapshot().since(&start);
    Ok(ServerRecv { rng, embed, blocks, cls, steps, traffic })
}

/// One parallel compute job: the HE work of a single HGS/CHGS instance.
/// Weights resolve through the model plane — prepared NTT-form masks on
/// the default path, raw matrices on the fresh-mask reference path.
struct ComputeJob<'a> {
    bundle: usize,
    cat: StepCategory,
    req: &'a PackedMatrix,
    weights: Vec<MatmulWeights<'a>>,
    rss: Vec<&'a MatZ>,
}

/// A compute job's result: reply flights (in wire order), the HE ops it
/// spent (measured on a scratch evaluator, so per-bundle attribution is
/// exact under concurrency) and its compute time.
struct ComputeOut {
    bundle: usize,
    cat: StepCategory,
    replies: Vec<PackedMatrix>,
    he: OpCounts,
    elapsed: Duration,
}

/// Produces `k` server offline bundles as one batch, mirroring
/// [`produce_client_bundles`] flight for flight: receive every request
/// (sequential, pre-sampling all correction masks), run every HGS/CHGS
/// matmul as its own pool task, send the replies in bundle-major
/// instance order, then run the interactive GC offline sessions per
/// bundle. Wall-clock, traffic and HE ops are attributed per bundle and
/// per Table II category as before; the union of all bundle deltas still
/// equals the refill's total wire traffic exactly.
///
/// # Errors
///
/// [`HeError::Malformed`] on a corrupt or truncated request flight — the
/// whole batch fails (no partial bundles are returned).
pub(crate) fn produce_server_bundles(
    core: &ServerCore,
    eval: &Evaluator,
    rng: &mut StdRng,
    t: &dyn MeteredTransport,
    wire_mark: &mut TrafficSnapshot,
    k: usize,
) -> Result<Vec<ServerBundle>, HeError> {
    let _span = primer_obs::span!("offline.refill", side = "server", k = k);
    let seeds: Vec<u64> = (0..k).map(|_| rng.gen()).collect();
    let mut timer = StepTimer::resume(t, *wire_mark);

    // Stage A (sequential): receive all requests, sample all masks.
    let mut recvs: Vec<ServerRecv> = seeds
        .iter()
        .map(|&seed| recv_server_bundle(core, seed, t, &mut timer))
        .collect::<Result<Vec<_>, _>>()?;

    // Stage B (parallel): one job per HGS/CHGS instance, in bundle-major
    // instance order — which is exactly the order replies go out in.
    let jobs: Vec<ComputeJob<'_>> = recvs
        .iter()
        .enumerate()
        .flat_map(|(i, recv)| {
            let mut jobs = Vec::new();
            match &recv.embed {
                EmbedRecv::Chgs { req, rss } => {
                    jobs.push(ComputeJob {
                        bundle: i,
                        cat: StepCategory::QxK,
                        req,
                        weights: core.plane.embed_weights(&core.encoder),
                        rss: rss.iter().collect(),
                    });
                }
                EmbedRecv::Hgs(r) => jobs.push(ComputeJob {
                    bundle: i,
                    cat: StepCategory::Embed,
                    req: &r.req,
                    weights: core.plane.embed_weights(&core.encoder),
                    rss: vec![&r.rs],
                }),
            }
            for (b, blk) in recv.blocks.iter().enumerate() {
                if let Some(qkv) = &blk.qkv {
                    for (r, wm) in qkv.iter().zip(core.plane.qkv_weights(b, &core.encoder)) {
                        jobs.push(ComputeJob {
                            bundle: i,
                            cat: StepCategory::Qkv,
                            req: &r.req,
                            weights: vec![wm],
                            rss: vec![&r.rs],
                        });
                    }
                }
                let linear = core.plane.linear_weights(b, &core.encoder);
                for (r, wm) in [&blk.wo, &blk.w1, &blk.w2].into_iter().zip(linear) {
                    jobs.push(ComputeJob {
                        bundle: i,
                        cat: StepCategory::Others,
                        req: &r.req,
                        weights: vec![wm],
                        rss: vec![&r.rs],
                    });
                }
            }
            jobs.push(ComputeJob {
                bundle: i,
                cat: StepCategory::Others,
                req: &recv.cls.req,
                weights: vec![core.plane.classifier_weights(&core.encoder)],
                rss: vec![&recv.cls.rs],
            });
            jobs
        })
        .collect();

    let outs: Vec<ComputeOut> = rayon::par_iter_chunks(jobs.len(), |j| {
        let job = &jobs[j];
        // Scratch evaluator per job: op counts attribute exactly to this
        // bundle without racing the session's shared counters. The
        // session arena is shared, so scratch buffers recycle across
        // jobs instead of each evaluator warming a pool it drops.
        let scratch = Evaluator::with_arena(&core.sys.he, Arc::clone(eval.arena()));
        let started = Instant::now();
        let replies = if job.weights.len() == 1 {
            vec![hgs::server_compute(
                job.req,
                &job.weights[0],
                job.rss[0],
                &scratch,
                &core.encoder,
                &core.gk,
            )]
        } else {
            chgs::server_compute(job.req, &job.weights, &job.rss, &scratch, &core.encoder, &core.gk)
        };
        ComputeOut {
            bundle: job.bundle,
            cat: job.cat,
            replies,
            he: scratch.counts(),
            elapsed: started.elapsed(),
        }
    });
    drop(jobs);

    // Fold compute time + HE ops into per-bundle attribution, then send
    // the replies in job (= bundle-major instance) order.
    let mut he_per_bundle = vec![OpCounts::default(); k];
    for out in &outs {
        let recv = &mut recvs[out.bundle];
        recv.steps.entry(out.cat).0.absorb(out.elapsed, TrafficSnapshot::default());
        he_per_bundle[out.bundle] = he_per_bundle[out.bundle].plus(&out.he);
    }
    // Stage B's wall-clock was attributed per job above; restart the
    // timer so the first send's absorb doesn't count that span again.
    timer.reset_clock();
    for out in outs {
        for reply in &out.replies {
            send_packed(t, reply);
        }
        let recv = &mut recvs[out.bundle];
        let delta = timer.absorb_returning(&mut recv.steps, out.cat, true);
        recv.traffic = recv.traffic.plus(&delta);
    }

    // Stage C (sequential): interactive GC offline per bundle, plus the
    // session-evaluator merge that keeps its totals meaningful.
    let bundles: Vec<ServerBundle> = recvs
        .into_iter()
        .zip(he_per_bundle)
        .map(|(recv, he)| {
            let ServerRecv { mut rng, embed, blocks, cls, mut steps, traffic } = recv;
            let gc: Vec<GcServerStep> = core
                .circuits
                .iter()
                .map(|c| GcServerStep::offline(c, core.mode, &core.group, t, &mut rng))
                .collect();
            let gc_delta = timer.absorb_returning(&mut steps, StepCategory::Others, true);
            let traffic = traffic.plus(&gc_delta);

            let embed_rs = match embed {
                EmbedRecv::Chgs { rss, .. } => rss,
                EmbedRecv::Hgs(r) => vec![r.rs],
            };
            let bservers: Vec<BlockServerPre> = blocks
                .into_iter()
                .map(|blk| BlockServerPre {
                    qkv_rs: blk.qkv.map(|qkv| qkv.map(|r| r.rs)),
                    score_pre: blk.score,
                    av_pre: blk.av,
                    wo_rs: blk.wo.rs,
                    w1_rs: blk.w1.rs,
                    w2_rs: blk.w2.rs,
                })
                .collect();
            eval.absorb_counts(&he);
            ServerBundle { embed_rs, bservers, cls_rs: cls.rs, gc, steps, he, traffic }
        })
        .collect();
    *wire_mark = timer.snapshot();
    Ok(bundles)
}
