//! Metered transports and network time models for two-party protocols.
//!
//! Three transports, one [`Transport`] trait:
//!
//! * [`MemTransport`] — in-process channel pair for tests and the
//!   single-process engine; client and server run as threads.
//! * [`tcp::TcpTransport`] — a real socket, length-framed and
//!   multiplexed into up to [`tcp::NUM_CHANNELS`] logical channels so a
//!   session's offline producer can overlap its online queries on one
//!   connection (see `primer_serve`).
//! * [`ShapedTransport`] — a decorator that *enforces* a
//!   [`NetworkModel`] (paper LAN: 2.3 ms / 100 MB/s; WAN: 40 ms /
//!   9 MB/s) by delaying sends, so LAN/WAN numbers are measured rather
//!   than modeled.
//!
//! Every byte and message is metered; [`NetworkModel`] converts metered
//! traffic (Table III's "Message GB") into analytic network time when a
//! run uses the unshaped transports.
//!
//! ```
//! use primer_net::{run_two_party, Transport};
//! let (doubled, _, meter) = run_two_party(
//!     |t| {
//!         t.send(&[21]);
//!         t.recv()[0]
//!     },
//!     |t| {
//!         let x = t.recv()[0];
//!         t.send(&[x * 2]);
//!     },
//! );
//! assert_eq!(doubled, 42);
//! assert_eq!(meter.total_messages(), 2);
//! ```

pub mod mem;
pub mod metering;
pub mod model;
pub mod nonblock;
pub mod recording;
pub mod shaped;
pub mod tcp;
pub mod transport;

pub use mem::{run_two_party, run_two_party_persistent, MemTransport};
pub use metering::{Meter, TrafficSnapshot};
pub use model::NetworkModel;
pub use nonblock::NbConn;
pub use recording::{RecordingTransport, TranscriptHandle};
pub use shaped::{LinkShaper, ShapedTransport};
pub use tcp::{TcpConnection, TcpTransport};
pub use transport::{wire, MeteredTransport, PollRecv, Transport};
