//! Per-step timing/traffic accounting in the paper's Table II categories,
//! per-phase (Setup / Offline / Online) attribution, and the
//! [`InferenceReport`] a served query returns.
//!
//! The session engine distinguishes three phases:
//!
//! * **Setup** — once per client/server session: key generation, the
//!   Galois-key transfer, weight preparation. Amortized over every query
//!   the session serves.
//! * **Offline** — once per query, but input-*independent*: HGS/FHGS/CHGS
//!   precomputation and garbled-circuit material, producible in pools
//!   ahead of time.
//! * **Online** — the input-dependent remainder, per query.

use primer_he::OpCounts;
use primer_net::{NetworkModel, TrafficSnapshot};
use std::time::Duration;

/// The six step categories of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StepCategory {
    /// Word + positional embedding.
    Embed,
    /// Q/K/V projections.
    Qkv,
    /// The Q×Kᵀ ciphertext–ciphertext product (and, under CHGS, the
    /// combined embed+QKV module the paper folds into this step).
    QxK,
    /// SoftMax (GC).
    Softmax,
    /// Attention × V.
    AttnValue,
    /// Everything else: output projection, LayerNorms, feed-forward,
    /// classifier, key material.
    Others,
}

impl StepCategory {
    /// All categories in Table II order.
    pub fn all() -> [StepCategory; 6] {
        [
            StepCategory::Embed,
            StepCategory::Qkv,
            StepCategory::QxK,
            StepCategory::Softmax,
            StepCategory::AttnValue,
            StepCategory::Others,
        ]
    }

    /// The paper's column header.
    pub fn name(&self) -> &'static str {
        match self {
            StepCategory::Embed => "Embed",
            StepCategory::Qkv => "QKV",
            StepCategory::QxK => "QxK",
            StepCategory::Softmax => "SoftMax",
            StepCategory::AttnValue => "Atten.Value",
            StepCategory::Others => "Others",
        }
    }
}

/// Accumulated cost of one category in one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Wall-clock compute time (both parties, serialized).
    pub compute: Duration,
    /// Bytes on the wire.
    pub bytes: u64,
    /// Message flights.
    pub messages: u64,
}

impl PhaseCost {
    /// Adds network time under a model: compute + latency/bandwidth.
    pub fn total_with_network(&self, net: &NetworkModel) -> Duration {
        self.compute + net.time_for(self.messages, self.bytes)
    }

    pub(crate) fn absorb(&mut self, elapsed: Duration, traffic: TrafficSnapshot) {
        self.compute += elapsed;
        self.bytes += traffic.total_bytes();
        self.messages += traffic.total_messages();
    }

    /// Publishes this cost into an observability registry under
    /// `phase.<phase>.*`: the compute time into a latency histogram
    /// (nanoseconds, so the registry can later report p50/p95/p99) and
    /// the traffic into counters. The registry is the accumulator; this
    /// struct stays the per-phase carrier (DESIGN.md §13).
    pub fn publish(&self, registry: &primer_obs::Registry, phase: &str) {
        registry.histogram(&format!("phase.{phase}.ns")).record_duration(self.compute);
        registry.counter(&format!("phase.{phase}.bytes")).add(self.bytes);
        registry.counter(&format!("phase.{phase}.messages")).add(self.messages);
    }

    /// Merges another cost into this one.
    pub fn merge(&mut self, other: &PhaseCost) {
        self.compute += other.compute;
        self.bytes += other.bytes;
        self.messages += other.messages;
    }

    /// This cost spread over `n` queries (amortizing one-time work).
    pub fn divided_by(&self, n: usize) -> PhaseCost {
        let n = n.max(1);
        PhaseCost {
            compute: self.compute / n as u32,
            bytes: self.bytes / n as u64,
            messages: self.messages / n as u64,
        }
    }
}

/// Setup / offline / online totals of one query (plus its session).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTotals {
    /// One-time session establishment (shared by all queries).
    pub setup: PhaseCost,
    /// Input-independent per-query precomputation.
    pub offline: PhaseCost,
    /// Input-dependent per-query work.
    pub online: PhaseCost,
}

impl PhaseTotals {
    /// Amortized per-query cost when the setup is shared by `queries`
    /// inferences: `setup/queries + offline + online`.
    pub fn amortized_per_query(&self, queries: usize) -> PhaseCost {
        let mut acc = self.setup.divided_by(queries);
        acc.merge(&self.offline);
        acc.merge(&self.online);
        acc
    }
}

/// Offline + online cost for every category, plus the session's one-time
/// setup cost (not category-attributed: key exchange and weight prep).
#[derive(Debug, Clone, Default)]
pub struct StepBreakdown {
    costs: Vec<(StepCategory, PhaseCost, PhaseCost)>,
    setup: PhaseCost,
}

impl StepBreakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self {
            costs: StepCategory::all()
                .iter()
                .map(|&c| (c, PhaseCost::default(), PhaseCost::default()))
                .collect(),
            setup: PhaseCost::default(),
        }
    }

    /// The session's one-time setup cost.
    pub fn setup(&self) -> PhaseCost {
        self.setup
    }

    /// Records the session's one-time setup cost.
    pub fn set_setup(&mut self, setup: PhaseCost) {
        self.setup = setup;
    }

    /// Setup / offline / online totals.
    pub fn phase_totals(&self) -> PhaseTotals {
        PhaseTotals {
            setup: self.setup,
            offline: self.offline_total(),
            online: self.online_total(),
        }
    }

    /// Mutable (offline, online) entry for a category.
    pub fn entry(&mut self, cat: StepCategory) -> (&mut PhaseCost, &mut PhaseCost) {
        let e = self
            .costs
            .iter_mut()
            .find(|(c, _, _)| *c == cat)
            .expect("all categories present");
        (&mut e.1, &mut e.2)
    }

    /// (offline, online) for a category.
    pub fn get(&self, cat: StepCategory) -> (PhaseCost, PhaseCost) {
        let e = self.costs.iter().find(|(c, _, _)| *c == cat).expect("present");
        (e.1, e.2)
    }

    /// Total offline cost across categories.
    pub fn offline_total(&self) -> PhaseCost {
        let mut acc = PhaseCost::default();
        for (_, off, _) in &self.costs {
            acc.merge(off);
        }
        acc
    }

    /// Total online cost across categories.
    pub fn online_total(&self) -> PhaseCost {
        let mut acc = PhaseCost::default();
        for (_, _, on) in &self.costs {
            acc.merge(on);
        }
        acc
    }

    /// Folds all offline cost into online (Primer-base: nothing is
    /// precomputed, the same work simply runs during inference). The
    /// setup cost is untouched: session establishment stays one-time
    /// even when the per-query precomputation cannot be moved offline.
    pub fn fold_offline_into_online(&mut self) {
        for (_, off, on) in &mut self.costs {
            on.merge(&*off);
            *off = PhaseCost::default();
        }
    }
}

/// Argmax over fixed-point logits, with the **lowest index winning
/// ties** — the same rule as `primer_nn::argmax`, so private and
/// plaintext predictions can never disagree on tied logits.
pub fn argmax_logits(xs: &[i64]) -> usize {
    assert!(!xs.is_empty(), "non-empty logits");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Result of one private inference.
#[derive(Debug)]
pub struct InferenceReport {
    /// Reconstructed logits (raw fixed-point).
    pub logits: Vec<i64>,
    /// Argmax class (ties broken toward the lowest index, matching the
    /// plaintext reference argmax).
    pub predicted: usize,
    /// The plaintext fixed-point reference logits.
    pub reference_logits: Vec<i64>,
    /// Per-category, per-phase cost breakdown.
    pub steps: StepBreakdown,
    /// Server-side HE op counts (offline phase of this query).
    pub he_ops_offline: OpCounts,
    /// Server-side HE op counts (online phase of this query).
    pub he_ops_online: OpCounts,
    /// Total AND gates across all GC steps.
    pub gc_and_gates: u64,
    /// This query's traffic (offline + online; the one-time setup flight
    /// is reported separately in `steps.setup()`).
    pub traffic: TrafficSnapshot,
    /// How many queries the producing session served — the denominator
    /// for amortizing the setup cost.
    pub session_queries: usize,
}

impl InferenceReport {
    /// The headline correctness check: private output == plaintext
    /// fixed-point reference, bit for bit.
    pub fn matches_plaintext_reference(&self) -> bool {
        self.logits == self.reference_logits
    }

    /// Setup / offline / online totals for this query's session.
    pub fn phases(&self) -> PhaseTotals {
        self.steps.phase_totals()
    }

    /// Amortized per-query cost: the session setup spread over every
    /// query it served, plus this query's offline + online work.
    pub fn amortized_cost(&self) -> PhaseCost {
        self.phases().amortized_per_query(self.session_queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_folds() {
        let mut b = StepBreakdown::new();
        b.entry(StepCategory::Embed).0.absorb(
            Duration::from_millis(5),
            TrafficSnapshot { c2s_bytes: 100, c2s_messages: 1, ..Default::default() },
        );
        b.entry(StepCategory::Embed).1.absorb(Duration::from_millis(2), Default::default());
        let (off, on) = b.get(StepCategory::Embed);
        assert_eq!(off.bytes, 100);
        assert_eq!(on.compute, Duration::from_millis(2));
        b.fold_offline_into_online();
        let (off, on) = b.get(StepCategory::Embed);
        assert_eq!(off.bytes, 0);
        assert_eq!(on.bytes, 100);
        assert_eq!(on.compute, Duration::from_millis(7));
    }

    #[test]
    fn setup_survives_offline_fold_and_amortizes() {
        let mut b = StepBreakdown::new();
        b.set_setup(PhaseCost {
            compute: Duration::from_millis(80),
            bytes: 4000,
            messages: 1,
        });
        b.entry(StepCategory::Qkv).0.absorb(Duration::from_millis(6), Default::default());
        b.fold_offline_into_online();
        assert_eq!(b.setup().bytes, 4000, "fold must not consume setup");
        assert_eq!(b.offline_total().compute, Duration::ZERO);
        let amortized = b.phase_totals().amortized_per_query(4);
        assert_eq!(amortized.bytes, 1000);
        assert_eq!(amortized.compute, Duration::from_millis(20 + 6));
    }

    #[test]
    fn argmax_breaks_ties_toward_lowest_index() {
        assert_eq!(argmax_logits(&[3, 7, 7, 1]), 1);
        assert_eq!(argmax_logits(&[-5, -5]), 0);
        assert_eq!(argmax_logits(&[0]), 0);
        assert_eq!(argmax_logits(&[1, 2, 3]), 2);
    }

    #[test]
    fn network_time_is_added() {
        let mut c = PhaseCost::default();
        c.absorb(
            Duration::from_millis(10),
            TrafficSnapshot { c2s_bytes: 1_000_000, c2s_messages: 2, ..Default::default() },
        );
        let net = NetworkModel::paper_lan();
        let total = c.total_with_network(&net);
        // 10ms + 2×2.3ms + 10ms transfer = ~24.6ms
        assert!(total > Duration::from_millis(24) && total < Duration::from_millis(26));
    }
}
