//! Admission control under churn: many short-lived clients against a
//! small worker cap, with and without load shedding.

mod common;

use common::{reference_engine, start_server_with};
use primer_core::{GcMode, ProtocolVariant};
use primer_nn::TransformerConfig;
use primer_serve::{poll_stats, ClientBuilder, ClientError, ShedPolicy};
use std::time::{Duration, Instant};

/// Twelve one-query clients churn through four worker slots with the
/// default unbounded queue: every session completes, every logit is
/// bit-identical, nobody is shed.
#[test]
fn churning_clients_queue_through_bounded_workers() {
    let model = TransformerConfig::test_tiny();
    let tokens = vec![11usize, 3, 27, 19];
    let n = 12usize;
    let (addr, server) = start_server_with(model.clone(), n, |c| {
        c.max_workers = 4;
        c.pool = 1;
    });

    let clients: Vec<_> = (0..n)
        .map(|_| {
            let tokens = tokens.clone();
            std::thread::spawn(move || {
                ClientBuilder::new(ProtocolVariant::Fpc).run(addr, &[tokens])
            })
        })
        .collect();
    let reference = reference_engine(&model, ProtocolVariant::Fpc, GcMode::Simulated)
        .serve(std::slice::from_ref(&tokens));
    for (i, c) in clients.into_iter().enumerate() {
        let out = c.join().expect("client thread").unwrap_or_else(|e| panic!("client {i}: {e}"));
        assert_eq!(out.predictions[0].logits, reference[0].logits, "client {i} logits");
    }

    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions().len(), n, "every churned client completed");
    assert_eq!(stats.total_queries(), n);
}

/// With `ShedPolicy::Shed {{ max_waiting: 0 }}` and one worker slot, a
/// second concurrent hello gets the typed busy reply — and the slot
/// freeing up lets later clients in. The shed client never counts
/// against the session budget.
#[test]
fn full_house_sheds_excess_hellos_with_typed_busy() {
    let model = TransformerConfig::test_tiny();
    let tokens = vec![6usize, 28, 2, 14];
    let (addr, server) = start_server_with(model.clone(), 2, |c| {
        c.max_workers = 1;
        c.shed = ShedPolicy::Shed { max_waiting: 0 };
    });

    // Client A takes the only slot and holds it open.
    let mut a = ClientBuilder::new(ProtocolVariant::Fpc).open(addr, 1).expect("client A");
    wait_until(Duration::from_secs(10), || {
        poll_stats(addr).expect("stats poll").workers_active() == 1
    });

    // Client B arrives into a full house: typed busy, not a hang.
    let err = ClientBuilder::new(ProtocolVariant::Fpc)
        .run(addr, std::slice::from_ref(&tokens))
        .expect_err("B must be shed");
    match err {
        ClientError::Busy { active, cap } => {
            assert_eq!((active, cap), (1, 1), "busy reply carries occupancy");
        }
        other => panic!("expected Busy, got {other}"),
    }
    assert_eq!(poll_stats(addr).expect("stats poll").shed_total(), 1);

    // A finishes; the slot frees; a retrying client C gets through.
    a.infer(&tokens).expect("A query");
    let out_a = a.finish().expect("A finish");
    let out_c = retry_busy(Duration::from_secs(10), || {
        ClientBuilder::new(ProtocolVariant::Fpc).run(addr, std::slice::from_ref(&tokens))
    });

    let reference = reference_engine(&model, ProtocolVariant::Fpc, GcMode::Simulated)
        .serve(std::slice::from_ref(&tokens));
    assert_eq!(out_a.predictions[0].logits, reference[0].logits);
    assert_eq!(out_c.predictions[0].logits, reference[0].logits);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions().len(), 2, "shed hello burned no budget");
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "condition not reached in {timeout:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Retries `attempt` while the server answers busy (slot handover is
/// asynchronous with A's conclusion).
fn retry_busy<T>(
    timeout: Duration,
    mut attempt: impl FnMut() -> Result<T, ClientError>,
) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        match attempt() {
            Ok(v) => return v,
            Err(ClientError::Busy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("retrying client: {e}"),
        }
    }
}
