//! Fixed-point non-linear function circuits.
//!
//! Each gadget replicates the corresponding `primer_math::fxp` algorithm
//! **gate for gate** — identical polynomial constants, identical Newton
//! iteration counts, identical shift semantics — so the garbled execution
//! is bit-exact against the plaintext fixed-point reference on the valid
//! input domain (positive inputs for recip/rsqrt, `x ≥ 0` for exp_neg,
//! magnitudes small enough not to overflow the configured width).

use crate::arith::{max_signed, msb_index, shift_by_neg_signed};
use crate::builder::{Bit, CircuitBuilder, Word};
use primer_math::fxp::const_q;

/// Numeric configuration: word `width` and fractional bits `frac` of the
/// GC-internal fixed-point format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcNumCfg {
    /// Two's-complement word width.
    pub width: usize,
    /// Fractional bits.
    pub frac: u32,
}

impl GcNumCfg {
    /// Default protocol configuration: 48-bit words, 12 fractional bits
    /// (wide enough for LayerNorm variance sums at BERT dimensions).
    pub fn protocol() -> Self {
        Self { width: 48, frac: 12 }
    }

    /// Compact configuration for fast tests.
    pub fn test() -> Self {
        Self { width: 32, frac: 12 }
    }

    fn index_bits(&self) -> usize {
        7
    }
}

/// `(a*b) >> frac` — fixed-point multiply matching `fxp::mul_q`.
pub fn mul_q(b: &mut CircuitBuilder, cfg: GcNumCfg, x: &Word, y: &Word) -> Word {
    let full = b.mul_full_signed(x, y);
    let shifted = b.shr_arith_const(&full, cfg.frac as usize);
    shifted[..cfg.width].to_vec()
}

fn cq(b: &CircuitBuilder, cfg: GcNumCfg, v: f64) -> Word {
    b.const_word(const_q(v, cfg.frac), cfg.width)
}

/// `2^f` for `f ∈ [0, 1]`, cubic Horner — matches `fxp::exp2_frac`.
pub fn exp2_frac(b: &mut CircuitBuilder, cfg: GcNumCfg, f: &Word) -> Word {
    let c0 = cq(b, cfg, 1.0);
    let c1 = cq(b, cfg, 0.695_976_1);
    let c2 = cq(b, cfg, 0.224_940_4);
    let c3 = cq(b, cfg, 0.079_083_5);
    let mut acc = c3;
    acc = mul_q(b, cfg, &acc, f);
    acc = b.add(&acc, &c2);
    acc = mul_q(b, cfg, &acc, f);
    acc = b.add(&acc, &c1);
    acc = mul_q(b, cfg, &acc, f);
    b.add(&acc, &c0)
}

/// `e^{-x}` for `x ≥ 0` — matches `fxp::exp_neg`.
pub fn exp_neg(b: &mut CircuitBuilder, cfg: GcNumCfg, x: &Word) -> Word {
    let frac = cfg.frac as usize;
    let log2e = cq(b, cfg, std::f64::consts::LOG2_E);
    let y = mul_q(b, cfg, x, &log2e);
    // Integer part k (unsigned; y ≥ 0 on the valid domain).
    let k_full = b.shr_arith_const(&y, frac);
    let k = b.resize_unsigned(&k_full, cfg.index_bits());
    // Fractional part f ∈ [0, 1).
    let mut f: Word = y[..frac].to_vec();
    f.resize(cfg.width, Bit::Const(false));
    // m = exp2(1 - f) >> 1.
    let one = b.const_word(1i64 << frac, cfg.width);
    let one_minus_f = b.sub(&one, &f);
    let m_raw = exp2_frac(b, cfg, &one_minus_f);
    let m = b.shr_arith_const(&m_raw, 1);
    // Shift down by k; zero if k > frac + 1.
    let shifted = b.shr_arith_dyn(&m, &k);
    let limit = b.const_word(frac as i64 + 1, cfg.index_bits());
    let too_big = b.lt_unsigned(&limit, &k);
    let zero = b.const_word(0, cfg.width);
    b.mux_word(too_big, &zero, &shifted)
}

/// `1/x` for `x > 0` — matches `fxp::recip` (normalize + 3 Newton steps).
pub fn recip(b: &mut CircuitBuilder, cfg: GcNumCfg, x: &Word) -> Word {
    let frac = cfg.frac as i64;
    let idx = cfg.index_bits();
    // e = msb_index(x); s = e + 1 - frac (signed).
    let e = msb_index(b, x, idx);
    let mut e_signed = e.clone();
    e_signed.push(Bit::Const(false)); // make room for sign
    let offset = b.const_word(1 - frac, idx + 1);
    let s = b.add(&e_signed, &offset);
    // m = shift_signed(x, -s) ∈ [0.5, 1).
    let m = shift_by_neg_signed(b, x, &s);
    // y = 48/17 − 32/17·m, then 3 Newton iterations y ← y(2 − m·y).
    let c48_17 = cq(b, cfg, 48.0 / 17.0);
    let c32_17 = cq(b, cfg, 32.0 / 17.0);
    let two = b.const_word(2i64 << cfg.frac, cfg.width);
    let t0 = mul_q(b, cfg, &c32_17, &m);
    let mut y = b.sub(&c48_17, &t0);
    for _ in 0..3 {
        let my = mul_q(b, cfg, &m, &y);
        let corr = b.sub(&two, &my);
        y = mul_q(b, cfg, &y, &corr);
    }
    // 1/x = (1/m) * 2^{-s}.
    shift_by_neg_signed(b, &y, &s)
}

/// `1/sqrt(x)` for `x > 0` — matches `fxp::rsqrt` (4 Newton steps).
pub fn rsqrt(b: &mut CircuitBuilder, cfg: GcNumCfg, x: &Word) -> Word {
    let frac = cfg.frac as i64;
    let idx = cfg.index_bits();
    let e = msb_index(b, x, idx);
    let mut e_signed = e.clone();
    e_signed.push(Bit::Const(false));
    let offset = b.const_word(-frac, idx + 1);
    let s_raw = b.add(&e_signed, &offset);
    // Make s even: s += s & 1.
    let lsb: Word = {
        let mut w = vec![Bit::Const(false); idx + 1];
        w[0] = s_raw[0];
        w
    };
    let s = b.add(&s_raw, &lsb);
    let m = shift_by_neg_signed(b, x, &s);
    let c_a = cq(b, cfg, 1.649_9);
    let c_b = cq(b, cfg, 0.471_4);
    let three = b.const_word(3i64 << cfg.frac, cfg.width);
    let t0 = mul_q(b, cfg, &c_b, &m);
    let mut y = b.sub(&c_a, &t0);
    for _ in 0..4 {
        let y2 = mul_q(b, cfg, &y, &y);
        let xy2 = mul_q(b, cfg, &m, &y2);
        let diff = b.sub(&three, &xy2);
        let halved = b.shr_arith_const(&diff, 1);
        y = mul_q(b, cfg, &y, &halved);
    }
    // result = shift_signed(y, -s/2); s is even so s/2 is exact.
    let half_s = b.shr_arith_const(&s, 1);
    shift_by_neg_signed(b, &y, &half_s)
}

/// Logistic sigmoid — matches `fxp::sigmoid`.
pub fn sigmoid(b: &mut CircuitBuilder, cfg: GcNumCfg, x: &Word) -> Word {
    let sign = *x.last().expect("non-empty");
    let x_abs = crate::arith::abs(b, x);
    let e = exp_neg(b, cfg, &x_abs);
    let one = b.const_word(1i64 << cfg.frac, cfg.width);
    let denom = b.add(&one, &e);
    let pos = recip(b, cfg, &denom);
    let neg_case = b.sub(&one, &pos);
    b.mux_word(sign, &neg_case, &pos)
}

/// GELU in sigmoid form — matches `fxp::gelu`.
pub fn gelu(b: &mut CircuitBuilder, cfg: GcNumCfg, x: &Word) -> Word {
    let k = cq(b, cfg, 1.702);
    let kx = mul_q(b, cfg, &k, x);
    let s = sigmoid(b, cfg, &kx);
    mul_q(b, cfg, x, &s)
}

/// Stable SoftMax over a slice of words — matches `fxp::softmax`.
pub fn softmax(b: &mut CircuitBuilder, cfg: GcNumCfg, xs: &[Word]) -> Vec<Word> {
    assert!(!xs.is_empty(), "softmax of an empty slice");
    let mut m = xs[0].clone();
    for x in &xs[1..] {
        m = max_signed(b, &m, x);
    }
    let exps: Vec<Word> = xs
        .iter()
        .map(|x| {
            let d = b.sub(&m, x);
            exp_neg(b, cfg, &d)
        })
        .collect();
    let mut sum = b.const_word(0, cfg.width);
    for e in &exps {
        sum = b.add(&sum, e);
    }
    let r = recip(b, cfg, &sum);
    exps.iter().map(|e| mul_q(b, cfg, e, &r)).collect()
}

/// LayerNorm with public affine constants — matches `fxp::layer_norm`.
/// `gamma`/`beta` are Q(frac) constants baked into the circuit (they are
/// the server's public-to-the-circuit model weights).
pub fn layer_norm(
    b: &mut CircuitBuilder,
    cfg: GcNumCfg,
    xs: &[Word],
    gamma: &[i64],
    beta: &[i64],
) -> Vec<Word> {
    assert_eq!(xs.len(), gamma.len(), "gamma length");
    assert_eq!(xs.len(), beta.len(), "beta length");
    let n = xs.len();
    let inv_n = const_q(1.0 / n as f64, cfg.frac);
    let inv_n_w = b.const_word(inv_n, cfg.width);
    let mut sum = b.const_word(0, cfg.width);
    for x in xs {
        sum = b.add(&sum, x);
    }
    let mean = mul_q(b, cfg, &sum, &inv_n_w);
    let centered: Vec<Word> = xs.iter().map(|x| b.sub(x, &mean)).collect();
    let mut var_sum = b.const_word(0, cfg.width);
    for c in &centered {
        let sq = mul_q(b, cfg, c, c);
        var_sum = b.add(&var_sum, &sq);
    }
    let var_raw = mul_q(b, cfg, &var_sum, &inv_n_w);
    let eps = b.const_word(const_q(1e-3, cfg.frac).max(1), cfg.width);
    let var = b.add(&var_raw, &eps);
    let rs = rsqrt(b, cfg, &var);
    centered
        .iter()
        .zip(gamma.iter().zip(beta))
        .map(|(c, (&g, &be))| {
            let normed = mul_q(b, cfg, c, &rs);
            let g_w = b.const_word(g, cfg.width);
            let scaled = mul_q(b, cfg, &normed, &g_w);
            let b_w = b.const_word(be, cfg.width);
            b.add(&scaled, &b_w)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_bits_signed, to_bits, CircuitBuilder};
    use primer_math::fxp;

    const CFG: GcNumCfg = GcNumCfg { width: 32, frac: 12 };

    /// Builds a unary circuit and checks bit-exactness against the fxp
    /// reference on the given inputs.
    fn check_unary(
        f_circ: impl Fn(&mut CircuitBuilder, GcNumCfg, &Word) -> Word,
        f_ref: impl Fn(i64) -> i64,
        inputs: &[i64],
    ) {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(CFG.width);
        let out = f_circ(&mut b, CFG, &x);
        let c = b.build(&out);
        for &v in inputs {
            let got = from_bits_signed(&c.eval_plain(&to_bits(v, CFG.width), &[]));
            let want = f_ref(v);
            assert_eq!(got, want, "input {v} ({})", v as f64 / 4096.0);
        }
    }

    fn q(x: f64) -> i64 {
        fxp::const_q(x, CFG.frac)
    }

    #[test]
    fn exp2_bit_exact() {
        let inputs: Vec<i64> = (0..=16).map(|i| i * 256).collect();
        check_unary(exp2_frac, |v| fxp::exp2_frac(v, CFG.frac), &inputs);
    }

    #[test]
    fn exp_neg_bit_exact() {
        let inputs: Vec<i64> =
            [0.0f64, 0.1, 0.5, 1.0, 2.0, 3.7, 8.0, 15.0, 30.0].iter().map(|&x| q(x)).collect();
        check_unary(exp_neg, |v| fxp::exp_neg(v, CFG.frac), &inputs);
    }

    #[test]
    fn recip_bit_exact() {
        let inputs: Vec<i64> =
            [0.1f64, 0.5, 1.0, 1.5, 2.0, 3.3, 10.0, 100.0].iter().map(|&x| q(x)).collect();
        check_unary(recip, |v| fxp::recip(v, CFG.frac), &inputs);
    }

    #[test]
    fn rsqrt_bit_exact() {
        let inputs: Vec<i64> =
            [0.1f64, 0.25, 0.9, 1.0, 2.0, 16.0, 70.0].iter().map(|&x| q(x)).collect();
        check_unary(rsqrt, |v| fxp::rsqrt(v, CFG.frac), &inputs);
    }

    #[test]
    fn sigmoid_and_gelu_bit_exact() {
        let inputs: Vec<i64> =
            [-6.0f64, -2.5, -0.7, 0.0, 0.3, 1.9, 6.0].iter().map(|&x| q(x)).collect();
        check_unary(sigmoid, |v| fxp::sigmoid(v, CFG.frac), &inputs);
        check_unary(gelu, |v| fxp::gelu(v, CFG.frac), &inputs);
    }

    #[test]
    fn softmax_bit_exact() {
        let vals: Vec<i64> = [-1.0f64, 0.5, 2.0, 0.0].iter().map(|&x| q(x)).collect();
        let mut b = CircuitBuilder::new();
        let xs: Vec<Word> = (0..4).map(|_| b.garbler_input(CFG.width)).collect();
        let ys = softmax(&mut b, CFG, &xs);
        let flat: Vec<_> = ys.into_iter().flatten().collect();
        let c = b.build(&flat);
        let mut input_bits = Vec::new();
        for &v in &vals {
            input_bits.extend(to_bits(v, CFG.width));
        }
        let out = c.eval_plain(&input_bits, &[]);
        let want = fxp::softmax(&vals, CFG.frac);
        for (i, w) in want.iter().enumerate() {
            let got =
                from_bits_signed(&out[i * CFG.width..(i + 1) * CFG.width]);
            assert_eq!(got, *w, "softmax slot {i}");
        }
    }

    #[test]
    fn layer_norm_bit_exact() {
        let vals: Vec<i64> = [0.0f64, 0.5, 1.0, 1.5, -2.0, 0.25, 3.0, -0.5]
            .iter()
            .map(|&x| q(x))
            .collect();
        let gamma: Vec<i64> = (0..8).map(|i| q(1.0 + i as f64 / 16.0)).collect();
        let beta: Vec<i64> = (0..8).map(|i| q(i as f64 / 8.0 - 0.5)).collect();
        let mut b = CircuitBuilder::new();
        let xs: Vec<Word> = (0..8).map(|_| b.garbler_input(CFG.width)).collect();
        let ys = layer_norm(&mut b, CFG, &xs, &gamma, &beta);
        let flat: Vec<_> = ys.into_iter().flatten().collect();
        let c = b.build(&flat);
        let mut input_bits = Vec::new();
        for &v in &vals {
            input_bits.extend(to_bits(v, CFG.width));
        }
        let out = c.eval_plain(&input_bits, &[]);
        let inv_n = fxp::const_q(1.0 / 8.0, CFG.frac);
        let want = fxp::layer_norm(&vals, &gamma, &beta, inv_n, CFG.frac);
        for (i, w) in want.iter().enumerate() {
            let got = from_bits_signed(&out[i * CFG.width..(i + 1) * CFG.width]);
            assert_eq!(got, *w, "layer_norm slot {i}");
        }
    }

    #[test]
    fn softmax_gate_budget_is_sane() {
        let mut b = CircuitBuilder::new();
        let xs: Vec<Word> = (0..8).map(|_| b.garbler_input(CFG.width)).collect();
        let ys = softmax(&mut b, CFG, &xs);
        let flat: Vec<_> = ys.into_iter().flatten().collect();
        let c = b.build(&flat);
        // ~10 multiplies per element at 32 bits ≈ tens of thousands of
        // ANDs; anything above a million signals a gadget blowup.
        assert!(c.and_count() < 1_000_000, "and count {}", c.and_count());
        assert!(c.and_count() > 1_000, "and count suspiciously low");
    }
}
