//! The "standard" distribution: what `rng.gen::<T>()` samples.

use crate::Rng;

/// Types that can be sampled uniformly from all their values (integers,
/// `bool`) or from `[0, 1)` (floats).
pub trait SampleStandard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for i128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
