//! Homomorphic evaluation: additions, plaintext multiplication, and
//! Galois rotations with key switching.
//!
//! # NTT residency (DESIGN.md §10)
//!
//! Ciphertext polynomials live in NTT (evaluation) form from encryption
//! to decryption. Rotations used to be the exception — the old path
//! pulled both parts back to coefficient form, applied the automorphism
//! there, and transformed every key-switch digit forward again. The
//! current path instead **hoists** ([`Evaluator::hoist`]): `c1` leaves
//! the evaluation domain exactly once per hoist for the RNS digit
//! extraction (digit extraction is inherently positional), the digits
//! are transformed forward once, and every subsequent Galois element is
//! applied as a pure evaluation-point permutation
//! ([`Evaluator::apply_galois_hoisted`]) — `c0` never leaves NTT form at
//! all. One rotation therefore costs 1 inverse NTT + D forward NTTs
//! (D = total key-switch digits) instead of the old 2 + D + 1, and
//! rotating the same ciphertext by many elements ([`Evaluator::
//! rotate_many`]) pays the decomposition once for the whole set.
//!
//! The coefficient-domain implementation survives as
//! [`Evaluator::apply_galois_coeff`], the reference the equivalence
//! tests pin the hoisted path against (identical decrypted slots; the
//! ciphertext noise differs immaterially below the decryption bound).

use crate::arena::ScratchArena;
use crate::cipher::{Ciphertext, Plaintext};
use crate::context::HeContext;
use crate::counters::{OpCounters, OpCounts};
use crate::error::HeError;
use crate::galois;
use crate::keys::{digits_for_prime, GaloisKeys, KskKey, RelinKey};
use crate::poly::RnsPoly;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A plaintext prepared for multiplication: centered-lifted into `R_q`
/// and transformed to NTT form. Reused across many `mul_plain` calls.
#[derive(Debug, Clone)]
pub struct MulPlain {
    poly: RnsPoly,
    /// True if every slot is zero (multiplication can be skipped).
    pub is_zero: bool,
}

impl MulPlain {
    /// Resident memory of the prepared mask (the NTT-form `R_q`
    /// polynomial) — what a cached prepared-weights plane pins per mask.
    pub fn resident_bytes(&self) -> usize {
        self.poly.serialized_size()
    }
}

/// A ciphertext whose key-switching decomposition has been computed
/// once ("hoisted"): the RNS digit extraction of `c1` — and the forward
/// NTT of every digit — is paid up front, so any number of Galois
/// elements can then be applied as cheap evaluation-point permutations.
/// Produced by [`Evaluator::hoist`], consumed by
/// [`Evaluator::apply_galois_hoisted`].
#[derive(Debug)]
pub struct HoistedCiphertext {
    /// `c0` in NTT form (untouched by the decomposition).
    c0: RnsPoly,
    /// `digits[i][j]` = digit `j` of `c1`'s residues mod prime `i`,
    /// spread over all RNS primes, in NTT form.
    digits: Vec<Vec<RnsPoly>>,
    digit_bits: u32,
}

/// Server-side homomorphic evaluator (no secret key).
#[derive(Debug)]
pub struct Evaluator {
    ctx: HeContext,
    /// Shared so the serving stack can watch a live session's op counts
    /// from its `/stats` thread while the evaluator is hot elsewhere.
    counters: Arc<OpCounters>,
    arena: Arc<ScratchArena>,
    /// High-water mark of *estimated* worst-case noise, in millibits
    /// (`u64` so it can be a lock-free `fetch_max`). The packed-matmul
    /// drivers compute a [`crate::NoiseModel`] bound for each chain they
    /// evaluate and record it here, so a phase's op counts come with the
    /// noise estimate that justified its layout choice.
    noise_millibits: AtomicU64,
}

impl Evaluator {
    /// Creates an evaluator for a context, with a private scratch arena.
    pub fn new(ctx: &HeContext) -> Self {
        Self::with_arena(ctx, Arc::new(ScratchArena::new()))
    }

    /// Creates an evaluator sharing an existing scratch arena — the
    /// parallel offline producers give each bundle a scratch evaluator
    /// (for exact per-bundle op attribution) but share the session
    /// arena, so recycled buffers flow between workers instead of each
    /// scratch evaluator warming a pool it immediately drops.
    pub fn with_arena(ctx: &HeContext, arena: Arc<ScratchArena>) -> Self {
        Self {
            ctx: ctx.clone(),
            counters: Arc::new(OpCounters::new()),
            arena,
            noise_millibits: AtomicU64::new(0),
        }
    }

    /// Records a worst-case noise estimate (in bits) for work evaluated
    /// through this evaluator; keeps the maximum seen.
    pub fn note_noise(&self, bits: f64) {
        let millibits = (bits.max(0.0) * 1000.0) as u64;
        self.noise_millibits.fetch_max(millibits, Ordering::Relaxed);
    }

    /// The largest noise estimate recorded so far, in bits.
    pub fn noise_high_water_bits(&self) -> f64 {
        self.noise_millibits.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// The scratch arena (shared with scratch evaluators).
    pub fn arena(&self) -> &Arc<ScratchArena> {
        &self.arena
    }

    /// The context.
    pub fn context(&self) -> &HeContext {
        &self.ctx
    }

    /// Operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// A shared handle to the counters — what a live `/stats` poll reads
    /// while this evaluator is busy on another thread.
    pub fn counters_handle(&self) -> Arc<OpCounters> {
        Arc::clone(&self.counters)
    }

    /// Snapshot of the counters.
    pub fn counts(&self) -> OpCounts {
        self.counters.snapshot()
    }

    /// Merges another evaluator's counts into this one (the parallel
    /// offline producers give each bundle a scratch evaluator for exact
    /// per-bundle attribution, then fold the ops back into the session).
    pub fn absorb_counts(&self, delta: &OpCounts) {
        self.counters.add(delta);
    }

    /// `a + b`.
    ///
    /// # Panics
    ///
    /// Panics if part counts differ (relinearize or resize first).
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(a.size(), b.size(), "ciphertext size mismatch in add");
        self.counters.bump(|c| c.add += 1);
        let mut out = a.clone();
        for i in 0..b.size() {
            out.part_mut(i).add_assign(&self.ctx, b.part(i));
        }
        out
    }

    /// `a += b` in place.
    pub fn add_inplace(&self, a: &mut Ciphertext, b: &Ciphertext) {
        assert_eq!(a.size(), b.size(), "ciphertext size mismatch in add");
        self.counters.bump(|c| c.add += 1);
        for i in 0..b.size() {
            a.part_mut(i).add_assign(&self.ctx, b.part(i));
        }
    }

    /// `a - b`.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(a.size(), b.size(), "ciphertext size mismatch in sub");
        self.counters.bump(|c| c.add += 1);
        let mut out = a.clone();
        for i in 0..b.size() {
            out.part_mut(i).sub_assign(&self.ctx, b.part(i));
        }
        out
    }

    /// `-a`.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        for i in 0..out.size() {
            out.part_mut(i).negate(&self.ctx);
        }
        out
    }

    /// `ct + pt` (Δ-scaled plaintext added to the body).
    pub fn add_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.counters.bump(|c| {
            c.add_plain += 1;
            c.ntt += 1;
        });
        let mut scaled = self.arena.take_uninit(&self.ctx, false);
        RnsPoly::scale_plain_into(&self.ctx, pt.coeffs(), &mut scaled);
        scaled.to_ntt(&self.ctx);
        let mut out = ct.clone();
        out.part_mut(0).add_assign(&self.ctx, &scaled);
        self.arena.recycle(&self.ctx, scaled);
        out
    }

    /// `ct - pt`.
    pub fn sub_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.counters.bump(|c| {
            c.add_plain += 1;
            c.ntt += 1;
        });
        let mut scaled = self.arena.take_uninit(&self.ctx, false);
        RnsPoly::scale_plain_into(&self.ctx, pt.coeffs(), &mut scaled);
        scaled.to_ntt(&self.ctx);
        let mut out = ct.clone();
        out.part_mut(0).sub_assign(&self.ctx, &scaled);
        self.arena.recycle(&self.ctx, scaled);
        out
    }

    /// Prepares a plaintext for repeated multiplication (centered lift
    /// into `R_q` plus one forward NTT per prime — the per-mask cost the
    /// prepared-weights plane hoists out of the hot path; counted as
    /// `mask_prep` so phase attribution can prove where encoding runs).
    pub fn prepare_mul_plain(&self, pt: &Plaintext) -> MulPlain {
        self.counters.bump(|c| {
            c.mask_prep += 1;
            c.ntt += 1;
        });
        let is_zero = pt.coeffs().iter().all(|&c| c == 0);
        let mut poly = RnsPoly::lift_plain_centered(&self.ctx, pt.coeffs());
        poly.to_ntt(&self.ctx);
        MulPlain { poly, is_zero }
    }

    /// `ct × pt` (slot-wise).
    pub fn mul_plain(&self, ct: &Ciphertext, pt: &MulPlain) -> Ciphertext {
        self.counters.bump(|c| c.mul_plain += 1);
        let mut out = ct.clone();
        for i in 0..out.size() {
            out.part_mut(i).mul_pointwise_assign(&self.ctx, &pt.poly);
        }
        out
    }

    /// Fused `acc += ct × pt`, the inner loop of encrypted matmul.
    pub fn mul_plain_accumulate(&self, acc: &mut Ciphertext, ct: &Ciphertext, pt: &MulPlain) {
        assert_eq!(acc.size(), ct.size(), "size mismatch in accumulate");
        self.counters.bump(|c| {
            c.mul_plain += 1;
            c.add += 1;
        });
        for i in 0..ct.size() {
            acc.part_mut(i).add_mul_pointwise_assign(&self.ctx, ct.part(i), &pt.poly);
        }
    }

    /// An encryption of zero (trivial, noiseless — used as accumulator seed).
    pub fn zero_ciphertext(&self) -> Ciphertext {
        Ciphertext::new(
            vec![RnsPoly::zero(&self.ctx, true), RnsPoly::zero(&self.ctx, true)],
            None,
        )
    }

    /// Rotates both batching rows left by `step` (`result slot i` =
    /// `input slot i+step`). Uses a dedicated key when available,
    /// otherwise composes power-of-two hops.
    ///
    /// # Errors
    ///
    /// [`HeError::MissingGaloisKey`] if the step cannot be realized with
    /// the provided keys.
    pub fn rotate_rows(
        &self,
        ct: &Ciphertext,
        step: usize,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext, HeError> {
        let n = self.ctx.n();
        let s = step % (n / 2);
        if s == 0 {
            return Ok(ct.clone());
        }
        let hops = galois::decompose_step(s, keys.steps())
            .ok_or(HeError::MissingGaloisKey { step: s })?;
        let mut out = ct.clone();
        for hop in hops {
            let element = galois::element_for_row_step(n, hop);
            let key = keys.key_for(element).ok_or(HeError::MissingGaloisKey { step: hop })?;
            out = self.apply_galois(&out, element, key);
        }
        Ok(out)
    }

    /// Swaps the two batching rows.
    ///
    /// # Errors
    ///
    /// [`HeError::MissingGaloisKey`] if the column key was not generated.
    pub fn rotate_columns(
        &self,
        ct: &Ciphertext,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext, HeError> {
        let element = galois::element_for_columns(self.ctx.n());
        let key = keys.key_for(element).ok_or(HeError::MissingGaloisKey { step: 0 })?;
        Ok(self.apply_galois(ct, element, key))
    }

    /// Hoists a ciphertext: performs the one inverse NTT of `c1` and the
    /// full RNS digit decomposition (with its forward NTTs) that every
    /// key switch needs, so the result can be rotated by any number of
    /// Galois elements at permutation-plus-pointwise cost each.
    ///
    /// # Panics
    ///
    /// Panics unless the ciphertext has exactly 2 parts.
    pub fn hoist(&self, ct: &Ciphertext) -> HoistedCiphertext {
        assert_eq!(ct.size(), 2, "hoisting applies to size-2 ciphertexts");
        let _span = primer_obs::span!("he.hoist");
        self.counters.bump(|c| c.ntt += 1);
        let ctx = &self.ctx;
        // The working copy of `c1` is scratch (every limb is overwritten
        // by the copy below); the digits it decomposes into escape with
        // the hoist and come back via `recycle_hoisted`.
        let mut c1 = self.arena.take_uninit(ctx, true);
        for i in 0..ctx.num_primes() {
            c1.residues_mut(i).copy_from_slice(ct.part(1).residues(i));
        }
        c1.to_coeff(ctx);
        let digits = self.decompose_ntt(&c1);
        self.arena.recycle(ctx, c1);
        HoistedCiphertext {
            c0: ct.part(0).clone(),
            digits,
            digit_bits: ctx.params().decomp_bits(),
        }
    }

    /// Returns a consumed hoist's digit storage to the scratch arena.
    /// Every internal consumer ([`Evaluator::apply_galois`],
    /// [`Evaluator::rotate_many`]) calls this when the hoist dies, so
    /// rotation-heavy chains recycle their largest temporaries instead
    /// of round-tripping the allocator `D` times per hoist.
    pub fn recycle_hoisted(&self, h: HoistedCiphertext) {
        for prime_digits in h.digits {
            for digit in prime_digits {
                self.arena.recycle(&self.ctx, digit);
            }
        }
    }

    /// Applies `x → x^element` to a hoisted ciphertext and switches back
    /// to the canonical key, entirely in the evaluation domain: `c0` and
    /// every precomputed digit are permuted (the NTT-domain automorphism)
    /// and multiply-accumulated against the key. One call = one
    /// elementary rotation in the op counts.
    pub fn apply_galois_hoisted(
        &self,
        h: &HoistedCiphertext,
        element: u64,
        key: &KskKey,
    ) -> Ciphertext {
        self.counters.bump(|c| c.rotations += 1);
        let ctx = &self.ctx;
        debug_assert_eq!(key.digit_bits(), h.digit_bits, "key/hoist digit width mismatch");
        let perm = ctx.galois_perm(element);
        let mut acc0 = h.c0.permute_ntt(ctx, &perm);
        let mut acc1 = RnsPoly::zero(ctx, true);
        // One arena buffer serves every σ(digit) in the double loop —
        // permute_ntt_into overwrites all residues each pass.
        let mut sd = self.arena.take_uninit(ctx, true);
        for (i, prime_digits) in h.digits.iter().enumerate() {
            debug_assert_eq!(prime_digits.len(), key.digits(i), "digit count mismatch");
            for (j, digit) in prime_digits.iter().enumerate() {
                // σ(digit) in NTT form: the permutation carries the
                // negacyclic sign flips, so coefficients stay ±digit —
                // within the same key-switch noise bound as the
                // coefficient-domain path.
                digit.permute_ntt_into(ctx, &perm, &mut sd);
                let (b, a) = key.part(i, j);
                // Fused interleaved pass (see `key_switch`).
                RnsPoly::add_mul2_pointwise_assign(ctx, &mut acc0, &mut acc1, &sd, b, a);
            }
        }
        self.arena.recycle(ctx, sd);
        Ciphertext::new(vec![acc0, acc1], None)
    }

    /// Applies `x → x^element` and switches back to the canonical key
    /// (hoist + one hoisted application). One call = one elementary
    /// rotation in the op counts.
    pub fn apply_galois(&self, ct: &Ciphertext, element: u64, key: &KskKey) -> Ciphertext {
        let _span = primer_obs::span!("he.rotate", element = element);
        let h = self.hoist(ct);
        let out = self.apply_galois_hoisted(&h, element, key);
        self.recycle_hoisted(h);
        out
    }

    /// The coefficient-domain reference implementation of
    /// [`Evaluator::apply_galois`] (the pre-hoisting path): both parts
    /// leave NTT form, the automorphism runs on coefficients, and the
    /// digits of `σ(c1)` are decomposed after the automorphism. Kept so
    /// the equivalence suite can pin the hoisted path against it slot
    /// for slot; not used by any protocol.
    pub fn apply_galois_coeff(&self, ct: &Ciphertext, element: u64, key: &KskKey) -> Ciphertext {
        assert_eq!(ct.size(), 2, "galois on size-2 ciphertexts only");
        self.counters.bump(|c| {
            c.rotations += 1;
            // Two inverse transforms to leave NTT form plus the forward
            // transform of σ(c0); the digits count inside key_switch.
            c.ntt += 3;
        });
        let ctx = &self.ctx;
        let mut c0 = ct.part(0).clone();
        let mut c1 = ct.part(1).clone();
        c0.to_coeff(ctx);
        c1.to_coeff(ctx);
        let c0g = c0.apply_automorphism(ctx, element);
        let c1g = c1.apply_automorphism(ctx, element);
        let (mut acc0, acc1) = self.key_switch(&c1g, key);
        let mut c0g_ntt = c0g;
        c0g_ntt.to_ntt(ctx);
        acc0.add_assign(ctx, &c0g_ntt);
        Ciphertext::new(vec![acc0, acc1], None)
    }

    /// Rotates one ciphertext by several row steps at once, hoisting the
    /// key-switch decomposition **once** and reusing it for every Galois
    /// element — the amortization diagonal-method matmul chains rely on.
    /// Each step must be covered by a dedicated key: falling back to
    /// power-of-two hop composition would re-decompose at every hop and
    /// defeat the hoist, so that case is reported as missing instead.
    ///
    /// # Errors
    ///
    /// [`HeError::MissingGaloisKey`] if any step lacks a dedicated key.
    pub fn rotate_many(
        &self,
        ct: &Ciphertext,
        steps: &[usize],
        keys: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>, HeError> {
        let _span = primer_obs::span!("he.rotate_many", steps = steps.len());
        let n = self.ctx.n();
        let h = self.hoist(ct);
        let out: Result<Vec<Ciphertext>, HeError> = steps
            .iter()
            .map(|&step| {
                let s = step % (n / 2);
                if s == 0 {
                    return Ok(ct.clone());
                }
                let element = galois::element_for_row_step(n, s);
                let key = keys.key_for(element).ok_or(HeError::MissingGaloisKey { step: s })?;
                Ok(self.apply_galois_hoisted(&h, element, key))
            })
            .collect();
        self.recycle_hoisted(h);
        out
    }

    /// The RNS digit decomposition of a coefficient-form polynomial,
    /// every digit transformed to NTT form — shared by hoisting and the
    /// relinearization key switch.
    fn decompose_ntt(&self, poly_coeff: &RnsPoly) -> Vec<Vec<RnsPoly>> {
        let ctx = &self.ctx;
        let w = ctx.params().decomp_bits();
        let total_digits: u64 =
            ctx.moduli().iter().map(|m| digits_for_prime(m.value(), w) as u64).sum();
        self.counters.bump(|c| c.ntt += total_digits);
        let mask = ((1u128 << w) - 1) as u64;
        let lvl = crate::simd::level();
        // Scratch row shared by every digit: one vectorized extraction
        // per digit, then a straight copy into each prime row (d < 2^w <
        // every q_p, so the same row is a valid residue everywhere).
        let mut extracted = vec![0u64; ctx.n()];
        (0..ctx.num_primes())
            .map(|i| {
                let residues = poly_coeff.residues(i);
                let digits = digits_for_prime(ctx.moduli()[i].value(), w);
                (0..digits)
                    .map(|j| {
                        let shift = j * w;
                        // Fully overwritten below (all rows), so stale
                        // arena limbs are safe.
                        let mut digit = self.arena.take_uninit(ctx, false);
                        crate::simd::extract_digit(residues, shift, mask, &mut extracted, lvl);
                        for p in 0..ctx.num_primes() {
                            digit.residues_mut(p).copy_from_slice(&extracted);
                        }
                        digit.to_ntt(ctx);
                        digit
                    })
                    .collect()
            })
            .collect()
    }

    /// Relinearizes a size-3 ciphertext down to size 2 (THE-X baseline).
    ///
    /// # Errors
    ///
    /// [`HeError::WrongCiphertextSize`] unless the input has 3 parts.
    pub fn relinearize(&self, ct: &Ciphertext, rk: &RelinKey) -> Result<Ciphertext, HeError> {
        if ct.size() != 3 {
            return Err(HeError::WrongCiphertextSize { expected: 3, actual: ct.size() });
        }
        self.counters.bump(|c| {
            c.relin += 1;
            c.ntt += 1;
        });
        let ctx = &self.ctx;
        let mut c2 = ct.part(2).clone();
        c2.to_coeff(ctx);
        let (acc0, acc1) = self.key_switch(&c2, &rk.0);
        let mut p0 = ct.part(0).clone();
        p0.add_assign(ctx, &acc0);
        let mut p1 = ct.part(1).clone();
        p1.add_assign(ctx, &acc1);
        Ok(Ciphertext::new(vec![p0, p1], None))
    }

    /// Core key switch: given `poly` (coefficient form) encrypted-times
    /// `s_old`, produces `(acc0, acc1)` in NTT form such that
    /// `acc0 + acc1·s ≈ poly·s_old`. Built on [`Evaluator::decompose_ntt`],
    /// so this path and hoisting decompose identically by construction
    /// (deserialization pins every key's digit width to the context's).
    fn key_switch(&self, poly_coeff: &RnsPoly, key: &KskKey) -> (RnsPoly, RnsPoly) {
        let ctx = &self.ctx;
        debug_assert_eq!(key.digit_bits(), ctx.params().decomp_bits(), "digit width mismatch");
        let digits = self.decompose_ntt(poly_coeff);
        let mut acc0 = RnsPoly::zero(ctx, true);
        let mut acc1 = RnsPoly::zero(ctx, true);
        for (i, prime_digits) in digits.iter().enumerate() {
            debug_assert_eq!(prime_digits.len(), key.digits(i), "digit count mismatch");
            for (j, digit) in prime_digits.iter().enumerate() {
                let (b, a) = key.part(i, j);
                // Fused interleaved pass: the digit is loaded once and
                // accumulated against both key halves across all limbs.
                RnsPoly::add_mul2_pointwise_assign(ctx, &mut acc0, &mut acc1, digit, b, a);
            }
        }
        // The digits die here (a hoist's escape instead and come back
        // via `recycle_hoisted`) — return their storage to the arena.
        for prime_digits in digits {
            for digit in prime_digits {
                self.arena.recycle(ctx, digit);
            }
        }
        (acc0, acc1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BatchEncoder;
    use crate::encryptor::Encryptor;
    use crate::keys::KeyGenerator;
    use crate::params::HeParams;
    use primer_math::rng::seeded;

    struct Fixture {
        ctx: HeContext,
        enc: BatchEncoder,
        encr: Encryptor,
        eval: Evaluator,
        kg: KeyGenerator,
    }

    fn fixture(params: HeParams) -> Fixture {
        let ctx = HeContext::new(params);
        let enc = BatchEncoder::new(&ctx);
        let mut rng = seeded(50);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encr = Encryptor::new(&ctx, kg.secret_key().clone(), 51);
        let eval = Evaluator::new(&ctx);
        Fixture { ctx, enc, encr, eval, kg }
    }

    #[test]
    fn homomorphic_addition() {
        let f = fixture(HeParams::toy());
        let t = f.ctx.params().t();
        let a: Vec<u64> = (0..100).map(|i| i * 3 % t).collect();
        let b: Vec<u64> = (0..100).map(|i| i * 7 % t).collect();
        let ca = f.encr.encrypt(&f.enc.encode(&a));
        let cb = f.encr.encrypt(&f.enc.encode(&b));
        let sum = f.eval.add(&ca, &cb);
        let got = f.enc.decode(&f.encr.decrypt(&sum));
        for i in 0..100 {
            assert_eq!(got[i], (a[i] + b[i]) % t);
        }
    }

    #[test]
    fn plaintext_add_and_sub() {
        let f = fixture(HeParams::toy());
        let t = f.ctx.params().t();
        let a = vec![100u64, 200, 300];
        let b = vec![5u64, t - 1, 42];
        let ct = f.encr.encrypt(&f.enc.encode(&a));
        let added = f.eval.add_plain(&ct, &f.enc.encode(&b));
        let got = f.enc.decode(&f.encr.decrypt(&added));
        for i in 0..3 {
            assert_eq!(got[i], (a[i] + b[i]) % t);
        }
        let subbed = f.eval.sub_plain(&added, &f.enc.encode(&b));
        let back = f.enc.decode(&f.encr.decrypt(&subbed));
        assert_eq!(&back[..3], &a[..]);
    }

    #[test]
    fn plaintext_multiplication_slotwise() {
        let f = fixture(HeParams::toy());
        let t = f.ctx.params().t();
        let a: Vec<u64> = (0..50).map(|i| (i * i) % t).collect();
        let w: Vec<u64> = (0..50).map(|i| (i + 13) % t).collect();
        let ct = f.encr.encrypt(&f.enc.encode(&a));
        let mp = f.eval.prepare_mul_plain(&f.enc.encode(&w));
        let prod = f.eval.mul_plain(&ct, &mp);
        let budget = f.encr.noise_budget(&prod);
        assert!(budget > 5.0, "post-mult budget {budget}");
        let got = f.enc.decode(&f.encr.decrypt(&prod));
        for i in 0..50 {
            assert_eq!(got[i], a[i] * w[i] % t, "slot {i}");
        }
    }

    #[test]
    fn rotation_moves_slots_left() {
        let f = fixture(HeParams::toy());
        let rs = f.enc.row_size();
        let vals: Vec<u64> = (0..2 * rs as u64).map(|v| v + 1).collect();
        let ct = f.encr.encrypt(&f.enc.encode(&vals));
        let mut rng = seeded(52);
        let gk = f.kg.galois_keys(&[1, 5], false, &mut rng);
        for step in [1usize, 5] {
            let rot = f.eval.rotate_rows(&ct, step, &gk).expect("key present");
            let got = f.enc.decode(&f.encr.decrypt(&rot));
            for i in 0..rs {
                assert_eq!(got[i], vals[(i + step) % rs], "step {step} slot {i}");
                assert_eq!(got[rs + i], vals[rs + (i + step) % rs]);
            }
        }
    }

    #[test]
    fn rotation_composes_from_pow2() {
        let f = fixture(HeParams::toy());
        let rs = f.enc.row_size();
        let vals: Vec<u64> = (0..2 * rs as u64).map(|v| 2 * v + 3).collect();
        let ct = f.encr.encrypt(&f.enc.encode(&vals));
        let mut rng = seeded(53);
        let gk = f.kg.galois_keys_pow2(&[], false, &mut rng);
        let before = f.eval.counts().rotations;
        let rot = f.eval.rotate_rows(&ct, 11, &gk).expect("pow2 coverage");
        // 11 = 8 + 2 + 1 → exactly three elementary rotations.
        assert_eq!(f.eval.counts().rotations - before, 3);
        let got = f.enc.decode(&f.encr.decrypt(&rot));
        for i in 0..rs {
            assert_eq!(got[i], vals[(i + 11) % rs]);
        }
    }

    #[test]
    fn column_rotation_swaps_rows() {
        let f = fixture(HeParams::toy());
        let rs = f.enc.row_size();
        let vals: Vec<u64> = (0..2 * rs as u64).map(|v| v + 7).collect();
        let ct = f.encr.encrypt(&f.enc.encode(&vals));
        let mut rng = seeded(54);
        let gk = f.kg.galois_keys(&[1], true, &mut rng);
        let rot = f.eval.rotate_columns(&ct, &gk).expect("columns key");
        let got = f.enc.decode(&f.encr.decrypt(&rot));
        for i in 0..rs {
            assert_eq!(got[i], vals[rs + i]);
            assert_eq!(got[rs + i], vals[i]);
        }
    }

    #[test]
    fn missing_key_is_an_error() {
        let f = fixture(HeParams::toy());
        let ct = f.encr.encrypt(&f.enc.encode(&[1]));
        let mut rng = seeded(55);
        let gk = f.kg.galois_keys(&[4], false, &mut rng);
        let err = f.eval.rotate_rows(&ct, 3, &gk).unwrap_err();
        assert!(matches!(err, HeError::MissingGaloisKey { .. }));
    }

    #[test]
    fn rotation_works_on_two_prime_profile() {
        let f = fixture(HeParams::test_2k());
        let rs = f.enc.row_size();
        let vals: Vec<u64> = (0..2 * rs as u64).map(|v| v % 1000).collect();
        let ct = f.encr.encrypt(&f.enc.encode(&vals));
        let mut rng = seeded(56);
        let gk = f.kg.galois_keys(&[7], false, &mut rng);
        let rot = f.eval.rotate_rows(&ct, 7, &gk).expect("key present");
        let budget = f.encr.noise_budget(&rot);
        assert!(budget > 30.0, "post-rotation budget {budget}");
        let got = f.enc.decode(&f.encr.decrypt(&rot));
        for i in 0..rs {
            assert_eq!(got[i], vals[(i + 7) % rs]);
        }
    }

    #[test]
    fn hoisted_rotation_matches_coeff_reference() {
        for params in [HeParams::toy(), HeParams::test_2k()] {
            let f = fixture(params);
            let rs = f.enc.row_size();
            let vals: Vec<u64> = (0..2 * rs as u64).map(|v| (v * 3 + 1) % 1000).collect();
            let ct = f.encr.encrypt(&f.enc.encode(&vals));
            let mut rng = seeded(57);
            let gk = f.kg.galois_keys(&[1, 5], true, &mut rng);
            for element in [
                crate::galois::element_for_row_step(f.ctx.n(), 1),
                crate::galois::element_for_row_step(f.ctx.n(), 5),
                crate::galois::element_for_columns(f.ctx.n()),
            ] {
                let key = gk.key_for(element).expect("key generated");
                let hoisted = f.eval.apply_galois(&ct, element, key);
                let reference = f.eval.apply_galois_coeff(&ct, element, key);
                // Same plaintext slots (ciphertext noise differs
                // immaterially — both stay far below the bound).
                assert_eq!(
                    f.enc.decode(&f.encr.decrypt(&hoisted)),
                    f.enc.decode(&f.encr.decrypt(&reference)),
                    "element {element}"
                );
                let budget = f.encr.noise_budget(&hoisted);
                assert!(budget > 5.0, "hoisted budget {budget}");
            }
        }
    }

    #[test]
    fn rotate_many_amortizes_one_hoist_and_matches_rotate_rows() {
        let f = fixture(HeParams::toy());
        let rs = f.enc.row_size();
        let vals: Vec<u64> = (0..2 * rs as u64).map(|v| v + 9).collect();
        let ct = f.encr.encrypt(&f.enc.encode(&vals));
        let mut rng = seeded(58);
        let steps = [1usize, 3, 7, 20];
        let gk = f.kg.galois_keys(&steps, false, &mut rng);
        let before = f.eval.counts().rotations;
        let many = f.eval.rotate_many(&ct, &steps, &gk).expect("dedicated keys");
        assert_eq!(f.eval.counts().rotations - before, steps.len() as u64);
        for (&step, rotated) in steps.iter().zip(&many) {
            // Bit-identical to the one-at-a-time path (same element, same
            // key, same arithmetic — the hoist is pure reuse).
            let single = f.eval.rotate_rows(&ct, step, &gk).expect("key");
            assert_eq!(rotated, &single, "step {step}");
        }
        // A step without a dedicated key is refused, not silently
        // decomposed (hop composition would re-hoist per hop).
        let err = f.eval.rotate_many(&ct, &[6], &gk).unwrap_err();
        assert!(matches!(err, HeError::MissingGaloisKey { .. }));
    }

    #[test]
    fn accumulate_matches_mul_then_add() {
        let f = fixture(HeParams::toy());
        let t = f.ctx.params().t();
        let a: Vec<u64> = (0..20).map(|i| i + 1).collect();
        let w: Vec<u64> = (0..20).map(|i| 2 * i + 1).collect();
        let ct = f.encr.encrypt(&f.enc.encode(&a));
        let mp = f.eval.prepare_mul_plain(&f.enc.encode(&w));
        let mut acc = f.eval.zero_ciphertext();
        f.eval.mul_plain_accumulate(&mut acc, &ct, &mp);
        f.eval.mul_plain_accumulate(&mut acc, &ct, &mp);
        let got = f.enc.decode(&f.encr.decrypt(&acc));
        for i in 0..20 {
            assert_eq!(got[i], 2 * a[i] * w[i] % t);
        }
    }
}
