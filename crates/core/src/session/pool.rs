//! Bundle pooling: FIFO pools of precomputed offline material and the
//! lockstep refill schedule both parties share.

use std::collections::VecDeque;

/// A FIFO pool of precomputed offline bundles.
///
/// Bundles leave the pool by move ([`OfflinePool::take`]), so the masks
/// they carry are consumed exactly once; an empty pool yields `None`
/// and must be explicitly refilled by the owning session.
#[derive(Debug, Default)]
pub struct OfflinePool<B> {
    bundles: VecDeque<B>,
}

impl<B> OfflinePool<B> {
    /// An empty pool.
    pub fn new() -> Self {
        Self { bundles: VecDeque::new() }
    }

    /// Number of unconsumed bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether the pool has no bundles left.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Adds a freshly produced bundle.
    pub fn put(&mut self, bundle: B) {
        self.bundles.push_back(bundle);
    }

    /// Takes the oldest bundle, or `None` if the pool is drained.
    pub fn take(&mut self) -> Option<B> {
        self.bundles.pop_front()
    }
}

/// How many bundles the next refill should produce: the pool target,
/// capped by the queries the session still owes (never overproducing
/// masks that would go unused). Both parties evaluate this formula with
/// identical arguments, so their refills stay in lockstep on the wire.
pub(crate) fn refill_quota(pool_target: usize, total_queries: usize, produced: usize) -> usize {
    pool_target.min(total_queries.saturating_sub(produced)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_drains_by_move_and_refuses_silent_reuse() {
        let mut pool: OfflinePool<Vec<u8>> = OfflinePool::new();
        assert!(pool.is_empty());
        pool.put(vec![1]);
        pool.put(vec![2]);
        assert_eq!(pool.len(), 2);
        // FIFO: the oldest bundle is consumed first, by move.
        assert_eq!(pool.take(), Some(vec![1]));
        assert_eq!(pool.take(), Some(vec![2]));
        // Drained: takes fail loudly rather than re-serving a bundle.
        assert_eq!(pool.take(), None);
        assert!(pool.is_empty());
        // Refill works after a drain.
        pool.put(vec![3]);
        assert_eq!(pool.take(), Some(vec![3]));
    }
}
