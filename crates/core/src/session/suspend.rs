//! Session suspend/resume: park a pipelined session with zero threads.
//!
//! A suspended session is the set of facts needed to serve its
//! remaining queries later — possibly in another process:
//!
//! * the client's Galois keys (received once during Setup),
//! * every **unconsumed offline bundle** (masked-share matrices, FHGS
//!   triples, per-step accounting), and
//! * the accumulated cost/traffic marks, so a resumed session's summary
//!   equals an uninterrupted run's.
//!
//! Suspension happens only **between** online queries — the wire is
//! fully quiescent there — and only after the offline phase has run to
//! completion: draining the bounded pool releases the producer's
//! backpressure, so it produces every booked bundle in the normal
//! lockstep wire schedule and exits. Nothing mid-protocol (rng state,
//! half-sent flights) ever needs to be captured, which is what keeps a
//! resumed session's logits bit-identical to an uninterrupted run.
//!
//! The server image serializes to bytes (`primer_serve` writes it to
//! the suspend directory); the client side stays in memory, because the
//! client is the party that *chooses* to suspend and keeps its secret
//! key either way. Garbled-mode sessions cannot suspend: an
//! [`EvaluatorSession`](primer_gc) holds live IKNP OT state that is not
//! serializable, and the typed [`SuspendError::GarbledUnsupported`]
//! says so instead of corrupting the session.
//!
//! **Privacy note:** a server suspend image holds one-time mask
//! material. It must be consumed at most once — resuming twice from the
//! same image would reuse masks across queries — so the serving layer
//! deletes the file as part of loading it.

use super::offline::{BlockServerPre, ServerBundle};
use super::plane::ModelPlane;
use super::pool::SharedPool;
use super::server::{ServerCore, ServerOnline};
use super::ProtocolVariant;
use crate::gcmod::{GcMode, GcServerStep};
use crate::serial::{put_bytes, put_u32, put_u64, read_matz, write_matz, Rdr};
use crate::stats::{PhaseCost, StepBreakdown, StepCategory};
use crate::system::SystemConfig;
use primer_gc::Circuit;
use primer_he::{BatchEncoder, Evaluator, GaloisKeys, HeContext, HeError, OpCounts};
use primer_net::TrafficSnapshot;
use std::sync::Arc;
use std::time::Duration;

/// Suspend-image format version (bump on any layout change; resume
/// rejects versions it does not know instead of misreading them).
pub const SUSPEND_FORMAT_VERSION: u32 = 1;

/// Why a session could not be suspended or resumed.
#[derive(Debug)]
pub enum SuspendError {
    /// Garbled-mode sessions hold live OT state that cannot be
    /// serialized; only `GcMode::Simulated` sessions suspend.
    GarbledUnsupported,
    /// The image bytes are truncated, foreign or corrupt.
    Malformed(HeError),
    /// The image is structurally valid but inconsistent with this
    /// server (wrong format version, variant, or model plane).
    BadImage(&'static str),
}

impl std::fmt::Display for SuspendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuspendError::GarbledUnsupported => {
                write!(f, "garbled-mode sessions cannot suspend (live OT state)")
            }
            SuspendError::Malformed(e) => write!(f, "malformed suspend image: {e}"),
            SuspendError::BadImage(what) => write!(f, "inconsistent suspend image: {what}"),
        }
    }
}

impl std::error::Error for SuspendError {}

impl From<HeError> for SuspendError {
    fn from(e: HeError) -> Self {
        SuspendError::Malformed(e)
    }
}

fn variant_code(v: ProtocolVariant) -> u8 {
    match v {
        ProtocolVariant::Base => 0,
        ProtocolVariant::F => 1,
        ProtocolVariant::Fp => 2,
        ProtocolVariant::Fpc => 3,
    }
}

fn variant_from_code(c: u8) -> Result<ProtocolVariant, SuspendError> {
    Ok(match c {
        0 => ProtocolVariant::Base,
        1 => ProtocolVariant::F,
        2 => ProtocolVariant::Fp,
        3 => ProtocolVariant::Fpc,
        _ => return Err(SuspendError::BadImage("variant code")),
    })
}

/// A server session parked between queries: everything needed to build
/// a fresh [`ServerOnline`] that serves the remaining queries with
/// bit-identical wire bytes, in this process or after a restart.
pub struct ServerSuspendImage {
    pub(crate) variant: ProtocolVariant,
    pub(crate) setup_cost: PhaseCost,
    pub(crate) wire_mark: TrafficSnapshot,
    pub(crate) gk_bytes: Vec<u8>,
    pub(crate) bundles: Vec<ServerBundle>,
}

impl ServerSuspendImage {
    /// The suspended session's protocol variant.
    pub fn variant(&self) -> ProtocolVariant {
        self.variant
    }

    /// Unconsumed offline bundles — the queries this image can still
    /// serve.
    pub fn remaining(&self) -> usize {
        self.bundles.len()
    }

    /// Serializes the image (see the module docs for the privacy
    /// contract: these bytes hold one-time mask material).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, SUSPEND_FORMAT_VERSION);
        out.push(variant_code(self.variant));
        write_phase_cost(&mut out, &self.setup_cost);
        write_traffic(&mut out, &self.wire_mark);
        put_bytes(&mut out, &self.gk_bytes);
        put_u32(&mut out, self.bundles.len() as u32);
        for b in &self.bundles {
            write_bundle(&mut out, b);
        }
        out
    }

    /// Decodes an image serialized by [`ServerSuspendImage::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SuspendError`] on an unknown format version or corrupt bytes.
    pub fn from_bytes(ctx: &HeContext, bytes: &[u8]) -> Result<Self, SuspendError> {
        let mut r = Rdr::new(bytes);
        let version = r.u32("suspend version")?;
        if version != SUSPEND_FORMAT_VERSION {
            return Err(SuspendError::BadImage("unknown suspend format version"));
        }
        let variant = variant_from_code(r.u8("suspend variant")?)?;
        let setup_cost = read_phase_cost(&mut r)?;
        let wire_mark = read_traffic(&mut r)?;
        let gk_bytes = r.bytes("galois keys")?.to_vec();
        let count = r.u32("bundle count")? as usize;
        let mut bundles = Vec::new();
        for _ in 0..count {
            bundles.push(read_bundle(&mut r, ctx)?);
        }
        if !r.is_done() {
            return Err(SuspendError::BadImage("trailing bytes"));
        }
        Ok(Self { variant, setup_cost, wire_mark, gk_bytes, bundles })
    }

    /// Rebuilds a servable online half from this image: a fresh
    /// evaluator and encoder, the deserialized Galois keys, and a
    /// pre-filled, closed bundle pool (no producer thread — the offline
    /// phase already completed before suspension).
    ///
    /// # Errors
    ///
    /// [`SuspendError::BadImage`] when the plane's variant does not
    /// match the image's; [`SuspendError::Malformed`] when the stored
    /// Galois keys do not decode under `sys`.
    pub fn into_online(
        self,
        sys: SystemConfig,
        circuits: Arc<Vec<Circuit>>,
        plane: Arc<ModelPlane>,
    ) -> Result<ServerOnline, SuspendError> {
        if plane.variant() != self.variant {
            return Err(SuspendError::BadImage("plane variant mismatch"));
        }
        let gk = GaloisKeys::from_bytes(&sys.he, &self.gk_bytes)?;
        let encoder = BatchEncoder::new(&sys.he);
        let eval = Evaluator::new(&sys.he);
        let group = sys.ot_group.group();
        let core = Arc::new(ServerCore {
            sys,
            variant: self.variant,
            // Only simulated-mode sessions can have been suspended.
            mode: GcMode::Simulated,
            circuits,
            encoder,
            gk,
            group,
            plane,
        });
        let pool = Arc::new(SharedPool::new(self.bundles.len().max(1)));
        for b in self.bundles {
            pool.put_blocking(b);
        }
        // Closed: `take_blocking` yields the restored bundles then None,
        // exactly like a finished producer.
        pool.close();
        Ok(ServerOnline::assemble(core, eval, pool, self.setup_cost, self.wire_mark))
    }
}

/// Drains and parks a server online half (the implementation behind
/// [`ServerOnline::suspend`]).
pub(crate) fn suspend_server_online(
    online: ServerOnline,
) -> Result<ServerSuspendImage, SuspendError> {
    let (core, pool, setup_cost, wire_mark) = online.suspend_parts();
    if core.mode == GcMode::Garbled {
        return Err(SuspendError::GarbledUnsupported);
    }
    // Draining releases the producer's backpressure: it produces every
    // remaining booked bundle in the normal lockstep schedule, closes
    // the pool, and exits — after which `take_blocking` returns None.
    let mut bundles = Vec::new();
    while let Some(b) = pool.take_blocking() {
        bundles.push(b);
    }
    Ok(ServerSuspendImage {
        variant: core.variant,
        setup_cost,
        wire_mark,
        gk_bytes: core.gk.to_bytes(),
        bundles,
    })
}

fn write_phase_cost(out: &mut Vec<u8>, p: &PhaseCost) {
    put_u64(out, p.compute.as_nanos() as u64);
    put_u64(out, p.bytes);
    put_u64(out, p.messages);
}

fn read_phase_cost(r: &mut Rdr) -> Result<PhaseCost, HeError> {
    Ok(PhaseCost {
        compute: Duration::from_nanos(r.u64("phase compute")?),
        bytes: r.u64("phase bytes")?,
        messages: r.u64("phase messages")?,
    })
}

fn write_traffic(out: &mut Vec<u8>, t: &TrafficSnapshot) {
    put_u64(out, t.c2s_bytes);
    put_u64(out, t.s2c_bytes);
    put_u64(out, t.c2s_messages);
    put_u64(out, t.s2c_messages);
}

fn read_traffic(r: &mut Rdr) -> Result<TrafficSnapshot, HeError> {
    Ok(TrafficSnapshot {
        c2s_bytes: r.u64("traffic")?,
        s2c_bytes: r.u64("traffic")?,
        c2s_messages: r.u64("traffic")?,
        s2c_messages: r.u64("traffic")?,
    })
}

fn write_steps(out: &mut Vec<u8>, steps: &StepBreakdown) {
    // Fixed category order (`StepCategory::all`): codes are positional.
    for cat in StepCategory::all() {
        let (off, on) = steps.get(cat);
        write_phase_cost(out, &off);
        write_phase_cost(out, &on);
    }
    write_phase_cost(out, &steps.setup());
}

fn read_steps(r: &mut Rdr) -> Result<StepBreakdown, HeError> {
    let mut steps = StepBreakdown::new();
    for cat in StepCategory::all() {
        let off = read_phase_cost(r)?;
        let on = read_phase_cost(r)?;
        let (o, n) = steps.entry(cat);
        *o = off;
        *n = on;
    }
    steps.set_setup(read_phase_cost(r)?);
    Ok(steps)
}

fn write_he(out: &mut Vec<u8>, h: &OpCounts) {
    for v in [
        h.rotations, h.mul_plain, h.add, h.add_plain, h.encrypt, h.decrypt, h.mul_ct, h.relin,
        h.mask_prep, h.ntt,
    ] {
        put_u64(out, v);
    }
}

fn read_he(r: &mut Rdr) -> Result<OpCounts, HeError> {
    Ok(OpCounts {
        rotations: r.u64("he ops")?,
        mul_plain: r.u64("he ops")?,
        add: r.u64("he ops")?,
        add_plain: r.u64("he ops")?,
        encrypt: r.u64("he ops")?,
        decrypt: r.u64("he ops")?,
        mul_ct: r.u64("he ops")?,
        relin: r.u64("he ops")?,
        mask_prep: r.u64("he ops")?,
        ntt: r.u64("he ops")?,
    })
}

fn write_matz_vec(out: &mut Vec<u8>, ms: &[primer_math::MatZ]) {
    put_u32(out, ms.len() as u32);
    for m in ms {
        write_matz(out, m);
    }
}

fn read_matz_vec(r: &mut Rdr) -> Result<Vec<primer_math::MatZ>, HeError> {
    let count = r.u32("matrix count")? as usize;
    (0..count).map(|_| read_matz(r)).collect()
}

fn write_block(out: &mut Vec<u8>, b: &BlockServerPre) {
    match &b.qkv_rs {
        Some([q, k, v]) => {
            out.push(1);
            write_matz(out, q);
            write_matz(out, k);
            write_matz(out, v);
        }
        None => out.push(0),
    }
    put_u32(out, b.score_pre.len() as u32);
    for f in &b.score_pre {
        f.suspend_write(out);
    }
    put_u32(out, b.av_pre.len() as u32);
    for f in &b.av_pre {
        f.suspend_write(out);
    }
    write_matz(out, &b.wo_rs);
    write_matz(out, &b.w1_rs);
    write_matz(out, &b.w2_rs);
}

fn read_block(r: &mut Rdr, ctx: &HeContext) -> Result<BlockServerPre, HeError> {
    let qkv_rs = match r.u8("qkv tag")? {
        0 => None,
        1 => Some([read_matz(r)?, read_matz(r)?, read_matz(r)?]),
        _ => return Err(HeError::Malformed { what: "qkv tag" }),
    };
    let score_n = r.u32("score count")? as usize;
    let score_pre = (0..score_n)
        .map(|_| crate::fhgs::FhgsServer::suspend_read(r, ctx))
        .collect::<Result<Vec<_>, _>>()?;
    let av_n = r.u32("av count")? as usize;
    let av_pre = (0..av_n)
        .map(|_| crate::fhgs::FhgsServer::suspend_read(r, ctx))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BlockServerPre {
        qkv_rs,
        score_pre,
        av_pre,
        wo_rs: read_matz(r)?,
        w1_rs: read_matz(r)?,
        w2_rs: read_matz(r)?,
    })
}

fn write_bundle(out: &mut Vec<u8>, b: &ServerBundle) {
    write_matz_vec(out, &b.embed_rs);
    put_u32(out, b.bservers.len() as u32);
    for blk in &b.bservers {
        write_block(out, blk);
    }
    write_matz(out, &b.cls_rs);
    // Simulated-mode GC steps carry no state beyond their count (the
    // placeholder exchange already happened offline); garbled steps
    // never reach here — `suspend_server_online` rejects them.
    put_u32(out, b.gc.len() as u32);
    write_steps(out, &b.steps);
    write_he(out, &b.he);
    write_traffic(out, &b.traffic);
}

fn read_bundle(r: &mut Rdr, ctx: &HeContext) -> Result<ServerBundle, HeError> {
    let embed_rs = read_matz_vec(r)?;
    let blocks = r.u32("block count")? as usize;
    let bservers =
        (0..blocks).map(|_| read_block(r, ctx)).collect::<Result<Vec<_>, _>>()?;
    let cls_rs = read_matz(r)?;
    let gc_n = r.u32("gc count")? as usize;
    let gc = (0..gc_n).map(|_| GcServerStep::offline_noop()).collect();
    Ok(ServerBundle {
        embed_rs,
        bservers,
        cls_rs,
        gc,
        steps: read_steps(r)?,
        he: read_he(r)?,
        traffic: read_traffic(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{build_session_circuits, ClientSession, ServerSession};
    use primer_math::rng::seeded;
    use primer_net::MemTransport;
    use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};

    const QUERIES: usize = 4;
    const SUSPEND_AT: usize = 2;
    const POOL: usize = 2;

    #[allow(clippy::type_complexity)]
    fn fixture(variant: ProtocolVariant) -> (SystemConfig, Arc<FixedTransformer>, Arc<Vec<Circuit>>, Vec<Vec<usize>>) {
        let model = TransformerConfig::test_tiny();
        let sys = SystemConfig::test_profile(&model).expect("profile");
        let weights = TransformerWeights::random(&model, &mut seeded(7));
        let fixed = Arc::new(FixedTransformer::quantize(&model, &weights, sys.pipeline));
        let circuits = Arc::new(build_session_circuits(&sys, variant, &fixed));
        let mut rng = seeded(0x5eed);
        use rand::Rng;
        let queries = (0..QUERIES)
            .map(|_| (0..model.n_tokens).map(|_| rng.gen_range(0..model.vocab)).collect())
            .collect();
        (sys, fixed, circuits, queries)
    }

    /// Runs a pipelined two-party session over in-memory channels,
    /// optionally suspending both halves after `SUSPEND_AT` queries —
    /// the server through a full image byte roundtrip (simulating a
    /// restart), the client in memory — and resuming for the rest.
    fn run(variant: ProtocolVariant, interrupt: bool) -> Vec<Vec<i64>> {
        let (sys, fixed, circuits, queries) = fixture(variant);
        let (c_on, s_on, _) = MemTransport::pair();
        let (c_off, s_off, _) = MemTransport::pair();

        let server = {
            let (sys, circuits) = (sys.clone(), Arc::clone(&circuits));
            let fixed = Arc::clone(&fixed);
            std::thread::spawn(move || {
                let plane = Arc::new(ModelPlane::build(&sys, variant, &fixed));
                let session = ServerSession::setup_with_plane(
                    sys.clone(), variant, GcMode::Simulated, Arc::clone(&circuits),
                    Arc::clone(&plane), 40, QUERIES, POOL, &s_on,
                ).expect("server setup");
                let (producer, mut online) = session.into_pipelined(POOL);
                let producer = std::thread::spawn(move || producer.run(&s_off));
                for _ in 0..SUSPEND_AT {
                    online.serve_one(&s_on).expect("serve");
                }
                if interrupt {
                    let image = online.suspend().expect("suspend");
                    producer.join().expect("producer thread").expect("producer");
                    let bytes = image.to_bytes();
                    let image = ServerSuspendImage::from_bytes(&sys.he, &bytes).expect("decode");
                    assert_eq!(image.remaining(), QUERIES - SUSPEND_AT);
                    let mut online =
                        image.into_online(sys, circuits, plane).expect("resume");
                    for _ in SUSPEND_AT..QUERIES {
                        online.serve_one(&s_on).expect("serve resumed");
                    }
                } else {
                    for _ in SUSPEND_AT..QUERIES {
                        online.serve_one(&s_on).expect("serve");
                    }
                    producer.join().expect("producer thread").expect("producer");
                }
            })
        };

        let session = ClientSession::setup(
            sys, variant, GcMode::Simulated, fixed, circuits, 99, QUERIES, POOL, &c_on,
        );
        let (producer, mut online) = session.into_pipelined(POOL);
        let producer = std::thread::spawn(move || producer.run(&c_off));
        let mut logits = Vec::new();
        for q in &queries[..SUSPEND_AT] {
            logits.push(online.infer(q, &c_on).expect("infer"));
        }
        if interrupt {
            let parked = online.suspend();
            producer.join().expect("producer thread").expect("producer");
            assert_eq!(parked.remaining(), QUERIES - SUSPEND_AT);
            let mut online = parked.into_online();
            for q in &queries[SUSPEND_AT..] {
                logits.push(online.infer(q, &c_on).expect("infer resumed"));
            }
        } else {
            for q in &queries[SUSPEND_AT..] {
                logits.push(online.infer(q, &c_on).expect("infer"));
            }
            producer.join().expect("producer thread").expect("producer");
        }
        server.join().expect("server thread");
        logits
    }

    #[test]
    fn suspend_resume_is_bit_identical_f() {
        assert_eq!(run(ProtocolVariant::F, true), run(ProtocolVariant::F, false));
    }

    #[test]
    fn suspend_resume_is_bit_identical_fpc() {
        assert_eq!(run(ProtocolVariant::Fpc, true), run(ProtocolVariant::Fpc, false));
    }

    #[test]
    fn garbled_sessions_refuse_to_suspend() {
        let variant = ProtocolVariant::F;
        let (sys, fixed, circuits, _) = fixture(variant);
        let (c_on, s_on, _) = MemTransport::pair();
        let (_c_off, s_off, _) = MemTransport::pair();
        let client = std::thread::spawn(move || {
            // Only Setup runs: generate + ship keys, then hang up.
            let _ = ClientSession::setup(
                sys, variant, GcMode::Garbled, fixed, circuits, 99, 1, 1, &c_on,
            );
        });
        let model = TransformerConfig::test_tiny();
        let sys = SystemConfig::test_profile(&model).expect("profile");
        let weights = TransformerWeights::random(&model, &mut seeded(7));
        let fixed = Arc::new(FixedTransformer::quantize(&model, &weights, sys.pipeline));
        let circuits = Arc::new(build_session_circuits(&sys, variant, &fixed));
        let plane = Arc::new(ModelPlane::build(&sys, variant, &fixed));
        let session = ServerSession::setup_with_plane(
            sys, variant, GcMode::Garbled, circuits, plane, 40, 1, 1, &s_on,
        ).expect("server setup");
        let (_producer, online) = session.into_pipelined(1);
        drop(s_off);
        match online.suspend() {
            Err(SuspendError::GarbledUnsupported) => {}
            other => panic!("expected GarbledUnsupported, got {:?}", other.map(|_| ())),
        }
        client.join().expect("client thread");
    }

    #[test]
    fn foreign_bytes_fail_resume_cleanly() {
        let model = TransformerConfig::test_tiny();
        let sys = SystemConfig::test_profile(&model).expect("profile");
        assert!(matches!(
            ServerSuspendImage::from_bytes(&sys.he, b"not a suspend image"),
            Err(SuspendError::BadImage(_) | SuspendError::Malformed(_))
        ));
        let mut bytes = Vec::new();
        put_u32(&mut bytes, SUSPEND_FORMAT_VERSION + 1);
        assert!(matches!(
            ServerSuspendImage::from_bytes(&sys.he, &bytes),
            Err(SuspendError::BadImage(_))
        ));
    }
}
