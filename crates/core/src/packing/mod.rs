//! Ciphertext packing strategies and encrypted matrix multiplication —
//! the paper's Figure 6 in executable form.
//!
//! Both strategies compute `Enc(X)·W` for an encrypted `r × c` matrix `X`
//! and a plaintext `c × m` weight matrix `W`, producing exactly the ring
//! matmul `X·W mod t` (tests assert equality), but with very different
//! homomorphic rotation counts:
//!
//! * **feature-based** (prior work): tokens are laid out row-major, a
//!   diagonal-method rotation chain of ~`feats_pad` (up to `M`) steps per
//!   output ciphertext is required;
//! * **tokens-first** (the paper's contribution): the j-th feature of
//!   *all* tokens shares one block of `n_pad` slots, so one stride-`n_pad`
//!   rotation serves every token simultaneously — `M / n_pad` steps.
//!
//! Implementation note: accumulation is Horner-style (rotate the
//! accumulator, multiply fresh ciphertexts by pre-rotated masks). This is
//! the standard output-rotation formulation; it keeps multiplicative
//! noise off the rotation chain, which is mandatory at the paper-scale
//! plaintext modulus. Rotation counts per strategy keep the paper's
//! `M` vs `M/n` asymmetry (see `counts` functions, which the
//! implementation `debug_assert`s against).

use primer_he::{BatchEncoder, Ciphertext, Encryptor};
use primer_math::MatZ;
use rand::rngs::StdRng;

/// Which packing strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Packing {
    /// Prior-work feature-major packing (Fig. 6a).
    FeatureBased,
    /// The paper's tokens-first packing (Fig. 6b).
    TokensFirst,
}

/// Layout metadata of a packed matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Strategy that produced this layout.
    pub packing: Packing,
    /// Logical rows (tokens).
    pub rows: usize,
    /// Logical columns (features).
    pub cols: usize,
    /// SIMD width (slots per batching row).
    pub simd: usize,
    /// Tokens-first: padded token count (block stride).
    /// Feature-based: padded feature width (region size).
    pub pad: usize,
    /// Number of ciphertexts.
    pub num_cts: usize,
}

impl Layout {
    /// Computes the layout for a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix cannot be packed at this SIMD width.
    pub fn plan(packing: Packing, rows: usize, cols: usize, simd: usize) -> Layout {
        match packing {
            Packing::TokensFirst => {
                let pad = rows.next_power_of_two();
                assert!(pad <= simd, "padded rows {pad} exceed SIMD width {simd}");
                let block = simd / pad;
                let num_cts = cols.div_ceil(block);
                Layout { packing, rows, cols, simd, pad, num_cts }
            }
            Packing::FeatureBased => {
                let pad = cols.next_power_of_two().min(simd);
                if pad == simd {
                    // One token spans ceil(cols/simd) chunk ciphertexts.
                    let chunks = cols.div_ceil(simd);
                    Layout { packing, rows, cols, simd, pad, num_cts: rows * chunks }
                } else {
                    // Multiple token regions per ciphertext.
                    let group = simd / pad;
                    Layout { packing, rows, cols, simd, pad, num_cts: rows.div_ceil(group) }
                }
            }
        }
    }

    /// Features per ciphertext block (tokens-first).
    pub fn block(&self) -> usize {
        debug_assert_eq!(self.packing, Packing::TokensFirst);
        self.simd / self.pad
    }

    /// Token regions per ciphertext (feature-based, `pad < simd`).
    pub fn group(&self) -> usize {
        debug_assert_eq!(self.packing, Packing::FeatureBased);
        self.simd / self.pad
    }

    /// Slot vector (length `simd`) of ciphertext `k` for matrix `x`.
    fn slots_of(&self, x: &MatZ, k: usize) -> Vec<u64> {
        let mut slots = vec![0u64; self.simd];
        match self.packing {
            Packing::TokensFirst => {
                let block = self.block();
                for b in 0..block {
                    let j = k * block + b;
                    if j >= self.cols {
                        break;
                    }
                    for i in 0..self.rows {
                        slots[b * self.pad + i] = x[(i, j)];
                    }
                }
            }
            Packing::FeatureBased => {
                if self.pad == self.simd {
                    let chunks = self.cols.div_ceil(self.simd);
                    let (i, c) = (k / chunks, k % chunks);
                    for o in 0..self.simd.min(self.cols - c * self.simd) {
                        slots[o] = x[(i, c * self.simd + o)];
                    }
                } else {
                    let group = self.group();
                    let chunks = self.cols.div_ceil(self.pad);
                    let (z, oc) = (k / chunks, k % chunks);
                    let col_base = oc * self.pad;
                    let width = self.pad.min(self.cols - col_base);
                    for u in 0..group {
                        let i = z * group + u;
                        if i >= self.rows {
                            break;
                        }
                        for o in 0..width {
                            slots[u * self.pad + o] = x[(i, col_base + o)];
                        }
                    }
                }
            }
        }
        slots
    }

    /// Reads matrix entry `(i, j)` back out of decoded slot vectors.
    fn read(&self, decoded: &[Vec<u64>], i: usize, j: usize) -> u64 {
        match self.packing {
            Packing::TokensFirst => {
                let block = self.block();
                decoded[j / block][(j % block) * self.pad + i]
            }
            Packing::FeatureBased => {
                if self.pad == self.simd {
                    let chunks = self.cols.div_ceil(self.simd);
                    decoded[i * chunks + j / self.simd][j % self.simd]
                } else {
                    // Columns beyond `pad` live in sibling chunk
                    // ciphertexts (matmul outputs inherit the input pad).
                    let group = self.group();
                    let chunks = self.cols.div_ceil(self.pad);
                    decoded[(i / group) * chunks + j / self.pad]
                        [(i % group) * self.pad + (j % self.pad)]
                }
            }
        }
    }
}

/// A packed, encrypted matrix.
#[derive(Debug, Clone)]
pub struct PackedMatrix {
    /// Layout metadata (public).
    pub layout: Layout,
    /// The ciphertexts.
    pub cts: Vec<Ciphertext>,
}

impl PackedMatrix {
    /// Total wire size of the ciphertexts.
    pub fn serialized_size(&self) -> usize {
        self.cts.iter().map(Ciphertext::serialized_size).sum()
    }
}

/// Encrypts a ring matrix under the given packing, drawing encryption
/// randomness from the encryptor's own rng (sequential; the parallel
/// offline producers use [`encrypt_matrix_with`] instead).
pub fn encrypt_matrix(
    packing: Packing,
    x: &MatZ,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
) -> PackedMatrix {
    let layout = Layout::plan(packing, x.rows(), x.cols(), encoder.row_size());
    encrypt_matrix_in_layout(layout, x, encoder, encryptor)
}

/// Encrypts a ring matrix into a caller-specified layout (used when the
/// ciphertexts must align with a matmul output for later addition).
pub fn encrypt_matrix_in_layout(
    layout: Layout,
    x: &MatZ,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
) -> PackedMatrix {
    let mut rng = encryptor.fork_rng();
    encrypt_matrix_in_layout_with(layout, x, encoder, encryptor, &mut rng)
}

/// [`encrypt_matrix`] with caller-provided encryption randomness,
/// fanning the per-ciphertext encryptions out across the thread pool.
/// One sub-rng per ciphertext is derived from `rng` in ciphertext order
/// first, so the ciphertext bytes are identical at every thread count.
pub fn encrypt_matrix_with(
    packing: Packing,
    x: &MatZ,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    rng: &mut StdRng,
) -> PackedMatrix {
    let layout = Layout::plan(packing, x.rows(), x.cols(), encoder.row_size());
    encrypt_matrix_in_layout_with(layout, x, encoder, encryptor, rng)
}

/// [`encrypt_matrix_in_layout`] with caller-provided randomness (see
/// [`encrypt_matrix_with`]).
pub fn encrypt_matrix_in_layout_with(
    layout: Layout,
    x: &MatZ,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    rng: &mut StdRng,
) -> PackedMatrix {
    assert_eq!((layout.rows, layout.cols), x.shape(), "layout shape mismatch");
    let seeds: Vec<u64> = (0..layout.num_cts).map(|_| rand::Rng::gen(rng)).collect();
    let cts = rayon::par_iter_chunks(layout.num_cts, |k| {
        let mut ct_rng: StdRng = rand::SeedableRng::seed_from_u64(seeds[k]);
        encryptor.encrypt_with(&encoder.encode(&layout.slots_of(x, k)), &mut ct_rng)
    });
    PackedMatrix { layout, cts }
}

/// Encodes a ring matrix as *plaintexts* in a given layout (used by the
/// server to add its plaintext terms, e.g. `tmp1` or `−Rs`, to matmul
/// outputs).
pub fn encode_matrix_in_layout(
    layout: &Layout,
    x: &MatZ,
    encoder: &BatchEncoder,
) -> Vec<primer_he::Plaintext> {
    assert_eq!((layout.rows, layout.cols), x.shape(), "layout shape mismatch");
    (0..layout.num_cts).map(|k| encoder.encode(&layout.slots_of(x, k))).collect()
}

/// Decrypts a packed matrix of known logical shape, fanning the
/// per-ciphertext decryptions out across the thread pool (decryption is
/// deterministic, so the result is independent of the thread count).
pub fn decrypt_matrix(
    packed: &PackedMatrix,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
) -> MatZ {
    let decoded: Vec<Vec<u64>> = rayon::par_iter_chunks(packed.cts.len(), |k| {
        encoder.decode(&encryptor.decrypt(&packed.cts[k]))
    });
    MatZ::from_fn(packed.layout.rows, packed.layout.cols, |i, j| {
        packed.layout.read(&decoded, i, j)
    })
}

/// Operation counts of one encrypted matmul (the quantities behind the
/// paper's Fig. 6 comparison and the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatmulCounts {
    /// Elementary rotations.
    pub rotations: u64,
    /// Plaintext multiplications (incl. multiply-accumulate).
    pub mul_plain: u64,
    /// Input ciphertexts.
    pub in_cts: u64,
    /// Output ciphertexts.
    pub out_cts: u64,
}

mod matmul;
mod prepared;
pub mod zerorot;

pub use matmul::{
    matmul_counts, matmul_counts_mode, matmul_out_layout, matmul_plain_weights, matmul_prepared,
    matmul_weights, tf_chain_terms_max, tf_input_steps, tf_used_levels, MatmulWeights,
    RotationMode,
};
pub use prepared::PreparedMatmul;
pub use zerorot::ZrLayout;

/// Shared HE fixture for the packing/matmul test suites.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use primer_he::{Evaluator, GaloisKeys, HeContext, HeParams, KeyGenerator};
    use primer_math::rng::seeded;
    use primer_math::Ring;

    pub(crate) struct Fx {
        pub ring: Ring,
        pub encoder: BatchEncoder,
        pub encryptor: Encryptor,
        pub eval: Evaluator,
        pub keys: GaloisKeys,
    }

    pub(crate) fn fixture(stride: usize) -> Fx {
        let ctx = HeContext::new(HeParams::toy());
        let encoder = BatchEncoder::new(&ctx);
        let mut rng = seeded(200);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 201);
        let eval = Evaluator::new(&ctx);
        let simd = ctx.params().row_size();
        let keys =
            kg.galois_keys_pow2(&[1, stride, simd - 1, simd - stride], false, &mut rng);
        Fx { ring: Ring::new(ctx.params().t()), encoder, encryptor, eval, keys }
    }

    pub(crate) fn small_matrix(ring: &Ring, rows: usize, cols: usize, seed: u64) -> MatZ {
        // Small signed entries so products stay far from t.
        let mut rng = seeded(seed);
        MatZ::from_fn(rows, cols, |_, _| {
            ring.from_signed(rand::Rng::gen_range(&mut rng, -20i64..=20))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{fixture, small_matrix};
    use super::*;

    fn check_roundtrip(packing: Packing, rows: usize, cols: usize) {
        let fx = fixture(rows.next_power_of_two());
        let x = small_matrix(&fx.ring, rows, cols, 210);
        let packed = encrypt_matrix(packing, &x, &fx.encoder, &fx.encryptor);
        let back = decrypt_matrix(&packed, &fx.encoder, &fx.encryptor);
        assert_eq!(back, x, "{packing:?} {rows}x{cols} roundtrip");
    }

    #[test]
    fn roundtrips_both_packings() {
        for packing in [Packing::TokensFirst, Packing::FeatureBased] {
            check_roundtrip(packing, 4, 8);
            check_roundtrip(packing, 3, 17);
            check_roundtrip(packing, 6, 600); // feature chunking path
        }
    }
}
