//! Arithmetic modulo a word-sized prime used by the RNS/NTT layers.

/// A prime modulus `p < 2^62` with convenience arithmetic.
///
/// All NTT primes and the plaintext modulus are wrapped in this type. The
/// scalar implementation reduces through `u128` (branch-simple, obviously
/// correct); the wrapper additionally caches the Barrett constant
/// `mu = floor(2^(2·bits) / p)` so the [`crate::simd`] kernels can reduce
/// four lanes at a time without a 128-bit division — the two paths are
/// proven bit-identical by the `simd` proptests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    p: u64,
    /// Bit length of `p` (`L` in the Barrett derivation); `p < 2^62` keeps
    /// every shift count the kernels derive from it inside `[0, 63]`.
    bits: u32,
    /// `floor(2^(2·bits) / p)`. With `2^(bits-1) <= p < 2^bits` this fits
    /// in 63 bits, so the lane-wise `mulhi` never overflows.
    barrett_mu: u64,
}

impl Modulus {
    /// Wraps a modulus.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2` or `p >= 2^62`.
    pub fn new(p: u64) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(p < (1u64 << 62), "modulus must be below 2^62");
        let bits = 64 - p.leading_zeros();
        let barrett_mu = ((1u128 << (2 * bits)) / p as u128) as u64;
        Self { p, bits, barrett_mu }
    }

    /// The raw modulus value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.p
    }

    /// Bit length of the modulus (`L` such that `2^(L-1) <= p < 2^L`).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Cached Barrett constant `floor(2^(2·bits) / p)`.
    #[inline]
    pub fn barrett_mu(&self) -> u64 {
        self.barrett_mu
    }

    /// `x mod p` for arbitrary `x`.
    #[inline]
    pub fn reduce(&self, x: u64) -> u64 {
        x % self.p
    }

    /// `x mod p` for a 128-bit `x`.
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        (x % self.p as u128) as u64
    }

    /// Modular addition of reduced operands.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        let s = a + b;
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    /// Modular subtraction of reduced operands.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// Modular negation.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.p);
        if a == 0 {
            0
        } else {
            self.p - a
        }
    }

    /// Modular multiplication.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        ((a as u128 * b as u128) % self.p as u128) as u64
    }

    /// Modular exponentiation.
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.reduce(base);
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse for prime `p`.
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0 (mod p)`.
    pub fn inv(&self, a: u64) -> u64 {
        let a = self.reduce(a);
        assert!(a != 0, "zero has no modular inverse");
        self.pow(a, self.p - 2)
    }

    /// Centers `a` into `(-p/2, p/2]`.
    #[inline]
    pub fn to_signed(&self, a: u64) -> i64 {
        debug_assert!(a < self.p);
        if a > self.p / 2 {
            -((self.p - a) as i64)
        } else {
            a as i64
        }
    }

    /// Embeds a signed value.
    #[inline]
    pub fn from_signed(&self, x: i64) -> u64 {
        let p = self.p as i128;
        (((x as i128 % p) + p) % p) as u64
    }

    /// Finds a primitive `m`-th root of unity (requires `m | p-1`).
    ///
    /// # Panics
    ///
    /// Panics if `m` does not divide `p - 1` or no generator is found.
    pub fn primitive_root(&self, m: u64) -> u64 {
        assert!(m >= 1 && (self.p - 1).is_multiple_of(m), "m must divide p-1");
        let cofactor = (self.p - 1) / m;
        // Random-ish search over small candidates; the density of
        // generators makes this terminate almost immediately.
        for cand in 2..10_000u64 {
            let g = self.pow(cand, cofactor);
            if g != 1 && self.is_primitive_root(g, m) {
                return g;
            }
        }
        panic!("no primitive {m}-th root found for modulus {}", self.p);
    }

    /// Checks that `g` is a primitive `m`-th root of unity (power of two `m`).
    pub fn is_primitive_root(&self, g: u64, m: u64) -> bool {
        debug_assert!(m.is_power_of_two(), "only power-of-two orders supported");
        if self.pow(g, m) != 1 {
            return false;
        }
        self.pow(g, m / 2) == self.p - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let m = Modulus::new(65537);
        assert_eq!(m.add(65536, 2), 1);
        assert_eq!(m.sub(0, 1), 65536);
        assert_eq!(m.mul(256, 256), 65536);
        assert_eq!(m.mul(m.inv(12345), 12345), 1);
    }

    #[test]
    fn primitive_root_order() {
        // 65537 = 2^16 + 1: 2^16 | p-1.
        let m = Modulus::new(65537);
        let g = m.primitive_root(1 << 16);
        assert!(m.is_primitive_root(g, 1 << 16));
        assert!(!m.is_primitive_root(m.mul(g, g), 1 << 16));
    }

    #[test]
    fn signed_embedding() {
        let m = Modulus::new(97);
        for x in -48..=48 {
            assert_eq!(m.to_signed(m.from_signed(x)), x);
        }
    }

    #[test]
    fn pow_edge_cases() {
        let m = Modulus::new(101);
        assert_eq!(m.pow(5, 0), 1);
        assert_eq!(m.pow(0, 5), 0);
        assert_eq!(m.pow(7, 100), 1); // Fermat
    }
}
