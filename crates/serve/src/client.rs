//! The client side: connect, negotiate, run queries over a pipelined
//! session, collect the server's summary.

use crate::proto::{
    ClientHello, ProtoError, ServerWelcome, SessionSummary, StatsRequest, StatsSnapshot,
};
use crate::{maybe_shaped, system_for, CH_CONTROL, CH_OFFLINE, CH_ONLINE};
use primer_core::{argmax_logits, build_session_circuits, ClientSession, GcMode, ProtocolVariant};
use primer_math::rng::seeded;
use primer_net::tcp::TcpConnection;
use primer_net::{NetworkModel, TrafficSnapshot};
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};
use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;

/// Everything a client run is configured with.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Protocol variant to request.
    pub variant: ProtocolVariant,
    /// GC execution mode to request.
    pub mode: GcMode,
    /// Offline pool bound to pipeline with.
    pub pool: usize,
    /// Client-side session seed (masks, keys, encryption randomness).
    ///
    /// **Privacy:** two sessions run from the same seed reuse the same
    /// mask stream, so the server can difference their masked inputs
    /// and learn how the private queries differ. The default is fresh
    /// OS entropy per config; pin a seed only for reproducibility
    /// experiments with non-sensitive inputs.
    pub seed: u64,
    /// Optional traffic shaping on the client's channels (one shared
    /// link shaper covers all channels of the connection).
    pub shape: Option<NetworkModel>,
}

impl ClientConfig {
    /// Defaults: the full Primer variant, simulated GC, pool of 2, and
    /// a fresh entropy-derived session seed (see [`ClientConfig::seed`]).
    pub fn new(variant: ProtocolVariant) -> Self {
        Self { variant, mode: GcMode::Simulated, pool: 2, seed: entropy_seed(), shape: None }
    }
}

/// A fresh unpredictable seed from OS entropy (`RandomState` hashes
/// per-process random keys), without a dependency on an OS rng crate.
fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(std::time::UNIX_EPOCH.elapsed().map_or(0, |d| d.subsec_nanos() as u64));
    h.finish()
}

/// One query's reconstructed result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    /// Reconstructed fixed-point logits.
    pub logits: Vec<i64>,
    /// Argmax class (lowest index wins ties, like the engine).
    pub predicted: usize,
}

/// What a completed client run returns.
#[derive(Debug)]
pub struct RunOutcome {
    /// Server-assigned session id.
    pub session_id: u64,
    /// The negotiated model configuration.
    pub model: TransformerConfig,
    /// Per-query results, in submission order.
    pub predictions: Vec<Prediction>,
    /// The server's end-of-session stats.
    pub summary: SessionSummary,
    /// Client-side metered traffic (online + offline channels; the
    /// control channel's few handshake bytes are not session traffic).
    pub client_traffic: TrafficSnapshot,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Handshake/stats decoding failure or server rejection.
    Proto(ProtoError),
    /// The negotiated model cannot be instantiated or the queries do
    /// not fit it.
    Config(String),
    /// A mid-session flight was malformed (truncated or forged bytes) —
    /// the session failed partway through.
    Session(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Config(m) => write!(f, "config: {m}"),
            ClientError::Session(m) => write!(f, "session: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Connects to a server, negotiates a session and runs `queries`
/// private inferences through it, with offline bundle production
/// pipelined on its own connection channel.
///
/// # Errors
///
/// [`ClientError`] on socket failures, handshake rejection, or a model
/// the queries do not fit.
pub fn run_queries<A: ToSocketAddrs>(
    addr: A,
    cfg: &ClientConfig,
    queries: &[Vec<usize>],
) -> Result<RunOutcome, ClientError> {
    run_with(addr, cfg, queries.len(), |model| {
        for (i, q) in queries.iter().enumerate() {
            if q.len() != model.n_tokens {
                return Err(ClientError::Config(format!(
                    "query {i} has {} tokens, the negotiated model takes {}",
                    q.len(),
                    model.n_tokens
                )));
            }
            if let Some(&tok) = q.iter().find(|&&tok| tok >= model.vocab) {
                return Err(ClientError::Config(format!(
                    "query {i} token {tok} outside vocab {}",
                    model.vocab
                )));
            }
        }
        Ok(queries.to_vec())
    })
}

/// Like [`run_queries`], but samples `n` random token sequences from
/// `cfg.seed` once the model shape is known (the handshake announces
/// it) — what `primer-client` runs without `--tokens`.
///
/// # Errors
///
/// [`ClientError`] on socket failures or handshake rejection.
pub fn run_random_queries<A: ToSocketAddrs>(
    addr: A,
    cfg: &ClientConfig,
    n: usize,
) -> Result<RunOutcome, ClientError> {
    let seed = cfg.seed;
    run_with(addr, cfg, n, move |model| {
        use rand::Rng;
        let mut rng = seeded(seed ^ 0x70_6b_65_6e);
        Ok((0..n)
            .map(|_| (0..model.n_tokens).map(|_| rng.gen_range(0..model.vocab)).collect())
            .collect())
    })
}

/// Polls a running server's live `/stats` surface: connects, sends one
/// [`StatsRequest`] on the control channel and decodes the snapshot.
/// The poll is answered out-of-band — it never occupies a session
/// worker slot, so it works even while every worker is busy.
///
/// # Errors
///
/// [`ClientError`] on socket failures or a malformed/rejected reply.
pub fn poll_stats<A: ToSocketAddrs>(addr: A) -> Result<StatsSnapshot, ClientError> {
    let mut conn = TcpConnection::connect(addr)?;
    let control = maybe_shaped(conn.take_channel(CH_CONTROL), None);
    control.send(&StatsRequest.encode());
    Ok(StatsSnapshot::decode(&control.recv())?)
}

/// The shared client run: handshake, then build queries from the
/// negotiated model, then the pipelined session.
fn run_with<A: ToSocketAddrs>(
    addr: A,
    cfg: &ClientConfig,
    count: usize,
    make_queries: impl FnOnce(&TransformerConfig) -> Result<Vec<Vec<usize>>, ClientError>,
) -> Result<RunOutcome, ClientError> {
    let mut conn = TcpConnection::connect(addr)?;
    let shaper = cfg.shape.map(primer_net::LinkShaper::new);
    let online_t = maybe_shaped(conn.take_channel(CH_ONLINE), shaper.as_ref());
    let offline_t = maybe_shaped(conn.take_channel(CH_OFFLINE), shaper.as_ref());
    let control = maybe_shaped(conn.take_channel(CH_CONTROL), shaper.as_ref());

    control.send(
        &ClientHello {
            variant: cfg.variant,
            mode: cfg.mode,
            queries: count as u32,
            pool: cfg.pool as u32,
        }
        .encode(),
    );
    let welcome = ServerWelcome::decode(&control.recv())?;
    let model = welcome.model.clone();
    // The pool the session actually runs with is the *negotiated* one
    // (our request clamped by the server's cap): production is batched
    // by it, which shapes the wire schedule, so both parties must agree.
    let pool = (welcome.pool as usize).max(1);
    let queries = make_queries(&model)?;
    assert_eq!(queries.len(), count, "query factory must honor the announced count");

    // Reconstruct the identical quantized model from the negotiated
    // seed: the GC step circuits bake in LayerNorm constants, so the
    // garbler needs them too.
    let sys = system_for(welcome.profile, &model).map_err(|e| ClientError::Config(e.to_string()))?;
    let weights = TransformerWeights::random(&model, &mut seeded(welcome.weight_seed));
    let fixed = Arc::new(FixedTransformer::quantize(&model, &weights, sys.pipeline));
    let circuits = Arc::new(build_session_circuits(&sys, cfg.variant, &fixed));

    let session = ClientSession::setup(
        sys,
        cfg.variant,
        cfg.mode,
        fixed,
        circuits,
        cfg.seed,
        queries.len(),
        pool,
        &*online_t,
    );
    let (producer, mut online) = session.into_pipelined(pool);

    let offline_meter = Arc::clone(offline_t.meter());
    let producer_handle = std::thread::Builder::new()
        .name("offline-producer-client".into())
        .spawn(move || producer.run(&*offline_t))
        .expect("spawn offline producer");

    let mut predictions: Vec<Prediction> = Vec::with_capacity(queries.len());
    for q in &queries {
        // A malformed mid-session flight fails this session (the server
        // cannot be trusted past it), never panics the client.
        let logits =
            online.infer(q, &*online_t).map_err(|e| ClientError::Session(e.to_string()))?;
        predictions.push(Prediction { predicted: argmax_logits(&logits), logits });
    }

    let summary = SessionSummary::decode(&control.recv())?;
    producer_handle
        .join()
        .map_err(|_| ClientError::Config("offline producer thread panicked".into()))?
        .map_err(|e| ClientError::Session(e.to_string()))?;

    let client_traffic = TrafficSnapshot::capture(online_t.meter())
        .plus(&TrafficSnapshot::capture(&offline_meter));
    Ok(RunOutcome {
        session_id: welcome.session_id,
        model,
        predictions,
        summary,
        client_traffic,
    })
}
