//! Fixed-point transformer reference — the exact function the Primer
//! protocols compute.
//!
//! Every operation here has a one-to-one counterpart in the private
//! pipeline: ring-domain linear layers (HE/HGS/FHGS), the paper's
//! truncate-to-15-bits step and the GC non-linear modules (which call the
//! same `primer_math::fxp` algorithms bit-for-bit). Integration tests
//! assert that private inference output **equals** this reference
//! exactly — that is the paper's "no polynomial approximation" accuracy
//! claim in checkable form.

use crate::config::TransformerConfig;
use crate::model::argmax;
use crate::weights::TransformerWeights;
use primer_math::fxp;
use primer_math::{FixedSpec, Matrix, Ring};

/// A matrix of raw fixed-point values.
pub type MatI = Matrix<i64>;

/// Numeric pipeline: ring modulus, the paper's fixed-point format, and
/// the wider GC-internal fractional precision.
#[derive(Debug, Clone, Copy)]
pub struct PipelineSpec {
    /// The shared ring `Z_t`.
    pub ring: Ring,
    /// The paper's value format (15-bit / 7-frac at paper scale).
    pub fixed: FixedSpec,
    /// GC-internal fractional bits (≥ `fixed.frac()`).
    pub gc_frac: u32,
}

impl PipelineSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    ///
    /// Panics if `gc_frac < fixed.frac()` or the ring is too small to
    /// hold double-scale products.
    pub fn new(ring: Ring, fixed: FixedSpec, gc_frac: u32) -> Self {
        assert!(gc_frac >= fixed.frac(), "gc_frac below pipeline frac");
        assert!(
            (ring.modulus() as f64).log2() > (2 * fixed.frac() + 2) as f64,
            "ring too small for products"
        );
        Self { ring, fixed, gc_frac }
    }

    /// Converts a value at pipeline scale to GC scale.
    #[inline]
    pub fn to_gc(&self, v: i64) -> i64 {
        v << (self.gc_frac - self.fixed.frac())
    }

    /// Converts a GC-scale value back to pipeline scale, saturating.
    #[inline]
    pub fn from_gc(&self, v: i64) -> i64 {
        self.fixed.saturate(v >> (self.gc_frac - self.fixed.frac()))
    }

    /// Converts a double-scale (product) value to GC scale — the entry
    /// conversion of the SoftMax module, whose inputs are untruncated
    /// `Q·Kᵀ` products at scale `2^(2·frac)`.
    #[inline]
    pub fn product_to_gc(&self, v: i64) -> i64 {
        fxp::shift_signed(v, self.gc_frac as i32 - 2 * self.fixed.frac() as i32)
    }
}

/// Quantized model weights (raw fixed-point values).
#[derive(Debug, Clone)]
pub struct QuantizedBlock {
    /// Q/K/V/O projections at pipeline scale.
    pub wq: MatI,
    /// Key projection.
    pub wk: MatI,
    /// Value projection.
    pub wv: MatI,
    /// Output projection.
    pub wo: MatI,
    /// LayerNorm 1 affine parameters at **GC** scale.
    pub ln1_gamma: Vec<i64>,
    /// LayerNorm 1 shift at GC scale.
    pub ln1_beta: Vec<i64>,
    /// Feed-forward weights at pipeline scale.
    pub w1: MatI,
    /// Feed-forward contraction.
    pub w2: MatI,
    /// LayerNorm 2 scale (GC scale).
    pub ln2_gamma: Vec<i64>,
    /// LayerNorm 2 shift (GC scale).
    pub ln2_beta: Vec<i64>,
}

/// CHGS pre-combined block-0 weights (`trunc(W_E·W_x)`, `trunc(λ·W_x)`).
#[derive(Debug, Clone)]
pub struct CombinedWeights {
    /// Combined query weights (vocab × d).
    pub a_q: MatI,
    /// Combined key weights.
    pub a_k: MatI,
    /// Combined value weights.
    pub a_v: MatI,
    /// Combined positional query term (n × d).
    pub lam_q: MatI,
    /// Combined positional key term.
    pub lam_k: MatI,
    /// Combined positional value term.
    pub lam_v: MatI,
}

/// Fully quantized transformer.
#[derive(Debug, Clone)]
pub struct FixedTransformer {
    cfg: TransformerConfig,
    spec: PipelineSpec,
    /// Word embedding.
    pub we: MatI,
    /// Positional embedding.
    pub pos: MatI,
    /// Encoder blocks.
    pub blocks: Vec<QuantizedBlock>,
    /// Classifier head.
    pub classifier: MatI,
    /// Attention pre-scale `1/√n` at GC scale.
    pub attn_prescale: i64,
}

impl FixedTransformer {
    /// Quantizes floating-point weights.
    pub fn quantize(cfg: &TransformerConfig, w: &TransformerWeights, spec: PipelineSpec) -> Self {
        let q = |m: &primer_math::MatF| m.map(|&v| spec.fixed.quantize(v));
        let qgc = |v: &[f64]| v.iter().map(|&x| fxp::const_q(x, spec.gc_frac)).collect();
        let blocks = w
            .blocks
            .iter()
            .map(|b| QuantizedBlock {
                wq: q(&b.wq),
                wk: q(&b.wk),
                wv: q(&b.wv),
                wo: q(&b.wo),
                ln1_gamma: qgc(&b.ln1_gamma),
                ln1_beta: qgc(&b.ln1_beta),
                w1: q(&b.w1),
                w2: q(&b.w2),
                ln2_gamma: qgc(&b.ln2_gamma),
                ln2_beta: qgc(&b.ln2_beta),
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            spec,
            we: q(&w.we),
            pos: q(&w.pos),
            blocks,
            classifier: q(&w.classifier),
            attn_prescale: fxp::const_q(cfg.attn_scale(), spec.gc_frac),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// The numeric spec.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Ring-domain matmul at double scale **without** truncation — the
    /// value the HE phase hands to the GC truncation module. Asserts the
    /// accumulation stays within the ring's centered range.
    pub fn matmul_raw(&self, a: &MatI, b: &MatI) -> MatI {
        let t_half = (self.spec.ring.modulus() / 2) as i64;
        let mut out = Matrix::filled(a.rows(), b.cols(), 0i64);
        for r in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a[(r, k)];
                if av == 0 {
                    continue;
                }
                for c in 0..b.cols() {
                    out[(r, c)] += av * b[(k, c)];
                }
            }
        }
        for v in out.iter() {
            assert!(
                v.abs() < t_half,
                "ring overflow in linear layer: |{v}| >= t/2 — widen t"
            );
        }
        out
    }

    /// The paper's truncation module: `>> frac`, saturate to the format.
    pub fn trunc(&self, m: &MatI) -> MatI {
        m.map(|&v| self.spec.fixed.truncate_product(v))
    }

    /// Linear layer: matmul at double scale, then truncate.
    pub fn linear(&self, a: &MatI, w: &MatI) -> MatI {
        self.trunc(&self.matmul_raw(a, w))
    }

    /// SoftMax module on raw (double-scale) score rows, with the 1/√n
    /// pre-scale applied inside — mirrors the GC circuit exactly.
    pub fn softmax_rows(&self, scores_raw: &MatI) -> MatI {
        let spec = &self.spec;
        let mut out = Matrix::filled(scores_raw.rows(), scores_raw.cols(), 0i64);
        for r in 0..scores_raw.rows() {
            let row_gc: Vec<i64> = scores_raw
                .row(r)
                .iter()
                .map(|&v| fxp::mul_q(spec.product_to_gc(v), self.attn_prescale, spec.gc_frac))
                .collect();
            let probs = fxp::softmax(&row_gc, spec.gc_frac);
            for (c, p) in probs.into_iter().enumerate() {
                out[(r, c)] = spec.from_gc(p);
            }
        }
        out
    }

    /// GELU module (elementwise, pipeline scale in and out).
    pub fn gelu_mat(&self, m: &MatI) -> MatI {
        let spec = &self.spec;
        m.map(|&v| spec.from_gc(fxp::gelu(spec.to_gc(v), spec.gc_frac)))
    }

    /// LayerNorm module over rows (pipeline scale in and out).
    pub fn layer_norm_rows(&self, m: &MatI, gamma: &[i64], beta: &[i64]) -> MatI {
        let spec = &self.spec;
        let inv_n = fxp::const_q(1.0 / m.cols() as f64, spec.gc_frac);
        let mut out = Matrix::filled(m.rows(), m.cols(), 0i64);
        for r in 0..m.rows() {
            let row_gc: Vec<i64> = m.row(r).iter().map(|&v| spec.to_gc(v)).collect();
            let normed = fxp::layer_norm(&row_gc, gamma, beta, inv_n, spec.gc_frac);
            for (c, v) in normed.into_iter().enumerate() {
                out[(r, c)] = spec.from_gc(v);
            }
        }
        out
    }

    /// Embedding: `trunc(onehot·W_E·2^f + λ·2^f) = row(W_E) + λ`,
    /// saturated. (The one-hot raw value is `2^frac`, so the HE product
    /// accumulates `2^frac · w` and truncation recovers `w` exactly.)
    pub fn embed(&self, tokens: &[usize]) -> MatI {
        assert_eq!(tokens.len(), self.cfg.n_tokens, "token count mismatch");
        let f = self.spec.fixed;
        Matrix::from_fn(self.cfg.n_tokens, self.cfg.d_model, |i, j| {
            assert!(tokens[i] < self.cfg.vocab, "token id out of vocabulary");
            f.saturate(self.we[(tokens[i], j)] + self.pos[(i, j)])
        })
    }

    /// One encoder block (exposed for layer-by-layer protocol tests).
    pub fn encoder_block(&self, x: &MatI, idx: usize) -> MatI {
        let b = &self.blocks[idx];
        let q = self.linear(x, &b.wq);
        let k = self.linear(x, &b.wk);
        let v = self.linear(x, &b.wv);
        self.encoder_block_with_qkv(x, &q, &k, &v, idx)
    }

    /// Full forward to hidden states.
    pub fn hidden_states(&self, tokens: &[usize]) -> MatI {
        let mut x = self.embed(tokens);
        for i in 0..self.blocks.len() {
            x = self.encoder_block(&x, i);
        }
        x
    }

    /// CHGS-combined weights: `Ā_x = trunc(W_E·W_x)` and positional terms
    /// `λ̄_x = trunc(λ·W_x)` for block 0's Q/K/V (the server pre-combines
    /// these in plaintext; see `primer-core`'s `chgs` module).
    pub fn combined_weights(&self) -> CombinedWeights {
        let b0 = &self.blocks[0];
        CombinedWeights {
            a_q: self.linear(&self.we, &b0.wq),
            a_k: self.linear(&self.we, &b0.wk),
            a_v: self.linear(&self.we, &b0.wv),
            lam_q: self.linear(&self.pos, &b0.wq),
            lam_k: self.linear(&self.pos, &b0.wk),
            lam_v: self.linear(&self.pos, &b0.wv),
        }
    }

    /// Block-0 Q/K/V under the combined semantics:
    /// `X_q = trunc(onehot·Ā_q·2^f + λ̄_q·2^f) = sat(row(Ā_q) + λ̄_q)`.
    pub fn combined_qkv(&self, tokens: &[usize], cw: &CombinedWeights) -> (MatI, MatI, MatI) {
        let f = self.spec.fixed;
        let pick = |a: &MatI, lam: &MatI| {
            Matrix::from_fn(self.cfg.n_tokens, self.cfg.d_model, |i, j| {
                f.saturate(a[(tokens[i], j)] + lam[(i, j)])
            })
        };
        (pick(&cw.a_q, &cw.lam_q), pick(&cw.a_k, &cw.lam_k), pick(&cw.a_v, &cw.lam_v))
    }

    /// Encoder block with externally supplied Q/K/V (used for block 0 in
    /// combined mode; `x` is the residual stream).
    pub fn encoder_block_with_qkv(
        &self,
        x: &MatI,
        q: &MatI,
        k: &MatI,
        v: &MatI,
        idx: usize,
    ) -> MatI {
        let b = &self.blocks[idx];
        let cfg = &self.cfg;
        let n = cfg.n_tokens;
        let dh = cfg.d_head();
        let mut concat = Matrix::filled(n, cfg.d_model, 0i64);
        for h in 0..cfg.n_heads {
            let c0 = h * dh;
            let qh = Matrix::from_fn(n, dh, |i, c| q[(i, c0 + c)]);
            let kh_t = Matrix::from_fn(dh, n, |c, j| k[(j, c0 + c)]);
            let scores_raw = self.matmul_raw(&qh, &kh_t);
            let probs = self.softmax_rows(&scores_raw);
            let vh = Matrix::from_fn(n, dh, |j, c| v[(j, c0 + c)]);
            let av = self.linear(&probs, &vh);
            for i in 0..n {
                for c in 0..dh {
                    concat[(i, c0 + c)] = av[(i, c)];
                }
            }
        }
        let attn = self.linear(&concat, &b.wo);
        let res1 = Matrix::from_fn(n, cfg.d_model, |i, j| {
            self.spec.fixed.saturate(x[(i, j)] + attn[(i, j)])
        });
        let x1 = self.layer_norm_rows(&res1, &b.ln1_gamma, &b.ln1_beta);
        let inner = self.linear(&x1, &b.w1);
        let act = self.gelu_mat(&inner);
        let ff = self.linear(&act, &b.w2);
        let res2 = Matrix::from_fn(n, cfg.d_model, |i, j| {
            self.spec.fixed.saturate(x1[(i, j)] + ff[(i, j)])
        });
        self.layer_norm_rows(&res2, &b.ln2_gamma, &b.ln2_beta)
    }

    /// Full forward under combined (Primer-FPC) semantics.
    pub fn hidden_states_combined(&self, tokens: &[usize]) -> MatI {
        let cw = self.combined_weights();
        let x0 = self.embed(tokens);
        let (q, k, v) = self.combined_qkv(tokens, &cw);
        let mut x = self.encoder_block_with_qkv(&x0, &q, &k, &v, 0);
        for i in 1..self.blocks.len() {
            x = self.encoder_block(&x, i);
        }
        x
    }

    /// Logits under combined semantics.
    pub fn logits_combined(&self, tokens: &[usize]) -> Vec<i64> {
        let h = self.hidden_states_combined(tokens);
        let pooled = Matrix::from_fn(1, self.cfg.d_model, |_, j| h[(0, j)]);
        self.linear(&pooled, &self.classifier).row(0).to_vec()
    }

    /// Classification logits (first-token pooling), pipeline scale.
    pub fn logits(&self, tokens: &[usize]) -> Vec<i64> {
        let h = self.hidden_states(tokens);
        let pooled = Matrix::from_fn(1, self.cfg.d_model, |_, j| h[(0, j)]);
        self.linear(&pooled, &self.classifier).row(0).to_vec()
    }

    /// Predicted class.
    pub fn classify(&self, tokens: &[usize]) -> usize {
        let logits: Vec<f64> = self.logits(tokens).iter().map(|&v| v as f64).collect();
        argmax(&logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ActivationMode, Transformer};
    use primer_math::rng::seeded;
    use rand::Rng;

    fn spec() -> PipelineSpec {
        PipelineSpec::new(Ring::new((1 << 29) + 11), FixedSpec::new(12, 5), 12)
    }

    fn fixture() -> (Transformer, FixedTransformer) {
        let cfg = TransformerConfig::test_small();
        let w = TransformerWeights::random(&cfg, &mut seeded(160));
        let fixed = FixedTransformer::quantize(&cfg, &w, spec());
        (Transformer::new(cfg, w), fixed)
    }

    #[test]
    fn embed_equals_literal_onehot_matmul() {
        let (_, fx) = fixture();
        let cfg = fx.config().clone();
        let tokens = vec![3, 17, 0, 63, 9, 22];
        // Literal: one-hot row (value 2^frac) × W_E accumulated raw, then
        // truncated, plus λ in the raw domain.
        let f = fx.spec().fixed;
        let one = 1i64 << f.frac();
        let onehot = Matrix::from_fn(cfg.n_tokens, cfg.vocab, |i, j| {
            if tokens[i] == j {
                one
            } else {
                0
            }
        });
        let raw = fx.matmul_raw(&onehot, &fx.we);
        let with_pos = Matrix::from_fn(cfg.n_tokens, cfg.d_model, |i, j| {
            raw[(i, j)] + (fx.pos[(i, j)] << f.frac())
        });
        let literal = fx.trunc(&with_pos);
        assert_eq!(fx.embed(&tokens), literal);
    }

    #[test]
    fn fixed_forward_tracks_float_teacher() {
        let (float, fx) = fixture();
        let mut rng = seeded(161);
        let mut agree = 0;
        let total = 30;
        for _ in 0..total {
            let tokens: Vec<usize> =
                (0..6).map(|_| rng.gen_range(0..float.config().vocab)).collect();
            if float.classify(&tokens, ActivationMode::Exact) == fx.classify(&tokens) {
                agree += 1;
            }
        }
        // Fixed-point should track the f64 teacher closely (the paper's
        // 15-bit claim); demand strong but not perfect agreement.
        assert!(agree * 10 >= total * 7, "fixed-point agreement {agree}/{total}");
    }

    #[test]
    fn forward_is_deterministic_and_finite() {
        let (_, fx) = fixture();
        let tokens = vec![5, 4, 3, 2, 1, 0];
        let a = fx.logits(&tokens);
        assert_eq!(a, fx.logits(&tokens));
        let max = fx.spec().fixed.max_raw();
        assert!(a.iter().all(|&v| v.abs() <= max));
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn ring_overflow_is_detected() {
        let ring = Ring::new(4099); // far too small for 12-bit products
        let spec = PipelineSpec::new(ring, FixedSpec::new(5, 2), 5);
        let cfg = TransformerConfig::test_tiny();
        let w = TransformerWeights::random(&cfg, &mut seeded(162));
        let fx = FixedTransformer::quantize(&cfg, &w, spec);
        let big = Matrix::filled(4, 8, 100i64);
        let _ = fx.matmul_raw(&big, &Matrix::filled(8, 8, 100i64));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let (_, fx) = fixture();
        let f = fx.spec().fixed;
        let scores = Matrix::from_fn(4, 6, |i, j| ((i * 13 + j * 7) as i64 - 30) << f.frac());
        let probs = fx.softmax_rows(&scores);
        let one = 1i64 << f.frac();
        for r in 0..4 {
            let sum: i64 = probs.row(r).iter().sum();
            assert!((sum - one).abs() <= 6, "row {r} sums to {sum} vs {one}");
        }
    }
}
