//! Analytic cost model: extrapolates paper-scale latency (Tables I–III,
//! Fig. 2) from exact operation counts times per-operation costs.
//!
//! Counts come from the same formulas the implementation
//! `debug_assert`s against ([`crate::packing::matmul_counts`]) plus GC
//! gate models calibrated by *building the real circuits* at small
//! element counts (gate counts are exactly linear in elements/rows by
//! construction). Per-op costs default to measurements of this codebase
//! on paper-scale parameters (`N = 8192`); the bench harness can
//! re-measure them (`OpCosts::measure`).

use crate::engine::ProtocolVariant;
use crate::gcmod::{build_step_circuit, GcStepKind};
use crate::packing::{matmul_counts, Layout, Packing};
use crate::stats::StepCategory;
use primer_gc::GcNumCfg;
use primer_he::{BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator};
use primer_math::rng::seeded;
use primer_math::{FixedSpec, Ring};
use primer_net::NetworkModel;
use primer_nn::{PipelineSpec, TransformerConfig};
use std::collections::BTreeMap;
use std::time::Instant;

/// Per-operation costs in seconds (and wire sizes in bytes).
#[derive(Debug, Clone, Copy)]
pub struct OpCosts {
    /// One elementary Galois rotation (key switch).
    pub rotation: f64,
    /// One ciphertext × plaintext multiply(+accumulate).
    pub mul_plain: f64,
    /// One ciphertext/plaintext addition.
    pub add: f64,
    /// One fresh encryption.
    pub encrypt: f64,
    /// One decryption.
    pub decrypt: f64,
    /// One ciphertext × ciphertext multiply + relinearization (THE-X).
    pub mul_ct: f64,
    /// Garbling one AND gate.
    pub gc_garble_and: f64,
    /// Evaluating one AND gate.
    pub gc_eval_and: f64,
    /// Wire bytes of one (seed-compressed) fresh ciphertext.
    pub ct_fresh_bytes: u64,
    /// Wire bytes of one evaluated ciphertext.
    pub ct_full_bytes: u64,
}

impl OpCosts {
    /// Default cost table. HE numbers are Criterion measurements of this
    /// codebase at the paper profile (`N = 8192`, two 59-bit primes,
    /// single x86-64 core — see `bench_output.txt`). GC per-AND rates
    /// are JustGarble-class (hardware-AES garbling, the paper's tooling);
    /// our table-less software AES garbles ~6× slower — pass `--measure`
    /// to the table binaries to price everything with this codebase's
    /// own rates instead.
    pub fn paper_defaults() -> Self {
        Self {
            rotation: 14.3e-3,
            mul_plain: 0.14e-3,
            add: 0.042e-3,
            encrypt: 4.0e-3,
            decrypt: 13.2e-3,
            mul_ct: 600.0e-3,
            gc_garble_and: 0.55e-6,
            gc_eval_and: 0.45e-6,
            ct_fresh_bytes: (2 * 8192 * 8 + 32 + 2) as u64,
            ct_full_bytes: (2 * 2 * 8192 * 8 + 2) as u64,
        }
    }

    /// Measures the HE costs on live paper-scale parameters (a few
    /// seconds). GC costs are measured on a mid-size adder circuit.
    pub fn measure() -> Self {
        let mut costs = Self::paper_defaults();
        let ctx = HeContext::new(HeParams::paper_8k());
        let encoder = BatchEncoder::new(&ctx);
        let mut rng = seeded(77);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 78);
        let eval = Evaluator::new(&ctx);
        let gk = kg.galois_keys(&[1], false, &mut rng);
        let vals: Vec<u64> = (0..100u64).collect();
        let pt = encoder.encode(&vals);

        let timed = |f: &mut dyn FnMut(), reps: u32| -> f64 {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_secs_f64() / reps as f64
        };
        let ct = encryptor.encrypt(&pt);
        costs.encrypt = timed(&mut || drop(encryptor.encrypt(&pt)), 5);
        costs.decrypt = timed(&mut || drop(encryptor.decrypt(&ct)), 5);
        let mp = eval.prepare_mul_plain(&pt);
        costs.mul_plain = timed(&mut || drop(eval.mul_plain(&ct, &mp)), 10);
        costs.add = timed(&mut || drop(eval.add(&ct, &ct)), 10);
        costs.rotation = timed(&mut || drop(eval.rotate_rows(&ct, 1, &gk)), 5);
        costs.ct_fresh_bytes = ct.serialized_size() as u64;
        costs.ct_full_bytes = eval.add(&ct, &ct).serialized_size() as u64;

        // GC per-AND costs from a real garble/eval of a multiplier.
        let mut b = primer_gc::CircuitBuilder::new();
        let x = b.garbler_input(32);
        let y = b.evaluator_input(32);
        let p = b.mul(&x, &y);
        let circuit = b.build(&p);
        let ands = circuit.and_count() as f64;
        let start = Instant::now();
        let (garbled, enc) = primer_gc::garble::garble(&circuit, &mut rng);
        costs.gc_garble_and = start.elapsed().as_secs_f64() / ands;
        let gl: Vec<u128> = (0..32).map(|i| enc.garbler_label(i, false)).collect();
        let el: Vec<u128> = (0..32).map(|i| enc.evaluator_pair(i).0).collect();
        let start = Instant::now();
        let _ = primer_gc::garble::evaluate(&circuit, &garbled, &gl, &el);
        costs.gc_eval_and = start.elapsed().as_secs_f64() / ands;
        costs
    }
}

/// AND-gate counts per element/row for each GC step kind, calibrated by
/// building real circuits at the paper's numeric widths.
#[derive(Debug, Clone, Copy)]
pub struct GcGateModel {
    trunc_per_elem: f64,
    relu_per_elem: f64,
    gelu_per_elem: f64,
    softmax_per_row_base: f64,
    softmax_per_elem: f64,
    ln_per_row_base: f64,
    ln_per_elem: f64,
}

impl GcGateModel {
    /// Calibrates against real circuits at the given numeric profile.
    pub fn calibrate(spec: &PipelineSpec, gc: GcNumCfg) -> Self {
        let ands = |kind: &GcStepKind| build_step_circuit(kind, spec, gc).and_count() as f64;
        let t1 = ands(&GcStepKind::TruncSat { elems: 4 });
        let t2 = ands(&GcStepKind::TruncSat { elems: 8 });
        let trunc_per_elem = (t2 - t1) / 4.0;
        let r1 = ands(&GcStepKind::Relu { elems: 4 });
        let r2 = ands(&GcStepKind::Relu { elems: 8 });
        let relu_per_elem = (r2 - r1) / 4.0;
        let g1 = ands(&GcStepKind::Gelu { elems: 2 });
        let g2 = ands(&GcStepKind::Gelu { elems: 4 });
        let gelu_per_elem = (g2 - g1) / 2.0;
        let prescale = primer_math::fxp::const_q(0.2, spec.gc_frac);
        let s4 = ands(&GcStepKind::Softmax { rows: 1, cols: 4, prescale });
        let s8 = ands(&GcStepKind::Softmax { rows: 1, cols: 8, prescale });
        let softmax_per_elem = (s8 - s4) / 4.0;
        let softmax_per_row_base = s4 - 4.0 * softmax_per_elem;
        let gamma4 = vec![1 << spec.gc_frac; 4];
        let beta4 = vec![0i64; 4];
        let gamma8 = vec![1 << spec.gc_frac; 8];
        let beta8 = vec![0i64; 8];
        let l4 = ands(&GcStepKind::LayerNormResidual {
            rows: 1,
            cols: 4,
            gamma: gamma4,
            beta: beta4,
        });
        let l8 = ands(&GcStepKind::LayerNormResidual {
            rows: 1,
            cols: 8,
            gamma: gamma8,
            beta: beta8,
        });
        let ln_per_elem = (l8 - l4) / 4.0;
        let ln_per_row_base = l4 - 4.0 * ln_per_elem;
        Self {
            trunc_per_elem,
            relu_per_elem,
            gelu_per_elem,
            softmax_per_row_base,
            softmax_per_elem,
            ln_per_row_base,
            ln_per_elem,
        }
    }

    /// The paper numeric profile: 43-bit ring, the paper's 15/7 fixed
    /// point, 32-bit GC words (15-bit values make 31-bit products;
    /// LayerNorm, whose variance accumulation needs more headroom, is
    /// calibrated at the 48-bit protocol width).
    pub fn paper() -> Self {
        let ring = Ring::new(primer_he::HeParams::paper_8k().t());
        let spec = PipelineSpec::new(ring, FixedSpec::paper(), 12);
        let narrow = Self::calibrate(&spec, GcNumCfg { width: 32, frac: 12 });
        let wide = Self::calibrate(&spec, GcNumCfg::protocol());
        Self { ln_per_row_base: wide.ln_per_row_base, ln_per_elem: wide.ln_per_elem, ..narrow }
    }

    fn trunc(&self, elems: usize) -> f64 {
        self.trunc_per_elem * elems as f64
    }

    fn relu(&self, elems: usize) -> f64 {
        self.relu_per_elem * elems as f64
    }

    fn gelu(&self, elems: usize) -> f64 {
        self.gelu_per_elem * elems as f64
    }

    fn softmax(&self, rows: usize, cols: usize) -> f64 {
        rows as f64 * (self.softmax_per_row_base + self.softmax_per_elem * cols as f64)
    }

    fn layer_norm(&self, rows: usize, cols: usize) -> f64 {
        rows as f64 * (self.ln_per_row_base + self.ln_per_elem * cols as f64)
    }
}

/// Accumulated analytic cost of one phase of one step category.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelCost {
    /// HE rotations.
    pub rotations: f64,
    /// HE plaintext multiplies.
    pub mul_plain: f64,
    /// Encryptions.
    pub encrypts: f64,
    /// Decryptions.
    pub decrypts: f64,
    /// Ciphertext–ciphertext multiplies (THE-X only).
    pub mul_ct: f64,
    /// GC AND gates garbled (client side).
    pub gc_garble_ands: f64,
    /// GC AND gates evaluated (server side).
    pub gc_eval_ands: f64,
    /// Bytes on the wire.
    pub bytes: f64,
    /// Latency-bearing message flights.
    pub flights: f64,
}

impl ModelCost {
    fn add_matmul(&mut self, packing: Packing, rows: usize, k: usize, m: usize, simd: usize) {
        let c = matmul_counts(packing, rows, k, m, simd);
        self.rotations += c.rotations as f64;
        self.mul_plain += c.mul_plain as f64;
        self.encrypts += c.in_cts as f64;
        self.decrypts += c.out_cts as f64;
    }

    fn add_ct_traffic(&mut self, costs: &OpCosts, fresh: f64, full: f64, flights: f64) {
        self.bytes += fresh * costs.ct_fresh_bytes as f64 + full * costs.ct_full_bytes as f64;
        self.flights += flights;
    }

    /// Merges another cost.
    pub fn merge(&mut self, o: &ModelCost) {
        self.rotations += o.rotations;
        self.mul_plain += o.mul_plain;
        self.encrypts += o.encrypts;
        self.decrypts += o.decrypts;
        self.mul_ct += o.mul_ct;
        self.gc_garble_ands += o.gc_garble_ands;
        self.gc_eval_ands += o.gc_eval_ands;
        self.bytes += o.bytes;
        self.flights += o.flights;
    }

    /// Converts to seconds of compute under a cost table.
    pub fn compute_seconds(&self, c: &OpCosts) -> f64 {
        self.rotations * c.rotation
            + self.mul_plain * c.mul_plain
            + self.encrypts * c.encrypt
            + self.decrypts * c.decrypt
            + self.mul_ct * c.mul_ct
            + self.gc_garble_ands * c.gc_garble_and
            + self.gc_eval_ands * c.gc_eval_and
    }

    /// Total seconds including network time.
    pub fn total_seconds(&self, c: &OpCosts, net: &NetworkModel) -> f64 {
        self.compute_seconds(c)
            + net.time_for(self.flights as u64, self.bytes as u64).as_secs_f64()
    }
}

/// Per-category (offline, online) model costs for one variant.
pub type VariantModel = BTreeMap<&'static str, (ModelCost, ModelCost)>;

/// The analytic model of one Primer variant on one model configuration.
#[derive(Debug)]
pub struct CostModel {
    /// SIMD width (slots per row) at paper parameters.
    pub simd: usize,
    /// Calibrated GC gate model.
    pub gates: GcGateModel,
}

impl CostModel {
    /// Paper-scale model (`N = 8192` → 4096 usable slots).
    pub fn paper() -> Self {
        Self { simd: 4096, gates: GcGateModel::paper() }
    }

    /// Computes (offline, online) costs per Table II category.
    pub fn variant_costs(
        &self,
        cfg: &TransformerConfig,
        variant: ProtocolVariant,
        costs: &OpCosts,
    ) -> BTreeMap<StepCategory, (ModelCost, ModelCost)> {
        let packing = variant.packing();
        let simd = self.simd;
        let (n, d, dff, heads, dh) =
            (cfg.n_tokens, cfg.d_model, cfg.d_ff, cfg.n_heads, cfg.d_head());
        let mut out: BTreeMap<StepCategory, (ModelCost, ModelCost)> =
            StepCategory::all().iter().map(|&c| (c, Default::default())).collect();
        let mat_bytes = |rows: usize, cols: usize| (rows * cols * 8 + 8) as f64;
        let in_cts = |rows: usize, cols: usize| {
            Layout::plan(packing, rows, cols, simd).num_cts as f64
        };

        // --- Embed / combined ---
        {
            let e = out.get_mut(&if variant.combined() {
                StepCategory::QxK
            } else {
                StepCategory::Embed
            })
            .expect("category");
            let proj = if variant.combined() { 4 } else { 1 };
            for _ in 0..proj {
                e.0.add_matmul(packing, n, cfg.vocab, d, simd);
            }
            // Enc(Rc) upload (once) + results download.
            e.0.add_ct_traffic(costs, in_cts(n, cfg.vocab), proj as f64 * in_cts(n, d), 2.0);
            // Online: U matrix + GC truncation of proj·n·d elements.
            e.1.bytes += mat_bytes(n, cfg.vocab);
            e.1.flights += 1.0;
            let elems = proj * n * d;
            let ands = self.gates.trunc(elems);
            e.0.gc_garble_ands += ands;
            e.0.bytes += ands * 32.0;
            e.1.gc_eval_ands += ands;
            e.1.bytes += (elems * 2) as f64 * 16.0;
            e.1.flights += 2.0;
        }

        for b in 0..cfg.n_blocks {
            // --- QKV ---
            if b > 0 || !variant.combined() {
                let e = out.get_mut(&StepCategory::Qkv).expect("category");
                for _ in 0..3 {
                    e.0.add_matmul(packing, n, d, d, simd);
                }
                e.0.add_ct_traffic(costs, in_cts(n, d), 3.0 * in_cts(n, d), 2.0);
                let elems = 3 * n * d;
                let ands = self.gates.trunc(elems);
                e.0.gc_garble_ands += ands;
                e.0.bytes += ands * 32.0;
                e.1.gc_eval_ands += ands;
                e.1.bytes += (elems * 2) as f64 * 16.0;
                e.1.flights += 2.0;
            }
            // --- Q×K (FHGS) ---
            {
                let e = out.get_mut(&StepCategory::QxK).expect("category");
                for _ in 0..heads {
                    // Offline: triple upload.
                    e.0.encrypts += in_cts(n, dh) + in_cts(n, dh) + in_cts(n, n);
                    e.0.add_ct_traffic(
                        costs,
                        2.0 * in_cts(n, dh) + in_cts(n, n),
                        0.0,
                        1.0,
                    );
                    // Online: two ct–pt matmuls + two downloads.
                    e.1.add_matmul(packing, n, dh, n, simd);
                    e.1.add_matmul(packing, n, dh, n, simd);
                    e.1.encrypts -= in_cts(n, dh) * 2.0; // inputs already encrypted offline
                    e.1.add_ct_traffic(costs, 0.0, 2.0 * in_cts(n, n), 2.0);
                }
            }
            // --- SoftMax (GC) ---
            {
                let e = out.get_mut(&StepCategory::Softmax).expect("category");
                let ands = self.gates.softmax(heads * n, n);
                e.0.gc_garble_ands += ands;
                e.0.bytes += ands * 32.0;
                e.1.gc_eval_ands += ands;
                e.1.bytes += (heads * n * n * 2) as f64 * 16.0;
                e.1.flights += 2.0;
            }
            // --- Attention × V (FHGS + trunc) ---
            {
                let e = out.get_mut(&StepCategory::AttnValue).expect("category");
                for _ in 0..heads {
                    e.0.encrypts += in_cts(n, n) + in_cts(dh, n) + in_cts(n, dh);
                    e.0.add_ct_traffic(
                        costs,
                        in_cts(n, n) + in_cts(dh, n) + in_cts(n, dh),
                        0.0,
                        1.0,
                    );
                    e.1.add_matmul(packing, n, n, dh, simd);
                    e.1.add_matmul(packing, dh, n, n, simd);
                    e.1.encrypts -= in_cts(n, n) + in_cts(dh, n);
                    e.1.add_ct_traffic(costs, 0.0, in_cts(n, dh) + in_cts(dh, n), 2.0);
                }
                let ands = self.gates.trunc(n * d);
                e.0.gc_garble_ands += ands;
                e.0.bytes += ands * 32.0;
                e.1.gc_eval_ands += ands;
                e.1.bytes += (n * d * 2) as f64 * 16.0;
                e.1.flights += 2.0;
            }
            // --- Others: WO, LN1, FF, LN2 ---
            {
                let e = out.get_mut(&StepCategory::Others).expect("category");
                e.0.add_matmul(packing, n, d, d, simd);
                e.0.add_matmul(packing, n, d, dff, simd);
                e.0.add_matmul(packing, n, dff, d, simd);
                e.0.add_ct_traffic(
                    costs,
                    in_cts(n, d) * 2.0 + in_cts(n, dff),
                    in_cts(n, d) * 2.0 + in_cts(n, dff),
                    6.0,
                );
                // The paper's GC activation is ReLU-style (Fig. 4); our engine
                // also supports the costlier GELU (see `gelu` ablations).
                let ands = self.gates.layer_norm(n, d) * 2.0 + self.gates.relu(n * dff);
                e.0.gc_garble_ands += ands;
                e.0.bytes += ands * 32.0;
                e.1.gc_eval_ands += ands;
                e.1.bytes += ((2 * n * d + n * dff) * 2) as f64 * 16.0;
                e.1.flights += 6.0;
            }
        }
        // Classifier (Others).
        {
            let e = out.get_mut(&StepCategory::Others).expect("category");
            e.0.add_matmul(packing, 1, d, cfg.n_classes, simd);
            e.1.bytes += mat_bytes(1, cfg.n_classes);
            e.1.flights += 1.0;
        }
        out
    }

    /// Offline/online/total seconds for a variant (Table I/III rows).
    pub fn variant_latency(
        &self,
        cfg: &TransformerConfig,
        variant: ProtocolVariant,
        costs: &OpCosts,
        net: &NetworkModel,
    ) -> (f64, f64) {
        let per_step = self.variant_costs(cfg, variant, costs);
        let mut off = 0.0;
        let mut on = 0.0;
        for (offline, online) in per_step.values() {
            off += offline.total_seconds(costs, net);
            on += online.total_seconds(costs, net);
        }
        if variant.has_offline_phase() {
            (off, on)
        } else {
            (0.0, off + on)
        }
    }

    /// Total message bytes (Table III's "Message GB").
    pub fn variant_message_bytes(
        &self,
        cfg: &TransformerConfig,
        variant: ProtocolVariant,
        costs: &OpCosts,
    ) -> f64 {
        self.variant_costs(cfg, variant, costs)
            .values()
            .map(|(a, b)| a.bytes + b.bytes)
            .sum()
    }
}

/// THE-X-style all-FHE baseline: every linear layer plus degree-2
/// polynomial activations evaluated homomorphically online.
pub fn thex_latency(cfg: &TransformerConfig, costs: &OpCosts, net: &NetworkModel, simd: usize) -> f64 {
    let (n, d, dff, heads, dh) = (cfg.n_tokens, cfg.d_model, cfg.d_ff, cfg.n_heads, cfg.d_head());
    let mut c = ModelCost::default();
    // Linear layers, feature-based packing (prior art).
    c.add_matmul(Packing::FeatureBased, n, cfg.vocab, d, simd);
    for _ in 0..cfg.n_blocks {
        for _ in 0..3 {
            c.add_matmul(Packing::FeatureBased, n, d, d, simd);
        }
        for _ in 0..heads {
            c.add_matmul(Packing::FeatureBased, n, dh, n, simd);
            c.add_matmul(Packing::FeatureBased, n, n, dh, simd);
        }
        c.add_matmul(Packing::FeatureBased, n, d, d, simd);
        c.add_matmul(Packing::FeatureBased, n, d, dff, simd);
        c.add_matmul(Packing::FeatureBased, n, dff, d, simd);
        // Poly activations: one ct–ct mult per ciphertext-slot-group per
        // nonlinearity (softmax surrogate, GELU surrogate, 2 layernorms).
        let act_elems = heads * n * n + n * dff + 2 * n * d;
        c.mul_ct += (act_elems as f64 / simd as f64).ceil() * 3.0;
    }
    c.flights = (cfg.n_blocks * 4) as f64;
    c.bytes = c.mul_ct * costs.ct_full_bytes as f64;
    c.total_seconds(costs, net)
}

/// GC-only baseline (GCFormer): every multiplication as a garbled
/// multiplier, activations as GC circuits. Returns (offline, online).
pub fn gcformer_latency(
    cfg: &TransformerConfig,
    costs: &OpCosts,
    net: &NetworkModel,
    gates: &GcGateModel,
    fixed_bits: f64,
) -> (f64, f64) {
    let (n, d, dff, heads, dh) = (cfg.n_tokens, cfg.d_model, cfg.d_ff, cfg.n_heads, cfg.d_head());
    // ANDs per fixed-point multiply (shift-add multiplier).
    let per_mul = 2.0 * fixed_bits * fixed_bits;
    let mut mults = 0.0f64;
    // Embedding as a vocab-wide mux tree per token/feature.
    let embed_ands = (n * cfg.vocab) as f64 * fixed_bits;
    for _ in 0..cfg.n_blocks {
        mults += (3 * n * d * d) as f64;
        mults += (heads * (n * n * dh) * 2) as f64;
        mults += (n * d * d) as f64;
        mults += (n * d * dff * 2) as f64;
    }
    let mut ands = embed_ands + mults * per_mul;
    for _ in 0..cfg.n_blocks {
        ands += gates.softmax(heads * n, n) + gates.gelu(n * dff) + gates.layer_norm(n, d) * 2.0;
    }
    let offline = ands * costs.gc_garble_and
        + net.time_for(2, (ands * 32.0) as u64).as_secs_f64() * 0.0;
    // Tables + labels transfer and evaluation are online.
    let online = ands * costs.gc_eval_and
        + net.time_for(4, (ands * 32.0) as u64).as_secs_f64();
    (offline, online)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_model_is_linear_and_positive() {
        let ring = Ring::new((1 << 29) + 11);
        let spec = PipelineSpec::new(ring, FixedSpec::new(12, 5), 12);
        let g = GcGateModel::calibrate(&spec, GcNumCfg { width: 32, frac: 12 });
        assert!(g.trunc_per_elem > 50.0);
        assert!(g.gelu_per_elem > g.trunc_per_elem);
        assert!(g.softmax_per_elem > 0.0 && g.softmax_per_row_base > 0.0);
        assert!(g.ln_per_elem > 0.0);
        // Linearity check against a real circuit.
        let kind = GcStepKind::TruncSat { elems: 16 };
        let real = build_step_circuit(&kind, &spec, GcNumCfg { width: 32, frac: 12 })
            .and_count() as f64;
        assert!((g.trunc(16) - real).abs() / real < 0.01, "model {} real {real}", g.trunc(16));
    }

    #[test]
    fn packing_ablation_reduces_offline_latency() {
        let model = CostModel::paper();
        let costs = OpCosts::paper_defaults();
        let net = NetworkModel::paper_lan();
        let cfg = TransformerConfig::bert_base();
        let (off_f, on_f) = model.variant_latency(&cfg, ProtocolVariant::F, &costs, &net);
        let (off_fp, on_fp) = model.variant_latency(&cfg, ProtocolVariant::Fp, &costs, &net);
        let (off_fpc, on_fpc) = model.variant_latency(&cfg, ProtocolVariant::Fpc, &costs, &net);
        // Tokens-first packing must slash offline latency (Table II).
        assert!(
            off_fp < off_f / 3.0,
            "packing should cut offline cost: F {off_f:.1}s vs FP {off_fp:.1}s"
        );
        // Online latency must be far below offline for F (the HGS claim).
        assert!(on_f < off_f / 5.0, "online {on_f:.1}s vs offline {off_f:.1}s");
        // CHGS keeps totals in the same ballpark or better.
        assert!(off_fpc + on_fpc <= (off_fp + on_fp) * 1.2);
    }

    #[test]
    fn base_variant_has_no_offline() {
        let model = CostModel::paper();
        let costs = OpCosts::paper_defaults();
        let net = NetworkModel::paper_lan();
        let cfg = TransformerConfig::bert_tiny();
        let (off, on) = model.variant_latency(&cfg, ProtocolVariant::Base, &costs, &net);
        assert_eq!(off, 0.0);
        assert!(on > 0.0);
    }

    #[test]
    fn baselines_are_slower_than_primer() {
        let model = CostModel::paper();
        let costs = OpCosts::paper_defaults();
        let net = NetworkModel::paper_lan();
        let cfg = TransformerConfig::bert_base();
        let (off_p, on_p) = model.variant_latency(&cfg, ProtocolVariant::Fpc, &costs, &net);
        let thex = thex_latency(&cfg, &costs, &net, model.simd);
        let (gc_off, gc_on) = gcformer_latency(&cfg, &costs, &net, &model.gates, 15.0);
        // Fig. 2 / Table I shape: Primer total ≪ THE-X online ≪ GCFormer total.
        assert!(off_p + on_p < thex, "primer {:.0}s vs THE-X {thex:.0}s", off_p + on_p);
        assert!(thex < gc_off + gc_on, "THE-X {thex:.0}s vs GCFormer {:.0}s", gc_off + gc_on);
    }

    #[test]
    fn bigger_models_cost_more() {
        let model = CostModel::paper();
        let costs = OpCosts::paper_defaults();
        let net = NetworkModel::paper_lan();
        let mut last_total = 0.0;
        for cfg in TransformerConfig::table3_models() {
            let (off, on) = model.variant_latency(&cfg, ProtocolVariant::Fpc, &costs, &net);
            let total = off + on;
            assert!(total > last_total, "{} should cost more", cfg.name);
            last_total = total;
        }
    }
}
