//! Amortized serving benchmark: one persistent session serving a batch
//! through `Engine::serve`, at batch sizes 1 / 4 / 16.
//!
//! Throughput is reported in elements (inferences), so the printed rate
//! is the amortized per-inference figure: Setup (key generation, Galois
//! transfer, weight prep) and circuit construction are paid once per
//! batch and shrink per-query as the batch grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use primer_core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer_math::rng::seeded;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(540));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    // Full Primer (the headline variant); the serving_table bin sweeps
    // every variant with an offline phase.
    let engine = Engine::new(sys, ProtocolVariant::Fpc, fixed, GcMode::Simulated, 541);
    for batch in [1usize, 4, 16] {
        let queries: Vec<Vec<usize>> = (0..batch)
            .map(|i| vec![i % 32, (3 * i + 1) % 32, (7 * i + 5) % 32, (11 * i + 2) % 32])
            .collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(BenchmarkId::new("warm_batch", batch), |b| {
            b.iter(|| {
                let reports = engine.serve(&queries);
                assert!(reports.iter().all(|r| r.matches_plaintext_reference()));
                reports
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
