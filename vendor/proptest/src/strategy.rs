//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Generates one value from the runner's RNG.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = case_rng("strategy::ranges", 0);
        for _ in 0..500 {
            let v = (0u64..97).new_value(&mut rng);
            assert!(v < 97);
            let s = (-5i64..=5).new_value(&mut rng);
            assert!((-5..=5).contains(&s));
        }
    }
}
