//! Warm-session correctness: a persistent session must serve its 2nd and
//! 3rd inference bit-identically to a fresh one-shot `Engine::run`, for
//! every protocol variant, and offline pools must drain and refill
//! without ever silently reusing consumed masks.

use primer::core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer::math::rng::seeded;
use primer::nn::{FixedTransformer, TransformerConfig, TransformerWeights};

fn engine_for(variant: ProtocolVariant, seed: u64) -> Engine {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(seed));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    Engine::new(sys, variant, fixed, GcMode::Simulated, seed + 1)
}

/// The headline reuse claim, per variant: one warm session serves the
/// same query three times through a pool of 2 (so the pool drains after
/// the second query and must refill for the third — a mid-serve refill
/// on a live transport), and every warm answer equals a fresh
/// `Engine::run` bit for bit.
#[test]
fn warm_sessions_are_bit_identical_to_fresh_runs() {
    let tokens = vec![4usize, 9, 23, 7];
    for variant in ProtocolVariant::all() {
        let engine = engine_for(variant, 820);
        let reports = engine.serve_pooled(&vec![tokens.clone(); 3], 2);
        assert_eq!(reports.len(), 3);
        let fresh = engine.run(&tokens);
        assert!(fresh.matches_plaintext_reference(), "{}: fresh run", variant.name());
        for (i, report) in reports.iter().enumerate() {
            assert!(
                report.matches_plaintext_reference(),
                "{}: warm inference {i} diverged from the reference",
                variant.name()
            );
            assert_eq!(
                report.logits,
                fresh.logits,
                "{}: warm inference {i} != fresh run on the same tokens",
                variant.name()
            );
            assert_eq!(report.predicted, fresh.predicted, "{}: prediction {i}", variant.name());
            // Setup is shared: every warm report amortizes over 3 queries.
            assert_eq!(report.session_queries, 3);
        }
        // The fresh one-shot session amortizes over exactly itself.
        assert_eq!(fresh.session_queries, 1);
    }
}

/// Amortization bookkeeping: in a warm batch the one-time setup cost is
/// identical across reports (it is the same session), each query still
/// pays its own offline + online work, and the amortized per-query cost
/// is strictly below setup + offline + online paid in full (what a
/// one-shot run charges).
#[test]
fn warm_batches_amortize_setup() {
    let engine = engine_for(ProtocolVariant::Fp, 830);
    let queries = vec![vec![1usize, 2, 3, 4], vec![31, 30, 29, 28], vec![7, 7, 7, 7]];
    let reports = engine.serve(&queries);
    let setup = reports[0].steps.setup();
    assert!(setup.bytes > 0, "setup carries the Galois-key flight");
    for r in &reports {
        assert!(r.matches_plaintext_reference());
        assert_eq!(r.steps.setup().bytes, setup.bytes, "one session, one setup");
        assert_eq!(r.steps.setup().compute, setup.compute);
        assert!(r.steps.offline_total().bytes > 0, "per-query offline work");
        assert!(r.steps.online_total().bytes > 0, "per-query online work");
        let amortized = r.amortized_cost();
        let full = r.phases().amortized_per_query(1);
        assert!(
            amortized.compute < full.compute && amortized.bytes < full.bytes,
            "amortizing setup over 3 queries must beat paying it per query"
        );
    }
    // Different inputs through one warm session produce different logits.
    assert_ne!(reports[0].logits, reports[1].logits);
}
