//! Garbled-circuit step modules: share reconstruction, the non-polynomial
//! function, and re-sharing — the `F(X·W) − R_c[i+1]` module of Fig. 4.
//!
//! Circuit semantics are pinned to `primer_nn::FixedTransformer`'s
//! reference operations (which in turn call `primer_math::fxp`), so the
//! private pipeline is bit-exact against the plaintext fixed-point model.
//!
//! Two execution modes:
//! * [`GcMode::Garbled`] — real half-gates garbling + IKNP OTs,
//! * [`GcMode::Simulated`] — plain circuit evaluation with wire traffic
//!   padded to the exact garbled sizes (for fast tests and large sweeps;
//!   the circuits themselves are identical).

use primer_gc::arith::{add_mod, lift_centered, relu, ring_bits, ring_embed, saturate, sub_mod};
use primer_gc::builder::{Bit, CircuitBuilder, Word};
use primer_gc::nonlinear as gcnl;
use primer_gc::{Circuit, GcNumCfg};
use primer_math::fxp;
use primer_nn::PipelineSpec;

/// Which non-polynomial step a circuit implements.
#[derive(Debug, Clone, PartialEq)]
pub enum GcStepKind {
    /// Truncate raw (double-scale) products back to the value format.
    TruncSat {
        /// Number of matrix elements.
        elems: usize,
    },
    /// Truncate then ReLU (kept for ablations; BERT uses GELU).
    Relu {
        /// Number of matrix elements.
        elems: usize,
    },
    /// Truncate then GELU (feed-forward activation).
    Gelu {
        /// Number of matrix elements.
        elems: usize,
    },
    /// Row-wise SoftMax over raw attention scores, with the 1/√n
    /// pre-scale folded in.
    Softmax {
        /// Rows (queries).
        rows: usize,
        /// Columns (keys).
        cols: usize,
        /// `const_q(1/√n, gc_frac)`.
        prescale: i64,
    },
    /// Truncate attention output, add the residual stream, LayerNorm.
    LayerNormResidual {
        /// Rows (tokens).
        rows: usize,
        /// Columns (hidden width).
        cols: usize,
        /// γ at GC scale.
        gamma: Vec<i64>,
        /// β at GC scale.
        beta: Vec<i64>,
    },
}

impl GcStepKind {
    /// Primary input elements (shares held by both parties).
    pub fn elems(&self) -> usize {
        match self {
            GcStepKind::TruncSat { elems }
            | GcStepKind::Relu { elems }
            | GcStepKind::Gelu { elems } => *elems,
            GcStepKind::Softmax { rows, cols, .. } => rows * cols,
            GcStepKind::LayerNormResidual { rows, cols, .. } => rows * cols,
        }
    }

    /// Whether the step also consumes residual-stream shares.
    pub fn has_residual(&self) -> bool {
        matches!(self, GcStepKind::LayerNormResidual { .. })
    }
}

/// Builds the step circuit. Garbler (client) inputs: primary shares,
/// then optional residual shares, then fresh output masks. Evaluator
/// (server) inputs: its matching shares. Outputs: the server's next-layer
/// share (the function result minus the client mask, mod t).
pub fn build_step_circuit(kind: &GcStepKind, spec: &PipelineSpec, gc: GcNumCfg) -> Circuit {
    let t = spec.ring.modulus();
    let rb = ring_bits(t);
    let w = gc.width;
    let n = kind.elems();
    let mut b = CircuitBuilder::new();

    // Input declaration order must match `client_bits` / `server_bits`.
    let share_c: Vec<Word> = (0..n).map(|_| b.garbler_input(rb)).collect();
    let res_c: Vec<Word> =
        (0..if kind.has_residual() { n } else { 0 }).map(|_| b.garbler_input(rb)).collect();
    let masks: Vec<Word> = (0..n).map(|_| b.garbler_input(rb)).collect();
    let share_s: Vec<Word> = (0..n).map(|_| b.evaluator_input(rb)).collect();
    let res_s: Vec<Word> =
        (0..if kind.has_residual() { n } else { 0 }).map(|_| b.evaluator_input(rb)).collect();

    // Reconstruct and lift every primary element.
    let lifted: Vec<Word> = share_c
        .iter()
        .zip(&share_s)
        .map(|(c, s)| {
            let rec = add_mod(&mut b, c, s, t);
            lift_centered(&mut b, &rec, t, w)
        })
        .collect();

    let frac = spec.fixed.frac() as usize;
    let bits = spec.fixed.bits();
    let delta = (spec.gc_frac - spec.fixed.frac()) as usize;
    let trunc_sat = |b: &mut CircuitBuilder, v: &Word| {
        let shifted = b.shr_arith_const(v, frac);
        saturate(b, &shifted, bits)
    };

    let results: Vec<Word> = match kind {
        GcStepKind::TruncSat { .. } => {
            lifted.iter().map(|v| trunc_sat(&mut b, v)).collect()
        }
        GcStepKind::Relu { .. } => lifted
            .iter()
            .map(|v| {
                let tr = trunc_sat(&mut b, v);
                relu(&mut b, &tr)
            })
            .collect(),
        GcStepKind::Gelu { .. } => lifted
            .iter()
            .map(|v| {
                let tr = trunc_sat(&mut b, v);
                let up = b.shl_const(&tr, delta);
                let g = gcnl::gelu(&mut b, gc, &up);
                let down = b.shr_arith_const(&g, delta);
                saturate(&mut b, &down, bits)
            })
            .collect(),
        GcStepKind::Softmax { rows, cols, prescale } => {
            let shift = spec.gc_frac as i32 - 2 * spec.fixed.frac() as i32;
            let pre = b.const_word(*prescale, w);
            let mut out = Vec::with_capacity(rows * cols);
            for r in 0..*rows {
                let row: Vec<Word> = (0..*cols)
                    .map(|c| {
                        let v = &lifted[r * cols + c];
                        let shifted = if shift >= 0 {
                            b.shl_const(v, shift as usize)
                        } else {
                            b.shr_arith_const(v, (-shift) as usize)
                        };
                        gcnl::mul_q(&mut b, gc, &shifted, &pre)
                    })
                    .collect();
                let probs = gcnl::softmax(&mut b, gc, &row);
                for p in probs {
                    let down = b.shr_arith_const(&p, delta);
                    out.push(saturate(&mut b, &down, bits));
                }
            }
            out
        }
        GcStepKind::LayerNormResidual { rows, cols, gamma, beta } => {
            let mut out = Vec::with_capacity(rows * cols);
            for r in 0..*rows {
                let row: Vec<Word> = (0..*cols)
                    .map(|c| {
                        let idx = r * cols + c;
                        let tr = trunc_sat(&mut b, &lifted[idx]);
                        let rec_x = add_mod(&mut b, &res_c[idx], &res_s[idx], t);
                        let x_l = lift_centered(&mut b, &rec_x, t, w);
                        let sum = b.add(&tr, &x_l);
                        let res = saturate(&mut b, &sum, bits);
                        b.shl_const(&res, delta)
                    })
                    .collect();
                let normed = gcnl::layer_norm(&mut b, gc, &row, gamma, beta);
                for v in normed {
                    let down = b.shr_arith_const(&v, delta);
                    out.push(saturate(&mut b, &down, bits));
                }
            }
            out
        }
    };

    // Re-embed into the ring and subtract the client's fresh mask.
    let mut outputs: Vec<Bit> = Vec::with_capacity(n * rb);
    for (res, mask) in results.iter().zip(&masks) {
        let res_w = b.resize_signed(res, w);
        let ring_val = ring_embed(&mut b, &res_w, t);
        let shared = sub_mod(&mut b, &ring_val, mask, t);
        outputs.extend_from_slice(&shared);
    }
    b.build(&outputs)
}

/// Reference semantics of a step on reconstructed raw values — must agree
/// with both the circuit and `primer_nn::FixedTransformer`. Input/output
/// are signed raw values.
pub fn reference_step(kind: &GcStepKind, spec: &PipelineSpec, raw: &[i64], residual: &[i64]) -> Vec<i64> {
    let f = spec.fixed;
    match kind {
        GcStepKind::TruncSat { .. } => raw.iter().map(|&v| f.truncate_product(v)).collect(),
        GcStepKind::Relu { .. } => {
            raw.iter().map(|&v| fxp::relu(f.truncate_product(v))).collect()
        }
        GcStepKind::Gelu { .. } => raw
            .iter()
            .map(|&v| {
                let tr = f.truncate_product(v);
                spec.from_gc(fxp::gelu(spec.to_gc(tr), spec.gc_frac))
            })
            .collect(),
        GcStepKind::Softmax { rows, cols, prescale } => {
            let mut out = Vec::with_capacity(rows * cols);
            for r in 0..*rows {
                let row: Vec<i64> = (0..*cols)
                    .map(|c| {
                        fxp::mul_q(spec.product_to_gc(raw[r * cols + c]), *prescale, spec.gc_frac)
                    })
                    .collect();
                for p in fxp::softmax(&row, spec.gc_frac) {
                    out.push(spec.from_gc(p));
                }
            }
            out
        }
        GcStepKind::LayerNormResidual { rows, cols, gamma, beta } => {
            let inv_n = fxp::const_q(1.0 / *cols as f64, spec.gc_frac);
            let mut out = Vec::with_capacity(rows * cols);
            for r in 0..*rows {
                let row: Vec<i64> = (0..*cols)
                    .map(|c| {
                        let idx = r * cols + c;
                        let res = f.saturate(f.truncate_product(raw[idx]) + residual[idx]);
                        spec.to_gc(res)
                    })
                    .collect();
                for v in fxp::layer_norm(&row, gamma, beta, inv_n, spec.gc_frac) {
                    out.push(spec.from_gc(v));
                }
            }
            out
        }
    }
}

/// Execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcMode {
    /// Real garbling + OT.
    Garbled,
    /// Plain evaluation with garbled-sized placeholder traffic.
    Simulated,
}

/// Packs ring words into circuit input bits.
pub fn ring_words_to_bits(vals: &[u64], rb: usize) -> Vec<bool> {
    let mut out = Vec::with_capacity(vals.len() * rb);
    for &v in vals {
        for i in 0..rb {
            out.push((v >> i) & 1 == 1);
        }
    }
    out
}

/// Unpacks circuit output bits into ring words.
pub fn bits_to_ring_words(bits: &[bool], rb: usize) -> Vec<u64> {
    bits.chunks(rb)
        .map(|chunk| {
            let mut v = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                if b {
                    v |= 1 << i;
                }
            }
            v
        })
        .collect()
}

mod exec;

pub use exec::{GcClientStep, GcServerStep};
