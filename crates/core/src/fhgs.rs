//! The Fully-HGS (FHGS) protocol (Fig. 5): Beaver-style support for the
//! ciphertext–ciphertext products of attention (`X_Q·X_Kᵀ`,
//! `SoftMax·X_V`) using **additive-only** HE.
//!
//! For a product `A·B` (`A: n×k` client-masked by `R_a`, `B: k×m` masked
//! by `R_b`, server holding `U_a = A−R_a`, `U_b = B−R_b`):
//!
//! ```text
//! A·B = U_a·U_b + U_a·R_b + R_a·U_b + R_a·R_b
//! ```
//!
//! Offline, the client ships `Enc(R_a)`, `Enc(R_bᵀ)` and `Enc(R_a·R_b)`
//! (it knows both masks, so the "triple" needs no ct–ct multiply — the
//! paper's key observation). Online, the server computes
//!
//! * `E1 = matmul(Enc(R_a), U_b) + Enc(R_a·R_b) + encode(U_a·U_b) − R_s1`
//! * `E2 = matmul(Enc(R_bᵀ), U_aᵀ) − R_s2`  (the transpose of `U_a·R_b`)
//!
//! and sends both. The client decrypts and assembles its share as
//! `dec(E1) + dec(E2)ᵀ` — the transpose happens **in plaintext at the
//! client**, avoiding expensive slot-permuting rotations; the server's
//! share is `R_s1 + R_s2ᵀ`. Both decryptions are masked, so the client
//! learns nothing beyond its share.
//!
//! # Triple layouts ([`FhgsMode`])
//!
//! The two online matmuls can run in either of two packings:
//!
//! * [`FhgsMode::Diagonal`] — the triple is packed like every other
//!   encrypted matrix ([`crate::packing::Packing`]) and the online
//!   matmuls walk the usual rotation chains. Fewest ciphertexts; pays
//!   `O(pad)` rotations per product.
//! * [`FhgsMode::ZeroRotation`] — replicated column packing
//!   ([`crate::packing::ZrLayout`]): each online matmul is **one
//!   slot-wise plaintext multiply per ciphertext, zero rotations, zero
//!   Galois keys**, at the price of `n·m·k` slots per flight instead of
//!   `≈ n·max(k, m)`. The inner-product sums happen in plaintext: the
//!   client sums regions of its decryption, the server sums regions of
//!   its (full-slot) masks. The full-slot masks are a *security
//!   requirement*, not a convenience: region slots carry unsummed
//!   partials `R·U` that a narrower mask would leak to the client.
//!
//! The selector in `costmodel::layout` picks the mode per product shape;
//! small shapes (one ciphertext per flight) favour zero-rotation, while
//! paper-scale attention favours diagonal.

use crate::hgs::{add_plain_matrix, sub_plain_matrix};
use crate::packing::{
    encrypt_matrix_in_layout_with, encrypt_matrix_with, matmul_out_layout, matmul_plain_weights,
    Layout, Packing, PackedMatrix, ZrLayout,
};
use crate::wire::{recv_cts, recv_packed, send_cts, send_packed};
use primer_he::{BatchEncoder, Ciphertext, Encryptor, Evaluator, GaloisKeys, HeContext};
use primer_math::{MatZ, Ring};
use primer_net::Transport;
use rand::rngs::StdRng;
use rand::Rng;

/// Shapes of one FHGS product `A (n×k) · B (k×m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FhgsDims {
    /// Rows of A.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B.
    pub m: usize,
}

/// How an FHGS triple is packed (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FhgsMode {
    /// Diagonal packing; online matmuls pay rotation chains.
    Diagonal(Packing),
    /// Replicated column packing; zero online rotations.
    ZeroRotation,
}

/// The two replicated layouts of a zero-rotation triple: `[E1-side
/// (R_a replicated m×), E2-side (R_bᵀ replicated n×)]`. `Enc(R_a·R_b)`
/// shares the E1-side layout (grid-origin encoded).
pub fn zr_layouts(dims: FhgsDims, slots: usize) -> [ZrLayout; 2] {
    [
        ZrLayout::plan(dims.n, dims.k, dims.m, slots),
        ZrLayout::plan(dims.m, dims.k, dims.n, slots),
    ]
}

/// One request flight of an FHGS triple: diagonal flights carry layout
/// metadata, zero-rotation flights are bare ciphertext batches (their
/// geometry is shape-derived on both sides).
#[derive(Debug, Clone)]
pub enum FhgsFlight {
    /// A diagonally packed matrix.
    Packed(PackedMatrix),
    /// Zero-rotation replicated ciphertexts.
    Raw(Vec<Ciphertext>),
}

impl FhgsFlight {
    /// Sends the flight.
    pub fn send(&self, transport: &dyn Transport) {
        match self {
            FhgsFlight::Packed(m) => send_packed(transport, m),
            FhgsFlight::Raw(cts) => send_cts(transport, cts),
        }
    }

    /// Total wire size of the ciphertexts.
    pub fn serialized_size(&self) -> usize {
        match self {
            FhgsFlight::Packed(m) => m.serialized_size(),
            FhgsFlight::Raw(cts) => cts.iter().map(Ciphertext::serialized_size).sum(),
        }
    }
}

/// Client-side precomputed state.
#[derive(Debug, Clone)]
pub struct FhgsClient {
    /// Mask for A.
    pub rc_a: MatZ,
    /// Mask for B.
    pub rc_b: MatZ,
    dims: FhgsDims,
    mode: FhgsMode,
}

/// The received triple plus whatever the output masking needs per mode.
#[derive(Debug)]
enum Triple {
    Diag {
        enc_rc_a: PackedMatrix,
        enc_rc_bt: PackedMatrix,
        enc_ab: PackedMatrix,
    },
    Zr {
        enc_a: Vec<Ciphertext>,
        enc_bt: Vec<Ciphertext>,
        enc_ab: Vec<Ciphertext>,
        /// Full-slot mask for E1 (`(n·m) × k`); `rs1` is its row sums.
        s1: MatZ,
        /// Full-slot mask for E2 (`(m·n) × k`); `rs2` is its row sums.
        s2: MatZ,
    },
}

/// Server-side precomputed state.
#[derive(Debug)]
pub struct FhgsServer {
    triple: Triple,
    rs1: MatZ,
    rs2: MatZ,
    dims: FhgsDims,
}

impl FhgsServer {
    /// Serializes this precomputed state into a suspend image (see
    /// `session::suspend`). The triple's ciphertexts reuse the wire
    /// codec; the output masks travel as plain ring matrices — the image
    /// holds one-time secrets either way, so it is only as private as
    /// the directory it lands in.
    pub(crate) fn suspend_write(&self, out: &mut Vec<u8>) {
        use crate::serial::{put_u32, write_cts, write_matz, write_packed};
        match &self.triple {
            Triple::Diag { enc_rc_a, enc_rc_bt, enc_ab } => {
                out.push(0);
                write_packed(out, enc_rc_a);
                write_packed(out, enc_rc_bt);
                write_packed(out, enc_ab);
            }
            Triple::Zr { enc_a, enc_bt, enc_ab, s1, s2 } => {
                out.push(1);
                write_cts(out, enc_a);
                write_cts(out, enc_bt);
                write_cts(out, enc_ab);
                write_matz(out, s1);
                write_matz(out, s2);
            }
        }
        write_matz(out, &self.rs1);
        write_matz(out, &self.rs2);
        put_u32(out, self.dims.n as u32);
        put_u32(out, self.dims.k as u32);
        put_u32(out, self.dims.m as u32);
    }

    /// Decodes state written by [`FhgsServer::suspend_write`].
    ///
    /// # Errors
    ///
    /// [`primer_he::HeError::Malformed`] on truncated or foreign bytes.
    pub(crate) fn suspend_read(
        r: &mut crate::serial::Rdr,
        ctx: &HeContext,
    ) -> Result<Self, primer_he::HeError> {
        use crate::serial::{read_cts, read_matz, read_packed};
        let triple = match r.u8("fhgs triple tag")? {
            0 => Triple::Diag {
                enc_rc_a: read_packed(r, ctx)?,
                enc_rc_bt: read_packed(r, ctx)?,
                enc_ab: read_packed(r, ctx)?,
            },
            1 => Triple::Zr {
                enc_a: read_cts(r, ctx)?,
                enc_bt: read_cts(r, ctx)?,
                enc_ab: read_cts(r, ctx)?,
                s1: read_matz(r)?,
                s2: read_matz(r)?,
            },
            _ => return Err(primer_he::HeError::Malformed { what: "fhgs triple tag" }),
        };
        let rs1 = read_matz(r)?;
        let rs2 = read_matz(r)?;
        let dims = FhgsDims {
            n: r.u32("fhgs dims")? as usize,
            k: r.u32("fhgs dims")? as usize,
            m: r.u32("fhgs dims")? as usize,
        };
        Ok(Self { triple, rs1, rs2, dims })
    }
}

/// Client offline: samples masks and ships the encrypted triple.
#[allow(clippy::too_many_arguments)]
pub fn client_offline<R: Rng + ?Sized>(
    ring: &Ring,
    mode: FhgsMode,
    dims: FhgsDims,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    transport: &dyn Transport,
    rng: &mut R,
) -> FhgsClient {
    let rc_a = MatZ::random(ring, dims.n, dims.k, rng);
    let rc_b = MatZ::random(ring, dims.k, dims.m, rng);
    client_offline_with_masks(ring, mode, rc_a, rc_b, encoder, encryptor, transport)
}

/// Client offline with externally chosen masks (the masks under which the
/// upstream GC steps re-share `A` and `B`).
pub fn client_offline_with_masks(
    ring: &Ring,
    mode: FhgsMode,
    rc_a: MatZ,
    rc_b: MatZ,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    transport: &dyn Transport,
) -> FhgsClient {
    let mut rng = encryptor.fork_rng();
    let (client, requests) = client_request(ring, mode, rc_a, rc_b, encoder, encryptor, &mut rng);
    for flight in &requests {
        flight.send(transport);
    }
    client
}

/// Pipelined client half: encrypts the whole FHGS triple — `Enc(R_a)`,
/// `Enc(R_bᵀ)`, `Enc(R_a·R_b)` — as three request flights without
/// touching the transport, with explicit encryption randomness so many
/// instances can be prepared concurrently. FHGS expects no offline
/// reply; the returned [`FhgsClient`] is complete.
pub fn client_request(
    ring: &Ring,
    mode: FhgsMode,
    rc_a: MatZ,
    rc_b: MatZ,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    rng: &mut StdRng,
) -> (FhgsClient, [FhgsFlight; 3]) {
    assert_eq!(rc_a.cols(), rc_b.rows(), "mask inner dimensions");
    let dims = FhgsDims { n: rc_a.rows(), k: rc_a.cols(), m: rc_b.cols() };
    let flights = match mode {
        FhgsMode::Diagonal(packing) => {
            let simd = encoder.row_size();
            let enc_a = encrypt_matrix_with(packing, &rc_a, encoder, encryptor, rng);
            let enc_bt = encrypt_matrix_with(packing, &rc_b.transpose(), encoder, encryptor, rng);
            // Enc(R_a·R_b) must align slot-for-slot with the matmul
            // output of Enc(R_a)·U_b, so it is encrypted in that
            // product's layout.
            let prod_layout = matmul_out_layout(packing, dims.n, dims.k, dims.m, simd);
            let ab = rc_a.matmul(ring, &rc_b);
            let enc_ab = encrypt_matrix_in_layout_with(prod_layout, &ab, encoder, encryptor, rng);
            [FhgsFlight::Packed(enc_a), FhgsFlight::Packed(enc_bt), FhgsFlight::Packed(enc_ab)]
        }
        FhgsMode::ZeroRotation => {
            let [la, lb] = zr_layouts(dims, encoder.slot_count());
            let enc_a = la.encrypt(&la.replicated_slots(&rc_a), encoder, encryptor, rng);
            let enc_bt =
                lb.encrypt(&lb.replicated_slots(&rc_b.transpose()), encoder, encryptor, rng);
            let ab = rc_a.matmul(ring, &rc_b);
            // Already-summed values sit at region origins of E1's grid.
            let enc_ab = la.encrypt(&la.grid_origin_slots(&ab), encoder, encryptor, rng);
            [FhgsFlight::Raw(enc_a), FhgsFlight::Raw(enc_bt), FhgsFlight::Raw(enc_ab)]
        }
    };
    (FhgsClient { rc_a, rc_b, dims, mode }, flights)
}

/// Layouts of the three **diagonal** request flights a [`client_request`]
/// produces, in wire order — what the server's batched receiver expects.
pub fn request_layouts(packing: Packing, dims: FhgsDims, simd: usize) -> [Layout; 3] {
    [
        Layout::plan(packing, dims.n, dims.k, simd),
        Layout::plan(packing, dims.m, dims.k, simd),
        matmul_out_layout(packing, dims.n, dims.k, dims.m, simd),
    ]
}

/// Ciphertext counts of the three **zero-rotation** request flights, in
/// wire order.
pub fn zr_request_counts(dims: FhgsDims, slots: usize) -> [usize; 3] {
    let [la, lb] = zr_layouts(dims, slots);
    [la.num_cts, lb.num_cts, la.num_cts]
}

/// Pipelined server half for a **diagonal** triple with pre-sampled
/// output masks. No HE compute happens offline on the server side of
/// FHGS — the matmuls run online against `U_a`, `U_b`.
pub fn server_accept(
    dims: FhgsDims,
    [enc_rc_a, enc_rc_bt, enc_ab]: [PackedMatrix; 3],
    rs1: MatZ,
    rs2: MatZ,
) -> FhgsServer {
    assert_eq!(rs1.shape(), (dims.n, dims.m), "R_s1 shape");
    assert_eq!(rs2.shape(), (dims.m, dims.n), "R_s2 shape");
    FhgsServer { triple: Triple::Diag { enc_rc_a, enc_rc_bt, enc_ab }, rs1, rs2, dims }
}

/// Pipelined server half for a **zero-rotation** triple with pre-sampled
/// full-slot masks `s1: (n·m)×k`, `s2: (m·n)×k`. The server's share
/// masks `rs1`/`rs2` are the row sums of `s1`/`s2` (what the client's
/// region sums subtract).
pub fn server_accept_zr(
    ring: &Ring,
    dims: FhgsDims,
    [enc_a, enc_bt, enc_ab]: [Vec<Ciphertext>; 3],
    s1: MatZ,
    s2: MatZ,
) -> FhgsServer {
    assert_eq!(s1.shape(), (dims.n * dims.m, dims.k), "S1 shape");
    assert_eq!(s2.shape(), (dims.m * dims.n, dims.k), "S2 shape");
    let row_sums = |s: &MatZ, rows: usize, cols: usize| {
        MatZ::from_fn(rows, cols, |i, j| {
            s.row(i * cols + j).iter().fold(0u64, |acc, &v| ring.add(acc, v))
        })
    };
    let rs1 = row_sums(&s1, dims.n, dims.m);
    let rs2 = row_sums(&s2, dims.m, dims.n);
    FhgsServer { triple: Triple::Zr { enc_a, enc_bt, enc_ab, s1, s2 }, rs1, rs2, dims }
}

/// Server offline: receives the triple, samples output masks.
///
/// # Errors
///
/// [`primer_he::HeError::Malformed`] on a corrupt request flight.
pub fn server_offline<R: Rng + ?Sized>(
    ring: &Ring,
    mode: FhgsMode,
    dims: FhgsDims,
    ctx: &HeContext,
    encoder: &BatchEncoder,
    transport: &dyn Transport,
    rng: &mut R,
) -> Result<FhgsServer, primer_he::HeError> {
    match mode {
        FhgsMode::Diagonal(packing) => {
            let simd = encoder.row_size();
            let [l_a, l_bt, l_ab] = request_layouts(packing, dims, simd);
            let flights = [
                recv_packed(transport, ctx, l_a)?,
                recv_packed(transport, ctx, l_bt)?,
                recv_packed(transport, ctx, l_ab)?,
            ];
            let rs1 = MatZ::random(ring, dims.n, dims.m, rng);
            let rs2 = MatZ::random(ring, dims.m, dims.n, rng);
            Ok(server_accept(dims, flights, rs1, rs2))
        }
        FhgsMode::ZeroRotation => {
            let counts = zr_request_counts(dims, encoder.slot_count());
            let mut flights = Vec::with_capacity(3);
            for expect in counts {
                let cts = recv_cts(transport, ctx)?;
                if cts.len() != expect {
                    return Err(primer_he::HeError::Malformed { what: "zero-rotation flight count" });
                }
                flights.push(cts);
            }
            let [enc_a, enc_bt, enc_ab]: [Vec<Ciphertext>; 3] =
                flights.try_into().expect("three flights");
            let s1 = MatZ::random(ring, dims.n * dims.m, dims.k, rng);
            let s2 = MatZ::random(ring, dims.m * dims.n, dims.k, rng);
            Ok(server_accept_zr(ring, dims, [enc_a, enc_bt, enc_ab], s1, s2))
        }
    }
}

/// Server online: two ct–pt matmuls plus plaintext work; returns the
/// server's share `R_s1 + R_s2ᵀ`. In zero-rotation mode the "matmuls"
/// are one slot-wise plaintext multiply per ciphertext and no Galois
/// key is ever touched.
///
/// # Panics
///
/// Panics on shape mismatch or missing Galois keys (engine setup bugs).
#[allow(clippy::too_many_arguments)]
pub fn server_online(
    server: &FhgsServer,
    ring: &Ring,
    ua: &MatZ,
    ub: &MatZ,
    encoder: &BatchEncoder,
    eval: &Evaluator,
    keys: &GaloisKeys,
    transport: &dyn Transport,
) -> MatZ {
    let dims = server.dims;
    assert_eq!(ua.shape(), (dims.n, dims.k), "U_a shape");
    assert_eq!(ub.shape(), (dims.k, dims.m), "U_b shape");
    match &server.triple {
        Triple::Diag { enc_rc_a, enc_rc_bt, enc_ab } => {
            // E1 = Enc(R_a)·U_b + Enc(R_a·R_b) + encode(U_a·U_b) − R_s1.
            let t3 = matmul_plain_weights(enc_rc_a, ub, eval, encoder, keys)
                .expect("galois keys provisioned");
            assert_eq!(t3.layout, enc_ab.layout, "triple layout mismatch");
            let mut e1_cts = Vec::with_capacity(t3.cts.len());
            for (a, b) in t3.cts.iter().zip(&enc_ab.cts) {
                e1_cts.push(eval.add(a, b));
            }
            let e1 = PackedMatrix { layout: t3.layout.clone(), cts: e1_cts };
            let uaub = ua.matmul(ring, ub);
            let e1 = add_plain_matrix(&e1, &uaub, eval, encoder);
            let e1 = sub_plain_matrix(&e1, &server.rs1, eval, encoder);
            send_packed(transport, &e1);
            // E2 = Enc(R_bᵀ)·U_aᵀ − R_s2  (= (U_a·R_b)ᵀ − R_s2).
            let y = matmul_plain_weights(enc_rc_bt, &ua.transpose(), eval, encoder, keys)
                .expect("galois keys provisioned");
            let e2 = sub_plain_matrix(&y, &server.rs2, eval, encoder);
            send_packed(transport, &e2);
        }
        Triple::Zr { enc_a, enc_bt, enc_ab, s1, s2 } => {
            let [la, lb] = zr_layouts(dims, encoder.slot_count());
            // E1 region (i,j) partials: R_a[i,l]·U_b[l,j] — mask rows are
            // indexed by the replica j, so the mask matrix is U_bᵀ.
            let masks = la.mask_slots(&ub.transpose());
            let uaub = la.grid_origin_slots(&ua.matmul(ring, ub));
            let blind = la.flat_slots(s1);
            let e1 = rayon::par_iter_chunks(la.num_cts, |c| {
                let prod = eval
                    .mul_plain(&enc_a[c], &eval.prepare_mul_plain(&encoder.encode(&masks[c])));
                let sum = eval.add(&prod, &enc_ab[c]);
                let sum = eval.add_plain(&sum, &encoder.encode(&uaub[c]));
                eval.sub_plain(&sum, &encoder.encode(&blind[c]))
            });
            send_cts(transport, &e1);
            // E2 region (j,i) partials: R_bᵀ[j,l]·U_a[i,l] — replica-
            // indexed by i, so the mask matrix is U_a itself.
            let masks = lb.mask_slots(ua);
            let blind = lb.flat_slots(s2);
            let e2 = rayon::par_iter_chunks(lb.num_cts, |c| {
                let prod = eval
                    .mul_plain(&enc_bt[c], &eval.prepare_mul_plain(&encoder.encode(&masks[c])));
                eval.sub_plain(&prod, &encoder.encode(&blind[c]))
            });
            send_cts(transport, &e2);
        }
    }
    server.rs1.add(ring, &server.rs2.transpose())
}

/// Client online: decrypts both flights and assembles its share
/// `dec(E1) + dec(E2)ᵀ` (plaintext transpose; in zero-rotation mode the
/// decryption is a region-summing grid read).
///
/// # Errors
///
/// [`primer_he::HeError::Malformed`] on a corrupt reply flight.
pub fn client_online(
    client: &FhgsClient,
    ring: &Ring,
    ctx: &HeContext,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    transport: &dyn Transport,
) -> Result<MatZ, primer_he::HeError> {
    let dims = client.dims;
    match client.mode {
        FhgsMode::Diagonal(packing) => {
            let simd = encoder.row_size();
            let e1 = recv_packed(
                transport,
                ctx,
                matmul_out_layout(packing, dims.n, dims.k, dims.m, simd),
            )?;
            let e2 = recv_packed(
                transport,
                ctx,
                matmul_out_layout(packing, dims.m, dims.k, dims.n, simd),
            )?;
            let a1 = crate::packing::decrypt_matrix(&e1, encoder, encryptor);
            let y = crate::packing::decrypt_matrix(&e2, encoder, encryptor);
            Ok(a1.add(ring, &y.transpose()))
        }
        FhgsMode::ZeroRotation => {
            let [la, lb] = zr_layouts(dims, encoder.slot_count());
            let e1 = recv_cts(transport, ctx)?;
            let e2 = recv_cts(transport, ctx)?;
            if e1.len() != la.num_cts || e2.len() != lb.num_cts {
                return Err(primer_he::HeError::Malformed { what: "zero-rotation reply count" });
            }
            let a1 = la.decrypt_grid(&e1, ring, encoder, encryptor);
            let y = lb.decrypt_grid(&e2, ring, encoder, encryptor);
            Ok(a1.add(ring, &y.transpose()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_he::{HeParams, KeyGenerator};
    use primer_math::rng::seeded;
    use primer_net::run_two_party;
    use std::sync::Arc;

    /// End-to-end FHGS: shares reconstruct A·B exactly with additive-only
    /// HE (no ct–ct multiplications ever issued), in every triple mode.
    #[test]
    fn fhgs_shares_reconstruct_ct_ct_product() {
        for mode in [
            FhgsMode::Diagonal(Packing::TokensFirst),
            FhgsMode::Diagonal(Packing::FeatureBased),
            FhgsMode::ZeroRotation,
        ] {
            let ctx = HeContext::new(HeParams::toy());
            let ring = Ring::new(ctx.params().t());
            let mut rng = seeded(250);
            let kg = KeyGenerator::new(&ctx, &mut rng);
            let sk = kg.secret_key().clone();
            let simd = ctx.params().row_size();
            let keys = Arc::new(kg.galois_keys_pow2(
                &[1, 4, 8, simd - 1, simd - 4, simd - 8],
                false,
                &mut rng,
            ));
            let dims = FhgsDims { n: 4, k: 6, m: 5 };
            let a = MatZ::from_fn(dims.n, dims.k, |i, j| ((i * 13 + j * 3) % 50) as u64);
            let b = MatZ::from_fn(dims.k, dims.m, |i, j| ((i * 7 + j * 17) % 50) as u64);

            let (ctx_c, ctx_s) = (ctx.clone(), ctx.clone());
            let (a_c, b_c) = (a.clone(), b.clone());
            let keys_s = Arc::clone(&keys);

            let (client_share, server_share, _) = run_two_party(
                move |t| {
                    let encoder = BatchEncoder::new(&ctx_c);
                    let encryptor = Encryptor::new(&ctx_c, sk, 251);
                    let ring = Ring::new(ctx_c.params().t());
                    let pre = client_offline(
                        &ring, mode, dims, &encoder, &encryptor, &t, &mut seeded(252),
                    );
                    // Online: server must hold U_a, U_b.
                    let ua = a_c.sub(&ring, &pre.rc_a);
                    let ub = b_c.sub(&ring, &pre.rc_b);
                    crate::wire::send_matrix(&t, &ua);
                    crate::wire::send_matrix(&t, &ub);
                    client_online(&pre, &ring, &ctx_c, &encoder, &encryptor, &t)
                        .expect("in-process flight")
                },
                move |t| {
                    let encoder = BatchEncoder::new(&ctx_s);
                    let eval = Evaluator::new(&ctx_s);
                    let ring = Ring::new(ctx_s.params().t());
                    let pre = server_offline(
                        &ring, mode, dims, &ctx_s, &encoder, &t, &mut seeded(253),
                    )
                    .expect("in-process flight");
                    let ua = crate::wire::recv_matrix(&t).expect("in-process flight");
                    let ub = crate::wire::recv_matrix(&t).expect("in-process flight");
                    let share =
                        server_online(&pre, &ring, &ua, &ub, &encoder, &eval, &keys_s, &t);
                    // FHGS never multiplies two ciphertexts.
                    assert_eq!(eval.counts().mul_ct, 0);
                    if mode == FhgsMode::ZeroRotation {
                        // …and the zero-rotation triple never rotates.
                        assert_eq!(eval.counts().rotations, 0, "ZR triple rotated");
                    }
                    share
                },
            );
            let got = client_share.add(&ring, &server_share);
            assert_eq!(got, a.matmul(&ring, &b), "{mode:?}");
        }
    }

    /// The server's share equals the row sums of the full-slot masks —
    /// i.e. the client's region sums are exactly cancelled.
    #[test]
    fn zr_share_masks_are_flat_row_sums() {
        let ring = Ring::new(97);
        let dims = FhgsDims { n: 2, k: 3, m: 2 };
        let s1 = MatZ::from_fn(dims.n * dims.m, dims.k, |i, j| ((i * 5 + j) % 97) as u64);
        let s2 = MatZ::from_fn(dims.m * dims.n, dims.k, |i, j| ((i * 7 + j * 2) % 97) as u64);
        let server =
            server_accept_zr(&ring, dims, [Vec::new(), Vec::new(), Vec::new()], s1.clone(), s2);
        assert_eq!(
            server.rs1[(1, 1)],
            s1.row(dims.m + 1).iter().fold(0u64, |acc, &v| ring.add(acc, v))
        );
    }
}
