//! Symmetric encryption, decryption and noise measurement.
//!
//! Only the client ever encrypts in the Primer protocols (Gazelle-style),
//! so secret-key encryption suffices — fresh ciphertexts are also
//! seed-compressible on the wire, halving upload bandwidth.

use crate::cipher::{Ciphertext, Plaintext};
use crate::context::HeContext;
use crate::counters::{OpCounters, OpCounts};
use crate::keys::SecretKey;
use crate::poly::RnsPoly;
use crate::u256::U256;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Client-side encryptor/decryptor holding the secret key.
///
/// The encryption rng sits behind a mutex so one encryptor can serve a
/// session's offline-producer thread and online thread concurrently (the
/// masks cancel exactly, so encryption randomness never affects results).
#[derive(Debug)]
pub struct Encryptor {
    ctx: HeContext,
    sk: SecretKey,
    rng: Mutex<StdRng>,
    counters: OpCounters,
}

impl Encryptor {
    /// Creates an encryptor with a deterministic randomness seed.
    pub fn new(ctx: &HeContext, sk: SecretKey, seed: u64) -> Self {
        Self {
            ctx: ctx.clone(),
            sk,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            counters: OpCounters::new(),
        }
    }

    /// Operation counters (encrypt/decrypt).
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Snapshot of the counters.
    pub fn counts(&self) -> OpCounts {
        self.counters.snapshot()
    }

    /// Encrypts a plaintext: `(Δm + e − a·s, a)` with uniform `a`,
    /// drawing randomness from the encryptor's own (mutex-guarded) rng.
    pub fn encrypt(&self, pt: &Plaintext) -> Ciphertext {
        let mut rng = self.rng.lock().expect("encryptor rng mutex poisoned");
        self.encrypt_with(pt, &mut *rng)
    }

    /// Encrypts with caller-provided randomness. The parallel offline
    /// producers fork one deterministic rng per bundle ([`Self::fork_rng`])
    /// and encrypt that bundle's flights from it, so the ciphertext
    /// stream is bit-identical at every thread count (the shared-rng
    /// path would interleave draws in scheduling order).
    pub fn encrypt_with<R: rand::Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        // Two forward transforms: the seeded `a` and the body `Δm + e`.
        self.counters.bump(|c| {
            c.encrypt += 1;
            c.ntt += 2;
        });
        let ctx = &self.ctx;
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        let a = Ciphertext::a_from_seed(ctx, &seed);
        let mut c0 = RnsPoly::scale_plain_to_q(ctx, pt.coeffs());
        let e = RnsPoly::gaussian(ctx, ctx.params().sigma(), rng);
        c0.add_assign(ctx, &e);
        c0.to_ntt(ctx);
        let mut a_s = a.clone();
        a_s.mul_pointwise_assign(ctx, self.sk.s_ntt());
        c0.sub_assign(ctx, &a_s);
        Ciphertext::new(vec![c0, a], Some(seed))
    }

    /// Forks a deterministic child rng off the encryptor's stream (one
    /// shared-rng draw). Child streams are a function of the encryptor
    /// seed and the fork order alone, so forking once per offline bundle
    /// — in bundle order, before any parallel work — yields encryption
    /// randomness independent of worker scheduling.
    pub fn fork_rng(&self) -> StdRng {
        let mut rng = self.rng.lock().expect("encryptor rng mutex poisoned");
        StdRng::seed_from_u64(rand::Rng::gen(&mut *rng))
    }

    /// Decrypts a size-2 or size-3 ciphertext.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        self.counters.bump(|c| {
            c.decrypt += 1;
            c.ntt += 1;
        });
        let v = self.inner_product(ct);
        let ctx = &self.ctx;
        let t = ctx.params().t() as u128;
        let q = ctx.q();
        let n = ctx.n();
        let mut msg = vec![0u64; n];
        for (k, m) in msg.iter_mut().enumerate() {
            let residues: Vec<u64> = (0..ctx.num_primes()).map(|i| v.residues(i)[k]).collect();
            let composed = ctx.crt_compose(&residues);
            let (negative, mag) = ctx.center_q(composed);
            let m_abs = U256::mul_u128(t, mag).div_round_u128(q) % t;
            *m = if negative && m_abs != 0 { (t - m_abs) as u64 } else { m_abs as u64 };
        }
        Plaintext::from_coeffs(msg)
    }

    /// Remaining noise budget in bits: `log2(q/(2t)) − log2(‖v −
    /// round(q·m/t)‖∞)`, clamped at zero. A ciphertext decrypts correctly
    /// while this is positive.
    pub fn noise_budget(&self, ct: &Ciphertext) -> f64 {
        let ctx = &self.ctx;
        let pt = self.decrypt(ct);
        let v = self.inner_product(ct);
        let reference = RnsPoly::scale_plain_to_q(ctx, pt.coeffs());
        let n = ctx.n();
        let mut worst: u128 = 1;
        for k in 0..n {
            // residual = v − round(q·m/t) computed per prime, composed.
            let residues: Vec<u64> = (0..ctx.num_primes())
                .map(|i| {
                    let m = ctx.moduli()[i];
                    m.sub(v.residues(i)[k], reference.residues(i)[k])
                })
                .collect();
            let (_, mag) = ctx.center_q(ctx.crt_compose(&residues));
            worst = worst.max(mag);
        }
        let budget = (ctx.delta() as f64).log2() - 1.0 - (worst as f64).log2();
        budget.max(0.0)
    }

    /// `v = c0 + c1·s (+ c2·s²)` in coefficient form.
    fn inner_product(&self, ct: &Ciphertext) -> RnsPoly {
        let ctx = &self.ctx;
        let mut v = ct.part(0).clone();
        let mut c1s = ct.part(1).clone();
        c1s.mul_pointwise_assign(ctx, self.sk.s_ntt());
        v.add_assign(ctx, &c1s);
        if ct.size() == 3 {
            let mut c2s2 = ct.part(2).clone();
            c2s2.mul_pointwise_assign(ctx, self.sk.s2_ntt());
            v.add_assign(ctx, &c2s2);
        }
        v.to_coeff(ctx);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BatchEncoder;
    use crate::keys::KeyGenerator;
    use crate::params::HeParams;
    use primer_math::rng::seeded;

    fn setup(params: HeParams) -> (HeContext, BatchEncoder, Encryptor) {
        let ctx = HeContext::new(params);
        let enc = BatchEncoder::new(&ctx);
        let mut rng = seeded(40);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let e = Encryptor::new(&ctx, kg.secret_key().clone(), 41);
        (ctx, enc, e)
    }

    #[test]
    fn encrypt_decrypt_roundtrip_toy() {
        let (ctx, enc, e) = setup(HeParams::toy());
        let t = ctx.params().t();
        let vals: Vec<u64> = (0..ctx.n() as u64).map(|v| v * 37 % t).collect();
        let ct = e.encrypt(&enc.encode(&vals));
        assert_eq!(enc.decode(&e.decrypt(&ct)), vals);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_two_primes() {
        let (ctx, enc, e) = setup(HeParams::test_2k());
        let t = ctx.params().t();
        let vals: Vec<u64> = (0..ctx.n() as u64).map(|v| (v * v + 3) % t).collect();
        let ct = e.encrypt(&enc.encode(&vals));
        assert_eq!(enc.decode(&e.decrypt(&ct)), vals);
    }

    #[test]
    fn fresh_noise_budget_is_deep() {
        let (_ctx, enc, e) = setup(HeParams::test_2k());
        let ct = e.encrypt(&enc.encode(&[1, 2, 3]));
        let budget = e.noise_budget(&ct);
        assert!(budget > 50.0, "budget {budget}");
    }

    #[test]
    fn counters_track_operations() {
        let (_ctx, enc, e) = setup(HeParams::toy());
        let ct = e.encrypt(&enc.encode(&[9]));
        let _ = e.decrypt(&ct);
        let c = e.counts();
        assert_eq!(c.encrypt, 1);
        assert_eq!(c.decrypt, 1);
    }
}
