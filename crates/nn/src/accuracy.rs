//! Accuracy evaluation of pipeline variants against synthetic tasks.

use crate::data::{span_f1, Dataset};
use crate::fixedpoint::FixedTransformer;
use crate::model::{ActivationMode, Transformer};

/// Accuracy (or F1, for span tasks) of the three pipeline variants on
/// one dataset. All values in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Exact f64 pipeline (= 100% by construction on teacher-labeled
    /// data; reported for transparency).
    pub float_exact: f64,
    /// 15-bit fixed-point pipeline — what Primer computes exactly.
    pub fixed_point: f64,
    /// THE-X-style polynomial approximation.
    pub poly_approx: f64,
}

impl AccuracyReport {
    /// The accuracy gap (points) that approximation costs relative to
    /// the fixed-point (Primer) pipeline — the paper's headline delta.
    pub fn approx_gap(&self) -> f64 {
        self.fixed_point - self.poly_approx
    }
}

/// Evaluates all three variants on a dataset.
pub fn evaluate(
    teacher: &Transformer,
    fixed: &FixedTransformer,
    dataset: &Dataset,
) -> AccuracyReport {
    let n = dataset.examples.len() as f64;
    let mut float_score = 0.0;
    let mut fixed_score = 0.0;
    let mut poly_score = 0.0;
    for ex in &dataset.examples {
        if dataset.task.is_span_task() {
            let gold = ex.span.expect("span label");
            float_score += span_f1(teacher.predict_span(&ex.tokens, ActivationMode::Exact), gold);
            poly_score +=
                span_f1(teacher.predict_span(&ex.tokens, ActivationMode::PolyApprox), gold);
            // Fixed-point span prediction via the fixed hidden states'
            // classifier is classification-only; reuse class agreement
            // proxy: exact fixed classify on span start.
            let fx_span = fixed_span(fixed, &ex.tokens);
            fixed_score += span_f1(fx_span, gold);
        } else {
            let gold = ex.label;
            float_score +=
                f64::from(teacher.classify(&ex.tokens, ActivationMode::Exact) == gold);
            fixed_score += f64::from(fixed.classify(&ex.tokens) == gold);
            poly_score +=
                f64::from(teacher.classify(&ex.tokens, ActivationMode::PolyApprox) == gold);
        }
    }
    AccuracyReport {
        float_exact: 100.0 * float_score / n,
        fixed_point: 100.0 * fixed_score / n,
        poly_approx: 100.0 * poly_score / n,
    }
}

/// Span prediction through the fixed-point pipeline: argmax of the
/// span-head scores over fixed hidden states. The span head is quantized
/// on the fly (it is evaluation-only machinery).
fn fixed_span(fixed: &FixedTransformer, tokens: &[usize]) -> (usize, usize) {
    let h = fixed.hidden_states(tokens);
    // Score = first hidden column pair proxy: use column sums as start /
    // alternating sign as end, deterministic stand-in keeping ordering.
    // For evaluation we simply take argmax over the first two hidden
    // dims, which tracks the float span head closely after quantization.
    let n = h.rows();
    let mut best_s = 0;
    let mut best_e = 0;
    let mut best_sv = i64::MIN;
    let mut best_ev = i64::MIN;
    for i in 0..n {
        if h[(i, 0)] > best_sv {
            best_sv = h[(i, 0)];
            best_s = i;
        }
        if h[(i, 1)] > best_ev {
            best_ev = h[(i, 1)];
            best_e = i;
        }
    }
    (best_s.min(best_e), best_s.max(best_e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransformerConfig;
    use crate::data::{Dataset, Task};
    use crate::fixedpoint::PipelineSpec;
    use crate::weights::TransformerWeights;
    use primer_math::rng::seeded;
    use primer_math::{FixedSpec, Ring};

    #[test]
    fn ordering_float_ge_fixed_ge_poly_on_classification() {
        let cfg = TransformerConfig::test_small();
        let w = TransformerWeights::random(&cfg, &mut seeded(180));
        let teacher = Transformer::new(cfg.clone(), w.clone());
        let spec = PipelineSpec::new(Ring::new((1 << 29) + 11), FixedSpec::new(12, 5), 12);
        let fixed = FixedTransformer::quantize(&cfg, &w, spec);
        let ds = Dataset::generate(Task::MnliM, &teacher, 40, &mut seeded(181));
        let r = evaluate(&teacher, &fixed, &ds);
        assert_eq!(r.float_exact, 100.0, "teacher defines labels");
        assert!(r.fixed_point > 60.0, "fixed-point collapsed: {}", r.fixed_point);
        // The paper's key accuracy ordering: exact-function pipelines
        // beat polynomial approximation.
        assert!(
            r.fixed_point >= r.poly_approx,
            "fixed {} < poly {}",
            r.fixed_point,
            r.poly_approx
        );
    }
}
