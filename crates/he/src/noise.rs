//! Worst-case additive noise accounting for the BFV evaluator.
//!
//! Every ciphertext decrypts as `c(s) = Δ·m + v (mod q)` and stays
//! correct while `‖v‖∞ < Δ/2`. [`NoiseModel`] tracks a **worst-case
//! bound** on `log2 ‖v‖∞` through the operations the Primer protocols
//! use, so layout decisions (input-rotation diagonals trade rotations
//! for key-switch noise that then gets multiplied by masks) can be
//! gated *analytically*, per parameter profile, before any ciphertext
//! exists. All quantities are log2 magnitudes ("bits"); composition is
//! exact log-domain addition, not max, so bounds never under-count.
//!
//! The model is validated by decrypt-and-measure: the measured residual
//! of a real ciphertext ([`crate::Encryptor::noise_budget`] reports
//! `budget_bits − log2‖v‖∞`) must stay at or below the bound. Measured
//! noise is typically far below it — random masks accumulate like a
//! random walk (`√n`) while the bound charges the full `n` — which is
//! exactly what makes the bound safe to gate on.
//!
//! Per-operation bounds (`n` ring degree, `t` plaintext modulus, `w`
//! digit width, `D` total key-switch digits, `B_err = 6σ`):
//!
//! * fresh symmetric encryption: `v = e`, bound `B_err`;
//! * ciphertext add: sum of bounds;
//! * plaintext add: `+ t` (the `m + m'` wrap contributes `q mod t < t`);
//! * rotation (key switch): `+ D·n·2^w·B_err`;
//! * plaintext multiply by a centered-lifted mask `M` (`‖M‖∞ ≤ t/2`):
//!   `n·‖M‖·bound + n·t²/4` — the first term is the input noise carried
//!   through the negacyclic convolution, the second the `Δ·t`-wrap of
//!   the plaintext product (`(q mod t)·k` with `k ≤ n·‖m‖·‖M‖/t`).

use crate::keys::digits_for_prime;
use crate::params::HeParams;

/// Log-domain worst-case noise bounds for one parameter set.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// `log2 n`.
    n_bits: f64,
    /// `log2 t`.
    t_bits: f64,
    /// `log2 B_err` with `B_err = 6σ` (the standard high-probability
    /// bound on a discrete-Gaussian coefficient).
    err_bits: f64,
    /// Key-switch digit width `w`.
    digit_width: u32,
    /// Total digits `D` across all RNS primes.
    digit_total: u32,
    /// `log2 Δ` with `Δ = ⌊q/t⌋`.
    delta_bits: f64,
}

/// `log2(2^a + 2^b)` — exact log-domain addition of magnitudes.
fn log2_add(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + (lo - hi).exp2()).log2()
}

impl NoiseModel {
    /// Builds the model for a parameter set.
    pub fn new(params: &HeParams) -> Self {
        let w = params.decomp_bits();
        let digit_total: u32 =
            params.moduli().iter().map(|&q| digits_for_prime(q, w)).sum();
        let delta = params.q() / params.t() as u128;
        Self {
            n_bits: (params.n() as f64).log2(),
            t_bits: (params.t() as f64).log2(),
            err_bits: (6.0 * params.sigma()).log2(),
            digit_width: w,
            digit_total,
            delta_bits: (delta as f64).log2(),
        }
    }

    /// Bound on a fresh symmetric encryption's noise.
    pub fn fresh_bits(&self) -> f64 {
        self.err_bits
    }

    /// Total key-switch digits `D` across all RNS primes — the number of
    /// inner products one rotation (or one hoisted apply) performs, used
    /// by layout cost models to price rotations in NTT units.
    pub fn digit_total(&self) -> u32 {
        self.digit_total
    }

    /// The additive noise of one key switch (one elementary rotation):
    /// `D·n·2^w·B_err`. This is what the input-rotation layout multiplies
    /// by masks — the reason it needs a budget gate at all.
    pub fn key_switch_bits(&self) -> f64 {
        (self.digit_total as f64).log2() + self.n_bits + self.digit_width as f64 + self.err_bits
    }

    /// Bound after rotating a ciphertext whose bound is `input_bits`.
    pub fn rotated_bits(&self, input_bits: f64) -> f64 {
        log2_add(input_bits, self.key_switch_bits())
    }

    /// Bound after multiplying by a centered-lifted plaintext mask
    /// (`‖M‖∞ ≤ t/2`): carried input noise plus the `Δ·t`-wrap term.
    pub fn mul_plain_bits(&self, input_bits: f64) -> f64 {
        let carried = input_bits + self.n_bits + self.t_bits - 1.0;
        let wrap = self.n_bits + 2.0 * self.t_bits - 2.0;
        log2_add(carried, wrap)
    }

    /// Bound after adding a plaintext (the slot-wise `m + m'` wrap
    /// contributes at most `q mod t < t`).
    pub fn add_plain_bits(&self, input_bits: f64) -> f64 {
        log2_add(input_bits, self.t_bits)
    }

    /// Bound on the sum of two ciphertexts with the given bounds.
    pub fn add_bits(a: f64, b: f64) -> f64 {
        log2_add(a, b)
    }

    /// Bound on the sum of `count` ciphertexts sharing one bound.
    pub fn sum_bits(term_bits: f64, count: u64) -> f64 {
        if count == 0 {
            return f64::NEG_INFINITY;
        }
        term_bits + (count as f64).log2()
    }

    /// The decryption budget: noise below `Δ/2` decrypts correctly, so a
    /// chain whose bound stays under this many bits is safe.
    pub fn budget_bits(&self) -> f64 {
        self.delta_bits - 1.0
    }

    /// Converts [`crate::Encryptor::noise_budget`]'s *remaining budget*
    /// into the measured noise magnitude (`log2 ‖v‖∞`) it corresponds
    /// to, for comparison against an estimate. `noise_budget` clamps at
    /// zero, so a fully-drowned ciphertext measures as the whole budget.
    pub fn measured_bits(&self, remaining_budget: f64) -> f64 {
        self.budget_bits() - remaining_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::HeContext;
    use crate::encoder::BatchEncoder;
    use crate::encryptor::Encryptor;
    use crate::eval::Evaluator;
    use crate::keys::KeyGenerator;
    use primer_math::rng::seeded;

    fn all_profiles() -> Vec<HeParams> {
        vec![
            HeParams::toy(),
            HeParams::test_2k(),
            HeParams::test_2k_wide(),
            HeParams::paper_8k(),
        ]
    }

    /// Decrypt-and-measure: the worst-case bound must dominate the
    /// measured noise of real ciphertexts at every stage of a
    /// rotate-mask-accumulate chain, on every parameter profile.
    #[test]
    fn bound_dominates_measured_noise_on_all_profiles() {
        for params in all_profiles() {
            let ctx = HeContext::new(params.clone());
            let model = NoiseModel::new(&params);
            let enc = BatchEncoder::new(&ctx);
            let mut rng = seeded(60);
            let kg = KeyGenerator::new(&ctx, &mut rng);
            let encr = Encryptor::new(&ctx, kg.secret_key().clone(), 61);
            let eval = Evaluator::new(&ctx);
            let gk = kg.galois_keys(&[3], false, &mut rng);
            let t = params.t();
            let vals: Vec<u64> = (0..ctx.n() as u64).map(|v| (v * 31 + 5) % t).collect();
            let mask: Vec<u64> = (0..ctx.n() as u64).map(|v| (v * 17 + 2) % t).collect();

            let ct = encr.encrypt(&enc.encode(&vals));
            let measured = model.measured_bits(encr.noise_budget(&ct));
            assert!(
                measured <= model.fresh_bits(),
                "fresh: measured {measured:.1} > bound {:.1} (n={})",
                model.fresh_bits(),
                params.n()
            );

            let rot = eval.rotate_rows(&ct, 3, &gk).expect("key present");
            let rot_bound = model.rotated_bits(model.fresh_bits());
            let measured = model.measured_bits(encr.noise_budget(&rot));
            assert!(
                measured <= rot_bound,
                "rotated: measured {measured:.1} > bound {rot_bound:.1} (n={})",
                params.n()
            );

            let mp = eval.prepare_mul_plain(&enc.encode(&mask));
            let prod = eval.mul_plain(&rot, &mp);
            let prod_bound = model.mul_plain_bits(rot_bound);
            let measured = model.measured_bits(encr.noise_budget(&prod));
            assert!(
                measured <= prod_bound,
                "masked: measured {measured:.1} > bound {prod_bound:.1} (n={})",
                params.n()
            );

            // A short accumulation chain, as the matmul drivers run it.
            let mut acc = eval.zero_ciphertext();
            for _ in 0..4 {
                eval.mul_plain_accumulate(&mut acc, &rot, &mp);
            }
            let acc_bound = NoiseModel::sum_bits(prod_bound, 4);
            let measured = model.measured_bits(encr.noise_budget(&acc));
            assert!(
                measured <= acc_bound,
                "accumulated: measured {measured:.1} > bound {acc_bound:.1} (n={})",
                params.n()
            );
        }
    }

    #[test]
    fn budget_orders_profiles_sensibly() {
        // The wide test profile exists precisely because it has more
        // headroom than toy; the model must reflect that.
        let toy = NoiseModel::new(&HeParams::toy());
        let wide = NoiseModel::new(&HeParams::test_2k_wide());
        assert!(wide.budget_bits() > toy.budget_bits());
        // On toy, a single masked *rotated* term already exceeds the
        // budget (the gate that keeps input-rotation off that profile).
        let term = toy.mul_plain_bits(toy.rotated_bits(toy.fresh_bits()));
        assert!(term > toy.budget_bits(), "term {term:.1} vs budget {:.1}", toy.budget_bits());
        // On the wide profile the same term leaves real headroom.
        let term = wide.mul_plain_bits(wide.rotated_bits(wide.fresh_bits()));
        assert!(
            term < wide.budget_bits(),
            "term {term:.1} vs budget {:.1}",
            wide.budget_bits()
        );
    }

    #[test]
    fn log2_add_is_exact_on_equal_magnitudes() {
        assert!((log2_add(10.0, 10.0) - 11.0).abs() < 1e-9);
        assert!(log2_add(20.0, 0.0) > 20.0);
        assert!(log2_add(20.0, 0.0) < 20.001);
        assert_eq!(NoiseModel::sum_bits(5.0, 0), f64::NEG_INFINITY);
    }
}
