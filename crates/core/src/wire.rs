//! Transport framing for ciphertext batches, ring matrices and key
//! material.
//!
//! Every receive in this module is `Result`-typed: flights arrive from
//! the network, so truncated or forged bytes must surface as
//! [`HeError::Malformed`] and fail the *session* (the serving worker
//! maps the error to a closed connection), never panic the process.
//! Header fields (counts, dimensions) are validated against the actual
//! byte length — with overflow-checked arithmetic — before any slicing
//! or allocation sized by them.

use crate::packing::{Layout, PackedMatrix};
use primer_he::{Ciphertext, GaloisKeys, HeContext, HeError};
use primer_math::MatZ;
use primer_net::Transport;

/// Sends a batch of ciphertexts as one message.
pub fn send_cts(t: &dyn Transport, cts: &[Ciphertext]) {
    let mut out = Vec::new();
    out.extend_from_slice(&(cts.len() as u32).to_le_bytes());
    for ct in cts {
        out.extend_from_slice(&ct.to_bytes());
    }
    t.send_owned(out);
}

/// Receives a batch of ciphertexts.
///
/// # Errors
///
/// [`HeError::Malformed`] on a truncated header, truncated or corrupt
/// ciphertext bytes, or a forged count pointing past the flight. The
/// output vector grows one decoded ciphertext at a time, so a forged
/// count cannot trigger a huge up-front allocation either.
pub fn recv_cts(t: &dyn Transport, ctx: &HeContext) -> Result<Vec<Ciphertext>, HeError> {
    let bytes = t.recv();
    if bytes.len() < 4 {
        return Err(HeError::Malformed { what: "ciphertext batch header" });
    }
    let count = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte slice")) as usize;
    let mut off = 4;
    let mut cts = Vec::new();
    for _ in 0..count {
        let (ct, used) = Ciphertext::from_bytes(ctx, &bytes[off..])?;
        off += used;
        cts.push(ct);
    }
    Ok(cts)
}

/// Sends a packed matrix (layout is public and known to both sides, so
/// only the ciphertexts travel).
pub fn send_packed(t: &dyn Transport, m: &PackedMatrix) {
    send_cts(t, &m.cts);
}

/// Receives a packed matrix into a known layout.
///
/// # Errors
///
/// [`HeError::Malformed`] as [`recv_cts`], or if the decoded ciphertext
/// count does not match the layout both sides agreed on.
pub fn recv_packed(
    t: &dyn Transport,
    ctx: &HeContext,
    layout: Layout,
) -> Result<PackedMatrix, HeError> {
    let cts = recv_cts(t, ctx)?;
    if cts.len() != layout.num_cts {
        return Err(HeError::Malformed { what: "packed matrix ciphertext count" });
    }
    Ok(PackedMatrix { layout, cts })
}

/// Sends a ring matrix in the clear (shares and masked values only!).
pub fn send_matrix(t: &dyn Transport, m: &MatZ) {
    let mut out = Vec::with_capacity(16 + m.rows() * m.cols() * 8);
    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
    for v in m.iter() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    t.send_owned(out);
}

/// Receives a ring matrix.
///
/// # Errors
///
/// [`HeError::Malformed`] on a truncated header or a `rows × cols`
/// (overflow-checked) that does not match the payload length.
pub fn recv_matrix(t: &dyn Transport) -> Result<MatZ, HeError> {
    let bytes = t.recv();
    if bytes.len() < 8 {
        return Err(HeError::Malformed { what: "matrix header" });
    }
    let rows = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte slice")) as usize;
    let cols = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice")) as usize;
    let elems = rows
        .checked_mul(cols)
        .ok_or(HeError::Malformed { what: "matrix dimensions" })?;
    let need = elems
        .checked_mul(8)
        .and_then(|b| b.checked_add(8))
        .ok_or(HeError::Malformed { what: "matrix dimensions" })?;
    if bytes.len() != need {
        return Err(HeError::Malformed { what: "matrix payload length" });
    }
    let mut data = Vec::with_capacity(elems);
    for i in 0..elems {
        let s = 8 + i * 8;
        data.push(u64::from_le_bytes(bytes[s..s + 8].try_into().expect("8-byte slice")));
    }
    Ok(MatZ::from_vec(rows, cols, data))
}

/// Sends the client's Galois keys as real serialized bytes (the one-time
/// Setup flight; the server reconstructs them with [`recv_galois_keys`]).
pub fn send_galois_keys(t: &dyn Transport, keys: &GaloisKeys) {
    t.send_owned(keys.to_bytes());
}

/// Receives and deserializes Galois keys sent by [`send_galois_keys`].
///
/// # Errors
///
/// [`HeError::Malformed`] on truncated or corrupt key bytes — this is
/// the first flight a server decodes from an untrusted peer, so it must
/// fail soft (the serving worker maps it to a failed session, not a
/// crash).
pub fn recv_galois_keys(t: &dyn Transport, ctx: &HeContext) -> Result<GaloisKeys, HeError> {
    GaloisKeys::from_bytes(ctx, &t.recv())
}

/// Sends `len` placeholder bytes — used by the simulated GC mode to
/// account for garbled-table traffic without performing the garbling.
pub fn send_placeholder(t: &dyn Transport, len: usize) {
    t.send_owned(vec![0u8; len]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_math::rng::seeded;
    use primer_math::Ring;
    use primer_net::run_two_party;

    #[test]
    fn galois_keys_roundtrip_over_transport() {
        use primer_he::{HeContext, HeParams, KeyGenerator};
        let ctx = HeContext::new(HeParams::toy());
        let mut rng = seeded(231);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let gk = kg.galois_keys(&[1, 2], false, &mut rng);
        let size = gk.serialized_size();
        let ctx_s = ctx.clone();
        let (_, received, meter) = run_two_party(
            move |t| send_galois_keys(&t, &gk),
            move |t| recv_galois_keys(&t, &ctx_s).expect("well-formed keys"),
        );
        assert_eq!(received.steps(), &[1, 2]);
        // Metered traffic reflects the real key bytes, not a placeholder.
        assert_eq!(meter.c2s.bytes(), size as u64);
    }

    #[test]
    fn matrix_roundtrip() {
        let ring = Ring::new(65537);
        let m = MatZ::random(&ring, 3, 5, &mut seeded(230));
        let m2 = m.clone();
        let (got, _, _) = run_two_party(
            move |t| recv_matrix(&t).expect("well-formed matrix"),
            move |t| send_matrix(&t, &m2),
        );
        assert_eq!(got, m);
    }

    /// Every way an attacker can mangle a matrix flight must come back
    /// as `Malformed`, never a panic (mirrors the `RnsPoly::read_bytes`
    /// hardening from the previous PR).
    #[test]
    fn forged_matrix_flights_are_malformed_not_panics() {
        use primer_he::HeError;
        let recv_forged = |payload: Vec<u8>| {
            let (got, _, _) = run_two_party(
                move |t| recv_matrix(&t),
                move |t| t.send_owned(payload),
            );
            got
        };
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("empty flight", vec![]),
            ("truncated header", vec![1, 0, 0]),
            ("header only, rows*cols > 0", {
                let mut b = Vec::new();
                b.extend_from_slice(&3u32.to_le_bytes());
                b.extend_from_slice(&5u32.to_le_bytes());
                b
            }),
            ("payload short one element", {
                let mut b = Vec::new();
                b.extend_from_slice(&2u32.to_le_bytes());
                b.extend_from_slice(&2u32.to_le_bytes());
                b.extend_from_slice(&[0u8; 3 * 8]);
                b
            }),
            ("payload longer than rows*cols", {
                let mut b = Vec::new();
                b.extend_from_slice(&1u32.to_le_bytes());
                b.extend_from_slice(&1u32.to_le_bytes());
                b.extend_from_slice(&[0u8; 2 * 8]);
                b
            }),
            ("rows*cols overflows usize", {
                let mut b = Vec::new();
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                b.extend_from_slice(&[0u8; 8]);
                b
            }),
        ];
        for (what, payload) in cases {
            let got = recv_forged(payload);
            assert!(
                matches!(got, Err(HeError::Malformed { .. })),
                "{what}: expected Malformed, got {got:?}"
            );
        }
    }

    /// Truncated and forged ciphertext batches fail soft mid-session.
    #[test]
    fn forged_ciphertext_flights_are_malformed_not_panics() {
        use primer_he::{BatchEncoder, Encryptor, HeContext, HeParams, KeyGenerator};
        let ctx = HeContext::new(HeParams::toy());
        let mut rng = seeded(232);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encr = Encryptor::new(&ctx, kg.secret_key().clone(), 77);
        let ct = encr.encrypt(&BatchEncoder::new(&ctx).encode(&[1, 2, 3]));
        let good = {
            let mut b = Vec::new();
            b.extend_from_slice(&1u32.to_le_bytes());
            b.extend_from_slice(&ct.to_bytes());
            b
        };

        let recv_forged = |payload: Vec<u8>, ctx: HeContext| {
            let (got, _, _) = run_two_party(
                move |t| recv_cts(&t, &ctx),
                move |t| t.send_owned(payload),
            );
            got
        };
        let truncated = good[..good.len() - 5].to_vec();
        let forged_count = {
            let mut b = good.clone();
            b[..4].copy_from_slice(&9u32.to_le_bytes());
            b
        };
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("empty flight", vec![]),
            ("truncated header", vec![2, 0]),
            ("count with no payload", 4u32.to_le_bytes().to_vec()),
            ("truncated ciphertext", truncated),
            ("forged count past the flight", forged_count),
        ];
        for (what, payload) in cases {
            let got = recv_forged(payload, ctx.clone());
            assert!(
                matches!(got, Err(primer_he::HeError::Malformed { .. })),
                "{what}: expected Malformed, got ciphertext batch of {:?}",
                got.map(|cts| cts.len())
            );
        }
        // Sanity: the well-formed flight still decodes.
        let ok = recv_forged(good, ctx);
        assert_eq!(ok.expect("well-formed flight").len(), 1);
    }
}
