//! Property-based tests of the HE scheme's homomorphisms.

use primer_he::{BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator};
use primer_math::rng::seeded;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

struct Fixture {
    ctx: HeContext,
    encoder: BatchEncoder,
    encryptor: Encryptor,
    eval: Evaluator,
    keys: primer_he::GaloisKeys,
}

thread_local! {
    static FX: Fixture = {
        let ctx = HeContext::new(HeParams::toy());
        let encoder = BatchEncoder::new(&ctx);
        let mut rng = seeded(900);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 901);
        let eval = Evaluator::new(&ctx);
        let keys = kg.galois_keys_pow2(&[], false, &mut rng);
        Fixture { ctx, encoder, encryptor, eval, keys }
    };
}

fn with_fixture(
    body: impl FnOnce(&Fixture) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    FX.with(|fx| body(fx))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Enc/Dec is the identity on arbitrary slot vectors.
    #[test]
    fn encrypt_decrypt_roundtrip(seed in 0u64..10_000) {
        with_fixture(|f| {
            let t = f.ctx.params().t();
            let mut rng = seeded(seed);
            let vals: Vec<u64> =
                (0..64).map(|_| rand::Rng::gen_range(&mut rng, 0..t)).collect();
            let ct = f.encryptor.encrypt(&f.encoder.encode(&vals));
            let got = f.encoder.decode(&f.encryptor.decrypt(&ct));
            prop_assert_eq!(&got[..64], &vals[..]);
            Ok(())
        })?;
    }

    /// Dec(Enc(a) + Enc(b)) == a + b mod t, slot-wise.
    #[test]
    fn addition_homomorphism(seed in 0u64..10_000) {
        with_fixture(|f| {
            let t = f.ctx.params().t();
            let mut rng = seeded(seed ^ 0xA);
            let a: Vec<u64> = (0..32).map(|_| rand::Rng::gen_range(&mut rng, 0..t)).collect();
            let b: Vec<u64> = (0..32).map(|_| rand::Rng::gen_range(&mut rng, 0..t)).collect();
            let ca = f.encryptor.encrypt(&f.encoder.encode(&a));
            let cb = f.encryptor.encrypt(&f.encoder.encode(&b));
            let got = f.encoder.decode(&f.encryptor.decrypt(&f.eval.add(&ca, &cb)));
            for i in 0..32 {
                prop_assert_eq!(got[i], (a[i] + b[i]) % t);
            }
            Ok(())
        })?;
    }

    /// Dec(Enc(a) ⊙ pt) == a·w mod t for bounded weights.
    #[test]
    fn plain_mult_homomorphism(seed in 0u64..10_000) {
        with_fixture(|f| {
            let t = f.ctx.params().t();
            let mut rng = seeded(seed ^ 0xB);
            let a: Vec<u64> =
                (0..32).map(|_| rand::Rng::gen_range(&mut rng, 0..1000)).collect();
            let w: Vec<u64> =
                (0..32).map(|_| rand::Rng::gen_range(&mut rng, 0..1000)).collect();
            let ca = f.encryptor.encrypt(&f.encoder.encode(&a));
            let mp = f.eval.prepare_mul_plain(&f.encoder.encode(&w));
            let got = f.encoder.decode(&f.encryptor.decrypt(&f.eval.mul_plain(&ca, &mp)));
            for i in 0..32 {
                prop_assert_eq!(got[i], a[i] * w[i] % t);
            }
            Ok(())
        })?;
    }

    /// Rotation by any step permutes slots cyclically per row.
    #[test]
    fn rotation_permutes(step in 1usize..511) {
        with_fixture(|f| {
            let rs = f.encoder.row_size();
            let vals: Vec<u64> = (0..2 * rs as u64).map(|v| v % 997).collect();
            let ct = f.encryptor.encrypt(&f.encoder.encode(&vals));
            let rot = f.eval.rotate_rows(&ct, step, &f.keys).expect("pow2 coverage");
            let got = f.encoder.decode(&f.encryptor.decrypt(&rot));
            for i in 0..rs {
                prop_assert_eq!(got[i], vals[(i + step) % rs]);
                prop_assert_eq!(got[rs + i], vals[rs + (i + step) % rs]);
            }
            Ok(())
        })?;
    }

    /// Serialization roundtrips ciphertexts exactly (fresh + evaluated).
    #[test]
    fn ciphertext_serialization_roundtrip(seed in 0u64..10_000) {
        with_fixture(|f| {
            let mut rng = seeded(seed ^ 0xC);
            let t = f.ctx.params().t();
            let vals: Vec<u64> =
                (0..16).map(|_| rand::Rng::gen_range(&mut rng, 0..t)).collect();
            let fresh = f.encryptor.encrypt(&f.encoder.encode(&vals));
            let evaluated = f.eval.add(&fresh, &fresh);
            for ct in [fresh, evaluated] {
                let bytes = ct.to_bytes();
                prop_assert_eq!(bytes.len(), ct.serialized_size());
                let (back, used) =
                    primer_he::Ciphertext::from_bytes(&f.ctx, &bytes).expect("roundtrip");
                prop_assert_eq!(used, bytes.len());
                prop_assert_eq!(back, ct);
            }
            Ok(())
        })?;
    }

    /// Truncating serialized ciphertext bytes anywhere yields a decode
    /// error — never a panic (the serving boundary depends on this).
    #[test]
    fn truncated_ciphertext_bytes_error_cleanly(cut_seed in 0u64..10_000) {
        with_fixture(|f| {
            let ct = f.encryptor.encrypt(&f.encoder.encode(&[1, 2, 3]));
            let bytes = ct.to_bytes();
            let mut rng = seeded(cut_seed);
            let cut = rand::Rng::gen_range(&mut rng, 0..bytes.len());
            prop_assert!(primer_he::Ciphertext::from_bytes(&f.ctx, &bytes[..cut]).is_err());
            Ok(())
        })?;
    }
}

/// NTT invariants per modulus profile (DESIGN.md §10): the evaluation
/// domain the whole pipeline now lives in is exactly the negacyclic
/// convolution algebra, for every RNS prime of every parameter profile.
mod ntt_invariants {
    use super::*;
    use primer_he::ntt::NttTables;

    fn profiles() -> [HeParams; 3] {
        [HeParams::toy(), HeParams::test_2k(), HeParams::test_2k_wide()]
    }

    fn tables_for(params: &HeParams) -> Vec<NttTables> {
        HeContext::new(params.clone()).ntt().to_vec()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// forward ∘ inverse == id on random residue vectors, for every
        /// RNS prime of every profile.
        #[test]
        fn forward_inverse_roundtrip(seed in 0u64..10_000) {
            for params in profiles() {
                for tbl in tables_for(&params) {
                    let p = tbl.modulus().value();
                    let mut rng = seeded(seed ^ p);
                    let orig: Vec<u64> = (0..tbl.len())
                        .map(|_| rand::Rng::gen_range(&mut rng, 0..p))
                        .collect();
                    let mut a = orig.clone();
                    tbl.forward(&mut a);
                    tbl.inverse(&mut a);
                    prop_assert_eq!(a, orig, "profile n={} prime {}", params.n(), p);
                }
            }
        }

        /// NTT-domain pointwise multiplication equals the negacyclic
        /// coefficient convolution (`Z_p[x]/(x^n+1)`), checked against a
        /// schoolbook product on sparse polynomials so the check stays
        /// O(k·n) at full ring degree.
        #[test]
        fn pointwise_mul_is_negacyclic_convolution(seed in 0u64..10_000) {
            const TERMS: usize = 5;
            for params in profiles() {
                for tbl in tables_for(&params) {
                    let n = tbl.len();
                    let m = tbl.modulus();
                    let p = m.value();
                    let mut rng = seeded(seed ^ p ^ 0xD1);
                    let mut a = vec![0u64; n];
                    let mut b = vec![0u64; n];
                    for _ in 0..TERMS {
                        a[rand::Rng::gen_range(&mut rng, 0..n)] =
                            rand::Rng::gen_range(&mut rng, 0..p);
                        b[rand::Rng::gen_range(&mut rng, 0..n)] =
                            rand::Rng::gen_range(&mut rng, 0..p);
                    }
                    // Schoolbook negacyclic product over the sparse terms.
                    let mut want = vec![0u64; n];
                    for (i, &ai) in a.iter().enumerate().filter(|(_, &v)| v != 0) {
                        for (j, &bj) in b.iter().enumerate().filter(|(_, &v)| v != 0) {
                            let prod = m.mul(ai, bj);
                            let k = i + j;
                            if k < n {
                                want[k] = m.add(want[k], prod);
                            } else {
                                want[k - n] = m.sub(want[k - n], prod);
                            }
                        }
                    }
                    let (mut fa, mut fb) = (a.clone(), b.clone());
                    tbl.forward(&mut fa);
                    tbl.forward(&mut fb);
                    let mut fc: Vec<u64> =
                        fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
                    tbl.inverse(&mut fc);
                    prop_assert_eq!(fc, want, "profile n={} prime {}", params.n(), p);
                }
            }
        }

        /// The NTT-domain Galois permutation equals the coefficient-form
        /// automorphism conjugated by the transform, for every profile
        /// and both row-rotation and column-swap elements — the exact
        /// invariant hoisted rotations rely on.
        #[test]
        fn galois_perm_conjugates_automorphism(step in 1usize..100) {
            use primer_he::poly::RnsPoly;
            for params in profiles() {
                let ctx = HeContext::new(params);
                let n = ctx.n();
                let s = step % (n / 2);
                prop_assume!(s != 0);
                let elements =
                    [primer_he::galois::element_for_row_step(n, s), 2 * n as u64 - 1];
                let mut rng = seeded(step as u64 ^ 0xE3);
                let poly = RnsPoly::uniform(&ctx, &mut rng);
                for g in elements {
                    let mut via_coeff = poly.apply_automorphism(&ctx, g);
                    via_coeff.to_ntt(&ctx);
                    let mut p_ntt = poly.clone();
                    p_ntt.to_ntt(&ctx);
                    let via_perm = p_ntt.permute_ntt(&ctx, &ctx.galois_perm(g));
                    prop_assert_eq!(&via_perm, &via_coeff, "n={} element {}", n, g);
                }
            }
        }
    }
}
