//! Non-blocking pre-admission connection driver.
//!
//! `primer_serve`'s event loop owns every connection that has not yet
//! been admitted to a worker slot: freshly accepted sockets waiting for
//! their hello, queued sessions waiting for a free slot, and one-shot
//! stats pollers. None of those may cost a thread (crates.io being
//! unreachable, there is no mio — this is a hand-rolled readiness loop
//! over `std::net` + `set_nonblocking`), so [`NbConn`] parses the same
//! `[channel: u8][len: u32 LE][payload]` framing as [`crate::tcp`]
//! incrementally out of a per-connection read buffer, and writes typed
//! replies (welcome, busy, stats) through a per-connection write buffer
//! drained as the socket accepts bytes.
//!
//! When a connection is admitted, [`NbConn::into_blocking`] switches the
//! socket back to blocking mode and returns any bytes read beyond the
//! consumed frames; [`crate::tcp::TcpConnection::from_stream_with_preface`]
//! replays them so the threaded reader starts exactly where the event
//! loop stopped.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use crate::tcp::NUM_CHANNELS;

/// Frame-size bound shared with the threaded reader (1 GiB).
const MAX_FRAME_LEN: u32 = 1 << 30;

/// Pre-admission frames are small (hello, stats request): a corrupt or
/// hostile length prefix above this fails the connection before any
/// allocation — an un-admitted peer never gets to stage a 1 GiB buffer.
const MAX_PREADMIT_FRAME: u32 = 1 << 20;

/// How much to read per readiness poll.
const READ_CHUNK: usize = 16 * 1024;

/// A non-blocking connection the event loop drives by polling.
#[derive(Debug)]
pub struct NbConn {
    stream: TcpStream,
    peer: SocketAddr,
    read_buf: Vec<u8>,
    write_buf: VecDeque<u8>,
    /// When this connection was accepted — the event loop's handshake
    /// deadline is measured from here.
    opened: Instant,
    eof: bool,
}

impl NbConn {
    /// Adopts an accepted stream into non-blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from configure.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(Self {
            stream,
            peer,
            read_buf: Vec::new(),
            write_buf: VecDeque::new(),
            opened: Instant::now(),
            eof: false,
        })
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// When the connection was accepted.
    pub fn opened(&self) -> Instant {
        self.opened
    }

    /// Reads whatever the socket has and parses at most one complete
    /// frame from the head of the read buffer.
    ///
    /// Returns `Ok(Some((channel, payload)))` when a frame completed,
    /// `Ok(None)` when more bytes are needed (including would-block).
    ///
    /// # Errors
    ///
    /// Socket errors, EOF before a complete frame, or corrupt framing
    /// (bad channel, oversized pre-admission length) — all of which
    /// mean the connection should be dropped.
    pub fn poll_frame(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        self.fill_read_buf()?;
        if self.read_buf.len() < 5 {
            if self.eof {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed before a complete frame",
                ));
            }
            return Ok(None);
        }
        let channel = self.read_buf[0];
        let len = u32::from_le_bytes(self.read_buf[1..5].try_into().expect("4 bytes"));
        if usize::from(channel) >= NUM_CHANNELS || len > MAX_FRAME_LEN {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt framing"));
        }
        if len > MAX_PREADMIT_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "pre-admission frame too large",
            ));
        }
        let total = 5 + len as usize;
        if self.read_buf.len() < total {
            if self.eof {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            return Ok(None);
        }
        let payload = self.read_buf[5..total].to_vec();
        self.read_buf.drain(..total);
        Ok(Some((channel, payload)))
    }

    fn fill_read_buf(&mut self) -> io::Result<()> {
        if self.eof {
            return Ok(());
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Stages one frame on the write buffer (flushed by [`NbConn::flush`]).
    pub fn queue_frame(&mut self, channel: u8, payload: &[u8]) {
        assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64, "frame too large");
        let mut header = [0u8; 5];
        header[0] = channel;
        header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        self.write_buf.extend(header);
        self.write_buf.extend(payload);
    }

    /// Writes as much buffered output as the socket accepts right now.
    ///
    /// Returns `true` once the write buffer is fully drained.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (the connection should be dropped).
    pub fn flush(&mut self) -> io::Result<bool> {
        while !self.write_buf.is_empty() {
            let (head, _) = self.write_buf.as_slices();
            match self.stream.write(head) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => {
                    self.write_buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Whether buffered output is still waiting on the socket.
    pub fn has_queued_output(&self) -> bool {
        !self.write_buf.is_empty()
    }

    /// Switches the socket back to blocking mode for admission, handing
    /// back any bytes read past the consumed frames so the threaded
    /// reader can replay them.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from configure.
    pub fn into_blocking(self) -> io::Result<(TcpStream, Vec<u8>)> {
        debug_assert!(
            self.write_buf.is_empty(),
            "admitting a connection with unflushed output would reorder frames"
        );
        self.stream.set_nonblocking(false)?;
        Ok((self.stream, self.read_buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpConnection;
    use crate::transport::Transport;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    fn send_frame(stream: &mut TcpStream, channel: u8, payload: &[u8]) {
        let mut buf = vec![channel];
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload);
        stream.write_all(&buf).expect("write frame");
    }

    #[test]
    fn parses_frames_incrementally() {
        let (mut client, server) = pair();
        let mut nb = NbConn::new(server).expect("nbconn");
        assert!(nb.poll_frame().expect("poll").is_none());
        send_frame(&mut client, 2, b"hello");
        // Poll until the kernel delivers the bytes.
        let frame = loop {
            if let Some(f) = nb.poll_frame().expect("poll") {
                break f;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(frame, (2, b"hello".to_vec()));
        assert!(nb.poll_frame().expect("poll").is_none());
    }

    #[test]
    fn leftover_bytes_replay_through_preface() {
        let (mut client, server) = pair();
        let mut nb = NbConn::new(server).expect("nbconn");
        // Two frames arrive back to back; the loop consumes only the
        // first before admitting the connection.
        send_frame(&mut client, 2, b"hello");
        send_frame(&mut client, 0, b"setup-flight");
        let first = loop {
            if let Some(f) = nb.poll_frame().expect("poll") {
                break f;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(first.0, 2);
        // Wait for the second frame's bytes to be buffered too, so the
        // preface (not the live socket) must carry them.
        loop {
            nb.fill_read_buf().expect("fill");
            if nb.read_buf.len() >= 5 + 12 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let (stream, leftover) = nb.into_blocking().expect("into_blocking");
        assert!(!leftover.is_empty());
        let mut conn =
            TcpConnection::from_stream_with_preface(stream, false, leftover).expect("conn");
        let t0 = conn.take_channel(0);
        assert_eq!(t0.recv(), b"setup-flight".to_vec());
    }

    #[test]
    fn corrupt_framing_is_an_error() {
        let (mut client, server) = pair();
        let mut nb = NbConn::new(server).expect("nbconn");
        client.write_all(&[9u8, 1, 0, 0, 0, 42]).expect("write"); // channel 9 invalid
        let err = loop {
            match nb.poll_frame() {
                Ok(Some(_)) => panic!("corrupt frame parsed"),
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn queued_output_flushes() {
        let (client, server) = pair();
        let mut nb = NbConn::new(server).expect("nbconn");
        nb.queue_frame(2, b"busy");
        while !nb.flush().expect("flush") {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut conn = TcpConnection::from_stream(client, true).expect("conn");
        let t = conn.take_channel(2);
        assert_eq!(t.recv(), b"busy".to_vec());
    }
}
