//! Beaver multiplication triples over `Z_t`.
//!
//! FHGS (the paper's contribution) *is* an HE-assisted Beaver-style
//! precomputation specialized to matrix products; this module provides
//! the generic dealer-mode triples used as a correctness reference and by
//! the GC layer's multiplication tests.

use primer_math::{MatZ, Ring};
use rand::Rng;

/// One party's share of a matrix Beaver triple `(A, B, C = A·B)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleShare {
    /// Share of A (shape `m × k`).
    pub a: MatZ,
    /// Share of B (shape `k × n`).
    pub b: MatZ,
    /// Share of C = A·B (shape `m × n`).
    pub c: MatZ,
}

/// Dealer-mode generation of a matrix triple: returns the two parties'
/// shares of random `A (m×k)`, `B (k×n)` and `C = A·B`.
pub fn deal_matrix_triple<R: Rng + ?Sized>(
    ring: &Ring,
    m: usize,
    k: usize,
    n: usize,
    rng: &mut R,
) -> (TripleShare, TripleShare) {
    let a = MatZ::random(ring, m, k, rng);
    let b = MatZ::random(ring, k, n, rng);
    let c = a.matmul(ring, &b);
    let (a0, a1) = crate::shares::share_matrix(ring, &a, rng);
    let (b0, b1) = crate::shares::share_matrix(ring, &b, rng);
    let (c0, c1) = crate::shares::share_matrix(ring, &c, rng);
    (TripleShare { a: a0, b: b0, c: c0 }, TripleShare { a: a1, b: b1, c: c1 })
}

/// Local step of Beaver matrix multiplication: given this party's shares
/// of `X`, `Y`, the public openings `E = X − A`, `F = Y − B`, and the
/// triple share, produces this party's share of `X·Y`.
///
/// Party 0 additionally adds the public `E·F` term.
pub fn beaver_combine(
    ring: &Ring,
    party0: bool,
    e: &MatZ,
    f: &MatZ,
    triple: &TripleShare,
) -> MatZ {
    // share(XY) = share(C) + E·share(B) + share(A)·F (+ E·F for one party)
    let mut out = triple.c.add(ring, &e.matmul(ring, &triple.b));
    out = out.add(ring, &triple.a.matmul(ring, f));
    if party0 {
        out = out.add(ring, &e.matmul(ring, f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shares::{open_matrix, share_matrix};
    use primer_math::rng::seeded;

    #[test]
    fn dealer_triple_is_consistent() {
        let ring = Ring::new(1_000_003);
        let mut rng = seeded(80);
        let (t0, t1) = deal_matrix_triple(&ring, 3, 4, 2, &mut rng);
        let a = open_matrix(&ring, &t0.a, &t1.a);
        let b = open_matrix(&ring, &t0.b, &t1.b);
        let c = open_matrix(&ring, &t0.c, &t1.c);
        assert_eq!(a.matmul(&ring, &b), c);
    }

    #[test]
    fn beaver_multiplication_is_exact() {
        let ring = Ring::new(65537);
        let mut rng = seeded(81);
        let x = MatZ::random(&ring, 3, 4, &mut rng);
        let y = MatZ::random(&ring, 4, 5, &mut rng);
        let (x0, x1) = share_matrix(&ring, &x, &mut rng);
        let (y0, y1) = share_matrix(&ring, &y, &mut rng);
        let (t0, t1) = deal_matrix_triple(&ring, 3, 4, 5, &mut rng);

        // Both parties open E = X − A and F = Y − B.
        let e = open_matrix(&ring, &x0.sub(&ring, &t0.a), &x1.sub(&ring, &t1.a));
        let f = open_matrix(&ring, &y0.sub(&ring, &t0.b), &y1.sub(&ring, &t1.b));

        let z0 = beaver_combine(&ring, true, &e, &f, &t0);
        let z1 = beaver_combine(&ring, false, &e, &f, &t1);
        assert_eq!(open_matrix(&ring, &z0, &z1), x.matmul(&ring, &y));
    }
}
