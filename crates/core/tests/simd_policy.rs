//! `PRIMER_SIMD` validation at config assembly.
//!
//! Lives in its own integration binary because it mutates the
//! process-global environment: the core unit tests run threads that
//! call `SystemConfig::test_profile` concurrently, and a bad
//! `PRIMER_SIMD` set from another thread would poison them. A
//! dedicated test binary is a dedicated process.

use primer_core::{ConfigError, SystemConfig};
use primer_nn::TransformerConfig;

#[test]
fn typoed_simd_policy_is_a_typed_setup_error() {
    let model = TransformerConfig::test_tiny();

    // Every valid value assembles — the explicit tier names plus the
    // legacy on/off spellings.
    for good in ["auto", "scalar", "avx2", "avx512", "0", "off", "1", "on", "AVX2", " auto "] {
        std::env::set_var("PRIMER_SIMD", good);
        assert!(
            SystemConfig::test_profile(&model).is_ok(),
            "valid policy {good:?} must assemble"
        );
    }

    // A typo is rejected at assembly — a typed error naming the value,
    // not a panic deep inside the first kernel dispatch.
    std::env::set_var("PRIMER_SIMD", "avx215");
    let err = SystemConfig::test_profile(&model).expect_err("typo must be rejected");
    assert_eq!(err, ConfigError::InvalidSimdPolicy { value: "avx215".into() });
    let msg = err.to_string();
    assert!(msg.contains("avx215") && msg.contains("PRIMER_SIMD"), "unhelpful message: {msg}");

    // Unset means auto (widest supported tier).
    std::env::remove_var("PRIMER_SIMD");
    assert!(SystemConfig::test_profile(&model).is_ok());
}
