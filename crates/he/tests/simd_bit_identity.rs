//! Cross-tier bit-identity (DESIGN.md §11): the SIMD lane width is a
//! pure performance knob — every vectorized kernel must produce the
//! exact canonical residues the scalar reference produces, for every
//! RNS prime and the plain modulus of every parameter profile, at every
//! dispatch tier (scalar / AVX2 / AVX-512, the latter taking the IFMA
//! product sub-path where the CPU has it). On a machine without a tier
//! the level degrades to the widest supported one, so the suite stays
//! green (and partially vacuous) there.

use primer_he::modulus::Modulus;
use primer_he::ntt::NttTables;
use primer_he::simd::{self, SimdLevel};
use primer_he::{HeContext, HeParams};
use primer_math::rng::seeded;
use proptest::prelude::*;
use rand::Rng;

fn profiles() -> [HeParams; 3] {
    [HeParams::toy(), HeParams::test_2k(), HeParams::test_2k_wide()]
}

/// Every modulus the pipeline reduces by: each profile's RNS primes
/// plus its plaintext modulus.
fn profile_moduli() -> Vec<Modulus> {
    let mut out = Vec::new();
    for params in profiles() {
        let ctx = HeContext::new(params.clone());
        for tbl in ctx.ntt() {
            out.push(tbl.modulus());
        }
        out.push(Modulus::new(params.t()));
    }
    out.sort_by_key(Modulus::value);
    out.dedup_by_key(|m| m.value());
    out
}

fn rand_residues(rng: &mut rand::rngs::StdRng, p: u64, len: usize) -> Vec<u64> {
    (0..len).map(|_| rng.gen_range(0..p)).collect()
}

/// The tiers above scalar. Each degrades to the widest supported one on
/// CPUs that lack it, so comparing every entry against scalar is safe
/// everywhere and exhaustive on AVX-512 hosts.
const VECTOR_LEVELS: [SimdLevel; 2] = [SimdLevel::Avx2, SimdLevel::Avx512];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All slice kernels agree between forced-scalar and AVX2 on every
    /// modulus profile, including lengths that exercise both the vector
    /// body and the scalar remainder tail.
    #[test]
    fn slice_kernels_bit_identical(seed in 0u64..10_000, len in 1usize..67) {
        for m in profile_moduli() {
            let p = m.value();
            let mut rng = seeded(seed ^ p);
            let a = rand_residues(&mut rng, p, len);
            let b = rand_residues(&mut rng, p, len);
            let acc = rand_residues(&mut rng, p, len);
            let w = rng.gen_range(1..p);
            let ws = (((w as u128) << 64) / p as u128) as u64;

            let run = |lvl: SimdLevel| {
                let mut r_add = a.clone();
                simd::add_mod(m, &mut r_add, &b, lvl);
                let mut r_sub = a.clone();
                simd::sub_mod(m, &mut r_sub, &b, lvl);
                let mut r_neg = a.clone();
                simd::neg_mod(m, &mut r_neg, lvl);
                let mut r_mul = a.clone();
                simd::mul_mod(m, &mut r_mul, &b, lvl);
                let mut r_fma = acc.clone();
                simd::add_mul_mod(m, &mut r_fma, &a, &b, lvl);
                let mut r_shoup = a.clone();
                simd::mul_shoup_slice(p, w, ws, &mut r_shoup, lvl);
                (r_add, r_sub, r_neg, r_mul, r_fma, r_shoup)
            };
            let want = run(SimdLevel::Scalar);
            for lvl in VECTOR_LEVELS {
                prop_assert_eq!(&want, &run(lvl), "modulus {} len {} {:?}", p, len, lvl);
            }
        }
    }

    /// Butterfly kernels agree lane-for-lane, including the boundary
    /// residues `0` and `p − 1` mixed into random data.
    #[test]
    fn butterfly_kernels_bit_identical(seed in 0u64..10_000, len in 1usize..67) {
        for m in profile_moduli() {
            let p = m.value();
            let mut rng = seeded(seed ^ p ^ 0xB7);
            let mut lo = rand_residues(&mut rng, p, len);
            let mut hi = rand_residues(&mut rng, p, len);
            lo[0] = 0;
            hi[0] = p - 1;
            let w = rng.gen_range(1..p);
            let ws = (((w as u128) << 64) / p as u128) as u64;

            for fwd in [true, false] {
                let run = |lvl: SimdLevel| {
                    let (mut l, mut h) = (lo.clone(), hi.clone());
                    if fwd {
                        simd::forward_butterflies(p, w, ws, &mut l, &mut h, lvl);
                    } else {
                        simd::inverse_butterflies(p, w, ws, &mut l, &mut h, lvl);
                    }
                    (l, h)
                };
                let want = run(SimdLevel::Scalar);
                for lvl in VECTOR_LEVELS {
                    prop_assert_eq!(
                        &want,
                        &run(lvl),
                        "modulus {} len {} fwd {} {:?}",
                        p,
                        len,
                        fwd,
                        lvl
                    );
                }
            }
        }
    }

    /// Whole-transform bit-identity: `forward_at`/`inverse_at` pinned at
    /// each level produce identical vectors (and still round-trip), for
    /// every RNS prime of every profile at full ring degree.
    #[test]
    fn ntt_transforms_bit_identical(seed in 0u64..10_000) {
        for params in profiles() {
            let ctx = HeContext::new(params.clone());
            for tbl in ctx.ntt() {
                let p = tbl.modulus().value();
                let mut rng = seeded(seed ^ p ^ 0xF0);
                let orig = rand_residues(&mut rng, p, tbl.len());

                let mut f_scalar = orig.clone();
                tbl.forward_at(&mut f_scalar, SimdLevel::Scalar);
                for lvl in VECTOR_LEVELS {
                    let mut f_vec = orig.clone();
                    tbl.forward_at(&mut f_vec, lvl);
                    prop_assert_eq!(&f_scalar, &f_vec, "forward n={} p={} {:?}", tbl.len(), p, lvl);

                    // Cross levels on the way back: any divergence hiding
                    // in either direction breaks the round-trip.
                    let mut back = f_vec;
                    tbl.inverse_at(&mut back, SimdLevel::Scalar);
                    prop_assert_eq!(&back, &orig, "{:?}→scalar roundtrip n={} p={}", lvl, tbl.len(), p);
                    let mut back = f_scalar.clone();
                    tbl.inverse_at(&mut back, lvl);
                    prop_assert_eq!(&back, &orig, "scalar→{:?} roundtrip n={} p={}", lvl, tbl.len(), p);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PR 10 kernels: key-switch digit extraction and index gather (the
    /// NTT-domain automorphism + encoder slot maps) agree across every
    /// tier, including the scalar remainder tail and every digit shift.
    #[test]
    fn digit_and_gather_kernels_bit_identical(seed in 0u64..10_000, len in 1usize..67, w in 1u32..23) {
        let mut rng = seeded(seed ^ 0xD1);
        let src: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
        let mask = ((1u128 << w) - 1) as u64;
        let mut shift = 0u32;
        while shift < 64 {
            let mut want = vec![0u64; len];
            simd::extract_digit(&src, shift, mask, &mut want, SimdLevel::Scalar);
            for lvl in VECTOR_LEVELS {
                let mut got = vec![0u64; len];
                simd::extract_digit(&src, shift, mask, &mut got, lvl);
                prop_assert_eq!(&want, &got, "shift {} width {} {:?}", shift, w, lvl);
            }
            shift += w;
        }

        let idx: Vec<u32> = (0..len).map(|_| rng.gen_range(0..len) as u32).collect();
        let mut want = vec![0u64; len];
        simd::gather(&src, &idx, &mut want, SimdLevel::Scalar);
        for lvl in VECTOR_LEVELS {
            let mut got = vec![0u64; len];
            simd::gather(&src, &idx, &mut got, lvl);
            prop_assert_eq!(&want, &got, "gather {:?}", lvl);
        }
    }

    /// Base-conversion kernels (centered lift, round(q·m/t) combine) are
    /// bit-identical across tiers for every profile's (t, q_i) pairs,
    /// with the boundary plaintext values 0, 1, t/2, t/2+1, t−1 mixed
    /// into random data.
    #[test]
    fn base_conversion_kernels_bit_identical(seed in 0u64..10_000, len in 5usize..67) {
        for params in profiles() {
            let ctx = HeContext::new(params.clone());
            let t = params.t();
            let mut rng = seeded(seed ^ t);
            let mut plain: Vec<u64> = (0..len).map(|_| rng.gen_range(0..t)).collect();
            plain[0] = 0;
            plain[1] = 1;
            plain[2] = t / 2;
            plain[3] = t / 2 + 1;
            plain[4] = t - 1;
            for m in ctx.moduli() {
                let p = m.value();
                let delta = rng.gen_range(1..p);
                let delta_shoup = (((delta as u128) << 64) / p as u128) as u64;
                let rt: Vec<u64> = (0..len).map(|_| rng.gen_range(0..t)).collect();

                let mut want_lift = vec![0u64; len];
                simd::lift_centered(p, t, &plain, &mut want_lift, SimdLevel::Scalar);
                let mut want_scale = vec![0u64; len];
                simd::scale_combine(
                    *m, delta, delta_shoup, &plain, &rt, &mut want_scale, SimdLevel::Scalar,
                );
                for lvl in VECTOR_LEVELS {
                    let mut got = vec![0u64; len];
                    simd::lift_centered(p, t, &plain, &mut got, lvl);
                    prop_assert_eq!(&want_lift, &got, "lift p {} {:?}", p, lvl);
                    let mut got = vec![0u64; len];
                    simd::scale_combine(*m, delta, delta_shoup, &plain, &rt, &mut got, lvl);
                    prop_assert_eq!(&want_scale, &got, "scale p {} {:?}", p, lvl);
                }
            }
        }
    }

    /// The fused dual-accumulator key-switch pass equals two independent
    /// scalar `add_mul_mod` passes at every tier, across all RNS limbs
    /// of a profile at once (the multi-limb interleave of DESIGN.md §11).
    #[test]
    fn fused_key_switch_accumulate_bit_identical(seed in 0u64..10_000, len in 1usize..67) {
        let ctx = HeContext::new(HeParams::test_2k_wide());
        let moduli = ctx.moduli().to_vec();
        let mut rng = seeded(seed ^ 0x4B);
        let draw = |rng: &mut rand::rngs::StdRng| -> Vec<Vec<u64>> {
            moduli.iter().map(|m| rand_residues(rng, m.value(), len)).collect()
        };
        let acc0_init = draw(&mut rng);
        let acc1_init = draw(&mut rng);
        let xs = draw(&mut rng);
        let bs = draw(&mut rng);
        let avs = draw(&mut rng);

        let mut want0 = acc0_init.clone();
        let mut want1 = acc1_init.clone();
        for (i, m) in moduli.iter().enumerate() {
            simd::add_mul_mod(*m, &mut want0[i], &xs[i], &bs[i], SimdLevel::Scalar);
            simd::add_mul_mod(*m, &mut want1[i], &xs[i], &avs[i], SimdLevel::Scalar);
        }

        for lvl in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
            let mut g0 = acc0_init.clone();
            let mut g1 = acc1_init.clone();
            let mut limbs: Vec<simd::KsLimb<'_>> = moduli
                .iter()
                .zip(g0.iter_mut())
                .zip(g1.iter_mut())
                .zip(&xs)
                .zip(&bs)
                .zip(&avs)
                .map(|(((((m, c0), c1), x), b), a)| simd::KsLimb {
                    m: *m,
                    acc0: c0,
                    acc1: c1,
                    x,
                    b,
                    a,
                })
                .collect();
            simd::ks_accumulate(&mut limbs, lvl);
            drop(limbs);
            prop_assert_eq!(&want0, &g0, "acc0 {:?}", lvl);
            prop_assert_eq!(&want1, &g1, "acc1 {:?}", lvl);
        }
    }
}

/// `Ntt::forward`/`inverse` reject mismatched slice lengths loudly (the
/// SIMD dispatch must not relax the precondition the scalar path
/// asserts).
#[test]
fn ntt_length_mismatch_panics() {
    let tbl = NttTables::new(16, Modulus::new(97));
    for lvl in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
        for len in [0usize, 8, 17] {
            let fwd = std::panic::catch_unwind(|| {
                let mut a = vec![1u64; len];
                tbl.forward_at(&mut a, lvl);
            });
            assert!(fwd.is_err(), "forward_at accepted len {len} at {lvl:?}");
            let inv = std::panic::catch_unwind(|| {
                let mut a = vec![1u64; len];
                tbl.inverse_at(&mut a, lvl);
            });
            assert!(inv.is_err(), "inverse_at accepted len {len} at {lvl:?}");
        }
    }
}
