//! Lock-light metrics: atomic counters, gauges and fixed log-bucket
//! latency histograms, handed out by name from a [`Registry`].
//!
//! The registry lock is only taken to *resolve a name to a handle*
//! (typically once per metric per owner, cached in a field); every
//! update after that is a single atomic RMW on the shared handle, so
//! hot paths never contend on the registry itself.
//!
//! Histograms bucket by powers of two (bucket `i ≥ 1` covers
//! `[2^(i-1), 2^i)`, bucket 0 is the value 0), which keeps recording to
//! one `leading_zeros` + one atomic increment and bounds the quantile
//! error of a snapshot to the bucket width: a reported p95 is exact to
//! within its power-of-two bracket, refined by linear interpolation and
//! clamped to the observed min/max. Values are unitless `u64`s; the
//! workspace convention is **nanoseconds** for latency histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (occupancy, queue depth, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (negative to decrease).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: bucket 0 for the value 0, bucket `i` for
/// `[2^(i-1), 2^i)` up to `i = 64` (which closes at `u64::MAX`).
const BUCKETS: usize = 65;

/// A fixed log-bucket histogram of `u64` observations (by convention,
/// latencies in nanoseconds). Recording is two relaxed atomic adds plus
/// one per-bucket increment; snapshots are taken live without stopping
/// writers (see [`Histogram::snapshot`] for the consistency contract).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index of a value.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The value range `[lo, hi]` a bucket covers.
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else {
        (1u64 << (i - 1), if i >= 64 { u64::MAX } else { (1u64 << i) - 1 })
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary with interpolated p50/p95/p99.
    ///
    /// Concurrent writers are not stopped: the summary is *torn-read
    /// consistent* — each field is individually correct at some instant
    /// during the call, but `count`/`sum`/quantiles may disagree by the
    /// handful of observations recorded while it ran. Good enough for a
    /// live `/stats` poll; never used to prove exact invariants.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let (min, max) = if count == 0 { (0, 0) } else { (min, max) };
        let q = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if seen + c >= rank {
                    let (lo, hi) = bucket_range(i);
                    let frac = (rank - seen) as f64 / c as f64;
                    let v = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                    return (v as u64).clamp(min, max);
                }
                seen += c;
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
        }
    }
}

/// A point-in-time histogram summary (see [`Histogram::snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Median, interpolated within its log bucket.
    pub p50: u64,
    /// 95th percentile, interpolated within its log bucket.
    pub p95: u64,
    /// 99th percentile, interpolated within its log bucket.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The **exact** `q`-quantile of an ascending-sorted sample set, by the
/// nearest-rank method — what `bench-json` reports for its per-iteration
/// latency vectors (small samples, where a log-bucket estimate would be
/// needlessly coarse).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile outside [0, 1]");
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One named metric handle (what a [`Registry`] stores).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named metrics registry. Clone the `Arc` handles out once and
/// update them lock-free; the map lock guards only name resolution and
/// whole-registry snapshots.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry mutex poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry mutex poisoned");
        match m.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry mutex poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    /// A point-in-time snapshot of every registered metric, in name
    /// order. Same torn-read consistency as [`Histogram::snapshot`]:
    /// the registry lock pins the *set* of metrics, not their values.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let m = self.metrics.lock().expect("registry mutex poisoned");
        RegistrySnapshot {
            metrics: m
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "a counter",
        Metric::Gauge(_) => "a gauge",
        Metric::Histogram(_) => "a histogram",
    }
}

/// One snapshotted metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of a whole [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs in name order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl RegistrySnapshot {
    /// Looks up a snapshotted value by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// A counter's value, or `None` if absent / not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// A gauge's value, or `None` if absent / not a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// A histogram's summary, or `None` if absent / not a histogram.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(*h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_accurate_and_ordered() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Exact rank values are 500 / 950 / 990; a log-bucket estimate
        // must land inside the bracketing power-of-two bucket.
        assert!((256..=511).contains(&s.p50), "p50 {}", s.p50);
        assert!((512..=1000).contains(&s.p95), "p95 {}", s.p95);
        assert!((512..=1000).contains(&s.p99), "p99 {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_single_value_is_exact() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        assert_eq!((s.min, s.max, s.p50, s.p95, s.p99), (42, 42, 42, 42, 42));
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn exact_sample_percentiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_of_sorted(&xs, 0.50), 50.0);
        assert_eq!(percentile_of_sorted(&xs, 0.95), 95.0);
        assert_eq!(percentile_of_sorted(&xs, 0.99), 99.0);
        assert_eq!(percentile_of_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&xs, 1.0), 100.0);
        assert_eq!(percentile_of_sorted(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn registry_hands_out_shared_handles_and_sorted_snapshots() {
        let reg = Registry::new();
        let a = reg.counter("he.rotations");
        let b = reg.counter("he.rotations");
        a.add(3);
        assert_eq!(b.get(), 3, "same name must be the same cell");
        reg.gauge("serve.workers.active").set(2);
        reg.histogram("phase.online.ns").record(100);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("he.rotations"), Some(3));
        assert_eq!(snap.gauge("serve.workers.active"), Some(2));
        assert_eq!(snap.histogram("phase.online.ns").map(|h| h.count), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
