//! On-disk format for suspended serving sessions.
//!
//! A suspend file is the serving-layer envelope around the engine's
//! [`primer_core::ServerSuspendImage`]: the header pins everything the
//! server must re-validate at resume (model identity, numeric profile,
//! layout fingerprint, negotiated pool, progress), followed by the raw
//! core image bytes (keys + unconsumed offline bundles).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [magic "PRSP"] [version u32 = 1]
//! [session_id u64] [profile u8] [weight_seed u64]
//! [model: name string, 7 dims u32]
//! [layout fingerprint string] [variant u8] [pool u32]
//! [booked u64] [served u64]
//! [offline PhaseCost: ns/bytes/msgs u64 ×3]
//! [online  PhaseCost: ns/bytes/msgs u64 ×3]
//! [traffic u64 ×4]
//! [core image bytes, length-prefixed u32]
//! ```
//!
//! **Consume-once contract:** the core image holds one-time mask
//! material — replaying it would reuse masks across two serving runs,
//! which is exactly what the privacy argument forbids. The server
//! therefore deletes the file *before* serving a resumed session, and a
//! resume that fails after the delete is a failed session, not a
//! retryable one.

use crate::proto::{profile_code, profile_from_code, put_string, put_u32, put_u64, Cursor, Profile, ProtoError};
use primer_core::{PhaseCost, ProtocolVariant};
use primer_net::TrafficSnapshot;
use primer_nn::TransformerConfig;
use std::time::Duration;

/// Magic prefix of a suspend file.
pub(crate) const FILE_MAGIC: [u8; 4] = *b"PRSP";

/// Version of the envelope (the core image carries its own version).
pub(crate) const FILE_VERSION: u32 = 1;

/// Everything the resume path re-validates before touching the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SuspendHeader {
    pub session_id: u64,
    pub profile: Profile,
    pub weight_seed: u64,
    pub model: TransformerConfig,
    /// Layout-plan fingerprint the session's plane was built under; a
    /// `PRIMER_LAYOUT` change between suspend and resume is a config
    /// mismatch, not a silently different wire schedule.
    pub fingerprint: String,
    pub variant: ProtocolVariant,
    /// The pool negotiated at the original handshake (production batch
    /// size shapes the wire schedule — it is not renegotiated).
    pub pool: u32,
    /// Queries the original hello booked.
    pub booked: u64,
    /// Queries served before suspension.
    pub served: u64,
    /// Accumulated offline phase cost at suspension.
    pub offline: PhaseCost,
    /// Accumulated online phase cost at suspension.
    pub online: PhaseCost,
    /// Accumulated per-query traffic at suspension.
    pub traffic: TrafficSnapshot,
}

fn put_phase_cost(out: &mut Vec<u8>, p: &PhaseCost) {
    put_u64(out, p.compute.as_nanos() as u64);
    put_u64(out, p.bytes);
    put_u64(out, p.messages);
}

fn get_phase_cost(c: &mut Cursor<'_>) -> Result<PhaseCost, ProtoError> {
    Ok(PhaseCost {
        compute: Duration::from_nanos(c.u64()?),
        bytes: c.u64()?,
        messages: c.u64()?,
    })
}

/// Serializes a suspend file.
pub(crate) fn encode_file(header: &SuspendHeader, image: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(image.len() + 256);
    out.extend_from_slice(&FILE_MAGIC);
    put_u32(&mut out, FILE_VERSION);
    put_u64(&mut out, header.session_id);
    out.push(profile_code(header.profile));
    put_u64(&mut out, header.weight_seed);
    let m = &header.model;
    put_string(&mut out, &m.name);
    for dim in [m.vocab, m.n_blocks, m.d_model, m.n_heads, m.n_tokens, m.d_ff, m.n_classes] {
        put_u32(&mut out, dim as u32);
    }
    put_string(&mut out, &header.fingerprint);
    out.push(crate::proto::variant_code(header.variant));
    put_u32(&mut out, header.pool);
    put_u64(&mut out, header.booked);
    put_u64(&mut out, header.served);
    put_phase_cost(&mut out, &header.offline);
    put_phase_cost(&mut out, &header.online);
    for v in [
        header.traffic.c2s_bytes,
        header.traffic.s2c_bytes,
        header.traffic.c2s_messages,
        header.traffic.s2c_messages,
    ] {
        put_u64(&mut out, v);
    }
    put_u32(&mut out, image.len() as u32);
    out.extend_from_slice(image);
    out
}

/// Parses a suspend file into its header and core image bytes.
///
/// # Errors
///
/// [`ProtoError`] on bad magic, an unknown envelope version, or
/// truncation.
pub(crate) fn decode_file(bytes: &[u8]) -> Result<(SuspendHeader, Vec<u8>), ProtoError> {
    let mut c = Cursor::new(bytes);
    let mut magic = [0u8; 4];
    magic.copy_from_slice(c.take(4)?);
    if magic != FILE_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = c.u32()?;
    if version != FILE_VERSION {
        return Err(ProtoError::VersionMismatch { theirs: version });
    }
    let session_id = c.u64()?;
    let profile = profile_from_code(c.u8()?)?;
    let weight_seed = c.u64()?;
    let name = c.string()?;
    let mut dims = [0usize; 7];
    for d in &mut dims {
        *d = c.u32()? as usize;
    }
    let [vocab, n_blocks, d_model, n_heads, n_tokens, d_ff, n_classes] = dims;
    let model = TransformerConfig { name, vocab, n_blocks, d_model, n_heads, n_tokens, d_ff, n_classes };
    let fingerprint = c.string()?;
    let variant = crate::proto::variant_from_code(c.u8()?)?;
    let pool = c.u32()?;
    let booked = c.u64()?;
    let served = c.u64()?;
    let offline = get_phase_cost(&mut c)?;
    let online = get_phase_cost(&mut c)?;
    let traffic = TrafficSnapshot {
        c2s_bytes: c.u64()?,
        s2c_bytes: c.u64()?,
        c2s_messages: c.u64()?,
        s2c_messages: c.u64()?,
    };
    let image_len = c.u32()? as usize;
    let image = c.take(image_len)?.to_vec();
    Ok((
        SuspendHeader {
            session_id,
            profile,
            weight_seed,
            model,
            fingerprint,
            variant,
            pool,
            booked,
            served,
            offline,
            online,
            traffic,
        },
        image,
    ))
}

/// The file name a session parks under.
pub(crate) fn file_name(session_id: u64) -> String {
    format!("session-{session_id}.suspend")
}

/// Parses a session id back out of a suspend file name (used at bind to
/// keep fresh session ids above every parked token).
pub(crate) fn parse_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("session-")?.strip_suffix(".suspend")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SuspendHeader {
        SuspendHeader {
            session_id: 42,
            profile: Profile::Test,
            weight_seed: 7,
            model: TransformerConfig::test_tiny(),
            fingerprint: "qkv:d/ff:d".into(),
            variant: ProtocolVariant::Fpc,
            pool: 2,
            booked: 4,
            served: 2,
            offline: PhaseCost { compute: Duration::from_nanos(11), bytes: 22, messages: 3 },
            online: PhaseCost { compute: Duration::from_nanos(44), bytes: 55, messages: 6 },
            traffic: TrafficSnapshot {
                c2s_bytes: 1,
                s2c_bytes: 2,
                c2s_messages: 3,
                s2c_messages: 4,
            },
        }
    }

    #[test]
    fn file_roundtrip() {
        let h = header();
        let image = vec![9u8; 33];
        let bytes = encode_file(&h, &image);
        let (got_h, got_image) = decode_file(&bytes).expect("decode");
        assert_eq!(got_h, h);
        assert_eq!(got_image, image);
    }

    #[test]
    fn bad_magic_and_version_fail() {
        let mut bytes = encode_file(&header(), b"img");
        bytes[0] = b'X';
        assert_eq!(decode_file(&bytes), Err(ProtoError::BadMagic));
        let mut bytes2 = encode_file(&header(), b"img");
        bytes2[4] = 99;
        assert!(matches!(decode_file(&bytes2), Err(ProtoError::VersionMismatch { theirs: 99 })));
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(parse_file_name(&file_name(17)), Some(17));
        assert_eq!(parse_file_name("session-x.suspend"), None);
        assert_eq!(parse_file_name("other.bin"), None);
    }
}
