//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides exactly the subset of the `rand 0.8` API the Primer
//! workspace uses:
//!
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer and
//!   float ranges), `gen_bool`, `fill`,
//! * [`SeedableRng`] — `seed_from_u64`, `from_seed`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator.
//!
//! Streams differ numerically from upstream `rand` (a different core
//! generator), but every consumer in this repository only relies on
//! determinism-given-a-seed, not on specific values.

pub mod rngs;

mod distributions;
mod range;

pub use distributions::SampleStandard;
pub use range::{SampleRange, SampleUniform};

/// Generic random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The core primitive: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the "standard" distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type (32 bytes for [`rngs::StdRng`]).
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let a: Vec<u64> = (0..8).map(|_| StdRng::seed_from_u64(9).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let mut r1 = StdRng::seed_from_u64(10);
        let mut r2 = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: i64 = rng.gen_range(-15i64..=15);
            assert!((-15..=15).contains(&v));
            let u: u64 = rng.gen_range(0u64..7);
            assert!(u < 7);
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let s: usize = rng.gen_range(1usize..2);
            assert_eq!(s, 1);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 should appear");
    }

    #[test]
    fn fill_fills_every_byte_position() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut any_nonzero = [0u8; 13];
        for _ in 0..32 {
            let mut buf = [0u8; 13];
            rng.fill(&mut buf);
            for (acc, b) in any_nonzero.iter_mut().zip(buf.iter()) {
                *acc |= b;
            }
        }
        assert!(any_nonzero.iter().all(|&b| b != 0));
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn from_seed_differs_by_seed() {
        let mut a = StdRng::from_seed([1u8; 32]);
        let mut b = StdRng::from_seed([2u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
