//! Property-based tests of the numeric foundations.

use primer_math::{fxp, FixedSpec, MatZ, Matrix, Ring};
use proptest::prelude::*;

proptest! {
    /// Ring axioms under random operands.
    #[test]
    fn ring_add_mul_laws(a in 0u64..65537, b in 0u64..65537, c in 0u64..65537) {
        let r = Ring::new(65537);
        let (a, b, c) = (r.reduce(a), r.reduce(b), r.reduce(c));
        prop_assert_eq!(r.add(a, b), r.add(b, a));
        prop_assert_eq!(r.mul(a, b), r.mul(b, a));
        prop_assert_eq!(r.add(r.add(a, b), c), r.add(a, r.add(b, c)));
        prop_assert_eq!(r.mul(a, r.add(b, c)), r.add(r.mul(a, b), r.mul(a, c)));
        prop_assert_eq!(r.sub(r.add(a, b), b), a);
    }

    /// Centered lift is a bijection on the representable range.
    #[test]
    fn signed_embedding_roundtrip(x in -((1i64 << 40) - 1)..(1i64 << 40)) {
        let r = Ring::new((1u64 << 43) - 57); // odd modulus > 2^42
        prop_assert_eq!(r.to_signed(r.from_signed(x)), x);
    }

    /// Quantization is the identity on grid points and saturates off-range.
    #[test]
    fn fixed_quantize_grid(raw in -16384i64..16383) {
        let f = FixedSpec::paper();
        let x = f.dequantize(raw);
        prop_assert_eq!(f.quantize(x), raw);
    }

    /// truncate_product(a·2^f) == saturate(a): scaling then truncating a
    /// value recovers it.
    #[test]
    fn truncation_inverts_scaling(a in -16000i64..16000) {
        let f = FixedSpec::paper();
        prop_assert_eq!(f.truncate_product(a << f.frac()), f.saturate(a));
    }

    /// Matrix multiplication distributes over addition mod t.
    #[test]
    fn matmul_distributes(seed in 0u64..1000) {
        let ring = Ring::new(1_000_003);
        let mut rng = primer_math::rng::seeded(seed);
        let a = MatZ::random(&ring, 3, 4, &mut rng);
        let b = MatZ::random(&ring, 4, 2, &mut rng);
        let c = MatZ::random(&ring, 4, 2, &mut rng);
        let lhs = a.matmul(&ring, &b.add(&ring, &c));
        let rhs = a.matmul(&ring, &b).add(&ring, &a.matmul(&ring, &c));
        prop_assert_eq!(lhs, rhs);
    }

    /// Transpose of a product equals the reversed product of transposes.
    #[test]
    fn matmul_transpose_law(seed in 0u64..1000) {
        let ring = Ring::new(65537);
        let mut rng = primer_math::rng::seeded(seed);
        let a = MatZ::random(&ring, 2, 5, &mut rng);
        let b = MatZ::random(&ring, 5, 3, &mut rng);
        prop_assert_eq!(
            a.matmul(&ring, &b).transpose(),
            b.transpose().matmul(&ring, &a.transpose())
        );
    }

    /// Fixed-point exp stays within [0, 1] and is monotone decreasing.
    #[test]
    fn exp_neg_bounded_monotone(x in 0i64..(40 << 12), dx in 1i64..4096) {
        let frac = 12;
        let e1 = fxp::exp_neg(x, frac);
        let e2 = fxp::exp_neg(x + dx, frac);
        prop_assert!(e1 >= 0 && e1 <= (1 << frac) + 8);
        prop_assert!(e2 <= e1 + 1, "exp must not increase: {} then {}", e1, e2);
    }

    /// softmax outputs are non-negative and sum close to one.
    #[test]
    fn softmax_is_distribution(v in proptest::collection::vec(-(8i64 << 12)..(8i64 << 12), 2..8)) {
        let frac = 12;
        let y = fxp::softmax(&v, frac);
        let sum: i64 = y.iter().sum();
        prop_assert!(y.iter().all(|&p| p >= 0));
        prop_assert!((sum - (1 << frac)).abs() < (1 << frac) / 8, "sum {}", sum);
    }

    /// recip is a right inverse up to fixed-point tolerance.
    #[test]
    fn recip_inverts(x in (1i64 << 10)..(1i64 << 18)) {
        let frac = 12;
        let r = fxp::recip(x, frac);
        let prod = fxp::mul_q(x, r, frac);
        prop_assert!((prod - (1 << frac)).abs() < 64, "x·(1/x) = {}", prod);
    }

    /// Matrix from_fn/index coherence.
    #[test]
    fn matrix_from_fn_index(rows in 1usize..6, cols in 1usize..6) {
        let m = Matrix::from_fn(rows, cols, |r, c| (r * 100 + c) as u64);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(m[(r, c)], (r * 100 + c) as u64);
            }
        }
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}
