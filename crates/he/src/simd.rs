//! Runtime-dispatched SIMD kernels for the modular hot loops.
//!
//! PR 5 made the HE pipeline NTT-resident, so essentially all hot-path
//! time is pointwise `u64` arithmetic over RNS limbs: NTT butterflies
//! (Shoup multiplication), pointwise multiply (Barrett), and ciphertext
//! add/sub. This module hand-rolls AVX2 versions of exactly those loops
//! with `std::arch`, behind a scalar fallback, under one invariant:
//!
//! > **Bit identity.** For every input, the AVX2 kernel produces the same
//! > bytes as the scalar kernel — the same guarantee the PR 4 thread pool
//! > gives for thread counts. SIMD width is a pure performance knob;
//! > wire bytes and logits never depend on it.
//!
//! The invariant holds by construction, not by rounding luck: every
//! kernel ends in a *canonical* residue in `[0, p)`.
//!
//! * add/sub/neg and the butterflies use the identical `+p` / conditional-
//!   subtract branch structure as the scalar code, just four lanes wide.
//! * Shoup multiplication uses the identical `q = mulhi(x, w_shoup)`;
//!   `r = x·w − q·p (mod 2^64)`; one conditional subtract.
//! * Pointwise multiply differs in *algorithm* (lane-wise Barrett with the
//!   cached [`Modulus::barrett_mu`] vs the scalar `u128 %`) but both fully
//!   reduce, and the canonical residue of `a·b mod p` is unique.
//!
//! Dispatch is runtime: [`level`] re-reads the `PRIMER_SIMD` environment
//! variable on every call (the same idiom the thread pool uses for
//! `PRIMER_THREADS`, so tests can flip it in-process) — `0`/`off`/`scalar`
//! forces the scalar path, anything else auto-detects AVX2 with
//! `is_x86_feature_detected!`. Non-x86_64 targets compile the scalar path
//! only. The `avx2` submodule's `unsafe` is confined to lane loads/stores
//! and the `target_feature` calls; every entry point re-checks CPU support
//! before taking the AVX2 arm, so passing a stale [`SimdLevel`] can never
//! execute unsupported instructions.

use crate::modulus::Modulus;

/// Lane width selected for a kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops — the reference semantics.
    Scalar,
    /// 4×64-bit lanes via AVX2 (`x86_64` only; falls back to scalar on
    /// other architectures or CPUs without the feature).
    Avx2,
}

impl SimdLevel {
    /// Short human-readable name (bench metadata, logs).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// True when the running CPU can execute the AVX2 kernels.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Selects the lane width for this call.
///
/// Reads `PRIMER_SIMD` from the environment **every call** (never cached)
/// so tests and operators can force the scalar path in-process:
/// `0`, `off` or `scalar` (case-insensitive) force [`SimdLevel::Scalar`];
/// any other value — or no variable — auto-detects.
#[inline]
pub fn level() -> SimdLevel {
    if let Ok(v) = std::env::var("PRIMER_SIMD") {
        let v = v.trim();
        if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("scalar") {
            return SimdLevel::Scalar;
        }
    }
    if avx2_available() {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

/// `a[i] = a[i] + b[i] mod p` lane-wise.
///
/// # Panics
///
/// Panics if the slices differ in length (all kernels in this module).
pub fn add_mod(m: Modulus, a: &mut [u64], b: &[u64], lvl: SimdLevel) {
    assert_eq!(a.len(), b.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::add_mod(m, a, b)
            }
        }
        _ => scalar::add_mod(m, a, b),
    }
}

/// `a[i] = a[i] - b[i] mod p` lane-wise.
pub fn sub_mod(m: Modulus, a: &mut [u64], b: &[u64], lvl: SimdLevel) {
    assert_eq!(a.len(), b.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::sub_mod(m, a, b)
            }
        }
        _ => scalar::sub_mod(m, a, b),
    }
}

/// `a[i] = -a[i] mod p` lane-wise.
pub fn neg_mod(m: Modulus, a: &mut [u64], lvl: SimdLevel) {
    match lvl {
        SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::neg_mod(m, a)
            }
        }
        _ => scalar::neg_mod(m, a),
    }
}

/// `a[i] = a[i] * b[i] mod p` lane-wise (Barrett under AVX2).
pub fn mul_mod(m: Modulus, a: &mut [u64], b: &[u64], lvl: SimdLevel) {
    assert_eq!(a.len(), b.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::mul_mod(m, a, b)
            }
        }
        _ => scalar::mul_mod(m, a, b),
    }
}

/// `acc[i] = acc[i] + a[i] * b[i] mod p` lane-wise.
pub fn add_mul_mod(m: Modulus, acc: &mut [u64], a: &[u64], b: &[u64], lvl: SimdLevel) {
    assert_eq!(acc.len(), a.len(), "simd kernel length mismatch");
    assert_eq!(acc.len(), b.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx2 if use_avx2(acc.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::add_mul_mod(m, acc, a, b)
            }
        }
        _ => scalar::add_mul_mod(m, acc, a, b),
    }
}

/// One level of Cooley–Tukey forward butterflies with a shared twiddle:
/// `(lo[i], hi[i]) = (lo[i] + w·hi[i], lo[i] − w·hi[i]) mod p`.
pub fn forward_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64], lvl: SimdLevel) {
    assert_eq!(lo.len(), hi.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx2 if use_avx2(lo.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::forward_butterflies(p, w, ws, lo, hi)
            }
        }
        _ => scalar::forward_butterflies(p, w, ws, lo, hi),
    }
}

/// One level of Gentleman–Sande inverse butterflies with a shared twiddle:
/// `(lo[i], hi[i]) = (lo[i] + hi[i], w·(lo[i] − hi[i])) mod p`.
pub fn inverse_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64], lvl: SimdLevel) {
    assert_eq!(lo.len(), hi.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx2 if use_avx2(lo.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::inverse_butterflies(p, w, ws, lo, hi)
            }
        }
        _ => scalar::inverse_butterflies(p, w, ws, lo, hi),
    }
}

/// `a[i] = a[i] * w mod p` with a Shoup-precomputed constant (the inverse
/// NTT's final `n^{-1}` scaling).
pub fn mul_shoup_slice(p: u64, w: u64, ws: u64, a: &mut [u64], lvl: SimdLevel) {
    match lvl {
        SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::mul_shoup_slice(p, w, ws, a)
            }
        }
        _ => scalar::mul_shoup_slice(p, w, ws, a),
    }
}

/// Tiny slices are all tail; skip the `target_feature` call and (on every
/// entry) re-verify CPU support so a forged [`SimdLevel::Avx2`] on a
/// non-AVX2 CPU degrades to scalar instead of executing illegal
/// instructions.
#[inline]
fn use_avx2(len: usize) -> bool {
    len >= 4 && avx2_available()
}

/// Shoup modular multiplication: `x · w mod p` with `w_shoup` precomputed
/// as `floor(w · 2^64 / p)`. Requires `p < 2^63`; result is canonical.
#[inline]
pub fn mul_shoup(x: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let q = ((x as u128 * w_shoup as u128) >> 64) as u64;
    let r = (x.wrapping_mul(w)).wrapping_sub(q.wrapping_mul(p));
    if r >= p {
        r - p
    } else {
        r
    }
}

/// The portable reference kernels. The AVX2 kernels must match these
/// bit-for-bit (proptested in `tests/simd_bit_identity.rs`).
pub mod scalar {
    use super::{mul_shoup, Modulus};

    pub fn add_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.add(*x, y);
        }
    }

    pub fn sub_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.sub(*x, y);
        }
    }

    pub fn neg_mod(m: Modulus, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = m.neg(*x);
        }
    }

    pub fn mul_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.mul(*x, y);
        }
    }

    pub fn add_mul_mod(m: Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        for ((d, &x), &y) in acc.iter_mut().zip(a).zip(b) {
            *d = m.add(*d, m.mul(x, y));
        }
    }

    pub fn forward_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        for (u_ref, v_ref) in lo.iter_mut().zip(hi.iter_mut()) {
            let u = *u_ref;
            let v = mul_shoup(*v_ref, w, ws, p);
            let sum = u + v;
            *u_ref = if sum >= p { sum - p } else { sum };
            *v_ref = if u >= v { u - v } else { u + p - v };
        }
    }

    pub fn inverse_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        for (u_ref, v_ref) in lo.iter_mut().zip(hi.iter_mut()) {
            let u = *u_ref;
            let v = *v_ref;
            let sum = u + v;
            *u_ref = if sum >= p { sum - p } else { sum };
            let diff = if u >= v { u - v } else { u + p - v };
            *v_ref = mul_shoup(diff, w, ws, p);
        }
    }

    pub fn mul_shoup_slice(p: u64, w: u64, ws: u64, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = mul_shoup(*x, w, ws, p);
        }
    }
}

/// The AVX2 kernels: 4×64-bit lanes, `target_feature(enable = "avx2")`.
///
/// # Safety
///
/// Every function in this module must only be called on a CPU with AVX2
/// (the public dispatchers in the parent module enforce this). Lane math
/// notes:
///
/// * 64×64→128 multiplication is synthesised from four
///   `_mm256_mul_epu32` partial products plus a cross-term carry.
/// * Unsigned 64-bit compares go through a sign-bit flip and
///   `_mm256_cmpgt_epi64`.
/// * Barrett reduction uses per-modulus runtime shift counts
///   (`L−1`, `L+1` with `L = Modulus::bits()`, all within `[1, 63]`
///   because `2 ≤ p < 2^62`), fed via `_mm256_srl_epi64`/`_mm256_sll_epi64`.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Modulus;
    use std::arch::x86_64::*;

    const LO32: i64 = 0xFFFF_FFFF;

    /// Full 64×64→128 lane product as (low 64, high 64) halves.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_lo_hi(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let lomask = _mm256_set1_epi64x(LO32);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        // cross < 3·2^32, so its own carry lives in bits 32..34 and the
        // three-way add below cannot overflow a lane.
        let cross = _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64::<32>(ll), _mm256_and_si256(lh, lomask)),
            _mm256_and_si256(hl, lomask),
        );
        let hi = _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64::<32>(lh)),
            _mm256_add_epi64(_mm256_srli_epi64::<32>(hl), _mm256_srli_epi64::<32>(cross)),
        );
        let lo = _mm256_or_si256(_mm256_slli_epi64::<32>(cross), _mm256_and_si256(ll, lomask));
        (lo, hi)
    }

    /// Low 64 bits of the lane product (wrapping, matches `wrapping_mul`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_lo(a: __m256i, b: __m256i) -> __m256i {
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, _mm256_srli_epi64::<32>(b));
        let hl = _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), b);
        _mm256_add_epi64(ll, _mm256_slli_epi64::<32>(_mm256_add_epi64(lh, hl)))
    }

    /// Per-modulus lane constants shared by the kernels.
    struct Lanes {
        p: __m256i,
        /// `(p − 1) ^ SIGN` — the unsigned-compare threshold for `x ≥ p`.
        pm1s: __m256i,
        sign: __m256i,
    }

    impl Lanes {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn new(p: u64) -> Self {
            let sign = _mm256_set1_epi64x(i64::MIN);
            Lanes {
                p: _mm256_set1_epi64x(p as i64),
                pm1s: _mm256_xor_si256(_mm256_set1_epi64x((p - 1) as i64), sign),
                sign,
            }
        }

        /// Conditional subtract: `x − p` where `x ≥ p` (unsigned), else `x`.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn csub(&self, x: __m256i) -> __m256i {
            let ge = _mm256_cmpgt_epi64(_mm256_xor_si256(x, self.sign), self.pm1s);
            _mm256_sub_epi64(x, _mm256_and_si256(self.p, ge))
        }

        /// Shoup multiply by a broadcast constant; canonical result.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn mul_shoup(&self, x: __m256i, w: __m256i, ws: __m256i) -> __m256i {
            let (_, q) = mul_lo_hi(x, ws);
            let r = _mm256_sub_epi64(mul_lo(x, w), mul_lo(q, self.p));
            self.csub(r)
        }
    }

    /// Barrett context: reduces a full 128-bit lane product to the
    /// canonical residue, bit-identical to the scalar `u128 %`.
    struct Barrett {
        lanes: Lanes,
        mu: __m256i,
        sh1: __m128i,
        sh1c: __m128i,
        sh2: __m128i,
        sh2c: __m128i,
    }

    impl Barrett {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn new(m: Modulus) -> Self {
            let bits = m.bits() as i32;
            Barrett {
                lanes: Lanes::new(m.value()),
                mu: _mm256_set1_epi64x(m.barrett_mu() as i64),
                // q1 combines (lo >> (L−1)) | (hi << (64−(L−1))); q3 the
                // same with L+1. All four counts are in [1, 63].
                sh1: _mm_cvtsi32_si128(bits - 1),
                sh1c: _mm_cvtsi32_si128(64 - (bits - 1)),
                sh2: _mm_cvtsi32_si128(bits + 1),
                sh2c: _mm_cvtsi32_si128(64 - (bits + 1)),
            }
        }

        /// `a · b mod p`, fully reduced.
        ///
        /// With `L = bits(p)`: `q1 = floor(x / 2^(L−1))` fits 64 bits
        /// because `x < p² < 2^(2L)`; `q3 = floor(q1·mu / 2^(L+1))`
        /// satisfies `q3 ≤ floor(x/p) ≤ q3 + 2`, so the remainder after
        /// one low-64 subtraction sits in `[0, 3p)` (`3p < 2^64` since
        /// `p < 2^62`) and two conditional subtracts canonicalise it.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn mul_mod(&self, a: __m256i, b: __m256i) -> __m256i {
            let (xlo, xhi) = mul_lo_hi(a, b);
            let q1 = _mm256_or_si256(
                _mm256_srl_epi64(xlo, self.sh1),
                _mm256_sll_epi64(xhi, self.sh1c),
            );
            let (qlo, qhi) = mul_lo_hi(q1, self.mu);
            let q3 = _mm256_or_si256(
                _mm256_srl_epi64(qlo, self.sh2),
                _mm256_sll_epi64(qhi, self.sh2c),
            );
            let r = _mm256_sub_epi64(xlo, mul_lo(q3, self.lanes.p));
            self.lanes.csub(self.lanes.csub(r))
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(chunk: &[u64]) -> __m256i {
        _mm256_loadu_si256(chunk.as_ptr() as *const __m256i)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(chunk: &mut [u64], v: __m256i) {
        _mm256_storeu_si256(chunk.as_mut_ptr() as *mut __m256i, v)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        let lanes = Lanes::new(m.value());
        let mut bs = b.chunks_exact(4);
        let mut av = a.chunks_exact_mut(4);
        for (x, y) in av.by_ref().zip(bs.by_ref()) {
            store(x, lanes.csub(_mm256_add_epi64(load(x), load(y))));
        }
        super::scalar::add_mod(m, av.into_remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        let lanes = Lanes::new(m.value());
        let mut bs = b.chunks_exact(4);
        let mut av = a.chunks_exact_mut(4);
        for (x, y) in av.by_ref().zip(bs.by_ref()) {
            // a + p − b lands in (0, 2p); one csub matches both scalar
            // branches exactly.
            let t = _mm256_sub_epi64(_mm256_add_epi64(load(x), lanes.p), load(y));
            store(x, lanes.csub(t));
        }
        super::scalar::sub_mod(m, av.into_remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn neg_mod(m: Modulus, a: &mut [u64]) {
        let lanes = Lanes::new(m.value());
        let zero = _mm256_setzero_si256();
        let mut av = a.chunks_exact_mut(4);
        for x in av.by_ref() {
            let v = load(x);
            let nz = _mm256_cmpeq_epi64(v, zero);
            // p − a, forced to 0 where a == 0 (andnot keeps non-zero lanes).
            store(x, _mm256_andnot_si256(nz, _mm256_sub_epi64(lanes.p, v)));
        }
        super::scalar::neg_mod(m, av.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        let barrett = Barrett::new(m);
        let mut bs = b.chunks_exact(4);
        let mut av = a.chunks_exact_mut(4);
        for (x, y) in av.by_ref().zip(bs.by_ref()) {
            store(x, barrett.mul_mod(load(x), load(y)));
        }
        super::scalar::mul_mod(m, av.into_remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_mul_mod(m: Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        let barrett = Barrett::new(m);
        let mut asl = a.chunks_exact(4);
        let mut bs = b.chunks_exact(4);
        let mut accv = acc.chunks_exact_mut(4);
        for ((d, x), y) in accv.by_ref().zip(asl.by_ref()).zip(bs.by_ref()) {
            let prod = barrett.mul_mod(load(x), load(y));
            store(d, barrett.lanes.csub(_mm256_add_epi64(load(d), prod)));
        }
        super::scalar::add_mul_mod(m, accv.into_remainder(), asl.remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn forward_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        let lanes = Lanes::new(p);
        let wv = _mm256_set1_epi64x(w as i64);
        let wsv = _mm256_set1_epi64x(ws as i64);
        let mut los = lo.chunks_exact_mut(4);
        let mut his = hi.chunks_exact_mut(4);
        for (lc, hc) in los.by_ref().zip(his.by_ref()) {
            let u = load(lc);
            let v = lanes.mul_shoup(load(hc), wv, wsv);
            store(lc, lanes.csub(_mm256_add_epi64(u, v)));
            let diff = _mm256_sub_epi64(_mm256_add_epi64(u, lanes.p), v);
            store(hc, lanes.csub(diff));
        }
        super::scalar::forward_butterflies(p, w, ws, los.into_remainder(), his.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn inverse_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        let lanes = Lanes::new(p);
        let wv = _mm256_set1_epi64x(w as i64);
        let wsv = _mm256_set1_epi64x(ws as i64);
        let mut los = lo.chunks_exact_mut(4);
        let mut his = hi.chunks_exact_mut(4);
        for (lc, hc) in los.by_ref().zip(his.by_ref()) {
            let u = load(lc);
            let v = load(hc);
            store(lc, lanes.csub(_mm256_add_epi64(u, v)));
            let diff = lanes.csub(_mm256_sub_epi64(_mm256_add_epi64(u, lanes.p), v));
            store(hc, lanes.mul_shoup(diff, wv, wsv));
        }
        super::scalar::inverse_butterflies(p, w, ws, los.into_remainder(), his.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_shoup_slice(p: u64, w: u64, ws: u64, a: &mut [u64]) {
        let lanes = Lanes::new(p);
        let wv = _mm256_set1_epi64x(w as i64);
        let wsv = _mm256_set1_epi64x(ws as i64);
        let mut av = a.chunks_exact_mut(4);
        for x in av.by_ref() {
            store(x, lanes.mul_shoup(load(x), wv, wsv));
        }
        super::scalar::mul_shoup_slice(p, w, ws, av.into_remainder());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn vecs(m: Modulus, len: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = |rng: &mut StdRng| (0..len).map(|_| rng.gen_range(0..m.value())).collect();
        (g(&mut rng), g(&mut rng), g(&mut rng))
    }

    /// Odd lengths exercise the scalar tail inside the AVX2 kernels.
    const LENS: [usize; 4] = [1, 4, 31, 256];

    /// Small, medium and near-limit moduli (the last stresses the
    /// Barrett shift counts at `L = 62`).
    fn moduli() -> Vec<Modulus> {
        vec![
            Modulus::new(97),
            Modulus::new(65537),
            Modulus::new(1032193),
            Modulus::new((1u64 << 50) + 4097),
            Modulus::new((1u64 << 62) - 57), // not prime; kernels don't care
        ]
    }

    #[test]
    fn avx2_matches_scalar_on_all_kernels() {
        if !avx2_available() {
            return;
        }
        for m in moduli() {
            for len in LENS {
                let (a, b, c) = vecs(m, len, 0xC0FFEE ^ m.value() ^ len as u64);
                let check = |name: &str,
                             f: &dyn Fn(&mut [u64], SimdLevel)| {
                    let mut s = a.clone();
                    let mut v = a.clone();
                    f(&mut s, SimdLevel::Scalar);
                    f(&mut v, SimdLevel::Avx2);
                    assert_eq!(s, v, "{name} diverged (p={}, len={len})", m.value());
                };
                check("add", &|x, l| add_mod(m, x, &b, l));
                check("sub", &|x, l| sub_mod(m, x, &b, l));
                check("neg", &|x, l| neg_mod(m, x, l));
                check("mul", &|x, l| mul_mod(m, x, &b, l));
                check("add_mul", &|x, l| add_mul_mod(m, x, &b, &c, l));
                let p = m.value();
                let w = b[0] % p;
                let ws = (((w as u128) << 64) / p as u128) as u64;
                check("mul_shoup_slice", &|x, l| mul_shoup_slice(p, w, ws, x, l));
                type PairKernel<'f> = &'f dyn Fn(&mut [u64], &mut [u64], SimdLevel);
                let check2 = |name: &str, f: PairKernel<'_>| {
                    let (mut sl, mut sh) = (a.clone(), b.clone());
                    let (mut vl, mut vh) = (a.clone(), b.clone());
                    f(&mut sl, &mut sh, SimdLevel::Scalar);
                    f(&mut vl, &mut vh, SimdLevel::Avx2);
                    assert_eq!((sl, sh), (vl, vh), "{name} diverged (p={}, len={len})", m.value());
                };
                check2("fwd_bfly", &|l0, h0, l| forward_butterflies(p, w, ws, l0, h0, l));
                check2("inv_bfly", &|l0, h0, l| inverse_butterflies(p, w, ws, l0, h0, l));
            }
        }
    }

    #[test]
    fn forced_scalar_override() {
        std::env::set_var("PRIMER_SIMD", "0");
        assert_eq!(level(), SimdLevel::Scalar);
        std::env::set_var("PRIMER_SIMD", "off");
        assert_eq!(level(), SimdLevel::Scalar);
        std::env::set_var("PRIMER_SIMD", "1");
        let auto = level();
        std::env::remove_var("PRIMER_SIMD");
        assert_eq!(auto, level(), "non-zero value must mean auto-detect");
        assert_eq!(auto == SimdLevel::Avx2, avx2_available());
    }

    #[test]
    fn boundary_values_reduce_canonically() {
        // p−1 in every lane is the worst case for every csub chain.
        for m in moduli() {
            let top = m.value() - 1;
            let mut a = vec![top; 8];
            let b = vec![top; 8];
            let want: Vec<u64> = a.iter().map(|&x| m.mul(x, top)).collect();
            mul_mod(m, &mut a, &b, if avx2_available() { SimdLevel::Avx2 } else { SimdLevel::Scalar });
            assert_eq!(a, want);
            let mut s = vec![top; 8];
            add_mod(m, &mut s, &b, SimdLevel::Scalar);
            let mut v = vec![top; 8];
            add_mod(m, &mut v, &b, if avx2_available() { SimdLevel::Avx2 } else { SimdLevel::Scalar });
            assert_eq!(s, v);
        }
    }
}
