//! Layout-policy equivalence: every `PRIMER_LAYOUT` policy (`auto`,
//! `output`, `input`, `zerorot`) must produce logits **bit-identical**
//! to the plaintext fixed-point reference, for every protocol variant —
//! a layout is a performance choice, never a semantics choice. The
//! sweep runs full client/server sessions so each policy exercises its
//! own Galois key plan, prepared plane, and FHGS triple packing
//! end-to-end over the wire.
//!
//! The suite also validates the noise gate the selector relies on:
//! on every parameter profile where [`input_mode_noise_safe`] approves
//! the input-rotation chain, the **measured** post-matmul noise of a
//! real encrypted matmul stays at or below the analytic worst-case
//! bound the gate compared against the budget.
//!
//! Everything runs in ONE `#[test]` because `PRIMER_LAYOUT` is
//! process-global state; integration-test files get their own process.

use primer_core::costmodel::layout::input_mode_noise_safe;
use primer_core::packing::{
    decrypt_matrix, encrypt_matrix, matmul_weights, tf_chain_terms_max, tf_input_steps,
    MatmulWeights, RotationMode,
};
use primer_core::{
    build_session_circuits, ClientSession, GcMode, Packing, ProtocolVariant, ServerSession,
    SystemConfig,
};
use primer_he::{
    BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator, NoiseModel,
};
use primer_math::rng::seeded;
use primer_math::{MatZ, Ring};
use primer_net::MemTransport;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};
use std::sync::Arc;

/// One full session under the current `PRIMER_LAYOUT`, returning the
/// logits for one query.
fn run_session(variant: ProtocolVariant, tokens: &[usize]) -> Vec<i64> {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(800));
    let fixed = Arc::new(FixedTransformer::quantize(&cfg, &weights, sys.pipeline));
    let circuits = Arc::new(build_session_circuits(&sys, variant, &fixed));
    let (total, pool) = (1, 1);

    let (ct, st, _meter) = MemTransport::pair();
    let (sys_s, fixed_s, circuits_s) = (sys.clone(), Arc::clone(&fixed), Arc::clone(&circuits));
    let server = std::thread::spawn(move || {
        let mut session = ServerSession::setup(
            sys_s, variant, GcMode::Simulated, fixed_s, circuits_s, 801, total, pool, &st,
        )
        .expect("in-process key transfer");
        session.serve_one(&st).expect("in-process flight");
    });

    let mut session = ClientSession::setup(
        sys,
        variant,
        GcMode::Simulated,
        fixed,
        circuits,
        801,
        total,
        pool,
        &ct,
    );
    let logits = session.infer(tokens, &ct).expect("in-process flight");
    server.join().expect("server thread");
    logits
}

fn reference_logits(variant: ProtocolVariant, tokens: &[usize]) -> Vec<i64> {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(800));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    if matches!(variant, ProtocolVariant::Fpc) {
        fixed.logits_combined(tokens)
    } else {
        fixed.logits(tokens)
    }
}

/// Runs one input-mode encrypted matmul on `params` and asserts the
/// measured output noise stays under the analytic chain bound (and the
/// product is exact). Returns the worst measured/bound gap in bits.
fn measure_input_chain(params: &HeParams) -> f64 {
    let (rows, cols, out_cols) = (4usize, 32, 8);
    let ctx = HeContext::new(params.clone());
    let ring = Ring::new(params.t());
    let model = NoiseModel::new(params);
    let encoder = BatchEncoder::new(&ctx);
    let mut rng = seeded(810);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 811);
    let eval = Evaluator::new(&ctx);
    let keys = kg.galois_keys(&tf_input_steps(rows, cols, out_cols, encoder.row_size()), false, &mut rng);

    let x = MatZ::from_fn(rows, cols, |i, j| ((i * 7 + j * 3) % 41) as u64);
    let w = MatZ::from_fn(cols, out_cols, |i, j| ((i * 5 + j * 13) % 37) as u64);
    let packed = encrypt_matrix(Packing::TokensFirst, &x, &encoder, &encryptor);
    let out = matmul_weights(
        &packed,
        &MatmulWeights::Fresh { w: &w, encoder: &encoder, mode: RotationMode::Input },
        &eval,
        &keys,
    )
    .expect("dedicated keys provisioned");
    assert_eq!(decrypt_matrix(&out, &encoder, &encryptor), x.matmul(&ring, &w));

    // The bound the selector's gate compared against the budget: every
    // term is a rotated-then-masked ciphertext, `terms` of them summed.
    let term = model.mul_plain_bits(model.rotated_bits(model.fresh_bits()));
    let terms = tf_chain_terms_max(rows, cols, out_cols, params.row_size());
    let bound = NoiseModel::sum_bits(term, terms);
    let mut worst_gap = f64::NEG_INFINITY;
    for ct in &out.cts {
        let measured = model.measured_bits(encryptor.noise_budget(ct));
        assert!(
            measured <= bound,
            "measured {measured:.1} bits exceeds analytic bound {bound:.1} (n={})",
            params.n()
        );
        worst_gap = worst_gap.max(measured - bound);
    }
    worst_gap
}

#[test]
fn every_layout_policy_is_reference_exact_and_the_noise_gate_is_sound() {
    assert!(std::env::var("PRIMER_LAYOUT").is_err(), "env leaked into test");
    let tokens = vec![3usize, 17, 0, 29];

    // Part 1: the policy × variant sweep. `auto` may mix modes per
    // matrix; the forced policies pin every selectable choice to one
    // layout. All must agree bit-exactly with the plaintext reference.
    for policy in ["auto", "output", "input", "zerorot"] {
        std::env::set_var("PRIMER_LAYOUT", policy);
        for variant in ProtocolVariant::all() {
            let got = run_session(variant, &tokens);
            let want = reference_logits(variant, &tokens);
            assert_eq!(got, want, "layout {policy} diverged on {}", variant.name());
        }
    }
    std::env::remove_var("PRIMER_LAYOUT");

    // Part 2: the gate itself. Wherever the model approves the
    // input-rotation chain, real ciphertexts must obey the bound it
    // reasoned about (toy is the designed counterexample: gated off).
    let (rows, cols, out_cols) = (4usize, 32, 8);
    assert!(!input_mode_noise_safe(&HeParams::toy(), rows, cols, out_cols));
    for params in [HeParams::test_2k(), HeParams::test_2k_wide(), HeParams::paper_8k()] {
        if input_mode_noise_safe(&params, rows, cols, out_cols) {
            let gap = measure_input_chain(&params);
            assert!(gap <= 0.0, "bound violated by {gap:.1} bits at n={}", params.n());
        }
    }
    // At least the wide test profile must actually take the measured
    // branch, or part 2 silently tested nothing.
    assert!(input_mode_noise_safe(&HeParams::test_2k_wide(), rows, cols, out_cols));
}
