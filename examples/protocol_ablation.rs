//! The paper's Table II ablation, measured live on a scaled model:
//! Primer-base → +FHGS (F) → +tokens-first packing (FP) → +CHGS (FPC).
//!
//! Run: `cargo run --release --example protocol_ablation`

use primer::core::{Engine, GcMode, ProtocolVariant, StepCategory, SystemConfig};
use primer::math::rng::seeded;
use primer::nn::{FixedTransformer, TransformerConfig, TransformerWeights};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg)?;
    let weights = TransformerWeights::random(&cfg, &mut seeded(41));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    let tokens = vec![3, 1, 4, 1];

    println!("measured per-step cost (scaled model, milliseconds compute / KB traffic):");
    println!(
        "{:<14} {:>22} {:>22} {:>14} {:>12}",
        "variant", "offline ms / KB", "online ms / KB", "off rotations", "exact?"
    );
    for variant in ProtocolVariant::all() {
        let engine =
            Engine::new(sys.clone(), variant, fixed.clone(), GcMode::Simulated, 42);
        let report = engine.run(&tokens);
        let off = report.steps.offline_total();
        let on = report.steps.online_total();
        println!(
            "{:<14} {:>12.0} / {:>7.0} {:>12.0} / {:>7.0} {:>14} {:>12}",
            variant.name(),
            off.compute.as_secs_f64() * 1e3,
            off.bytes as f64 / 1e3,
            on.compute.as_secs_f64() * 1e3,
            on.bytes as f64 / 1e3,
            report.he_ops_offline.rotations,
            report.matches_plaintext_reference()
        );
    }

    println!("\nper-category breakdown for Primer-FPC (compute ms, offline/online):");
    let engine = Engine::new(sys, ProtocolVariant::Fpc, fixed, GcMode::Simulated, 43);
    let report = engine.run(&tokens);
    for cat in StepCategory::all() {
        let (off, on) = report.steps.get(cat);
        println!(
            "  {:<12} {:>8.1} / {:>8.1}",
            cat.name(),
            off.compute.as_secs_f64() * 1e3,
            on.compute.as_secs_f64() * 1e3
        );
    }
    Ok(())
}
