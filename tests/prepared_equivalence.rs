//! Prepared/NTT-resident vs pre-refactor equivalence: for every
//! protocol variant, a session served from a Setup-prepared weight
//! plane (hoisted NTT-domain rotations + setup-encoded masks) must
//! produce logits **bit-identical** to the fresh-mask reference arm
//! (`ModelPlane::build_raw` — per-call mask encoding, the pre-refactor
//! behaviour) — at `PRIMER_THREADS=1` and `4` — and both arms must
//! match the plaintext fixed-point reference exactly.
//!
//! The suite also pins the *encode count model*: a prepared session
//! spends **zero** `mask_prep` ops producing offline bundles (all
//! weight-mask encoding ran at Setup), while the reference arm pays per
//! query; the online phase (whose FHGS masks are query data and can
//! never be prepared) spends identical `mask_prep` in both arms.
//!
//! Everything runs in ONE `#[test]` because `PRIMER_THREADS` is
//! process-global state; integration-test files get their own process.

use primer_core::{
    build_session_circuits, ClientSession, GcMode, ModelPlane, ProtocolVariant, ServerSession,
    SystemConfig,
};
use primer_he::OpCounts;
use primer_math::rng::seeded;
use primer_net::MemTransport;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};
use std::sync::Arc;

struct Run {
    logits: Vec<Vec<i64>>,
    he_offline: Vec<OpCounts>,
    he_online: Vec<OpCounts>,
}

/// One full client/server session over an in-memory transport, with the
/// server arm selected by `prepared`.
fn run_session(variant: ProtocolVariant, threads: usize, prepared: bool) -> Run {
    std::env::set_var("PRIMER_THREADS", threads.to_string());
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(700));
    let fixed = Arc::new(FixedTransformer::quantize(&cfg, &weights, sys.pipeline));
    let circuits = Arc::new(build_session_circuits(&sys, variant, &fixed));
    let queries = [vec![3usize, 17, 0, 29], vec![5usize, 5, 30, 1]];
    let (total, pool) = (queries.len(), queries.len());

    let (ct, st, _meter) = MemTransport::pair();
    let (sys_s, fixed_s, circuits_s) = (sys.clone(), Arc::clone(&fixed), Arc::clone(&circuits));
    let server = std::thread::spawn(move || {
        let plane = Arc::new(if prepared {
            ModelPlane::build(&sys_s, variant, &fixed_s)
        } else {
            ModelPlane::build_raw(&sys_s, variant, &fixed_s)
        });
        assert_eq!(plane.is_prepared(), prepared);
        let mut session = ServerSession::setup_with_plane(
            sys_s,
            variant,
            GcMode::Simulated,
            circuits_s,
            plane,
            701,
            total,
            pool,
            &st,
        )
        .expect("in-process key transfer");
        (0..total)
            .map(|_| session.serve_one(&st).expect("in-process flight"))
            .collect::<Vec<_>>()
    });

    let mut session = ClientSession::setup(
        sys,
        variant,
        GcMode::Simulated,
        fixed,
        circuits,
        701,
        total,
        pool,
        &ct,
    );
    let logits: Vec<Vec<i64>> =
        queries.iter().map(|q| session.infer(q, &ct).expect("in-process flight")).collect();
    let rounds = server.join().expect("server thread");
    Run {
        logits,
        he_offline: rounds.iter().map(|r| r.he_offline).collect(),
        he_online: rounds.iter().map(|r| r.he_online).collect(),
    }
}

fn reference_logits(variant: ProtocolVariant, queries: &[Vec<usize>]) -> Vec<Vec<i64>> {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(700));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    queries
        .iter()
        .map(|q| {
            if matches!(variant, ProtocolVariant::Fpc) {
                fixed.logits_combined(q)
            } else {
                fixed.logits(q)
            }
        })
        .collect()
}

#[test]
fn prepared_path_matches_fresh_reference_all_variants() {
    let queries = [vec![3usize, 17, 0, 29], vec![5usize, 5, 30, 1]];
    for variant in ProtocolVariant::all() {
        let reference = reference_logits(variant, &queries);
        let mut arms: Vec<(String, Run)> = Vec::new();
        for threads in [1usize, 4] {
            for prepared in [true, false] {
                let label = format!(
                    "{} t{threads} {}",
                    variant.name(),
                    if prepared { "prepared" } else { "fresh" }
                );
                arms.push((label, run_session(variant, threads, prepared)));
            }
        }
        for (label, run) in &arms {
            assert_eq!(run.logits, reference, "{label}: logits != plaintext reference");
        }
        // All four arms bit-identical to each other (redundant given the
        // reference check, but states the acceptance criterion directly).
        for (label, run) in &arms[1..] {
            assert_eq!(run.logits, arms[0].1.logits, "{label} diverged from {}", arms[0].0);
        }

        // Encode count model: prepared arms never encode weight masks in
        // the offline phase; fresh arms always do. Online mask encoding
        // (FHGS query data) is identical across arms.
        for (label, run) in &arms {
            let prepared = label.contains("prepared");
            for (i, off) in run.he_offline.iter().enumerate() {
                if prepared {
                    assert_eq!(
                        off.mask_prep, 0,
                        "{label}: query {i} offline phase encoded weight masks"
                    );
                } else {
                    assert!(
                        off.mask_prep > 0,
                        "{label}: fresh arm must encode masks per query"
                    );
                }
            }
        }
        let online_model: Vec<u64> = arms[0].1.he_online.iter().map(|c| c.mask_prep).collect();
        for (label, run) in &arms[1..] {
            let got: Vec<u64> = run.he_online.iter().map(|c| c.mask_prep).collect();
            assert_eq!(got, online_model, "{label}: online mask_prep differs");
        }
    }
}
