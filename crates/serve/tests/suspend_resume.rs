//! Session suspend/resume over TCP: a session parked mid-batch and
//! resumed — against the same server process, or a restarted one
//! pointed at the same suspend directory — must produce logits
//! **bit-identical** to an uninterrupted run, for every protocol
//! variant.

mod common;

use common::{reference_engine, start_server_with};
use primer_core::{GcMode, ProtocolVariant};
use primer_nn::TransformerConfig;
use primer_serve::ClientBuilder;
use std::path::PathBuf;

/// A fresh per-test suspend directory under the OS temp dir.
fn suspend_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("primer-suspend-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create suspend dir");
    dir
}

/// For all four Table II variants: serve one query, suspend, resume in
/// the same server process, serve the remaining two — and every logit
/// equals the uninterrupted in-process engine's bit for bit. The parked
/// image exists on disk while suspended and is consumed at resume.
#[test]
fn suspend_resume_same_process_is_bit_identical_for_all_variants() {
    let model = TransformerConfig::test_tiny();
    let queries =
        vec![vec![3usize, 17, 0, 29], vec![5usize, 5, 30, 1], vec![9usize, 2, 31, 12]];
    for variant in ProtocolVariant::all() {
        let dir = suspend_dir(&format!("same-{}", variant.name()));
        let (addr, server) = start_server_with(model.clone(), 1, {
            let dir = dir.clone();
            move |c| c.suspend_dir = Some(dir)
        });

        let mut handle = ClientBuilder::new(variant).open(addr, 3).expect("open");
        handle.infer(&queries[0]).expect("query 0");
        let parked = handle.suspend().expect("suspend");
        assert_eq!(parked.remaining(), 2, "{}: two queries parked", variant.name());
        let image = dir.join(format!("session-{}.suspend", parked.token()));
        assert!(image.exists(), "{}: image parked at {image:?}", variant.name());

        let mut handle = parked.resume(addr).expect("resume");
        assert!(!image.exists(), "{}: image consumed at resume (one-time masks)", variant.name());
        handle.infer(&queries[1]).expect("query 1");
        handle.infer(&queries[2]).expect("query 2");
        let outcome = handle.finish().expect("finish");
        let stats = server.join().expect("server thread");

        // The suspension is invisible in the results: bit-identical to
        // the uninterrupted engine, full cumulative accounting.
        let reference = reference_engine(&model, variant, GcMode::Simulated).serve(&queries);
        for (i, want) in reference.iter().enumerate() {
            assert!(want.matches_plaintext_reference(), "{}: reference {i}", variant.name());
            assert_eq!(
                outcome.predictions[i].logits,
                want.logits,
                "{}: query {i} diverged across suspend/resume",
                variant.name()
            );
        }
        assert_eq!(outcome.summary.queries, 3, "summary covers both runs");
        assert_eq!(stats.sessions().len(), 1, "one session despite two connections");
        assert_eq!(stats.sessions()[0].queries, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The restart flow: suspend against server A, conclude A, start server
/// B on the same suspend directory, resume against B. The resumed
/// session keeps its token and its remaining logits stay bit-identical.
#[test]
fn suspend_survives_server_restart() {
    let model = TransformerConfig::test_tiny();
    let dir = suspend_dir("restart");
    let queries = vec![
        vec![4usize, 9, 23, 7],
        vec![31usize, 30, 29, 28],
        vec![7usize, 7, 7, 7],
        vec![1usize, 2, 3, 4],
    ];

    let (addr_a, server_a) = start_server_with(model.clone(), 1, {
        let dir = dir.clone();
        move |c| c.suspend_dir = Some(dir)
    });
    let mut handle = ClientBuilder::new(ProtocolVariant::Fpc).open(addr_a, 4).expect("open");
    handle.infer(&queries[0]).expect("query 0");
    handle.infer(&queries[1]).expect("query 1");
    let parked = handle.suspend().expect("suspend");
    let token = parked.token();

    // A suspended session has not concluded: server A still owes its
    // budget one session, so a trivial one concludes it.
    ClientBuilder::new(ProtocolVariant::F)
        .run(addr_a, &[queries[0].clone()])
        .expect("budget filler session");
    let stats_a = server_a.join().expect("server A thread");
    assert_eq!(stats_a.sessions().len(), 1, "only the filler completed on A");

    // "Restart": a fresh server process state, same suspend directory.
    let (addr_b, server_b) = start_server_with(model.clone(), 1, {
        let dir = dir.clone();
        move |c| c.suspend_dir = Some(dir)
    });
    let mut handle = parked.resume(addr_b).expect("resume after restart");
    assert_eq!(handle.session_id(), token, "token survives the restart");
    assert_eq!(handle.remaining(), 2);
    handle.infer(&queries[2]).expect("query 2");
    handle.infer(&queries[3]).expect("query 3");
    let outcome = handle.finish().expect("finish");
    let stats_b = server_b.join().expect("server B thread");

    let reference =
        reference_engine(&model, ProtocolVariant::Fpc, GcMode::Simulated).serve(&queries);
    for (i, want) in reference.iter().enumerate() {
        assert_eq!(
            outcome.predictions[i].logits,
            want.logits,
            "query {i} diverged across the restart"
        );
    }
    assert_eq!(outcome.summary.queries, 4, "summary covers both server processes");
    assert_eq!(stats_b.sessions().len(), 1);
    let rec = &stats_b.sessions()[0];
    assert_eq!(rec.id, token);
    assert_eq!(rec.queries, 4, "the record carries cumulative progress");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Garbled-mode sessions refuse to suspend client-side (one-time labels
/// are not serializable) — before any frame reaches the server.
#[test]
fn garbled_sessions_refuse_to_suspend() {
    let model = TransformerConfig::test_tiny();
    let dir = suspend_dir("garbled");
    let (addr, server) = start_server_with(model, 1, {
        let dir = dir.clone();
        move |c| c.suspend_dir = Some(dir)
    });
    let handle = ClientBuilder::new(ProtocolVariant::Fpc)
        .mode(GcMode::Garbled)
        .open(addr, 1)
        .expect("open");
    let err = match handle.suspend() {
        Ok(_) => panic!("garbled suspend must fail"),
        Err(e) => e,
    };
    assert!(
        matches!(err, primer_serve::ClientError::Session(ref m) if m.contains("garbled")),
        "{err}"
    );
    // The dropped handle fails its session, which concludes the budget.
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions().len(), 0, "the failed session left no completed record");
    let _ = std::fs::remove_dir_all(&dir);
}
