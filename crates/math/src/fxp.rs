//! Shared fixed-point algorithms for the non-polynomial transformer ops.
//!
//! These functions are the *single source of truth* for how SoftMax, GELU
//! and LayerNorm are computed in fixed point: the plaintext fixed-point
//! reference in `primer-nn` calls them directly, and the garbled-circuit
//! generators in `primer-gc` implement the **same dataflow gate-by-gate**,
//! so that private inference is bit-exact against the reference.
//!
//! Every algorithm uses only operations with a direct circuit realization:
//! add/sub, multiply + arithmetic right shift (`mul_q`), comparisons,
//! select (`mux`), shifts by bounded dynamic amounts, and most-significant-
//! bit extraction (a priority encoder).
//!
//! All values are `i64` in Q(`frac`) two's-complement fixed point.

/// Fixed-point multiply: `(a*b) >> frac` with floor (arithmetic-shift)
/// rounding — identical to taking the middle bits of a two's-complement
/// product in a circuit.
#[inline]
pub fn mul_q(a: i64, b: i64, frac: u32) -> i64 {
    ((a as i128 * b as i128) >> frac) as i64
}

/// Quantizes a constant to Q(frac) (round-to-nearest). Used for the
/// polynomial coefficients baked into circuits.
#[inline]
pub fn const_q(x: f64, frac: u32) -> i64 {
    (x * (1u64 << frac) as f64).round() as i64
}

/// Index of the most significant set bit of `x > 0` (`floor(log2 x)`).
///
/// # Panics
///
/// Panics if `x <= 0`.
#[inline]
pub fn msb_index(x: i64) -> u32 {
    assert!(x > 0, "msb_index requires a positive input");
    63 - (x as u64).leading_zeros()
}

/// `2^f` for `f` in `[0, 1]` (Q frac), cubic polynomial approximation.
///
/// Coefficients follow the classic fast-exp2 cubic fit; absolute error is
/// below `2^-9` across the domain, well inside the pipeline's quantization
/// noise for `frac <= 16`.
pub fn exp2_frac(f: i64, frac: u32) -> i64 {
    let c0 = const_q(1.0, frac);
    let c1 = const_q(0.695_976_1, frac);
    let c2 = const_q(0.224_940_4, frac);
    let c3 = const_q(0.079_083_5, frac);
    // Horner: ((c3*f + c2)*f + c1)*f + c0
    let mut acc = c3;
    acc = mul_q(acc, f, frac) + c2;
    acc = mul_q(acc, f, frac) + c1;
    acc = mul_q(acc, f, frac) + c0;
    acc
}

/// `e^{-x}` for `x >= 0` (Q frac).
///
/// Computed as `2^{-y}` with `y = x·log2(e)`; the integer part of `y`
/// becomes a bounded right shift, the fractional part goes through
/// [`exp2_frac`]. Returns 0 once the result underflows Q(frac).
pub fn exp_neg(x: i64, frac: u32) -> i64 {
    debug_assert!(x >= 0, "exp_neg domain is x >= 0");
    let one = 1i64 << frac;
    let log2e = const_q(std::f64::consts::LOG2_E, frac);
    let y = mul_q(x, log2e, frac);
    let k = (y >> frac) as u32; // integer part of the exponent
    let f = y & (one - 1); // fractional part in [0, 1)
    // 2^{-f} = 2^{1-f} / 2; exp2_frac's domain [0,1] covers 1-f.
    let m = exp2_frac(one - f, frac) >> 1;
    // Shift cap: beyond frac+1 the result is below one ulp.
    if k > frac + 1 {
        0
    } else {
        m >> k
    }
}

/// `1/x` for `x > 0` (Q frac) via normalize + Newton–Raphson.
///
/// `x` is scaled into `[1, 2)` by a power of two; three Newton iterations
/// on the classic `48/17 − 32/17·m` initial guess give ~2^-15 relative
/// accuracy; the result is denormalized by the inverse power of two.
/// Returns the format maximum for `x <= 0` (guarded by callers).
pub fn recip(x: i64, frac: u32) -> i64 {
    if x <= 0 {
        return i64::MAX >> 1;
    }
    let one = 1i64 << frac;
    let two = 2 * one;
    let e = msb_index(x) as i32;
    let s = e + 1 - frac as i32; // x = m * 2^s with m in [0.5, 1)
    let m = shift_signed(x, -s);
    // Classic initial guess, valid for m in [0.5, 1].
    let mut y = const_q(48.0 / 17.0, frac) - mul_q(const_q(32.0 / 17.0, frac), m, frac);
    for _ in 0..3 {
        y = mul_q(y, two - mul_q(m, y, frac), frac);
    }
    // 1/x = (1/m) * 2^{-s}
    shift_signed(y, -s)
}

/// `1/sqrt(x)` for `x > 0` (Q frac) via even-exponent normalize + Newton.
///
/// Four iterations of `y ← y(3 − x·y²)/2` from a linear initial guess on
/// `m ∈ [0.5, 2)`. Returns the format maximum for `x <= 0`.
pub fn rsqrt(x: i64, frac: u32) -> i64 {
    if x <= 0 {
        return i64::MAX >> 1;
    }
    let three = 3i64 << frac;
    let e = msb_index(x) as i32;
    let mut s = e - frac as i32; // x ≈ m * 2^s, m in [1,2)
    if s & 1 != 0 {
        s += 1; // make s even; m shifts into [0.5, 1)
    }
    let m = shift_signed(x, -s); // m in [0.5, 2)
    let mut y = const_q(1.649_9, frac) - mul_q(const_q(0.471_4, frac), m, frac);
    for _ in 0..4 {
        let y2 = mul_q(y, y, frac);
        let xy2 = mul_q(m, y2, frac);
        y = mul_q(y, (three - xy2) >> 1, frac);
    }
    // 1/sqrt(x) = (1/sqrt(m)) * 2^{-s/2}
    shift_signed(y, -s / 2)
}

/// Shift by a signed amount: positive = left, negative = arithmetic right.
#[inline]
pub fn shift_signed(x: i64, amount: i32) -> i64 {
    if amount >= 0 {
        x.checked_shl(amount as u32).unwrap_or(0)
    } else {
        let a = (-amount) as u32;
        if a >= 63 {
            if x < 0 {
                -1
            } else {
                0
            }
        } else {
            x >> a
        }
    }
}

/// Numerically-stable fixed-point SoftMax over a slice.
///
/// `y_i = exp(x_i − max) / Σ_j exp(x_j − max)`, everything in Q(frac).
pub fn softmax(xs: &[i64], frac: u32) -> Vec<i64> {
    assert!(!xs.is_empty(), "softmax of an empty slice");
    let m = *xs.iter().max().expect("non-empty");
    let exps: Vec<i64> = xs.iter().map(|&x| exp_neg(m - x, frac)).collect();
    let sum: i64 = exps.iter().sum();
    let r = recip(sum, frac);
    exps.iter().map(|&e| mul_q(e, r, frac)).collect()
}

/// Fixed-point logistic sigmoid `1/(1+e^{-x})`.
pub fn sigmoid(x: i64, frac: u32) -> i64 {
    let one = 1i64 << frac;
    let e = exp_neg(x.abs(), frac);
    let pos = recip(one + e, frac);
    if x >= 0 {
        pos
    } else {
        one - pos
    }
}

/// Fixed-point GELU via the sigmoid form `x · σ(1.702·x)`.
///
/// This is the approximation commonly used in efficient transformer
/// implementations; its error against the exact erf form is < 1e-2, far
/// below the Q7 quantization step of the paper's 15-bit format.
pub fn gelu(x: i64, frac: u32) -> i64 {
    let k = const_q(1.702, frac);
    let s = sigmoid(mul_q(k, x, frac), frac);
    mul_q(x, s, frac)
}

/// Fixed-point ReLU.
#[inline]
pub fn relu(x: i64) -> i64 {
    if x > 0 {
        x
    } else {
        0
    }
}

/// Fixed-point LayerNorm over a slice with affine parameters.
///
/// `y_i = γ_i · (x_i − µ)/sqrt(σ² + ε) + β_i` where µ, σ² are the mean and
/// variance of `xs`, all in Q(frac). `inv_n` must be `const_q(1/n, frac)`;
/// it is passed in because circuits bake it in as a constant.
pub fn layer_norm(xs: &[i64], gamma: &[i64], beta: &[i64], inv_n: i64, frac: u32) -> Vec<i64> {
    assert_eq!(xs.len(), gamma.len(), "gamma length mismatch");
    assert_eq!(xs.len(), beta.len(), "beta length mismatch");
    let sum: i64 = xs.iter().sum();
    let mean = mul_q(sum, inv_n, frac);
    let centered: Vec<i64> = xs.iter().map(|&x| x - mean).collect();
    let var_sum: i64 = centered.iter().map(|&c| mul_q(c, c, frac)).sum();
    let var = mul_q(var_sum, inv_n, frac) + const_q(1e-3, frac).max(1);
    let rs = rsqrt(var, frac);
    centered
        .iter()
        .zip(gamma.iter().zip(beta))
        .map(|(&c, (&g, &b))| mul_q(mul_q(c, rs, frac), g, frac) + b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAC: u32 = 12;

    fn q(x: f64) -> i64 {
        const_q(x, FRAC)
    }

    fn deq(x: i64) -> f64 {
        x as f64 / (1u64 << FRAC) as f64
    }

    #[test]
    fn exp2_frac_accuracy() {
        for i in 0..=64 {
            let f = i as f64 / 64.0;
            let got = deq(exp2_frac(q(f), FRAC));
            assert!((got - f.exp2()).abs() < 4e-3, "2^{f}: got {got}");
        }
    }

    #[test]
    fn exp_neg_accuracy() {
        for i in 0..100 {
            let x = i as f64 / 10.0;
            let got = deq(exp_neg(q(x), FRAC));
            assert!((got - (-x).exp()).abs() < 6e-3, "e^-{x}: got {got}");
        }
    }

    #[test]
    fn exp_neg_underflows_to_zero() {
        assert_eq!(exp_neg(q(40.0), FRAC), 0);
    }

    #[test]
    fn recip_accuracy_wide_range() {
        let ulp = 1.0 / (1u64 << FRAC) as f64;
        for &x in &[0.07f64, 0.5, 1.0, 1.7, 3.0, 10.0, 31.0, 200.0] {
            let got = deq(recip(q(x), FRAC));
            // Tolerance: 0.5% relative, floored at one ulp of the output
            // representation (unavoidable quantization for tiny results).
            let tol = (5e-3 / x).max(1.5 * ulp);
            assert!((got - 1.0 / x).abs() < tol, "1/{x}: got {got}");
        }
    }

    #[test]
    fn rsqrt_accuracy_wide_range() {
        for &x in &[0.1f64, 0.3, 1.0, 2.0, 5.0, 30.0, 100.0] {
            let got = deq(rsqrt(q(x), FRAC));
            let want = 1.0 / x.sqrt();
            assert!((got - want).abs() / want < 6e-3, "rsqrt({x}): got {got} want {want}");
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let xs: Vec<i64> = [-1.0f64, 0.0, 2.0, 0.5].iter().map(|&x| q(x)).collect();
        let ys = softmax(&xs, FRAC);
        let total: f64 = ys.iter().map(|&y| deq(y)).sum();
        assert!((total - 1.0).abs() < 0.02, "sum {total}");
        assert!(ys[2] > ys[3] && ys[3] > ys[1] && ys[1] > ys[0]);
        let exact = {
            let m = 2.0f64;
            let e: Vec<f64> = [-1.0f64, 0.0, 2.0, 0.5].iter().map(|x| (x - m).exp()).collect();
            let s: f64 = e.iter().sum();
            e.into_iter().map(|v| v / s).collect::<Vec<_>>()
        };
        for (y, w) in ys.iter().zip(exact) {
            assert!((deq(*y) - w).abs() < 0.01, "softmax entry {} vs {w}", deq(*y));
        }
    }

    #[test]
    fn sigmoid_symmetry() {
        let one = 1i64 << FRAC;
        for i in -40..=40 {
            let x = q(i as f64 / 5.0);
            let s = sigmoid(x, FRAC);
            let s_neg = sigmoid(-x, FRAC);
            assert!((s + s_neg - one).abs() <= 2, "σ(x)+σ(-x)≈1 failed at {i}");
        }
    }

    #[test]
    fn gelu_matches_float() {
        for i in -30..=30 {
            let x = i as f64 / 5.0;
            let got = deq(gelu(q(x), FRAC));
            let want = x / (1.0 + (-1.702 * x).exp());
            assert!((got - want).abs() < 0.02, "gelu({x}): got {got} want {want}");
        }
    }

    #[test]
    fn layer_norm_normalizes() {
        let xs: Vec<i64> = (0..8).map(|i| q(i as f64 / 2.0)).collect();
        let gamma = vec![q(1.0); 8];
        let beta = vec![0i64; 8];
        let inv_n = q(1.0 / 8.0);
        let ys = layer_norm(&xs, &gamma, &beta, inv_n, FRAC);
        let mean: f64 = ys.iter().map(|&y| deq(y)).sum::<f64>() / 8.0;
        let var: f64 = ys.iter().map(|&y| (deq(y) - mean).powi(2)).sum::<f64>() / 8.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn relu_clamps() {
        assert_eq!(relu(-5), 0);
        assert_eq!(relu(7), 7);
    }

    #[test]
    fn msb_index_matches_log2() {
        for e in 0..62 {
            assert_eq!(msb_index(1i64 << e), e);
            if e > 1 {
                assert_eq!(msb_index((1i64 << e) + 1), e);
            }
        }
    }
}
