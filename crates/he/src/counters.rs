//! Operation counters.
//!
//! Every evaluator op bumps a counter; the Primer cost model extrapolates
//! paper-scale latency from these counts times per-op costs measured by
//! Criterion, and integration tests assert the analytic counts match the
//! instrumented ones.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of homomorphic operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Elementary Galois rotations (each = one key switch).
    pub rotations: u64,
    /// Ciphertext × plaintext multiplications.
    pub mul_plain: u64,
    /// Ciphertext + ciphertext additions.
    pub add: u64,
    /// Ciphertext + plaintext additions.
    pub add_plain: u64,
    /// Fresh encryptions.
    pub encrypt: u64,
    /// Decryptions.
    pub decrypt: u64,
    /// Ciphertext × ciphertext multiplications (THE-X baseline only).
    pub mul_ct: u64,
    /// Relinearizations.
    pub relin: u64,
    /// Multiplication-mask preparations (`prepare_mul_plain`: centered
    /// lift + forward NTTs). The prepared-weights plane moves all
    /// weight-mask preparation to session Setup, so a prepared session's
    /// offline phase must show zero of these.
    pub mask_prep: u64,
    /// Whole-polynomial NTT transforms (forward or inverse), counted
    /// analytically at each domain crossing: a hoist is `1 + D` (one
    /// inverse of `c1` plus one forward per key-switch digit), a
    /// plaintext add is 1, an encryption is 2, and so on. This is the
    /// cost unit rotations are priced in (`1 + D` NTTs each after
    /// hoisting), so layout changes that trade rotations for masks show
    /// up here even when wall-clock is noisy.
    pub ntt: u64,
}

impl OpCounts {
    /// Element-wise difference (`self` must dominate `earlier`).
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            rotations: self.rotations - earlier.rotations,
            mul_plain: self.mul_plain - earlier.mul_plain,
            add: self.add - earlier.add,
            add_plain: self.add_plain - earlier.add_plain,
            encrypt: self.encrypt - earlier.encrypt,
            decrypt: self.decrypt - earlier.decrypt,
            mul_ct: self.mul_ct - earlier.mul_ct,
            relin: self.relin - earlier.relin,
            mask_prep: self.mask_prep - earlier.mask_prep,
            ntt: self.ntt - earlier.ntt,
        }
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            rotations: self.rotations + other.rotations,
            mul_plain: self.mul_plain + other.mul_plain,
            add: self.add + other.add,
            add_plain: self.add_plain + other.add_plain,
            encrypt: self.encrypt + other.encrypt,
            decrypt: self.decrypt + other.decrypt,
            mul_ct: self.mul_ct + other.mul_ct,
            relin: self.relin + other.relin,
            mask_prep: self.mask_prep + other.mask_prep,
            ntt: self.ntt + other.ntt,
        }
    }

    /// The counts as `(metric name, value)` pairs under the `he.`
    /// namespace — the registry view of this struct (DESIGN.md §13).
    pub fn as_named(&self) -> [(&'static str, u64); 10] {
        [
            ("he.rotations", self.rotations),
            ("he.mul_plain", self.mul_plain),
            ("he.add", self.add),
            ("he.add_plain", self.add_plain),
            ("he.encrypt", self.encrypt),
            ("he.decrypt", self.decrypt),
            ("he.mul_ct", self.mul_ct),
            ("he.relin", self.relin),
            ("he.mask_prep", self.mask_prep),
            ("he.ntt", self.ntt),
        ]
    }

    /// Publishes this snapshot as counter increments into `registry`
    /// (names per [`OpCounts::as_named`]). Call with a *delta* at a
    /// phase boundary — the registry accumulates; the struct stays the
    /// transient carrier.
    pub fn publish(&self, registry: &primer_obs::Registry) {
        for (name, v) in self.as_named() {
            if v != 0 {
                registry.counter(name).add(v);
            }
        }
    }

    /// Total op count (all kinds). `ntt` is excluded: it is a derived
    /// cost measure of the ops above, not an operation of its own, and
    /// including it would double-count.
    pub fn total(&self) -> u64 {
        self.rotations
            + self.mul_plain
            + self.add
            + self.add_plain
            + self.encrypt
            + self.decrypt
            + self.mul_ct
            + self.relin
            + self.mask_prep
    }
}

/// Interior-mutable counter cell owned by an evaluator.
///
/// Backed by per-field atomics so an `Evaluator`/`Encryptor` can be
/// shared across threads (the TCP serving stack runs a session's offline
/// producer concurrently with its online worker).
#[derive(Debug, Default)]
pub struct OpCounters {
    rotations: AtomicU64,
    mul_plain: AtomicU64,
    add: AtomicU64,
    add_plain: AtomicU64,
    encrypt: AtomicU64,
    decrypt: AtomicU64,
    mul_ct: AtomicU64,
    relin: AtomicU64,
    mask_prep: AtomicU64,
    ntt: AtomicU64,
}

impl OpCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> OpCounts {
        OpCounts {
            rotations: self.rotations.load(Ordering::Relaxed),
            mul_plain: self.mul_plain.load(Ordering::Relaxed),
            add: self.add.load(Ordering::Relaxed),
            add_plain: self.add_plain.load(Ordering::Relaxed),
            encrypt: self.encrypt.load(Ordering::Relaxed),
            decrypt: self.decrypt.load(Ordering::Relaxed),
            mul_ct: self.mul_ct.load(Ordering::Relaxed),
            relin: self.relin.load(Ordering::Relaxed),
            mask_prep: self.mask_prep.load(Ordering::Relaxed),
            ntt: self.ntt.load(Ordering::Relaxed),
        }
    }

    /// Resets everything to zero.
    pub fn reset(&self) {
        self.rotations.store(0, Ordering::Relaxed);
        self.mul_plain.store(0, Ordering::Relaxed);
        self.add.store(0, Ordering::Relaxed);
        self.add_plain.store(0, Ordering::Relaxed);
        self.encrypt.store(0, Ordering::Relaxed);
        self.decrypt.store(0, Ordering::Relaxed);
        self.mul_ct.store(0, Ordering::Relaxed);
        self.relin.store(0, Ordering::Relaxed);
        self.mask_prep.store(0, Ordering::Relaxed);
        self.ntt.store(0, Ordering::Relaxed);
    }

    /// Adds a whole snapshot at once — used to merge a scratch
    /// evaluator's counts (e.g. one offline bundle produced on the
    /// thread pool) back into the owning session's totals.
    pub fn add(&self, delta: &OpCounts) {
        self.rotations.fetch_add(delta.rotations, Ordering::Relaxed);
        self.mul_plain.fetch_add(delta.mul_plain, Ordering::Relaxed);
        self.add.fetch_add(delta.add, Ordering::Relaxed);
        self.add_plain.fetch_add(delta.add_plain, Ordering::Relaxed);
        self.encrypt.fetch_add(delta.encrypt, Ordering::Relaxed);
        self.decrypt.fetch_add(delta.decrypt, Ordering::Relaxed);
        self.mul_ct.fetch_add(delta.mul_ct, Ordering::Relaxed);
        self.relin.fetch_add(delta.relin, Ordering::Relaxed);
        self.mask_prep.fetch_add(delta.mask_prep, Ordering::Relaxed);
        self.ntt.fetch_add(delta.ntt, Ordering::Relaxed);
    }

    pub(crate) fn bump(&self, f: impl FnOnce(&mut OpCounts)) {
        // Every caller only increments, so the closure's effect on a
        // zeroed snapshot is exactly the delta to add.
        let mut delta = OpCounts::default();
        f(&mut delta);
        self.rotations.fetch_add(delta.rotations, Ordering::Relaxed);
        self.mul_plain.fetch_add(delta.mul_plain, Ordering::Relaxed);
        self.add.fetch_add(delta.add, Ordering::Relaxed);
        self.add_plain.fetch_add(delta.add_plain, Ordering::Relaxed);
        self.encrypt.fetch_add(delta.encrypt, Ordering::Relaxed);
        self.decrypt.fetch_add(delta.decrypt, Ordering::Relaxed);
        self.mul_ct.fetch_add(delta.mul_ct, Ordering::Relaxed);
        self.relin.fetch_add(delta.relin, Ordering::Relaxed);
        self.mask_prep.fetch_add(delta.mask_prep, Ordering::Relaxed);
        self.ntt.fetch_add(delta.ntt, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_accumulates_deltas_into_a_registry() {
        let reg = primer_obs::Registry::new();
        let a = OpCounts { rotations: 2, ntt: 5, ..Default::default() };
        let b = OpCounts { rotations: 1, mask_prep: 7, ..Default::default() };
        a.publish(&reg);
        b.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("he.rotations"), Some(3));
        assert_eq!(snap.counter("he.ntt"), Some(5));
        assert_eq!(snap.counter("he.mask_prep"), Some(7));
        // Zero fields never register (keeps /stats output dense).
        assert_eq!(snap.counter("he.mul_ct"), None);
        assert_eq!(a.as_named().map(|(_, v)| v).iter().sum::<u64>(), 7);
    }

    #[test]
    fn bump_and_diff() {
        let c = OpCounters::new();
        c.bump(|x| x.rotations += 3);
        let early = c.snapshot();
        c.bump(|x| {
            x.rotations += 2;
            x.add += 1;
        });
        let late = c.snapshot();
        let d = late.since(&early);
        assert_eq!(d.rotations, 2);
        assert_eq!(d.add, 1);
        assert_eq!(late.total(), 6);
    }

    #[test]
    fn reset_zeroes() {
        let c = OpCounters::new();
        c.bump(|x| x.mul_plain += 9);
        c.reset();
        assert_eq!(c.snapshot(), OpCounts::default());
    }
}
