//! The client side: connect, negotiate, run queries over a pipelined
//! session, collect the server's summary.
//!
//! The v4 API is [`ClientBuilder`]: chainable configuration, one-shot
//! runs ([`ClientBuilder::run`] / [`ClientBuilder::run_random`]), and
//! an incremental [`SessionHandle`] that can [`suspend`] a session
//! mid-batch — parking its unconsumed offline bundles client-side and
//! a matching image server-side — and [`resume`] it later against the
//! same server or a restarted one, with bit-identical logits.
//!
//! [`suspend`]: SessionHandle::suspend
//! [`resume`]: SuspendedSession::resume

use crate::proto::{
    ClientHello, ProtoError, ServerWelcome, SessionSummary, StatsRequest, StatsSnapshot,
    SuspendReply, SuspendRequest,
};
use crate::{maybe_shaped, system_for, CH_CONTROL, CH_OFFLINE, CH_ONLINE};
use primer_core::{
    argmax_logits, build_session_circuits, ClientOnline, ClientSession, GcMode, ProtocolVariant,
    SuspendedClientSession,
};
use primer_he::HeError;
use primer_math::rng::seeded;
use primer_net::tcp::TcpConnection;
use primer_net::{MeteredTransport, Meter, NetworkModel, TrafficSnapshot};
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};
use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Everything a client run is configured with. Prefer [`ClientBuilder`]
/// over filling this in by hand.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Protocol variant to request.
    pub variant: ProtocolVariant,
    /// GC execution mode to request.
    pub mode: GcMode,
    /// Offline pool bound to pipeline with.
    pub pool: usize,
    /// Client-side session seed (masks, keys, encryption randomness).
    ///
    /// **Privacy:** two sessions run from the same seed reuse the same
    /// mask stream, so the server can difference their masked inputs
    /// and learn how the private queries differ. The default is fresh
    /// OS entropy per config; pin a seed only for reproducibility
    /// experiments with non-sensitive inputs.
    pub seed: u64,
    /// Optional traffic shaping on the client's channels (one shared
    /// link shaper covers all channels of the connection).
    pub shape: Option<NetworkModel>,
}

impl ClientConfig {
    /// Defaults: the full Primer variant, simulated GC, pool of 2, and
    /// a fresh entropy-derived session seed (see [`ClientConfig::seed`]).
    #[deprecated(note = "use `ClientBuilder::new(variant)` — the chainable v4 client API")]
    pub fn new(variant: ProtocolVariant) -> Self {
        defaults(variant)
    }
}

fn defaults(variant: ProtocolVariant) -> ClientConfig {
    ClientConfig { variant, mode: GcMode::Simulated, pool: 2, seed: entropy_seed(), shape: None }
}

/// A fresh unpredictable seed from OS entropy (`RandomState` hashes
/// per-process random keys), without a dependency on an OS rng crate.
fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(std::time::UNIX_EPOCH.elapsed().map_or(0, |d| d.subsec_nanos() as u64));
    h.finish()
}

/// Chainable client constructor — the v4 client API.
///
/// ```no_run
/// # use primer_serve::ClientBuilder;
/// # use primer_core::ProtocolVariant;
/// let outcome = ClientBuilder::new(ProtocolVariant::Fpc)
///     .pool(4)
///     .run_random("127.0.0.1:7000", 8)
///     .expect("run");
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    cfg: ClientConfig,
}

impl ClientBuilder {
    /// Starts from the defaults of [`ClientConfig`].
    pub fn new(variant: ProtocolVariant) -> Self {
        Self { cfg: defaults(variant) }
    }

    /// Builds on an existing config (the deprecated positional API's
    /// escape hatch).
    pub fn from_config(cfg: ClientConfig) -> Self {
        Self { cfg }
    }

    /// GC execution mode to request.
    pub fn mode(mut self, mode: GcMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Offline pool bound to pipeline with.
    pub fn pool(mut self, pool: usize) -> Self {
        self.cfg.pool = pool;
        self
    }

    /// Pins the client session seed (see [`ClientConfig::seed`] for the
    /// privacy caveat).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Traffic shaping on the client's channels.
    pub fn shape(mut self, shape: Option<NetworkModel>) -> Self {
        self.cfg.shape = shape;
        self
    }

    /// Connects, negotiates a session and runs `queries` private
    /// inferences through it, with offline bundle production pipelined
    /// on its own connection channel.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on socket failures, handshake rejection, a busy
    /// server under a shedding policy, or a model the queries do not
    /// fit.
    pub fn run<A: ToSocketAddrs>(
        &self,
        addr: A,
        queries: &[Vec<usize>],
    ) -> Result<RunOutcome, ClientError> {
        // Shape-check before the expensive Setup work: the handshake
        // announces the model, and a session that would only run
        // ill-fitting queries should fail before any key material
        // flows.
        let mut handle = self.open_checked(addr, queries.len(), |model| {
            for (i, q) in queries.iter().enumerate() {
                if q.len() != model.n_tokens {
                    return Err(ClientError::Config(format!(
                        "query {i} has {} tokens, the negotiated model takes {}",
                        q.len(),
                        model.n_tokens
                    )));
                }
                if let Some(&tok) = q.iter().find(|&&tok| tok >= model.vocab) {
                    return Err(ClientError::Config(format!(
                        "query {i} token {tok} outside vocab {}",
                        model.vocab
                    )));
                }
            }
            Ok(())
        })?;
        for q in queries {
            handle.infer(q)?;
        }
        handle.finish()
    }

    /// Like [`ClientBuilder::run`], but samples `n` random token
    /// sequences from the session seed once the model shape is known
    /// (the handshake announces it) — what `primer-client` runs without
    /// `--tokens`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on socket failures, handshake rejection, or a
    /// busy server under a shedding policy.
    pub fn run_random<A: ToSocketAddrs>(&self, addr: A, n: usize) -> Result<RunOutcome, ClientError> {
        let mut handle = self.open(addr, n)?;
        for q in sample_random_queries(handle.model(), self.cfg.seed, n) {
            handle.infer(&q)?;
        }
        handle.finish()
    }

    /// Connects and negotiates a session booking `count` queries, but
    /// runs none of them yet: the caller drives inference one query at
    /// a time through the returned [`SessionHandle`] (and may suspend
    /// between queries).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on socket failures, handshake rejection, or a
    /// busy server under a shedding policy ([`ClientError::Busy`]).
    pub fn open<A: ToSocketAddrs>(&self, addr: A, count: usize) -> Result<SessionHandle, ClientError> {
        self.open_checked(addr, count, |_| Ok(()))
    }

    /// [`ClientBuilder::open`] with a post-welcome check: `check` runs
    /// once the model is known but before any Setup work.
    fn open_checked<A: ToSocketAddrs>(
        &self,
        addr: A,
        count: usize,
        check: impl FnOnce(&TransformerConfig) -> Result<(), ClientError>,
    ) -> Result<SessionHandle, ClientError> {
        let cfg = &self.cfg;
        let mut conn = TcpConnection::connect(addr)?;
        let shaper = cfg.shape.map(primer_net::LinkShaper::new);
        let online_t = maybe_shaped(conn.take_channel(CH_ONLINE), shaper.as_ref());
        let offline_t = maybe_shaped(conn.take_channel(CH_OFFLINE), shaper.as_ref());
        let control = maybe_shaped(conn.take_channel(CH_CONTROL), shaper.as_ref());

        control.send(
            &ClientHello {
                variant: cfg.variant,
                mode: cfg.mode,
                queries: count as u32,
                pool: cfg.pool as u32,
                resume: None,
            }
            .encode(),
        );
        let welcome = decode_welcome(&recv_handshake(&*control)?)?;
        let model = welcome.model.clone();
        check(&model)?;
        // The pool the session actually runs with is the *negotiated*
        // one (our request clamped by the server's cap): production is
        // batched by it, which shapes the wire schedule, so both
        // parties must agree.
        let pool = (welcome.pool as usize).max(1);

        // Reconstruct the identical quantized model from the negotiated
        // seed: the GC step circuits bake in LayerNorm constants, so
        // the garbler needs them too.
        let sys =
            system_for(welcome.profile, &model).map_err(|e| ClientError::Config(e.to_string()))?;
        let weights = TransformerWeights::random(&model, &mut seeded(welcome.weight_seed));
        let fixed = Arc::new(FixedTransformer::quantize(&model, &weights, sys.pipeline));
        let circuits = Arc::new(build_session_circuits(&sys, cfg.variant, &fixed));

        let session = ClientSession::setup(
            sys,
            cfg.variant,
            cfg.mode,
            fixed,
            circuits,
            cfg.seed,
            count,
            pool,
            &*online_t,
        );
        let (producer, online) = session.into_pipelined(pool);

        let offline_meter = Arc::clone(offline_t.meter());
        let producer_handle = std::thread::Builder::new()
            .name("offline-producer-client".into())
            .spawn(move || producer.run(&*offline_t))
            .expect("spawn offline producer");

        Ok(SessionHandle {
            cfg: cfg.clone(),
            session_id: welcome.session_id,
            model,
            online,
            online_t,
            control,
            offline_meter: Some(offline_meter),
            producer: Some(producer_handle),
            booked: count,
            predictions: Vec::with_capacity(count),
            prior_traffic: TrafficSnapshot::default(),
        })
    }
}

/// Blocking control-channel read for handshake-stage replies that
/// survives a vanished peer. A server that accepts the socket but exits
/// before answering (a draining server discards hellos once its budget
/// is met) surfaces as [`ProtoError::Truncated`] — which the retry
/// classifiers treat as transient — instead of the transport's
/// mid-protocol panic, which is reserved for drops *inside* an admitted
/// session.
fn recv_handshake(t: &dyn MeteredTransport) -> Result<Vec<u8>, ClientError> {
    use primer_net::PollRecv;
    loop {
        match t.try_recv() {
            PollRecv::Frame(b) => return Ok(b),
            PollRecv::Empty => std::thread::sleep(std::time::Duration::from_millis(1)),
            PollRecv::Disconnected => return Err(ClientError::Proto(ProtoError::Truncated)),
            PollRecv::Unsupported => return Ok(t.recv()),
        }
    }
}

/// Decodes a welcome, surfacing a shed handshake as the typed
/// [`ClientError::Busy`].
fn decode_welcome(bytes: &[u8]) -> Result<ServerWelcome, ClientError> {
    match ServerWelcome::decode(bytes) {
        Ok(w) => Ok(w),
        Err(ProtoError::Busy { active, cap }) => Err(ClientError::Busy { active, cap }),
        Err(e) => Err(e.into()),
    }
}

/// Samples `n` random token sequences for `model` from `seed` — the
/// query stream [`ClientBuilder::run_random`] uses (public so callers
/// driving a [`SessionHandle`] query by query can reproduce it).
pub fn sample_random_queries(model: &TransformerConfig, seed: u64, n: usize) -> Vec<Vec<usize>> {
    use rand::Rng;
    let mut rng = seeded(seed ^ 0x70_6b_65_6e);
    (0..n).map(|_| (0..model.n_tokens).map(|_| rng.gen_range(0..model.vocab)).collect()).collect()
}

/// An open serving session the caller drives query by query.
///
/// Obtained from [`ClientBuilder::open`] (fresh) or
/// [`SuspendedSession::resume`]. Run queries with
/// [`SessionHandle::infer`]; between queries the session may
/// [`SessionHandle::suspend`]; once every booked query ran,
/// [`SessionHandle::finish`] collects the server's summary.
pub struct SessionHandle {
    cfg: ClientConfig,
    session_id: u64,
    model: TransformerConfig,
    online: ClientOnline,
    online_t: Box<dyn MeteredTransport + Send>,
    control: Box<dyn MeteredTransport + Send>,
    /// `None` on a resumed session — its offline phase completed before
    /// suspension, so there is no offline channel or producer.
    offline_meter: Option<Arc<Meter>>,
    producer: Option<JoinHandle<Result<(), HeError>>>,
    booked: usize,
    predictions: Vec<Prediction>,
    /// Traffic accumulated before the last suspension (resumed
    /// sessions report cumulative totals).
    prior_traffic: TrafficSnapshot,
}

impl SessionHandle {
    /// The server-assigned session id (the resume token, if suspended).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The negotiated model configuration.
    pub fn model(&self) -> &TransformerConfig {
        &self.model
    }

    /// Queries booked but not yet run.
    pub fn remaining(&self) -> usize {
        self.booked - self.predictions.len()
    }

    /// Runs one private inference.
    ///
    /// # Errors
    ///
    /// [`ClientError::Session`] when every booked query already ran or
    /// a mid-session flight is malformed.
    pub fn infer(&mut self, tokens: &[usize]) -> Result<Prediction, ClientError> {
        if self.remaining() == 0 {
            return Err(ClientError::Session(format!(
                "all {} booked queries already ran; call finish()",
                self.booked
            )));
        }
        let logits = self
            .online
            .infer(tokens, &*self.online_t)
            .map_err(|e| ClientError::Session(e.to_string()))?;
        let p = Prediction { predicted: argmax_logits(&logits), logits };
        self.predictions.push(p.clone());
        Ok(p)
    }

    /// Suspends the session between queries: asks the server to park
    /// its half, drains this side's offline pipeline into memory, and
    /// returns a [`SuspendedSession`] that can resume later — against
    /// this server process or a restarted one pointed at the same
    /// suspend directory.
    ///
    /// Consumes the handle either way: if the server refuses (garbled
    /// mode, no suspend directory), the session is abandoned, not
    /// resumable — check refusal conditions before calling.
    ///
    /// # Errors
    ///
    /// [`ClientError::Session`] on refusal, on a garbled-mode session
    /// (one-time labels are not serializable — checked client-side
    /// before bothering the server), or when nothing remains to
    /// suspend.
    pub fn suspend(mut self) -> Result<SuspendedSession, ClientError> {
        if matches!(self.cfg.mode, GcMode::Garbled) {
            return Err(ClientError::Session(
                "garbled sessions cannot suspend (one-time labels are not serializable)".into(),
            ));
        }
        if self.remaining() == 0 {
            return Err(ClientError::Session(
                "all booked queries already ran; call finish(), not suspend()".into(),
            ));
        }
        self.control.send(&SuspendRequest.encode());
        // The server acks BEFORE draining, so both sides drain their
        // offline pipelines concurrently — the remaining bundles flow
        // in the normal lockstep schedule.
        match SuspendReply::decode(&self.control.recv())? {
            SuspendReply::Refused(reason) => {
                Err(ClientError::Session(format!("server refused to suspend: {reason}")))
            }
            SuspendReply::Parked => Err(ClientError::Session(
                "parked confirmation arrived before the suspend ack".into(),
            )),
            SuspendReply::Ack { token, remaining } => {
                if remaining != self.remaining() as u64 {
                    return Err(ClientError::Session(format!(
                        "server acked {remaining} remaining queries, client has {}",
                        self.remaining()
                    )));
                }
                let parked = self.online.suspend();
                if let Some(h) = self.producer.take() {
                    h.join()
                        .map_err(|_| {
                            ClientError::Session("offline producer thread panicked".into())
                        })?
                        .map_err(|e| ClientError::Session(e.to_string()))?;
                }
                // Both drains are done; now wait for the server to
                // confirm the image is durably on disk, so a suspend()
                // that returned can always be resumed.
                match SuspendReply::decode(&self.control.recv())? {
                    SuspendReply::Parked => {}
                    other => {
                        return Err(ClientError::Session(format!(
                            "expected parked confirmation, got {other:?}"
                        )))
                    }
                }
                let mut traffic =
                    self.prior_traffic.plus(&TrafficSnapshot::capture(self.online_t.meter()));
                if let Some(m) = &self.offline_meter {
                    traffic = traffic.plus(&TrafficSnapshot::capture(m));
                }
                Ok(SuspendedSession {
                    token,
                    parked,
                    cfg: self.cfg,
                    model: self.model,
                    booked: self.booked,
                    predictions: self.predictions,
                    traffic,
                })
            }
        }
    }

    /// Collects the server's end-of-session summary once every booked
    /// query ran.
    ///
    /// # Errors
    ///
    /// [`ClientError::Session`] when queries remain unserved.
    pub fn finish(mut self) -> Result<RunOutcome, ClientError> {
        if self.remaining() != 0 {
            return Err(ClientError::Session(format!(
                "{} of {} booked queries not yet run",
                self.remaining(),
                self.booked
            )));
        }
        let summary = SessionSummary::decode(&self.control.recv())?;
        if let Some(h) = self.producer.take() {
            h.join()
                .map_err(|_| ClientError::Session("offline producer thread panicked".into()))?
                .map_err(|e| ClientError::Session(e.to_string()))?;
        }
        let mut client_traffic =
            self.prior_traffic.plus(&TrafficSnapshot::capture(self.online_t.meter()));
        if let Some(m) = &self.offline_meter {
            client_traffic = client_traffic.plus(&TrafficSnapshot::capture(m));
        }
        Ok(RunOutcome {
            session_id: self.session_id,
            model: self.model,
            predictions: self.predictions,
            summary,
            client_traffic,
        })
    }
}

/// A session parked by [`SessionHandle::suspend`]: the client half
/// (keys + unconsumed offline bundles) in memory, the server half on
/// disk under the resume token.
pub struct SuspendedSession {
    token: u64,
    parked: SuspendedClientSession,
    cfg: ClientConfig,
    model: TransformerConfig,
    booked: usize,
    predictions: Vec<Prediction>,
    traffic: TrafficSnapshot,
}

impl SuspendedSession {
    /// The resume token (the session id on the serving side).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Queries this session can still run.
    pub fn remaining(&self) -> usize {
        self.parked.remaining()
    }

    /// Reconnects and resumes the session — against the same server
    /// process or a restarted one pointed at the same suspend
    /// directory. The returned handle continues exactly where the
    /// suspended one stopped, with bit-identical remaining logits.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on socket failures or when the server no longer
    /// recognizes the token (consumed, restarted without the suspend
    /// directory, or reconfigured).
    pub fn resume<A: ToSocketAddrs>(self, addr: A) -> Result<SessionHandle, ClientError> {
        let parts = self.handshake(addr)?;
        Ok(self.attach(parts))
    }

    /// Like [`SuspendedSession::resume`], but retries transient
    /// failures until `timeout` elapses — the restart flow: the client
    /// keeps knocking while the old server exits and the new one binds.
    /// Transient means socket-level errors plus connections the server
    /// dropped without answering (a draining server discards hellos
    /// once its budget is met, which surfaces as a truncated frame).
    /// Deliberate answers (token rejected, busy, protocol mismatch)
    /// stay immediate: retrying cannot fix them.
    ///
    /// # Errors
    ///
    /// The last transient error once `timeout` elapses, or any
    /// non-retryable error as soon as it occurs.
    pub fn resume_retrying<A: ToSocketAddrs + Clone>(
        self,
        addr: A,
        timeout: std::time::Duration,
    ) -> Result<SessionHandle, ClientError> {
        let start = std::time::Instant::now();
        loop {
            let transient = |e: &ClientError| {
                matches!(e, ClientError::Io(_) | ClientError::Proto(ProtoError::Truncated))
            };
            match self.handshake(addr.clone()) {
                Ok(parts) => return Ok(self.attach(parts)),
                Err(e) if transient(&e) && start.elapsed() < timeout => {
                    std::thread::sleep(std::time::Duration::from_millis(500));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The resume handshake: connect, identify by token, validate the
    /// welcome. Borrows `self` so a socket-level failure leaves the
    /// parked session intact for a retry.
    fn handshake<A: ToSocketAddrs>(&self, addr: A) -> Result<ResumeParts, ClientError> {
        let cfg = &self.cfg;
        let mut conn = TcpConnection::connect(addr)?;
        let shaper = cfg.shape.map(primer_net::LinkShaper::new);
        let online_t = maybe_shaped(conn.take_channel(CH_ONLINE), shaper.as_ref());
        let control = maybe_shaped(conn.take_channel(CH_CONTROL), shaper.as_ref());
        control.send(
            &ClientHello {
                variant: cfg.variant,
                mode: GcMode::Simulated,
                queries: self.parked.remaining() as u32,
                pool: cfg.pool as u32,
                resume: Some(self.token),
            }
            .encode(),
        );
        let welcome = decode_welcome(&recv_handshake(&*control)?)?;
        if welcome.session_id != self.token {
            return Err(ClientError::Session(format!(
                "server resumed session {} for token {}",
                welcome.session_id, self.token
            )));
        }
        Ok(ResumeParts { online_t, control })
    }

    fn attach(self, parts: ResumeParts) -> SessionHandle {
        SessionHandle {
            cfg: self.cfg,
            session_id: self.token,
            model: self.model,
            online: self.parked.into_online(),
            online_t: parts.online_t,
            control: parts.control,
            offline_meter: None,
            producer: None,
            booked: self.booked,
            predictions: self.predictions,
            prior_traffic: self.traffic,
        }
    }
}

/// The transports a successful resume handshake produced (no offline
/// channel: the offline phase completed before suspension).
struct ResumeParts {
    online_t: Box<dyn MeteredTransport + Send>,
    control: Box<dyn MeteredTransport + Send>,
}

/// One query's reconstructed result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    /// Reconstructed fixed-point logits.
    pub logits: Vec<i64>,
    /// Argmax class (lowest index wins ties, like the engine).
    pub predicted: usize,
}

/// What a completed client run returns.
#[derive(Debug)]
pub struct RunOutcome {
    /// Server-assigned session id.
    pub session_id: u64,
    /// The negotiated model configuration.
    pub model: TransformerConfig,
    /// Per-query results, in submission order.
    pub predictions: Vec<Prediction>,
    /// The server's end-of-session stats.
    pub summary: SessionSummary,
    /// Client-side metered traffic (online + offline channels; the
    /// control channel's few handshake bytes are not session traffic).
    pub client_traffic: TrafficSnapshot,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Handshake/stats decoding failure or server rejection.
    Proto(ProtoError),
    /// The server shed this session at admission (worker cap reached
    /// under a shedding policy) — retry later.
    Busy {
        /// Sessions the server was serving when it shed this one.
        active: u64,
        /// The server's concurrent-session cap.
        cap: u64,
    },
    /// The negotiated model cannot be instantiated or the queries do
    /// not fit it.
    Config(String),
    /// A mid-session flight was malformed (truncated or forged bytes) —
    /// the session failed partway through.
    Session(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Busy { active, cap } => {
                write!(f, "server busy: {active}/{cap} sessions, try again later")
            }
            ClientError::Config(m) => write!(f, "config: {m}"),
            ClientError::Session(m) => write!(f, "session: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Connects to a server, negotiates a session and runs `queries`
/// private inferences through it.
///
/// # Errors
///
/// [`ClientError`] on socket failures, handshake rejection, or a model
/// the queries do not fit.
#[deprecated(note = "use `ClientBuilder::new(variant)…run(addr, queries)`")]
pub fn run_queries<A: ToSocketAddrs>(
    addr: A,
    cfg: &ClientConfig,
    queries: &[Vec<usize>],
) -> Result<RunOutcome, ClientError> {
    ClientBuilder::from_config(cfg.clone()).run(addr, queries)
}

/// Like [`run_queries`], but samples `n` random token sequences from
/// `cfg.seed` once the model shape is known.
///
/// # Errors
///
/// [`ClientError`] on socket failures or handshake rejection.
#[deprecated(note = "use `ClientBuilder::new(variant)…run_random(addr, n)`")]
pub fn run_random_queries<A: ToSocketAddrs>(
    addr: A,
    cfg: &ClientConfig,
    n: usize,
) -> Result<RunOutcome, ClientError> {
    ClientBuilder::from_config(cfg.clone()).run_random(addr, n)
}

/// Polls a running server's live `/stats` surface: connects, sends one
/// [`StatsRequest`] on the control channel and decodes the snapshot.
/// The poll is answered by the event loop itself — it never occupies a
/// session worker slot, so it works even while every worker is busy
/// (or every hello is being shed).
///
/// # Errors
///
/// [`ClientError`] on socket failures or a malformed/rejected reply.
pub fn poll_stats<A: ToSocketAddrs>(addr: A) -> Result<StatsSnapshot, ClientError> {
    let mut conn = TcpConnection::connect(addr)?;
    let control = maybe_shaped(conn.take_channel(CH_CONTROL), None);
    control.send(&StatsRequest::new().encode());
    Ok(StatsSnapshot::decode(&recv_handshake(&*control)?)?)
}
