//! Negacyclic number-theoretic transform.
//!
//! Pointwise multiplication in the transformed domain corresponds to
//! multiplication in `Z_p[x]/(x^n + 1)`. The butterflies use Shoup
//! precomputed twiddles (the hot path of the whole HE layer).
//!
//! The output ordering of [`NttTables::forward`] is an implementation
//! detail; all users either operate pointwise (ciphertext arithmetic) or
//! recover the evaluation-point ordering empirically (the batching
//! encoder), so no external contract depends on it.

use crate::modulus::Modulus;
use crate::simd::{self, SimdLevel};

/// Precomputed tables for a negacyclic NTT of size `n` modulo `p`.
#[derive(Debug, Clone)]
pub struct NttTables {
    n: usize,
    log_n: u32,
    modulus: Modulus,
    /// The bit-reversal permutation of `0..n`, computed once per table
    /// (PR 10; `bit_reverse` used to run per element) and shared with
    /// every consumer that needs the transform's access order — the
    /// twiddle layout below, the context's Galois permutations, the
    /// encoder's slot maps.
    bit_rev: Vec<u32>,
    // psi powers in bit-reversed order, with Shoup companions.
    psi_rev: Vec<u64>,
    psi_rev_shoup: Vec<u64>,
    psi_inv_rev: Vec<u64>,
    psi_inv_rev_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
}

#[inline]
fn shoup(w: u64, p: u64) -> u64 {
    (((w as u128) << 64) / p as u128) as u64
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

impl NttTables {
    /// Builds tables for degree `n` (power of two) modulo `p` with
    /// `p ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or the root condition fails.
    pub fn new(n: usize, modulus: Modulus) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "n must be a power of two >= 2");
        let p = modulus.value();
        assert_eq!((p - 1) % (2 * n as u64), 0, "p must be 1 mod 2n");
        let log_n = n.trailing_zeros();
        let psi = modulus.primitive_root(2 * n as u64);
        let psi_inv = modulus.inv(psi);

        let mut psi_pows = vec![0u64; n];
        let mut psi_inv_pows = vec![0u64; n];
        let mut acc = 1u64;
        let mut acc_inv = 1u64;
        for i in 0..n {
            psi_pows[i] = acc;
            psi_inv_pows[i] = acc_inv;
            acc = modulus.mul(acc, psi);
            acc_inv = modulus.mul(acc_inv, psi_inv);
        }
        let bit_rev: Vec<u32> = (0..n).map(|i| bit_reverse(i, log_n) as u32).collect();
        let mut psi_rev = vec![0u64; n];
        let mut psi_inv_rev = vec![0u64; n];
        for (i, &r) in bit_rev.iter().enumerate() {
            psi_rev[i] = psi_pows[r as usize];
            psi_inv_rev[i] = psi_inv_pows[r as usize];
        }
        let psi_rev_shoup = psi_rev.iter().map(|&w| shoup(w, p)).collect();
        let psi_inv_rev_shoup = psi_inv_rev.iter().map(|&w| shoup(w, p)).collect();
        let n_inv = modulus.inv(n as u64);
        Self {
            n,
            log_n,
            modulus,
            bit_rev,
            psi_rev,
            psi_rev_shoup,
            psi_inv_rev,
            psi_inv_rev_shoup,
            n_inv,
            n_inv_shoup: shoup(n_inv, p),
        }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate zero-size table (never constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The modulus of this table.
    #[inline]
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// In-place forward negacyclic NTT (coefficients → evaluations),
    /// at the runtime-detected SIMD level (`PRIMER_SIMD` overridable).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        self.forward_at(a, simd::level());
    }

    /// [`Self::forward`] at an explicit SIMD level. Scalar and AVX2 are
    /// bit-identical; this entry point exists so the bit-identity suite
    /// can pin both sides without racing on the environment.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_at(&self, a: &mut [u64], lvl: SimdLevel) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let _span = primer_obs::span!("ntt.forward");
        let p = self.modulus.value();
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let w = self.psi_rev[m + i];
                let ws = self.psi_rev_shoup[m + i];
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                simd::forward_butterflies(p, w, ws, lo, hi, lvl);
            }
            m <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (evaluations → coefficients),
    /// at the runtime-detected SIMD level (`PRIMER_SIMD` overridable).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        self.inverse_at(a, simd::level());
    }

    /// [`Self::inverse`] at an explicit SIMD level (see [`Self::forward_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_at(&self, a: &mut [u64], lvl: SimdLevel) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let _span = primer_obs::span!("ntt.inverse");
        let p = self.modulus.value();
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let w = self.psi_inv_rev[h + i];
                let ws = self.psi_inv_rev_shoup[h + i];
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                simd::inverse_butterflies(p, w, ws, lo, hi, lvl);
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        simd::mul_shoup_slice(p, self.n_inv, self.n_inv_shoup, a, lvl);
    }

    /// log2 of the transform size.
    #[inline]
    pub fn log_len(&self) -> u32 {
        self.log_n
    }

    /// The bit-reversal permutation of `0..n` (`perm[i]` = `i` with its
    /// low `log_n` bits reversed — an involution). Cached at table build;
    /// consumers that used to call a per-element `bit_reverse` (Galois
    /// permutation construction, encoder slot maps) index this instead.
    #[inline]
    pub fn bit_rev_perm(&self) -> &[u32] {
        &self.bit_rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_prime;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn table(n: usize) -> NttTables {
        let p = ntt_prime(50, 2 * n as u64, &[]);
        NttTables::new(n, Modulus::new(p))
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(256);
        let mut rng = StdRng::seed_from_u64(9);
        let orig: Vec<u64> =
            (0..256).map(|_| rng.gen_range(0..t.modulus().value())).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "transform should change the data");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pointwise_is_negacyclic_convolution() {
        let n = 64;
        let t = table(n);
        let m = t.modulus();
        let mut rng = StdRng::seed_from_u64(10);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();

        // Schoolbook negacyclic product.
        let mut want = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let prod = m.mul(ai, bj);
                let k = i + j;
                if k < n {
                    want[k] = m.add(want[k], prod);
                } else {
                    want[k - n] = m.sub(want[k - n], prod);
                }
            }
        }

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut fc);
        assert_eq!(fc, want);
    }

    #[test]
    fn linearity() {
        let n = 128;
        let t = table(n);
        let m = t.modulus();
        let mut rng = StdRng::seed_from_u64(11);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        for i in 0..n {
            assert_eq!(fs[i], m.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn works_at_paper_degree() {
        let t = table(8192);
        let mut a = vec![0u64; 8192];
        a[1] = 1; // the polynomial x
        let mut f = a.clone();
        t.forward(&mut f);
        t.inverse(&mut f);
        assert_eq!(f, a);
    }
}
