//! Bundle pooling: FIFO pools of precomputed offline material, the
//! lockstep refill schedule both parties share, and the bounded
//! blocking pool the pipelined (producer-thread) serving mode hands
//! bundles through.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A FIFO pool of precomputed offline bundles.
///
/// Bundles leave the pool by move ([`OfflinePool::take`]), so the masks
/// they carry are consumed exactly once; an empty pool yields `None`
/// and must be explicitly refilled by the owning session.
#[derive(Debug, Default)]
pub struct OfflinePool<B> {
    bundles: VecDeque<B>,
}

impl<B> OfflinePool<B> {
    /// An empty pool.
    pub fn new() -> Self {
        Self { bundles: VecDeque::new() }
    }

    /// Number of unconsumed bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether the pool has no bundles left.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Adds a freshly produced bundle.
    pub fn put(&mut self, bundle: B) {
        self.bundles.push_back(bundle);
    }

    /// Takes the oldest bundle, or `None` if the pool is drained.
    pub fn take(&mut self) -> Option<B> {
        self.bundles.pop_front()
    }
}

/// A bounded, blocking FIFO pool shared between an offline-producer
/// thread and an online consumer thread (the pipelined serving mode).
///
/// The bound is the backpressure that keeps precomputed bundles — each
/// holding per-query masks, shares and garbled material — from piling
/// up without limit when the producer outruns the online phase.
///
/// Bundles still leave by move, so one-time masks are consumed exactly
/// once. The producer closes the pool when it is done (or dies — see
/// [`SharedPoolGuard`]), after which a drained [`SharedPool::take_blocking`]
/// returns `None` instead of blocking forever.
#[derive(Debug)]
pub(crate) struct SharedPool<B> {
    state: Mutex<SharedPoolState<B>>,
    changed: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct SharedPoolState<B> {
    bundles: VecDeque<B>,
    closed: bool,
}

impl<B> SharedPool<B> {
    /// An empty pool holding at most `capacity` bundles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (the producer could never hand off).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shared pool needs capacity for at least one bundle");
        Self {
            state: Mutex::new(SharedPoolState { bundles: VecDeque::new(), closed: false }),
            changed: Condvar::new(),
            capacity,
        }
    }

    /// Adds a bundle, blocking while the pool is full.
    pub fn put_blocking(&self, bundle: B) {
        let mut st = self.state.lock().expect("pool mutex poisoned");
        while st.bundles.len() >= self.capacity {
            st = self.changed.wait(st).expect("pool mutex poisoned");
        }
        st.bundles.push_back(bundle);
        drop(st);
        self.changed.notify_all();
    }

    /// Takes the oldest bundle, blocking while the pool is empty.
    /// Returns `None` once the pool is closed *and* drained.
    pub fn take_blocking(&self) -> Option<B> {
        let mut st = self.state.lock().expect("pool mutex poisoned");
        loop {
            if let Some(b) = st.bundles.pop_front() {
                drop(st);
                self.changed.notify_all();
                return Some(b);
            }
            if st.closed {
                return None;
            }
            st = self.changed.wait(st).expect("pool mutex poisoned");
        }
    }

    /// Marks the pool closed (no more bundles coming) and wakes waiters.
    pub fn close(&self) {
        self.state.lock().expect("pool mutex poisoned").closed = true;
        self.changed.notify_all();
    }

    /// Bundles currently waiting in the pool (a racy instantaneous
    /// reading — the producer and consumer keep moving; fine for
    /// observability, never for control flow).
    pub fn len(&self) -> usize {
        self.state.lock().expect("pool mutex poisoned").bundles.len()
    }

    /// The pool bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A type-erased live view of one session's [`SharedPool`] depth, for
/// the `/stats` admin surface: the serving layer holds these without
/// seeing the crate-private bundle types behind them. Cheap to clone;
/// reading is one mutex lock on the watched pool.
#[derive(Clone)]
pub struct PoolWatch {
    depth: std::sync::Arc<dyn Fn() -> usize + Send + Sync>,
    capacity: usize,
}

impl PoolWatch {
    pub(crate) fn new<B: Send + 'static>(pool: std::sync::Arc<SharedPool<B>>) -> Self {
        let capacity = pool.capacity();
        Self { depth: std::sync::Arc::new(move || pool.len()), capacity }
    }

    /// Bundles currently pooled (instantaneous, racy by nature).
    pub fn depth(&self) -> usize {
        (self.depth)()
    }

    /// The pool's bound (the negotiated pool target).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for PoolWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolWatch")
            .field("depth", &self.depth())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Closes a [`SharedPool`] on drop — held by the producer's run loop so
/// a producer panic unblocks the consumer (which then fails loudly on
/// the missing bundle) instead of deadlocking the session.
pub(crate) struct SharedPoolGuard<'a, B>(pub &'a SharedPool<B>);

impl<B> Drop for SharedPoolGuard<'_, B> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// How many bundles the next refill should produce: the pool target,
/// capped by the queries the session still owes (never overproducing
/// masks that would go unused). Both parties evaluate this formula with
/// identical arguments, so their refills stay in lockstep on the wire.
pub(crate) fn refill_quota(pool_target: usize, total_queries: usize, produced: usize) -> usize {
    pool_target.min(total_queries.saturating_sub(produced)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_drains_by_move_and_refuses_silent_reuse() {
        let mut pool: OfflinePool<Vec<u8>> = OfflinePool::new();
        assert!(pool.is_empty());
        pool.put(vec![1]);
        pool.put(vec![2]);
        assert_eq!(pool.len(), 2);
        // FIFO: the oldest bundle is consumed first, by move.
        assert_eq!(pool.take(), Some(vec![1]));
        assert_eq!(pool.take(), Some(vec![2]));
        // Drained: takes fail loudly rather than re-serving a bundle.
        assert_eq!(pool.take(), None);
        assert!(pool.is_empty());
        // Refill works after a drain.
        pool.put(vec![3]);
        assert_eq!(pool.take(), Some(vec![3]));
    }

    #[test]
    fn shared_pool_bounds_the_producer_and_closes_cleanly() {
        use std::sync::Arc;
        let pool: Arc<SharedPool<usize>> = Arc::new(SharedPool::new(2));
        let producer_pool = Arc::clone(&pool);
        let producer = std::thread::spawn(move || {
            let _guard = SharedPoolGuard(&producer_pool);
            // 6 bundles through a capacity-2 pool: puts 3..6 must block
            // until the consumer drains.
            for i in 0..6 {
                producer_pool.put_blocking(i);
            }
        });
        let mut got = Vec::new();
        while let Some(v) = pool.take_blocking() {
            got.push(v);
        }
        producer.join().expect("producer");
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        // Closed + drained: immediate None, no deadlock.
        assert_eq!(pool.take_blocking(), None);
    }

    #[test]
    fn worker_panic_in_parallel_refill_fails_the_session_loudly() {
        // A panic inside a pool task during a parallel refill must
        // propagate out of the rayon scope into the producer thread,
        // whose guard then closes the SharedPool — the consumer gets
        // `None` (and fails loudly on the missing bundle) instead of
        // hanging forever.
        use std::sync::Arc;
        let pool: Arc<SharedPool<usize>> = Arc::new(SharedPool::new(4));
        let producer_pool = Arc::clone(&pool);
        let producer = std::thread::spawn(move || {
            let _guard = SharedPoolGuard(&producer_pool);
            producer_pool.put_blocking(0);
            // Parallel "bundle production" in which one worker dies.
            let bundles = rayon::par_iter_chunks(4, |i| {
                assert!(i != 2, "worker died producing bundle 2");
                i
            });
            for b in bundles {
                producer_pool.put_blocking(b);
            }
        });
        assert_eq!(pool.take_blocking(), Some(0));
        // The guard ran on the producer's unwind: drained + closed.
        assert_eq!(pool.take_blocking(), None);
        assert!(producer.join().is_err(), "producer must die loudly");
    }

    #[test]
    fn pool_watch_reports_depth_without_seeing_the_bundle_type() {
        use std::sync::Arc;
        let pool: Arc<SharedPool<Vec<u8>>> = Arc::new(SharedPool::new(3));
        let watch = PoolWatch::new(Arc::clone(&pool));
        assert_eq!(watch.depth(), 0);
        assert_eq!(watch.capacity(), 3);
        pool.put_blocking(vec![1]);
        pool.put_blocking(vec![2]);
        assert_eq!(watch.depth(), 2);
        let w2 = watch.clone();
        pool.take_blocking();
        assert_eq!(w2.depth(), 1);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.capacity(), 3);
    }

    #[test]
    fn shared_pool_guard_closes_on_producer_panic() {
        use std::sync::Arc;
        let pool: Arc<SharedPool<usize>> = Arc::new(SharedPool::new(4));
        let producer_pool = Arc::clone(&pool);
        let producer = std::thread::spawn(move || {
            let _guard = SharedPoolGuard(&producer_pool);
            producer_pool.put_blocking(1);
            panic!("producer died mid-session");
        });
        assert_eq!(pool.take_blocking(), Some(1));
        // The unwind ran the guard: the consumer unblocks with None
        // instead of waiting forever for bundle 2.
        assert_eq!(pool.take_blocking(), None);
        assert!(producer.join().is_err());
    }
}
