//! Encrypted x plaintext matrix multiplication for both packings —
//! the rotation-count asymmetry of Fig. 6 in executable form.
//!
//! Tokens-first uses Horner accumulation over stride rotations (one
//! stride-`n_pad` rotation serves every token); feature-based uses the
//! diagonal method with up-to-`simd`-step rotation chains. Both paths
//! `debug_assert` their live op counts against [`matmul_counts`], the
//! same formulas the analytic cost model extrapolates from.
//!
//! **Weights** come in two forms ([`MatmulWeights`]): raw ring matrices
//! whose masks are encoded fresh inside the chain (the only option for
//! data-dependent operands like FHGS's online `U` matrices), or a
//! [`PreparedMatmul`] plane whose masks were encoded + NTT-lifted once
//! at session Setup. Both forms feed the *same* chain code and build
//! bit-identical masks, so the output ciphertexts are bit-identical —
//! the prepared plane only moves the per-mask `encode` +
//! `prepare_mul_plain` work out of the hot path (the `mask_prep` op
//! counter proves where it ran).
//!
//! **Parallelism**: each output ciphertext is an independent Horner
//! chain, so the chains fan out across the `rayon` pool (one task per
//! output ciphertext — "output chunks" in tokens-first, `(token, chunk)`
//! / `(group, chunk)` pairs in feature-based). The per-chain reduction
//! order is untouched, so every output ciphertext is **bit-identical**
//! to the sequential path at any `PRIMER_THREADS`. Live op counts are
//! tallied per chain (not via the shared evaluator counters, whose
//! deltas would interleave under concurrency) and summed in chain order
//! for the model check.

use super::prepared::PreparedMatmul;
use super::{Layout, MatmulCounts, Packing, PackedMatrix};
use primer_he::{BatchEncoder, Ciphertext, Evaluator, GaloisKeys, HeError, MulPlain};
use primer_math::MatZ;

/// Per-chain tally of the ops a matmul actually issued, kept separate
/// from the evaluator's (shared, atomic) counters so the model check
/// stays exact under concurrency.
#[derive(Debug, Clone, Copy, Default)]
struct LiveCounts {
    rotations: u64,
    mul_plain: u64,
}

impl LiveCounts {
    fn merge(&mut self, other: &LiveCounts) {
        self.rotations += other.rotations;
        self.mul_plain += other.mul_plain;
    }
}

/// How a tokens-first chain realizes its rotations. Feature-based
/// matmuls always use [`RotationMode::Output`]; the input-rotation form
/// has no win there (full-width chains touch every slot offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RotationMode {
    /// Horner accumulation: rotate the *accumulator* once per level, so
    /// every output ciphertext pays its own `b_max`-step chain. Noise
    /// stays off the multiplication (masks multiply fresh inputs), which
    /// makes this the mode that works on every parameter profile.
    #[default]
    Output,
    /// Input-rotation diagonals: rotate each *input* ciphertext once per
    /// used Horner level via a single hoisted [`Evaluator::rotate_many`],
    /// shared by every output chain, and multiply by slot-rotated masks.
    /// Rotations shrink from `Σ_r b_max(r)` to `Σ_k |used(k)|` and each
    /// costs one key-switch off a shared hoist — but the key-switch
    /// noise now passes *through* the mask multiplication, so this mode
    /// is only safe where the noise budget says so (the layout
    /// selector's job).
    Input,
}

/// Where an encrypted matmul gets its multiplication masks.
pub enum MatmulWeights<'a> {
    /// Raw ring weights: every mask is encoded and NTT-lifted inside the
    /// chain (per call). Required when the "weights" are query data
    /// (FHGS online); pure overhead for session-constant weights.
    Fresh {
        /// The `cols × out_cols` weight matrix.
        w: &'a MatZ,
        /// Encoder for the fresh masks.
        encoder: &'a BatchEncoder,
        /// Rotation mode of the chain (tokens-first only).
        mode: RotationMode,
    },
    /// Masks encoded once at Setup and reused read-only by every query
    /// (and, via the serving registry, by every concurrent session of
    /// the same model).
    Prepared(&'a PreparedMatmul),
}

/// A mask handed to the chain: borrowed from a prepared plane, or owned
/// because it was just encoded.
pub(super) enum MaskRef<'a> {
    Borrowed(&'a MulPlain),
    Owned(MulPlain),
}

impl std::ops::Deref for MaskRef<'_> {
    type Target = MulPlain;

    fn deref(&self) -> &MulPlain {
        match self {
            MaskRef::Borrowed(m) => m,
            MaskRef::Owned(m) => m,
        }
    }
}

impl<'a> MatmulWeights<'a> {
    fn out_cols(&self) -> usize {
        match self {
            MatmulWeights::Fresh { w, .. } => w.cols(),
            MatmulWeights::Prepared(p) => p.out_cols(),
        }
    }

    fn in_rows(&self) -> usize {
        match self {
            MatmulWeights::Fresh { w, .. } => w.rows(),
            MatmulWeights::Prepared(p) => p.in_cols(),
        }
    }

    fn mode(&self) -> RotationMode {
        match self {
            MatmulWeights::Fresh { mode, .. } => *mode,
            MatmulWeights::Prepared(p) => p.mode(),
        }
    }

    fn tf_mask(
        &self,
        eval: &Evaluator,
        in_l: &Layout,
        r: usize,
        b: usize,
        k: usize,
    ) -> Option<MaskRef<'_>> {
        match self {
            MatmulWeights::Fresh { w, encoder, .. } => {
                let slots = tf_mask_slots(in_l, w, r, b, k)?;
                Some(MaskRef::Owned(eval.prepare_mul_plain(&encoder.encode(&slots))))
            }
            MatmulWeights::Prepared(p) => p.tf_mask(r, b, k).map(MaskRef::Borrowed),
        }
    }

    /// Input-rotation mask: the output-rotation mask slot-rotated by
    /// `b·pad` (since `R_s(m·x) = σ_s(m)·R_s(x)`). Prepared planes built
    /// in input mode already store the rotated form.
    fn tf_mask_rotated(
        &self,
        eval: &Evaluator,
        in_l: &Layout,
        r: usize,
        b: usize,
        k: usize,
    ) -> Option<MaskRef<'_>> {
        match self {
            MatmulWeights::Fresh { w, encoder, .. } => {
                let slots = tf_mask_slots_rotated(in_l, w, r, b, k)?;
                Some(MaskRef::Owned(eval.prepare_mul_plain(&encoder.encode(&slots))))
            }
            MatmulWeights::Prepared(p) => p.tf_mask(r, b, k).map(MaskRef::Borrowed),
        }
    }

    fn fb_full_mask(
        &self,
        eval: &Evaluator,
        in_l: &Layout,
        oc: usize,
        delta: usize,
        c: usize,
    ) -> MaskRef<'_> {
        match self {
            MatmulWeights::Fresh { w, encoder, .. } => {
                let slots = fb_full_mask_slots(in_l, w, oc, delta, c);
                MaskRef::Owned(eval.prepare_mul_plain(&encoder.encode(&slots)))
            }
            MatmulWeights::Prepared(p) => MaskRef::Borrowed(p.fb_full_mask(oc, delta, c)),
        }
    }

    fn fb_grouped_a_mask(
        &self,
        eval: &Evaluator,
        in_l: &Layout,
        oc: usize,
        delta: usize,
    ) -> MaskRef<'_> {
        match self {
            MatmulWeights::Fresh { w, encoder, .. } => {
                let slots = fb_grouped_a_slots(in_l, w, oc, delta);
                MaskRef::Owned(eval.prepare_mul_plain(&encoder.encode(&slots)))
            }
            MatmulWeights::Prepared(p) => MaskRef::Borrowed(p.fb_grouped_a_mask(oc, delta)),
        }
    }

    fn fb_grouped_b_mask(
        &self,
        eval: &Evaluator,
        in_l: &Layout,
        oc: usize,
        k: usize,
    ) -> MaskRef<'_> {
        match self {
            MatmulWeights::Fresh { w, encoder, .. } => {
                let slots = fb_grouped_b_slots(in_l, w, oc, k);
                MaskRef::Owned(eval.prepare_mul_plain(&encoder.encode(&slots)))
            }
            MatmulWeights::Prepared(p) => MaskRef::Borrowed(p.fb_grouped_b_mask(oc, k)),
        }
    }
}

// ---- mask slot builders (shared by the fresh path and the prepared
// plane, so both produce bit-identical masks) ------------------------------

/// Tokens-first pre-rotated mask `m'_b` for output ct `r`, Horner step
/// `b`, input ct `k`: feature block `u` contributes
/// `W[j = k·B+u][g = r·B + (u − b) mod B]`. `None` when every slot is
/// zero (the chain skips the multiplication entirely).
pub(super) fn tf_mask_slots(
    in_l: &Layout,
    w: &MatZ,
    r: usize,
    b: usize,
    k: usize,
) -> Option<Vec<u64>> {
    if !tf_mask_nonempty(in_l, w.cols(), k, b, r) {
        return None;
    }
    let block = in_l.block();
    let pad = in_l.pad;
    let mut slots = vec![0u64; in_l.simd];
    for u in 0..block {
        let j = k * block + u;
        if j >= in_l.cols {
            continue;
        }
        let g = r * block + (u + block - b) % block;
        if g >= w.cols() {
            continue;
        }
        for i in 0..in_l.rows {
            slots[u * pad + i] = w[(j, g)];
        }
    }
    Some(slots)
}

/// Input-rotation form of [`tf_mask_slots`]: the same mask cyclically
/// shifted by `b·pad` slots (`σ_s(m)[i] = m[(i+s) mod simd]`), so that
/// `σ_{b·pad}(m')·R_{b·pad}(x)` equals the Horner term `R_{b·pad}(m'·x)`
/// slot for slot.
pub(super) fn tf_mask_slots_rotated(
    in_l: &Layout,
    w: &MatZ,
    r: usize,
    b: usize,
    k: usize,
) -> Option<Vec<u64>> {
    let slots = tf_mask_slots(in_l, w, r, b, k)?;
    let s = b * in_l.pad;
    let simd = in_l.simd;
    Some((0..simd).map(|i| slots[(i + s) % simd]).collect())
}

/// The Horner levels `b` that input ciphertext `k` participates in — a
/// pure function of shapes, so client (planning Galois keys) and server
/// (building chains) always agree. The returned list is ascending and
/// may include `0` (a free "rotation": `rotate_many` clones).
pub fn tf_used_levels(rows: usize, cols: usize, out_cols: usize, simd: usize, k: usize) -> Vec<usize> {
    let in_l = Layout::plan(Packing::TokensFirst, rows, cols, simd);
    let out_cts = Layout::plan(Packing::TokensFirst, rows, out_cols, simd).num_cts;
    (0..in_l.block())
        .filter(|&b| (0..out_cts).any(|r| tf_mask_nonempty(&in_l, out_cols, k, b, r)))
        .collect()
}

/// All *nonzero* rotation steps (`b·pad`) an input-rotation tokens-first
/// matmul of these shapes issues, ascending and deduplicated — the
/// dedicated-key list `rotate_many` hoisting requires (composite steps
/// cannot be decomposed mid-hoist).
pub fn tf_input_steps(rows: usize, cols: usize, out_cols: usize, simd: usize) -> Vec<usize> {
    let in_l = Layout::plan(Packing::TokensFirst, rows, cols, simd);
    let mut steps: Vec<usize> = (0..in_l.num_cts)
        .flat_map(|k| tf_used_levels(rows, cols, out_cols, simd, k))
        .filter(|&b| b != 0)
        .map(|b| b * in_l.pad)
        .collect();
    steps.sort_unstable();
    steps.dedup();
    steps
}

/// The largest number of masked terms any single output ciphertext of a
/// tokens-first matmul accumulates — the multiplicity the noise model
/// multiplies one worst-case term by when gating input-rotation mode.
pub fn tf_chain_terms_max(rows: usize, cols: usize, out_cols: usize, simd: usize) -> u64 {
    let in_l = Layout::plan(Packing::TokensFirst, rows, cols, simd);
    let out_cts = Layout::plan(Packing::TokensFirst, rows, out_cols, simd).num_cts;
    let block = in_l.block();
    (0..out_cts)
        .map(|r| {
            (0..block)
                .flat_map(|b| (0..in_l.num_cts).map(move |k| (b, k)))
                .filter(|&(b, k)| tf_mask_nonempty(&in_l, out_cols, k, b, r))
                .count() as u64
        })
        .max()
        .unwrap_or(0)
}

/// Feature-based full-width mask:
/// `m'_delta[u] = W[c·simd + u][oc·simd + (u − delta) mod simd]`.
pub(super) fn fb_full_mask_slots(
    in_l: &Layout,
    w: &MatZ,
    oc: usize,
    delta: usize,
    c: usize,
) -> Vec<u64> {
    let simd = in_l.simd;
    let base = c * simd;
    let mut slots = vec![0u64; simd];
    for (u, slot) in slots.iter_mut().enumerate() {
        let j = base + u;
        let g = oc * simd + (u + simd - delta) % simd;
        if j < in_l.cols && g < w.cols() {
            *slot = w[(j, g)];
        }
    }
    slots
}

/// Feature-based grouped chain-A mask:
/// `m'[u·fp + o] = W[o][oc·fp + o − delta]`.
pub(super) fn fb_grouped_a_slots(in_l: &Layout, w: &MatZ, oc: usize, delta: usize) -> Vec<u64> {
    let fp = in_l.pad;
    let feats = in_l.cols;
    let dout_chunk = fp.min(w.cols() - oc * fp);
    let mut slots = vec![0u64; in_l.simd];
    for u in 0..in_l.group() {
        for o in delta..feats {
            let g = o - delta;
            if g < dout_chunk {
                slots[u * fp + o] = w[(o, oc * fp + g)];
            }
        }
    }
    slots
}

/// Feature-based grouped chain-B mask (inverse offsets):
/// `out[o+k] += in[o]·W[o][o+k]`.
pub(super) fn fb_grouped_b_slots(in_l: &Layout, w: &MatZ, oc: usize, k: usize) -> Vec<u64> {
    let fp = in_l.pad;
    let feats = in_l.cols;
    let dout_chunk = fp.min(w.cols() - oc * fp);
    let mut slots = vec![0u64; in_l.simd];
    for u in 0..in_l.group() {
        for o in 0..feats {
            let g = o + k;
            if g < dout_chunk {
                slots[u * fp + o] = w[(o, oc * fp + g)];
            }
        }
    }
    slots
}

/// The layout that [`matmul_plain_weights`] produces for the given input
/// shape (needed by a decrypting party to interpret received products).
pub fn matmul_out_layout(
    packing: Packing,
    rows: usize,
    in_cols: usize,
    out_cols: usize,
    simd: usize,
) -> Layout {
    match packing {
        Packing::TokensFirst => Layout::plan(packing, rows, out_cols, simd),
        Packing::FeatureBased => {
            fb_out_layout(&Layout::plan(packing, rows, in_cols, simd), out_cols)
        }
    }
}

/// Output layout produced by a feature-based matmul (regions inherit the
/// input padding, so it differs from `Layout::plan` of a fresh matrix).
pub(super) fn fb_out_layout(in_l: &Layout, out_cols: usize) -> Layout {
    let simd = in_l.simd;
    let fp = in_l.pad;
    let num_cts = if fp == simd {
        in_l.rows * out_cols.div_ceil(simd)
    } else {
        in_l.num_cts * out_cols.div_ceil(fp)
    };
    Layout {
        packing: Packing::FeatureBased,
        rows: in_l.rows,
        cols: out_cols,
        simd,
        pad: fp,
        num_cts,
    }
}

/// Predicts the op counts of [`matmul_plain_weights`] analytically.
/// The implementation `debug_assert`s that its real counts match; the
/// cost model extrapolates paper-scale latency from these formulas.
/// `mask_prep` mirrors `mul_plain` on the fresh path and is zero on the
/// prepared path — the "encode count model" of the prepared plane.
pub fn matmul_counts(
    packing: Packing,
    rows: usize,
    cols: usize,
    out_cols: usize,
    simd: usize,
) -> MatmulCounts {
    matmul_counts_mode(packing, rows, cols, out_cols, simd, RotationMode::Output)
}

/// [`matmul_counts`] for an explicit rotation mode. Input mode keeps the
/// identical `mul_plain` count (the same nonempty masks multiply) but
/// pays `Σ_k |used(k) \ {0}|` rotations instead of `Σ_r b_max(r)` — all
/// served off one hoist per input ciphertext.
pub fn matmul_counts_mode(
    packing: Packing,
    rows: usize,
    cols: usize,
    out_cols: usize,
    simd: usize,
    mode: RotationMode,
) -> MatmulCounts {
    let in_l = Layout::plan(packing, rows, cols, simd);
    let mut c = MatmulCounts { in_cts: in_l.num_cts as u64, ..Default::default() };
    match packing {
        Packing::TokensFirst => {
            let out_l = Layout::plan(packing, rows, out_cols, simd);
            c.out_cts = out_l.num_cts as u64;
            let block = in_l.block();
            for r in 0..out_l.num_cts {
                let mut b_max: Option<usize> = None;
                for b in (0..block).rev() {
                    let mut any = false;
                    for k in 0..in_l.num_cts {
                        if tf_mask_nonempty(&in_l, out_cols, k, b, r) {
                            any = true;
                            c.mul_plain += 1;
                        }
                    }
                    if any && b_max.is_none() {
                        b_max = Some(b);
                    }
                }
                if mode == RotationMode::Output {
                    c.rotations += b_max.unwrap_or(0) as u64;
                }
            }
            if mode == RotationMode::Input {
                for k in 0..in_l.num_cts {
                    c.rotations += tf_used_levels(rows, cols, out_cols, simd, k)
                        .iter()
                        .filter(|&&b| b != 0)
                        .count() as u64;
                }
            }
        }
        Packing::FeatureBased => {
            let out_l = fb_out_layout(&in_l, out_cols);
            c.out_cts = out_l.num_cts as u64;
            let fp = in_l.pad;
            if fp == simd {
                let chunks = cols.div_ceil(simd);
                let out_chunks = out_cols.div_ceil(simd);
                c.rotations += (rows * out_chunks * (simd - 1)) as u64;
                c.mul_plain += (rows * out_chunks * simd * chunks) as u64;
            } else {
                let out_chunks = out_cols.div_ceil(fp);
                let chain_a = cols.min(fp);
                for _z in 0..in_l.num_cts {
                    for oc in 0..out_chunks {
                        let dout_chunk = fp.min(out_cols - oc * fp);
                        c.rotations += (chain_a - 1) as u64;
                        c.mul_plain += chain_a as u64;
                        if dout_chunk > 1 {
                            c.rotations += (dout_chunk - 1) as u64;
                            c.mul_plain += (dout_chunk - 1) as u64;
                        }
                    }
                }
            }
        }
    }
    c
}

pub(super) fn tf_mask_nonempty(
    in_l: &Layout,
    out_cols: usize,
    k: usize,
    b: usize,
    r: usize,
) -> bool {
    let block = in_l.block();
    for u in 0..block {
        let j = k * block + u;
        if j >= in_l.cols {
            continue;
        }
        let g = r * block + (u + block - b) % block;
        if g < out_cols {
            return true;
        }
    }
    false
}

/// Encrypted × plaintext matrix multiplication: `Enc(X) · W` where `X`
/// is `rows × cols` (packed) and `W` is `cols × out_cols`, with masks
/// encoded fresh per call.
///
/// Returns the packed product and the op counts actually spent.
///
/// # Errors
///
/// Propagates [`HeError`] if a required Galois key is missing.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matmul_plain_weights(
    x: &PackedMatrix,
    w: &MatZ,
    eval: &Evaluator,
    encoder: &BatchEncoder,
    keys: &GaloisKeys,
) -> Result<PackedMatrix, HeError> {
    matmul_weights(x, &MatmulWeights::Fresh { w, encoder, mode: RotationMode::Output }, eval, keys)
}

/// [`matmul_plain_weights`] against a [`PreparedMatmul`] plane: the
/// chain consumes setup-encoded NTT-form masks read-only, so the hot
/// path performs no mask encoding at all. Output ciphertexts are
/// bit-identical to the fresh path.
///
/// # Errors
///
/// Propagates [`HeError`] if a required Galois key is missing.
pub fn matmul_prepared(
    x: &PackedMatrix,
    prepared: &PreparedMatmul,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<PackedMatrix, HeError> {
    matmul_weights(x, &MatmulWeights::Prepared(prepared), eval, keys)
}

/// The shared driver behind both mask sources.
///
/// # Errors
///
/// Propagates [`HeError`] if a required Galois key is missing.
///
/// # Panics
///
/// Panics on shape mismatch (including a prepared plane built for a
/// different input layout).
pub fn matmul_weights(
    x: &PackedMatrix,
    weights: &MatmulWeights<'_>,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<PackedMatrix, HeError> {
    assert_eq!(x.layout.cols, weights.in_rows(), "inner dimension mismatch");
    if let MatmulWeights::Prepared(p) = weights {
        assert_eq!(&x.layout, p.in_layout(), "prepared plane built for a different layout");
    }
    let mode = weights.mode();
    let (out, live) = match (x.layout.packing, mode) {
        (Packing::TokensFirst, RotationMode::Output) => tf_matmul(x, weights, eval, keys)?,
        (Packing::TokensFirst, RotationMode::Input) => tf_matmul_input(x, weights, eval, keys)?,
        (Packing::FeatureBased, _) => fb_matmul(x, weights, eval, keys)?,
    };
    let predicted = matmul_counts_mode(
        x.layout.packing,
        x.layout.rows,
        x.layout.cols,
        weights.out_cols(),
        x.layout.simd,
        mode,
    );
    debug_assert_eq!(
        live.rotations, predicted.rotations,
        "rotation count model diverged from implementation"
    );
    debug_assert_eq!(
        live.mul_plain, predicted.mul_plain,
        "mul_plain count model diverged from implementation"
    );
    Ok(out)
}

/// Collects the per-chain results of a parallel matmul: ciphertexts in
/// chain order, live counts summed, first error propagated.
fn collect_chains(
    results: Vec<Result<(Ciphertext, LiveCounts), HeError>>,
) -> Result<(Vec<Ciphertext>, LiveCounts), HeError> {
    let mut cts = Vec::with_capacity(results.len());
    let mut live = LiveCounts::default();
    for r in results {
        let (ct, counts) = r?;
        live.merge(&counts);
        cts.push(ct);
    }
    Ok((cts, live))
}

/// Tokens-first matmul (Horner accumulation over stride rotations),
/// parallel across output ciphertexts.
fn tf_matmul(
    x: &PackedMatrix,
    weights: &MatmulWeights<'_>,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<(PackedMatrix, LiveCounts), HeError> {
    let in_l = &x.layout;
    let block = in_l.block();
    let pad = in_l.pad;
    let out_l = Layout::plan(Packing::TokensFirst, in_l.rows, weights.out_cols(), in_l.simd);
    let results = rayon::par_iter_chunks(out_l.num_cts, |r| {
        let mut live = LiveCounts::default();
        // Horner over stride rotations: acc ← rot(acc) + y_b, b descending.
        let mut acc: Option<Ciphertext> = None;
        for b in (0..block).rev() {
            if let Some(a) = acc.take() {
                acc = Some(eval.rotate_rows(&a, pad, keys)?);
                live.rotations += 1;
            }
            let mut step_sum: Option<Ciphertext> = None;
            for k in 0..in_l.num_cts {
                let Some(mask) = weights.tf_mask(eval, in_l, r, b, k) else {
                    continue;
                };
                live.mul_plain += 1;
                match &mut step_sum {
                    None => step_sum = Some(eval.mul_plain(&x.cts[k], &mask)),
                    Some(s) => eval.mul_plain_accumulate(s, &x.cts[k], &mask),
                }
            }
            acc = match (acc, step_sum) {
                (None, None) => None,
                (None, Some(y)) => Some(y),
                (Some(a), None) => Some(a),
                (Some(a), Some(y)) => Some(eval.add(&a, &y)),
            };
        }
        Ok((acc.unwrap_or_else(|| eval.zero_ciphertext()), live))
    });
    let (out_cts, live) = collect_chains(results)?;
    Ok((PackedMatrix { layout: out_l, cts: out_cts }, live))
}

/// Tokens-first matmul in input-rotation mode: each input ciphertext is
/// hoisted once and rotated to every Horner level it participates in
/// (one [`Evaluator::rotate_many`] per input ct, shared by *all* output
/// chains), then each output ciphertext is a flat sum of slot-rotated
/// masks times pre-rotated inputs:
///
/// ```text
/// result_r = Σ_b R_{b·pad}(Σ_k m'_{r,b,k}·x_k)          (Horner form)
///          = Σ_b Σ_k σ_{b·pad}(m'_{r,b,k})·R_{b·pad}(x_k)
/// ```
///
/// Rotations drop from `Σ_r b_max(r)` to `Σ_k |used(k)\{0}|`; the price
/// is key-switch noise passing through the mask multiplication, which is
/// why the layout selector noise-gates this mode per parameter profile.
fn tf_matmul_input(
    x: &PackedMatrix,
    weights: &MatmulWeights<'_>,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<(PackedMatrix, LiveCounts), HeError> {
    let in_l = &x.layout;
    let block = in_l.block();
    let pad = in_l.pad;
    let out_cols = weights.out_cols();
    let out_l = Layout::plan(Packing::TokensFirst, in_l.rows, out_cols, in_l.simd);
    let used: Vec<Vec<usize>> = (0..in_l.num_cts)
        .map(|k| tf_used_levels(in_l.rows, in_l.cols, out_cols, in_l.simd, k))
        .collect();

    // Stage 1 (parallel over input cts): one hoist each, every used
    // rotation keyed off it. Level 0 comes back as a free clone.
    let rotated_results = rayon::par_iter_chunks(in_l.num_cts, |k| {
        let steps: Vec<usize> = used[k].iter().map(|&b| b * pad).collect();
        let mut live = LiveCounts::default();
        live.rotations += steps.iter().filter(|&&s| s != 0).count() as u64;
        let cts = eval.rotate_many(&x.cts[k], &steps, keys)?;
        Ok((cts, live))
    });
    let mut rot_live = LiveCounts::default();
    let mut rotated: Vec<Vec<Ciphertext>> = Vec::with_capacity(in_l.num_cts);
    for r in rotated_results {
        let (cts, lc) = r?;
        rot_live.merge(&lc);
        rotated.push(cts);
    }

    // Stage 2 (parallel over output cts): flat accumulation in fixed
    // (b descending, k ascending) order, so fresh and prepared masks
    // yield bit-identical outputs.
    let results = rayon::par_iter_chunks(out_l.num_cts, |r| {
        let mut live = LiveCounts::default();
        let mut acc: Option<Ciphertext> = None;
        for b in (0..block).rev() {
            for k in 0..in_l.num_cts {
                let Some(mask) = weights.tf_mask_rotated(eval, in_l, r, b, k) else {
                    continue;
                };
                let pos = used[k]
                    .iter()
                    .position(|&ub| ub == b)
                    .expect("nonempty mask implies a used level");
                let src = &rotated[k][pos];
                live.mul_plain += 1;
                match &mut acc {
                    None => acc = Some(eval.mul_plain(src, &mask)),
                    Some(a) => eval.mul_plain_accumulate(a, src, &mask),
                }
            }
        }
        Ok((acc.unwrap_or_else(|| eval.zero_ciphertext()), live))
    });
    let (out_cts, mut live) = collect_chains(results)?;
    live.merge(&rot_live);
    Ok((PackedMatrix { layout: out_l, cts: out_cts }, live))
}

/// Feature-based matmul (diagonal method; dual Horner chains when
/// multiple token regions share a ciphertext).
fn fb_matmul(
    x: &PackedMatrix,
    weights: &MatmulWeights<'_>,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<(PackedMatrix, LiveCounts), HeError> {
    let fp = x.layout.pad;
    if fp == x.layout.simd {
        fb_matmul_full(x, weights, eval, keys)
    } else {
        fb_matmul_grouped(x, weights, eval, keys)
    }
}

/// Feature-based, `pad == simd`: each ciphertext is one feature chunk of
/// one token; a full `simd`-step rotation chain per output ciphertext,
/// parallel across `(token, chunk)` outputs.
fn fb_matmul_full(
    x: &PackedMatrix,
    weights: &MatmulWeights<'_>,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<(PackedMatrix, LiveCounts), HeError> {
    let in_l = &x.layout;
    let simd = in_l.simd;
    let chunks = in_l.cols.div_ceil(simd);
    let out_cols = weights.out_cols();
    let out_chunks = out_cols.div_ceil(simd);
    // Output here uses full-width regions regardless of out width.
    let results = rayon::par_iter_chunks(in_l.rows * out_chunks, |idx| {
        let (token, oc) = (idx / out_chunks, idx % out_chunks);
        let mut live = LiveCounts::default();
        let mut acc: Option<Ciphertext> = None;
        for delta in (0..simd).rev() {
            let mut step_sum: Option<Ciphertext> = None;
            for c in 0..chunks {
                if c * simd >= in_l.cols {
                    continue;
                }
                let mask = weights.fb_full_mask(eval, in_l, oc, delta, c);
                let ct = &x.cts[token * chunks + c];
                live.mul_plain += 1;
                match &mut step_sum {
                    None => step_sum = Some(eval.mul_plain(ct, &mask)),
                    Some(s) => eval.mul_plain_accumulate(s, ct, &mask),
                }
            }
            let y = step_sum.expect("chunk loop ran");
            acc = Some(match acc {
                None => y,
                Some(a) => {
                    let rotated = eval.rotate_rows(&a, 1, keys)?;
                    live.rotations += 1;
                    eval.add(&rotated, &y)
                }
            });
        }
        Ok((acc.expect("simd > 0"), live))
    });
    let (out_cts, live) = collect_chains(results)?;
    let layout = fb_out_layout(in_l, out_cols);
    debug_assert_eq!(layout.num_cts, out_cts.len());
    Ok((PackedMatrix { layout, cts: out_cts }, live))
}

/// Feature-based, `pad < simd`: several token regions per ciphertext.
/// Output regions inherit the input region size `fp`; output columns are
/// chunked by `fp`. Two Horner chains handle positive and negative
/// feature-output offsets.
fn fb_matmul_grouped(
    x: &PackedMatrix,
    weights: &MatmulWeights<'_>,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<(PackedMatrix, LiveCounts), HeError> {
    let in_l = &x.layout;
    let simd = in_l.simd;
    let fp = in_l.pad;
    let feats = in_l.cols;
    let dout = weights.out_cols();
    let out_chunks = dout.div_ceil(fp);
    let results = rayon::par_iter_chunks(in_l.num_cts * out_chunks, |idx| {
        let (z, oc) = (idx / out_chunks, idx % out_chunks);
        let mut live = LiveCounts::default();
        let dout_chunk = fp.min(dout - oc * fp);
        let ct = &x.cts[z];
        // Chain A: delta = 0..feats: m'[u·fp + o] = W[o][oc·fp + o−delta].
        let chain_a_len = feats.min(fp);
        let mut acc_a: Option<Ciphertext> = None;
        for delta in (0..chain_a_len).rev() {
            let mask = weights.fb_grouped_a_mask(eval, in_l, oc, delta);
            let y = eval.mul_plain(ct, &mask);
            live.mul_plain += 1;
            acc_a = Some(match acc_a {
                None => y,
                Some(a) => {
                    let rotated = eval.rotate_rows(&a, 1, keys)?;
                    live.rotations += 1;
                    eval.add(&rotated, &y)
                }
            });
        }
        let mut result = acc_a.expect("chain A non-empty");
        // Chain B: k = 1..dout_chunk: out[o+k] += in[o]·W[o][o+k],
        // realized as inverse rotations (step simd−1 chains).
        if dout_chunk > 1 {
            let mut acc_b: Option<Ciphertext> = None;
            for k in (1..dout_chunk).rev() {
                let mask = weights.fb_grouped_b_mask(eval, in_l, oc, k);
                let y = eval.mul_plain(ct, &mask);
                live.mul_plain += 1;
                acc_b = Some(match acc_b {
                    None => y,
                    Some(a) => {
                        let rotated = eval.rotate_rows(&a, simd - 1, keys)?;
                        live.rotations += 1;
                        eval.add(&rotated, &y)
                    }
                });
            }
            if let Some(b_acc) = acc_b {
                let rotated = eval.rotate_rows(&b_acc, simd - 1, keys)?;
                live.rotations += 1;
                result = eval.add(&result, &rotated);
            }
        }
        Ok((result, live))
    });
    let (out_cts, live) = collect_chains(results)?;
    let layout = Layout {
        packing: Packing::FeatureBased,
        rows: in_l.rows,
        cols: dout,
        simd,
        pad: fp,
        num_cts: out_cts.len(),
    };
    Ok((PackedMatrix { layout, cts: out_cts }, live))
}

#[cfg(test)]
mod tests {
    use super::super::prepared::PreparedMatmul;
    use super::super::testutil::{fixture, small_matrix};
    use super::super::{decrypt_matrix, encrypt_matrix};
    use super::*;

    fn check_matmul(packing: Packing, rows: usize, cols: usize, out_cols: usize) {
        let fx = fixture(rows.next_power_of_two());
        let x = small_matrix(&fx.ring, rows, cols, 220 + out_cols as u64);
        let w = small_matrix(&fx.ring, cols, out_cols, 221 + cols as u64);
        let packed = encrypt_matrix(packing, &x, &fx.encoder, &fx.encryptor);
        let product =
            matmul_plain_weights(&packed, &w, &fx.eval, &fx.encoder, &fx.keys).expect("keys");
        let got = decrypt_matrix(&product, &fx.encoder, &fx.encryptor);
        assert_eq!(got, x.matmul(&fx.ring, &w), "{packing:?} {rows}x{cols}x{out_cols}");
    }

    #[test]
    fn tokens_first_matmul_exact() {
        check_matmul(Packing::TokensFirst, 4, 8, 8);
        check_matmul(Packing::TokensFirst, 4, 8, 16);
        check_matmul(Packing::TokensFirst, 3, 10, 5);
    }

    #[test]
    fn feature_based_matmul_exact_grouped() {
        check_matmul(Packing::FeatureBased, 4, 8, 8);
        check_matmul(Packing::FeatureBased, 4, 8, 16);
        check_matmul(Packing::FeatureBased, 3, 10, 5);
    }

    #[test]
    fn feature_based_matmul_exact_full_width() {
        // cols padded to the full SIMD width (the big-vocab regime):
        // use a column count > simd/2 so pad == simd.
        check_matmul(Packing::FeatureBased, 2, 513, 6);
    }

    /// The prepared plane must produce **bit-identical output
    /// ciphertexts** to the fresh path (same chain, same masks, same
    /// arithmetic — the plane only moves the encoding to build time),
    /// while spending zero `mask_prep` ops in the chain itself.
    #[test]
    fn prepared_path_is_bit_identical_and_encode_free() {
        for (packing, rows, cols, out_cols) in [
            (Packing::TokensFirst, 4usize, 8usize, 16usize),
            (Packing::TokensFirst, 3, 10, 5),
            (Packing::FeatureBased, 4, 8, 16),
            (Packing::FeatureBased, 3, 10, 5),
            (Packing::FeatureBased, 2, 513, 6),
        ] {
            let fx = fixture(rows.next_power_of_two());
            let x = small_matrix(&fx.ring, rows, cols, 270 + out_cols as u64);
            let w = small_matrix(&fx.ring, cols, out_cols, 271 + cols as u64);
            let packed = encrypt_matrix(packing, &x, &fx.encoder, &fx.encryptor);

            let fresh =
                matmul_plain_weights(&packed, &w, &fx.eval, &fx.encoder, &fx.keys).expect("keys");

            let prepared = PreparedMatmul::new(packing, rows, &w, &fx.eval, &fx.encoder);
            assert!(prepared.mask_bytes() > 0);
            let before = fx.eval.counts();
            let via_plane = matmul_prepared(&packed, &prepared, &fx.eval, &fx.keys).expect("keys");
            let spent = fx.eval.counts().since(&before);

            assert_eq!(via_plane.cts, fresh.cts, "{packing:?} {rows}x{cols}x{out_cols}");
            assert_eq!(via_plane.layout, fresh.layout);
            assert_eq!(spent.mask_prep, 0, "prepared chain must not encode masks");
            let predicted = matmul_counts(packing, rows, cols, out_cols, fx.encoder.row_size());
            assert_eq!(spent.mul_plain, predicted.mul_plain);
        }
    }

    /// The prepared plane's rotation plan names exactly the steps its
    /// chains issue, so Setup can provision dedicated Galois keys.
    #[test]
    fn rotation_plan_covers_used_steps() {
        let fx = fixture(4);
        let simd = fx.encoder.row_size();
        let w = small_matrix(&fx.ring, 8, 16, 280);
        let tf = PreparedMatmul::new(Packing::TokensFirst, 4, &w, &fx.eval, &fx.encoder);
        assert_eq!(tf.rotation_steps(), &[4]);
        let fb = PreparedMatmul::new(Packing::FeatureBased, 4, &w, &fx.eval, &fx.encoder);
        assert_eq!(fb.rotation_steps(), &[1, simd - 1]);
    }

    /// Fixture on the wide test profile (whose noise budget carries the
    /// input-rotation chain) with dedicated keys for exactly the hoisted
    /// step list — the key plan client Setup would provision.
    fn input_mode_fixture(rows: usize, cols: usize, out_cols: usize) -> super::super::testutil::Fx {
        use primer_he::{Encryptor, HeContext, HeParams, KeyGenerator};
        use primer_math::rng::seeded;
        use primer_math::Ring;
        let ctx = HeContext::new(HeParams::test_2k_wide());
        let encoder = BatchEncoder::new(&ctx);
        let mut rng = seeded(300);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 301);
        let eval = Evaluator::new(&ctx);
        let steps = tf_input_steps(rows, cols, out_cols, encoder.row_size());
        let keys = kg.galois_keys(&steps, false, &mut rng);
        super::super::testutil::Fx {
            ring: Ring::new(ctx.params().t()),
            encoder,
            encryptor,
            eval,
            keys,
        }
    }

    /// Input-rotation chains decrypt to the exact ring matmul, spend
    /// exactly the rotations the count model predicts, and beat the
    /// Horner chain's rotation count at every tested shape.
    #[test]
    fn input_mode_matmul_exact_with_fewer_rotations() {
        for (rows, cols, out_cols) in [(4usize, 8usize, 16usize), (3, 10, 5), (4, 32, 8)] {
            let fx = input_mode_fixture(rows, cols, out_cols);
            let simd = fx.encoder.row_size();
            let x = small_matrix(&fx.ring, rows, cols, 310 + out_cols as u64);
            let w = small_matrix(&fx.ring, cols, out_cols, 311 + cols as u64);
            let packed = encrypt_matrix(Packing::TokensFirst, &x, &fx.encoder, &fx.encryptor);

            let before = fx.eval.counts();
            let weights = MatmulWeights::Fresh { w: &w, encoder: &fx.encoder, mode: RotationMode::Input };
            let product = matmul_weights(&packed, &weights, &fx.eval, &fx.keys).expect("hoist keys");
            let spent = fx.eval.counts().since(&before);

            let got = decrypt_matrix(&product, &fx.encoder, &fx.encryptor);
            assert_eq!(got, x.matmul(&fx.ring, &w), "{rows}x{cols}x{out_cols}");

            let inp = matmul_counts_mode(Packing::TokensFirst, rows, cols, out_cols, simd, RotationMode::Input);
            let out = matmul_counts_mode(Packing::TokensFirst, rows, cols, out_cols, simd, RotationMode::Output);
            assert_eq!(spent.rotations, inp.rotations, "rotation count model");
            assert_eq!(spent.mul_plain, inp.mul_plain, "mul_plain count model");
            assert_eq!(inp.mul_plain, out.mul_plain, "same masks multiply in both modes");
            assert!(
                inp.rotations < out.rotations,
                "{rows}x{cols}x{out_cols}: input {} vs output {} rotations",
                inp.rotations,
                out.rotations
            );
        }
    }

    /// An input-mode prepared plane is bit-identical to the fresh
    /// input-mode chain, spends zero mask preps, and names exactly the
    /// hoisted step list as its rotation plan.
    #[test]
    fn input_mode_prepared_bit_identical_and_plan_exact() {
        let (rows, cols, out_cols) = (4usize, 32usize, 8usize);
        let fx = input_mode_fixture(rows, cols, out_cols);
        let simd = fx.encoder.row_size();
        let x = small_matrix(&fx.ring, rows, cols, 320);
        let w = small_matrix(&fx.ring, cols, out_cols, 321);
        let packed = encrypt_matrix(Packing::TokensFirst, &x, &fx.encoder, &fx.encryptor);

        let weights = MatmulWeights::Fresh { w: &w, encoder: &fx.encoder, mode: RotationMode::Input };
        let fresh = matmul_weights(&packed, &weights, &fx.eval, &fx.keys).expect("hoist keys");

        let prepared = PreparedMatmul::new_with_mode(
            Packing::TokensFirst,
            rows,
            &w,
            &fx.eval,
            &fx.encoder,
            RotationMode::Input,
        );
        assert_eq!(prepared.hoisted_steps(), tf_input_steps(rows, cols, out_cols, simd));
        assert_eq!(prepared.mode(), RotationMode::Input);
        let before = fx.eval.counts();
        let via_plane = matmul_prepared(&packed, &prepared, &fx.eval, &fx.keys).expect("hoist keys");
        let spent = fx.eval.counts().since(&before);
        assert_eq!(via_plane.cts, fresh.cts, "prepared input-mode chain diverged");
        assert_eq!(spent.mask_prep, 0, "prepared chain must not encode masks");
    }

    /// Hoisted steps admit no power-of-two fallback: a key ring without a
    /// dedicated key for a composite hoist step fails with the typed
    /// error rather than decomposing (or silently corrupting the hoist).
    #[test]
    fn input_mode_without_dedicated_key_is_typed_error() {
        let (rows, cols, out_cols) = (3usize, 10usize, 5usize);
        let fx = fixture(rows.next_power_of_two()); // pow2 ladder + stride extras only
        let steps = tf_input_steps(rows, cols, out_cols, fx.encoder.row_size());
        assert!(
            steps.iter().any(|s| !fx.keys.steps().contains(s)),
            "shape must need a key the fixture lacks"
        );
        let x = small_matrix(&fx.ring, rows, cols, 330);
        let w = small_matrix(&fx.ring, cols, out_cols, 331);
        let packed = encrypt_matrix(Packing::TokensFirst, &x, &fx.encoder, &fx.encryptor);
        let weights = MatmulWeights::Fresh { w: &w, encoder: &fx.encoder, mode: RotationMode::Input };
        let err = matmul_weights(&packed, &weights, &fx.eval, &fx.keys).unwrap_err();
        assert!(matches!(err, HeError::MissingGaloisKey { .. }), "got {err:?}");
    }

    #[test]
    fn tokens_first_uses_far_fewer_rotations() {
        // The paper's headline packing claim at matched shapes.
        let rows = 4;
        let cols = 300;
        let out_cols = 16;
        let simd = 512;
        let tf = matmul_counts(Packing::TokensFirst, rows, cols, out_cols, simd);
        let fb = matmul_counts(Packing::FeatureBased, rows, cols, out_cols, simd);
        assert!(
            fb.rotations > tf.rotations * (rows as u64),
            "FB {} vs TF {} rotations",
            fb.rotations,
            tf.rotations
        );
    }
}
