//! Shared helpers for the table/figure generator binaries.
//!
//! Each binary regenerates one table or figure of the paper: the latency
//! columns come from the calibrated cost model (`primer-core::costmodel`)
//! at paper-scale parameters, and the accuracy columns are measured on
//! scaled random-teacher tasks (the DESIGN.md substitution), reported
//! next to the paper's values in EXPERIMENTS.md.

pub mod benchjson;

use primer_math::rng::seeded;
use primer_math::{FixedSpec, Ring};
use primer_nn::{
    evaluate, AccuracyReport, Dataset, FixedTransformer, PipelineSpec, Task, Transformer,
    TransformerConfig, TransformerWeights,
};

/// Measured accuracy of the three pipelines on every Table III task,
/// using a scaled random-teacher model (see DESIGN.md substitutions).
pub fn measure_accuracy(seed: u64, samples: usize) -> Vec<(Task, AccuracyReport)> {
    let cfg = TransformerConfig::test_small();
    let weights = TransformerWeights::random(&cfg, &mut seeded(seed));
    let teacher = Transformer::new(cfg.clone(), weights.clone());
    let spec = PipelineSpec::new(Ring::new((1 << 29) + 11), FixedSpec::new(12, 5), 12);
    let fixed = FixedTransformer::quantize(&cfg, &weights, spec);
    Task::all()
        .into_iter()
        .map(|task| {
            let ds = Dataset::generate(task, &teacher, samples, &mut seeded(seed + task as u64));
            (task, evaluate(&teacher, &fixed, &ds))
        })
        .collect()
}

/// Formats seconds the way the paper's tables do (e.g. `3094.4`).
pub fn fmt_s(v: f64) -> String {
    if v >= 1.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Formats bytes as GB.
pub fn fmt_gb(bytes: f64) -> String {
    format!("{:.2}", bytes / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_measurement_produces_all_tasks() {
        let rows = measure_accuracy(42, 10);
        assert_eq!(rows.len(), 5);
        for (_, r) in rows {
            assert!(r.float_exact > 0.0);
            assert!(r.fixed_point >= 0.0 && r.fixed_point <= 100.0);
        }
    }
}
