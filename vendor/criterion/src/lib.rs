//! Offline stand-in for the `criterion` bench harness.
//!
//! Implements the subset the Primer bench targets use: benchmark
//! groups, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's statistical machinery it runs a short calibration pass,
//! then measures enough iterations to fill a fixed time budget and
//! reports mean wall-clock time per iteration on stdout.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle.
pub struct Criterion {
    /// Per-benchmark measurement budget.
    measure_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Criterion { measure_time: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.measure_time;
        run_one(&id.into().to_string(), None, budget, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sampling is
    /// time-budgeted rather than sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput used to report a rate next to the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, self.criterion.measure_time, f);
        self
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    budget: Duration,
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, returning control once the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: one untimed call, then estimate the per-iter cost.
        std_black_box(f());
        let probe_start = Instant::now();
        std_black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        let iters = (self.budget.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.result = Some(start.elapsed() / iters as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    budget: Duration,
    mut f: F,
) {
    let mut bencher = Bencher { budget, result: None };
    f(&mut bencher);
    match bencher.result {
        Some(per_iter) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!("  ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
                }
            });
            println!("{label:<48} {per_iter:>12.2?}/iter{}", rate.unwrap_or_default());
        }
        None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a group function invoking each bench function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_once() {
        let mut c = Criterion { measure_time: Duration::from_millis(1) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 3, "calibration + measurement should run the closure");
    }
}
