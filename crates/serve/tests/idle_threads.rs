//! Idle connections are owned by the event loop, not by threads: 32
//! open sockets that never speak add **zero** threads to the server
//! process and never consume the session budget.
//!
//! This file holds exactly one test: thread counts come from
//! `/proc/self/task` and are process-wide, so no other test may run in
//! this binary concurrently.

mod common;

use common::start_server;
use primer_core::ProtocolVariant;
use primer_nn::TransformerConfig;
use primer_serve::ClientBuilder;
use std::net::TcpStream;
use std::time::Duration;

fn thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

#[test]
fn idle_connections_hold_zero_threads_and_no_budget() {
    let model = TransformerConfig::test_tiny();
    let (addr, server) = start_server(model, 1, 2, 1);
    std::thread::sleep(Duration::from_millis(200));
    let baseline = thread_count();

    let probes: Vec<TcpStream> =
        (0..32).map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("probe {i}: {e}"))).collect();
    // Give the poll loop time to accept every probe.
    std::thread::sleep(Duration::from_millis(500));
    if let (Some(before), Some(now)) = (baseline, thread_count()) {
        assert_eq!(
            now, before,
            "{} idle connections spawned {} threads; the poll loop must own them",
            probes.len(),
            now as i64 - before as i64
        );
    }

    // The probes never sent a hello, so they burn no budget: a real
    // session still gets in and concludes the server.
    let out = ClientBuilder::new(ProtocolVariant::Fpc)
        .run(addr, &[vec![9usize, 8, 7, 6]])
        .expect("session alongside 32 idle probes");
    assert_eq!(out.summary.queries, 1);
    drop(probes);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions().len(), 1, "probes left no session records");
}
