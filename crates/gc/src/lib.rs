//! Garbled circuits with free-XOR + half-gates, oblivious transfer, and
//! fixed-point non-linear function circuits — the Primer stack's
//! substitute for the JustGarble/Gazelle GC runtime.
//!
//! Layering:
//!
//! * [`circuit`] / [`builder`] — boolean circuit IR and a word-level
//!   builder (adders, multipliers, comparators, barrel shifters) with
//!   build-time constant folding,
//! * [`arith`] — ring (`Z_t`) gadgets: share reconstruction mod `t`,
//!   centered lift, re-embedding, saturation (the paper's "adder and
//!   multiplexer" modular circuits),
//! * [`nonlinear`] — SoftMax / GELU / LayerNorm / sigmoid / exp circuits,
//!   bit-exact against `primer_math::fxp`,
//! * [`garble`] — half-gates garbling and evaluation over a fixed-key
//!   AES-128 hash ([`aes`]),
//! * [`ot`] — Chou–Orlandi base OTs over MODP groups (own bignum with
//!   Montgomery exponentiation) extended via IKNP to precomputed random
//!   OTs,
//! * [`protocol`] — the two-party offline/online execution harness used
//!   by the Primer engine.
//!
//! ```
//! use primer_gc::builder::{from_bits_signed, to_bits, CircuitBuilder};
//!
//! let mut b = CircuitBuilder::new();
//! let x = b.garbler_input(8);
//! let y = b.evaluator_input(8);
//! let sum = b.add(&x, &y);
//! let circuit = b.build(&sum);
//! let out = circuit.eval_plain(&to_bits(20, 8), &to_bits(22, 8));
//! assert_eq!(from_bits_signed(&out), 42);
//! ```

pub mod aes;
pub mod arith;
pub mod builder;
pub mod circuit;
pub mod garble;
pub mod label;
pub mod nonlinear;
pub mod ot;
pub mod protocol;

pub use builder::{Bit, CircuitBuilder, Word};
pub use circuit::Circuit;
pub use nonlinear::GcNumCfg;
pub use ot::OtGroup;
pub use protocol::{EvaluatorSession, GarblerSession};
