//! LRU cache for prepared-weights planes.
//!
//! The pre-v4 server cached every plane it ever built, forever — fine
//! for one model × four variants, but the resident NTT-form masks are
//! the server's largest steady-state allocation, and a long-lived
//! server cycling through variants (or layout policies, which change
//! the cache key's fingerprint) would pin every plane it ever touched.
//! This cache bounds residency: entries are kept in recency order and
//! the least-recently-used **initialized** plane is dropped when the
//! bound is exceeded. Evictions are observable (`/stats` reports an
//! eviction counter and the resident-mask gauge shrinks), and an
//! evicted plane simply rebuilds on next use — correctness never
//! depends on residency.

use primer_core::ModelPlane;
use std::sync::{Arc, Mutex, OnceLock};

/// One lazily-built prepared plane. The cell is handed out under the
/// cache lock but **built outside it** (inside `OnceLock::get_or_init`),
/// so one plane's encode never blocks another key's sessions.
pub(crate) type PlaneCell = Arc<OnceLock<Arc<ModelPlane>>>;

/// Cache key: `(variant code, layout fingerprint)`. One server serves
/// one model, and the fingerprint covers every per-matrix mode the
/// layout selector picked, so a `PRIMER_LAYOUT` policy change between
/// sessions can never hand a session a plane whose masks were built for
/// different chains.
pub(crate) type PlaneKey = (u8, String);

struct Entry {
    key: PlaneKey,
    cell: PlaneCell,
}

/// Bounded most-recently-used-first plane cache.
pub(crate) struct LruPlaneCache {
    capacity: usize,
    /// MRU at the front. A Vec beats a linked structure here: the cache
    /// holds a handful of entries (variants × layout policies), so
    /// moves are cheap and iteration order is the recency order.
    entries: Mutex<Vec<Entry>>,
}

impl LruPlaneCache {
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), entries: Mutex::new(Vec::new()) }
    }

    /// Fetches (or inserts) the cell for `key`, marking it
    /// most-recently-used, then evicts least-recently-used initialized
    /// planes while the cache is over capacity. Returns the cell plus
    /// every plane evicted by this touch (for the caller to account).
    ///
    /// Uninitialized cells (a build in flight on another worker) are
    /// never evicted — the cache may briefly overshoot its bound while
    /// several distinct planes build concurrently, and trims on a later
    /// touch. The requested key is likewise never evicted, so capacity 1
    /// still serves.
    pub fn touch(&self, key: &PlaneKey) -> (PlaneCell, Vec<Arc<ModelPlane>>) {
        let mut entries = self.entries.lock().expect("plane cache mutex poisoned");
        let cell = match entries.iter().position(|e| &e.key == key) {
            Some(i) => {
                let e = entries.remove(i);
                let cell = Arc::clone(&e.cell);
                entries.insert(0, e);
                cell
            }
            None => {
                let cell: PlaneCell = Arc::default();
                entries.insert(0, Entry { key: key.clone(), cell: Arc::clone(&cell) });
                cell
            }
        };
        let mut evicted = Vec::new();
        while entries.len() > self.capacity {
            let victim = entries
                .iter()
                .rposition(|e| &e.key != key && e.cell.get().is_some());
            match victim {
                Some(i) => {
                    let e = entries.remove(i);
                    evicted.push(Arc::clone(e.cell.get().expect("victim was initialized")));
                }
                None => break,
            }
        }
        (cell, evicted)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.lock().expect("plane cache mutex poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u8) -> PlaneKey {
        (v, "fp".into())
    }

    // Planes are expensive to build, so the unit tests only exercise
    // the recency/eviction mechanics with uninitialized vs initialized
    // cells; integration tests cover real planes end to end.
    #[test]
    fn uninitialized_cells_are_never_evicted() {
        let cache = LruPlaneCache::new(1);
        let (_a, ev) = cache.touch(&key(0));
        assert!(ev.is_empty());
        let (_b, ev) = cache.touch(&key(1));
        // Neither cell is initialized: overshoot, no eviction.
        assert!(ev.is_empty());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn same_key_returns_same_cell() {
        let cache = LruPlaneCache::new(2);
        let (a1, _) = cache.touch(&key(0));
        let (a2, _) = cache.touch(&key(0));
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let cache = LruPlaneCache::new(0);
        assert_eq!(cache.capacity, 1);
    }
}
