//! Half-gates garbling (Zahur–Rosulek–Evans) with free XOR and free NOT.

use crate::circuit::{Circuit, Gate, OutBit};
use crate::label::{color, sample_delta, sample_label, GarbleHash, Label};
use rand::Rng;

/// The garbled tables plus output decode bits — everything shipped to the
/// evaluator besides input labels.
#[derive(Debug, Clone)]
pub struct GarbledCircuit {
    /// Two ciphertexts per AND gate, in gate order.
    pub tables: Vec<[u128; 2]>,
    /// Permute (color) bit of each output wire's zero-label; XOR with the
    /// evaluated label's color decodes the plaintext output.
    pub output_decode: Vec<OutDecode>,
}

/// Decode info for one output bit.
#[derive(Debug, Clone, Copy)]
pub enum OutDecode {
    /// Wire output: stores the color of the FALSE label.
    Wire {
        /// Color bit of label-for-false.
        zero_color: bool,
    },
    /// Constant output folded at build time.
    Const(bool),
}

/// The garbler's secrets: zero-labels for every input wire and the global
/// offset Δ (label-for-true = label-for-false ⊕ Δ).
#[derive(Debug, Clone)]
pub struct InputEncoding {
    /// Zero-labels of the garbler's input wires.
    pub garbler_zero: Vec<Label>,
    /// Zero-labels of the evaluator's input wires.
    pub evaluator_zero: Vec<Label>,
    /// Global free-XOR offset.
    pub delta: Label,
}

impl InputEncoding {
    /// Label for a garbler input bit.
    pub fn garbler_label(&self, index: usize, bit: bool) -> Label {
        self.garbler_zero[index] ^ if bit { self.delta } else { 0 }
    }

    /// Label pair `(false, true)` for an evaluator input wire (fed to OT).
    pub fn evaluator_pair(&self, index: usize) -> (Label, Label) {
        let zero = self.evaluator_zero[index];
        (zero, zero ^ self.delta)
    }
}

/// Garbles a circuit; returns the material for the evaluator and the
/// garbler's input encoding secrets.
pub fn garble<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> (GarbledCircuit, InputEncoding) {
    let hash = GarbleHash::new();
    let delta = sample_delta(rng);
    let n_inputs = circuit.first_gate_wire() as usize;
    let mut zero = Vec::with_capacity(circuit.num_wires());
    for _ in 0..n_inputs {
        zero.push(sample_label(rng));
    }

    let mut tables = Vec::with_capacity(circuit.and_count());
    let mut tweak: u64 = 0;
    for gate in &circuit.gates {
        let w0 = match *gate {
            Gate::Xor(a, b) => zero[a as usize] ^ zero[b as usize],
            Gate::Inv(a) => zero[a as usize] ^ delta,
            Gate::And(a, b) => {
                let (a0, b0) = (zero[a as usize], zero[b as usize]);
                let (a1, b1) = (a0 ^ delta, b0 ^ delta);
                let pa = color(a0);
                let pb = color(b0);
                let j0 = tweak;
                let j1 = tweak + 1;
                tweak += 2;
                // Garbler half gate.
                let tg = hash.hash(a0, j0) ^ hash.hash(a1, j0) ^ if pb { delta } else { 0 };
                let wg = hash.hash(a0, j0) ^ if pa { tg } else { 0 };
                // Evaluator half gate.
                let te = hash.hash(b0, j1) ^ hash.hash(b1, j1) ^ a0;
                let we = hash.hash(b0, j1) ^ if pb { te ^ a0 } else { 0 };
                tables.push([tg, te]);
                wg ^ we
            }
        };
        zero.push(w0);
    }

    let output_decode = circuit
        .outputs
        .iter()
        .map(|o| match *o {
            OutBit::Wire(w) => OutDecode::Wire { zero_color: color(zero[w as usize]) },
            OutBit::Const(c) => OutDecode::Const(c),
        })
        .collect();

    let encoding = InputEncoding {
        garbler_zero: zero[..circuit.garbler_inputs as usize].to_vec(),
        evaluator_zero: zero
            [circuit.garbler_inputs as usize..n_inputs]
            .to_vec(),
        delta,
    };
    (GarbledCircuit { tables, output_decode }, encoding)
}

/// Evaluates a garbled circuit given one label per input wire.
/// Returns the decoded plaintext outputs.
///
/// # Panics
///
/// Panics if label counts don't match the circuit.
pub fn evaluate(
    circuit: &Circuit,
    garbled: &GarbledCircuit,
    garbler_labels: &[Label],
    evaluator_labels: &[Label],
) -> Vec<bool> {
    assert_eq!(garbler_labels.len(), circuit.garbler_inputs as usize, "garbler labels");
    assert_eq!(evaluator_labels.len(), circuit.evaluator_inputs as usize, "evaluator labels");
    let hash = GarbleHash::new();
    let mut wires = Vec::with_capacity(circuit.num_wires());
    wires.extend_from_slice(garbler_labels);
    wires.extend_from_slice(evaluator_labels);

    let mut and_idx = 0usize;
    let mut tweak: u64 = 0;
    for gate in &circuit.gates {
        let w = match *gate {
            Gate::Xor(a, b) => wires[a as usize] ^ wires[b as usize],
            Gate::Inv(a) => wires[a as usize],
            Gate::And(a, b) => {
                let (la, lb) = (wires[a as usize], wires[b as usize]);
                let sa = color(la);
                let sb = color(lb);
                let [tg, te] = garbled.tables[and_idx];
                and_idx += 1;
                let j0 = tweak;
                let j1 = tweak + 1;
                tweak += 2;
                let wg = hash.hash(la, j0) ^ if sa { tg } else { 0 };
                let we = hash.hash(lb, j1) ^ if sb { te ^ la } else { 0 };
                wg ^ we
            }
        };
        wires.push(w);
    }

    circuit
        .outputs
        .iter()
        .zip(&garbled.output_decode)
        .map(|(o, d)| match (*o, *d) {
            (OutBit::Wire(w), OutDecode::Wire { zero_color }) => {
                color(wires[w as usize]) ^ zero_color
            }
            (OutBit::Const(c), _) => c,
            (OutBit::Wire(_), OutDecode::Const(_)) => {
                unreachable!("wire output with const decode")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_bits_signed, to_bits, CircuitBuilder};
    use primer_math::rng::seeded;

    /// Garbled evaluation must agree with plain evaluation on every input
    /// combination for a 1-bit AND/XOR/INV mix.
    #[test]
    fn garbled_equals_plain_exhaustive_small() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(2);
        let y = b.evaluator_input(2);
        let a = b.and(x[0], y[0]);
        let o = b.or(x[1], y[1]);
        let n = b.not(a);
        let m = b.mux(a, o, n);
        let circuit = b.build(&[a, o, n, m]);

        let mut rng = seeded(100);
        let (garbled, enc) = garble(&circuit, &mut rng);
        for bits in 0..16u32 {
            let gi = [(bits & 1) != 0, (bits & 2) != 0];
            let ei = [(bits & 4) != 0, (bits & 8) != 0];
            let want = circuit.eval_plain(&gi, &ei);
            let gl: Vec<_> = gi.iter().enumerate().map(|(i, &v)| enc.garbler_label(i, v)).collect();
            let el: Vec<_> = ei
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let (l0, l1) = enc.evaluator_pair(i);
                    if v {
                        l1
                    } else {
                        l0
                    }
                })
                .collect();
            let got = evaluate(&circuit, &garbled, &gl, &el);
            assert_eq!(got, want, "inputs {bits:04b}");
        }
    }

    #[test]
    fn garbled_adder_matches_reference() {
        let width = 12;
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(width);
        let y = b.evaluator_input(width);
        let s = b.add(&x, &y);
        let circuit = b.build(&s);
        let mut rng = seeded(101);
        let (garbled, enc) = garble(&circuit, &mut rng);
        for (a, c) in [(100i64, 200i64), (-1000, 999), (2047, 2047), (-2048, -1)] {
            let gi = to_bits(a, width);
            let ei = to_bits(c, width);
            let gl: Vec<_> = gi.iter().enumerate().map(|(i, &v)| enc.garbler_label(i, v)).collect();
            let el: Vec<_> = ei
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let (l0, l1) = enc.evaluator_pair(i);
                    if v {
                        l1
                    } else {
                        l0
                    }
                })
                .collect();
            let got = from_bits_signed(&evaluate(&circuit, &garbled, &gl, &el));
            let m = 1i64 << width;
            let want = (((a + c) % m) + m) % m;
            let want = if want >= m / 2 { want - m } else { want };
            assert_eq!(got, want, "{a}+{c}");
        }
    }

    #[test]
    fn table_count_equals_and_count() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input(8);
        let y = b.evaluator_input(8);
        let p = b.mul(&x, &y);
        let circuit = b.build(&p);
        let mut rng = seeded(102);
        let (garbled, _) = garble(&circuit, &mut rng);
        assert_eq!(garbled.tables.len(), circuit.and_count());
    }
}
