//! The stub's `prop_assume!` semantics: rejected cases regenerate
//! inputs instead of passing vacuously, and an unsatisfiable assumption
//! aborts the test.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every case that reaches the assertion satisfied the assumption,
    /// and regeneration finds satisfying inputs for all 16 cases even
    /// though the assumption rejects half the domain.
    #[test]
    fn assume_regenerates_until_satisfied(x in 0u64..100) {
        prop_assume!(x >= 50);
        prop_assert!(x >= 50);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// An unsatisfiable assumption must abort, not pass vacuously.
    #[test]
    #[should_panic(expected = "assumption too restrictive")]
    fn unsatisfiable_assume_aborts(x in 0u64..100) {
        prop_assume!(x > 100);
        prop_assert!(x > 100);
    }
}
