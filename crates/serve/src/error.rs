//! Typed serving-plane errors.
//!
//! The v4 API redesign replaced the old stringly `io::Error` mapping
//! (`io::Error::other(format!(...))` everywhere) with this hierarchy:
//! callers can now distinguish a transport failure from a config
//! problem from a peer speaking the protocol wrong, and session-scoped
//! failures carry the session id.

use crate::proto::ProtoError;
use std::io;

/// Everything the serving plane can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Transport-level failure (socket, file system).
    Io(io::Error),
    /// The server or builder configuration is unusable (unknown model,
    /// bad suspend directory, ...).
    Config(String),
    /// A peer's frame failed to decode or announced an incompatible
    /// protocol.
    Proto(ProtoError),
    /// A session broke protocol mid-flight (wrong shape, wrong frame,
    /// truncated flight).
    Protocol {
        /// Session the failure happened in.
        session: u64,
        /// What went wrong.
        detail: String,
    },
    /// The session's offline producer thread panicked.
    ProducerPanic {
        /// Session whose producer died.
        session: u64,
    },
    /// Suspending or resuming a session failed (bad image, missing
    /// file, config mismatch).
    Suspend {
        /// Session being parked or revived.
        session: u64,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Config(msg) => write!(f, "configuration error: {msg}"),
            ServeError::Proto(e) => write!(f, "protocol frame error: {e}"),
            ServeError::Protocol { session, detail } => {
                write!(f, "session {session} broke protocol: {detail}")
            }
            ServeError::ProducerPanic { session } => {
                write!(f, "session {session}: offline producer panicked")
            }
            ServeError::Suspend { session, detail } => {
                write!(f, "session {session} suspend/resume failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        ServeError::Proto(e)
    }
}

/// How a session worker finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// All booked queries served, summary sent.
    Completed,
    /// Parked on disk by a suspend request; resumable by token. Does
    /// **not** count toward a bounded serve run's session budget.
    Suspended,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_session_ids() {
        let e = ServeError::Protocol { session: 7, detail: "bad shape".into() };
        assert!(e.to_string().contains("session 7"));
        let e = ServeError::Suspend { session: 3, detail: "missing file".into() };
        assert!(e.to_string().contains("session 3"));
    }

    #[test]
    fn io_and_proto_convert() {
        let e: ServeError = io::Error::new(io::ErrorKind::ConnectionReset, "gone").into();
        assert!(matches!(e, ServeError::Io(_)));
        let e: ServeError = ProtoError::Truncated.into();
        assert!(matches!(e, ServeError::Proto(ProtoError::Truncated)));
    }
}
