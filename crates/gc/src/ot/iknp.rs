//! IKNP oblivious-transfer extension with precomputed random OTs.
//!
//! The garbler needs one OT per evaluator input wire per circuit; IKNP
//! turns 128 public-key base OTs into arbitrarily many symmetric-crypto
//! OTs. We expose them as *random* OTs generated offline plus the classic
//! one-message-each derandomization online — matching the paper's split
//! where garbling and OT precomputation are offline and the online phase
//! only ships corrections.

use crate::aes::Aes128;
use crate::label::Label;
use crate::ot::base::{base_ot_receive, base_ot_send, OtGroup};
use primer_net::Transport;
use rand::Rng;

const KAPPA: usize = 128;

/// PRG: expands a 128-bit seed into `n` pseudorandom bits (packed LSB
/// first in u128 blocks) using AES-CTR.
fn prg_bits(seed: u128, n: usize) -> Vec<u128> {
    let aes = Aes128::fixed();
    let blocks = n.div_ceil(128);
    (0..blocks).map(|i| aes.encrypt_block(seed ^ (i as u128) ^ (1u128 << 120))).collect()
}

fn get_bit(words: &[u128], j: usize) -> bool {
    (words[j / 128] >> (j % 128)) & 1 == 1
}

fn xor_words(a: &[u128], b: &[u128]) -> Vec<u128> {
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// Correlation-robust hash for row keys.
fn row_hash(j: u64, q: u128) -> u128 {
    let aes = Aes128::fixed();
    let x = q ^ ((j as u128) << 64);
    aes.encrypt_block(x) ^ x
}

/// The receiver's precomputed random OTs: for each index, a random
/// choice bit and the corresponding random message.
#[derive(Debug, Clone)]
pub struct RotReceiver {
    choices: Vec<bool>,
    received: Vec<Label>,
    used: usize,
}

/// The sender's precomputed random OTs: both random messages per index.
#[derive(Debug, Clone)]
pub struct RotSender {
    pairs: Vec<(Label, Label)>,
    used: usize,
}

/// Offline: runs base OTs + IKNP to set up `count` random OTs.
/// `rot_sender_offline` runs on the party that will later *send* real
/// messages (the garbler).
pub fn rot_sender_offline<R: Rng + ?Sized>(
    group: &OtGroup,
    transport: &dyn Transport,
    count: usize,
    rng: &mut R,
) -> RotSender {
    // IKNP: extension sender acts as base-OT *receiver* with random s.
    let s_bits: Vec<bool> = (0..KAPPA).map(|_| rng.gen()).collect();
    let seeds = base_ot_receive(group, transport, &s_bits, rng);
    let mut s_word: u128 = 0;
    for (i, &b) in s_bits.iter().enumerate() {
        if b {
            s_word |= 1 << i;
        }
    }
    // Receive correction columns u_i; q_i = G(k_{s_i}) ⊕ s_i·u_i.
    let blocks = count.div_ceil(128);
    let mut q_cols: Vec<Vec<u128>> = Vec::with_capacity(KAPPA);
    for (i, &seed) in seeds.iter().enumerate() {
        let u_bytes = transport.recv();
        let u: Vec<u128> = u_bytes
            .chunks(16)
            .map(|c| u128::from_le_bytes(c.try_into().expect("16-byte block")))
            .collect();
        assert_eq!(u.len(), blocks, "column length mismatch");
        let g = prg_bits(seed, count);
        q_cols.push(if s_bits[i] { xor_words(&g, &u) } else { g });
    }
    // Rows: q_j; keys (H(j, q_j), H(j, q_j ⊕ s)).
    let pairs = (0..count)
        .map(|j| {
            let mut q_row: u128 = 0;
            for (i, col) in q_cols.iter().enumerate() {
                if get_bit(col, j) {
                    q_row |= 1 << i;
                }
            }
            (row_hash(j as u64, q_row), row_hash(j as u64, q_row ^ s_word))
        })
        .collect();
    RotSender { pairs, used: 0 }
}

/// Offline counterpart on the receiving party (the evaluator).
pub fn rot_receiver_offline<R: Rng + ?Sized>(
    group: &OtGroup,
    transport: &dyn Transport,
    count: usize,
    rng: &mut R,
) -> RotReceiver {
    let choices: Vec<bool> = (0..count).map(|_| rng.gen()).collect();
    let blocks = count.div_ceil(128);
    let mut r_word = vec![0u128; blocks];
    for (j, &c) in choices.iter().enumerate() {
        if c {
            r_word[j / 128] |= 1 << (j % 128);
        }
    }
    // Base OTs: we are the *sender*, offering seed pairs.
    let seed_pairs: Vec<(u128, u128)> = (0..KAPPA).map(|_| (rng.gen(), rng.gen())).collect();
    base_ot_send(group, transport, &seed_pairs, rng);
    // Send corrections u_i = G(k0) ⊕ G(k1) ⊕ r.
    let mut t_cols: Vec<Vec<u128>> = Vec::with_capacity(KAPPA);
    for &(k0, k1) in &seed_pairs {
        let t = prg_bits(k0, count);
        let g1 = prg_bits(k1, count);
        let u = xor_words(&xor_words(&t, &g1), &r_word);
        let bytes: Vec<u8> = u.iter().flat_map(|w| w.to_le_bytes()).collect();
        transport.send_owned(bytes);
        t_cols.push(t);
    }
    let received = (0..count)
        .map(|j| {
            let mut t_row: u128 = 0;
            for (i, col) in t_cols.iter().enumerate() {
                if get_bit(col, j) {
                    t_row |= 1 << i;
                }
            }
            row_hash(j as u64, t_row)
        })
        .collect();
    RotReceiver { choices, received, used: 0 }
}

impl RotSender {
    /// Remaining precomputed OTs.
    pub fn remaining(&self) -> usize {
        self.pairs.len() - self.used
    }

    /// Online derandomization: transfers `messages[i] = (m0, m1)` so the
    /// receiver learns its chosen message. One receive + one send.
    ///
    /// # Panics
    ///
    /// Panics if fewer precomputed OTs remain than messages.
    pub fn send_chosen(&mut self, transport: &dyn Transport, messages: &[(Label, Label)]) {
        assert!(self.remaining() >= messages.len(), "ROTs exhausted");
        let flips = transport.recv();
        assert_eq!(flips.len(), messages.len().div_ceil(8), "flip length");
        let mut payload = Vec::with_capacity(messages.len() * 32);
        for (k, &(m0, m1)) in messages.iter().enumerate() {
            let (r0, r1) = self.pairs[self.used + k];
            let e = (flips[k / 8] >> (k % 8)) & 1 == 1;
            // Receiver knows r_d; e = c ⊕ d.
            let (f0, f1) = if e { (m0 ^ r1, m1 ^ r0) } else { (m0 ^ r0, m1 ^ r1) };
            payload.extend_from_slice(&f0.to_le_bytes());
            payload.extend_from_slice(&f1.to_le_bytes());
        }
        self.used += messages.len();
        transport.send_owned(payload);
    }
}

impl RotReceiver {
    /// Remaining precomputed OTs.
    pub fn remaining(&self) -> usize {
        self.choices.len() - self.used
    }

    /// Online derandomization: learns `m_{choices[i]}` for each index.
    ///
    /// # Panics
    ///
    /// Panics if fewer precomputed OTs remain than choices.
    pub fn receive_chosen(&mut self, transport: &dyn Transport, choices: &[bool]) -> Vec<Label> {
        assert!(self.remaining() >= choices.len(), "ROTs exhausted");
        let mut flips = vec![0u8; choices.len().div_ceil(8)];
        for (k, &c) in choices.iter().enumerate() {
            let d = self.choices[self.used + k];
            if c ^ d {
                flips[k / 8] |= 1 << (k % 8);
            }
        }
        transport.send_owned(flips);
        let payload = transport.recv();
        let out = choices
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                let base = k * 32;
                let f0 = u128::from_le_bytes(payload[base..base + 16].try_into().expect("f0"));
                let f1 =
                    u128::from_le_bytes(payload[base + 16..base + 32].try_into().expect("f1"));
                let rd = self.received[self.used + k];
                if c {
                    f1 ^ rd
                } else {
                    f0 ^ rd
                }
            })
            .collect();
        self.used += choices.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_math::rng::seeded;
    use primer_net::run_two_party;

    #[test]
    fn extension_transfers_many_chosen_messages() {
        let count = 300usize;
        let messages: Vec<(Label, Label)> =
            (0..count).map(|i| ((2 * i) as u128, (2 * i + 1) as u128)).collect();
        let choices: Vec<bool> = (0..count).map(|i| (i * 7) % 3 == 1).collect();
        let msgs = messages.clone();
        let chs = choices.clone();
        let (got, _, meter) = run_two_party(
            move |t| {
                let mut rot =
                    rot_receiver_offline(&OtGroup::test_768(), &t, count, &mut seeded(120));
                rot.receive_chosen(&t, &chs)
            },
            move |t| {
                let mut rot =
                    rot_sender_offline(&OtGroup::test_768(), &t, count, &mut seeded(121));
                rot.send_chosen(&t, &msgs);
            },
        );
        for i in 0..count {
            let want = if choices[i] { messages[i].1 } else { messages[i].0 };
            assert_eq!(got[i], want, "ot {i}");
        }
        // Online phase is 2 messages; the rest is offline setup.
        assert!(meter.total_messages() > 2);
    }

    #[test]
    fn rots_can_be_consumed_in_batches() {
        let (got, _, _) = run_two_party(
            move |t| {
                let mut rot =
                    rot_receiver_offline(&OtGroup::test_768(), &t, 10, &mut seeded(122));
                let mut all = rot.receive_chosen(&t, &[true, false]);
                all.extend(rot.receive_chosen(&t, &[true]));
                all
            },
            move |t| {
                let mut rot = rot_sender_offline(&OtGroup::test_768(), &t, 10, &mut seeded(123));
                rot.send_chosen(&t, &[(1, 2), (3, 4)]);
                rot.send_chosen(&t, &[(5, 6)]);
            },
        );
        assert_eq!(got, vec![2, 3, 6]);
    }
}
