//! Setup-time prepared weight planes for encrypted matmul.
//!
//! Every mask an encrypted matmul multiplies by is a pure function of
//! the (session-constant) weight matrix and the packing layout — yet the
//! pre-refactor hot path re-encoded and re-NTT-lifted every one of them
//! on every query. A [`PreparedMatmul`] performs that work exactly once,
//! at session **Setup**, and hands the chains read-only NTT-form
//! [`MulPlain`] masks. The masks are built by the *same* slot builders
//! as the fresh path, so prepared and fresh matmuls are bit-identical;
//! the only difference is where (and how often) `mask_prep` ops run.
//!
//! Planes are immutable after construction (`Sync` by construction), so
//! the serving registry can share one `Arc`'d plane set between every
//! concurrent session of the same model — see
//! `primer_serve::Server`'s prepared-plane cache.

use super::matmul::{
    fb_full_mask_slots, fb_grouped_a_slots, fb_grouped_b_slots, fb_out_layout, tf_input_steps,
    tf_mask_slots, tf_mask_slots_rotated, RotationMode,
};
use super::{Layout, Packing};
use primer_he::{BatchEncoder, Evaluator, MulPlain};
use primer_math::MatZ;

/// Per-packing mask storage, indexed exactly the way the chains walk.
enum Masks {
    /// `masks[(r·block + b)·in_cts + k]`; `None` where the mask is empty
    /// (the chain skips those multiplications).
    TokensFirst { block: usize, in_cts: usize, masks: Vec<Option<MulPlain>> },
    /// `masks[oc][delta·chunks + c]` (token-independent: every token's
    /// chain reuses the same per-(oc, delta, chunk) mask).
    FbFull { chunks: usize, masks: Vec<Vec<MulPlain>> },
    /// Chain A `a[oc][delta]`, chain B `b[oc][k−1]` (B's length per `oc`
    /// is `dout_chunk − 1`).
    FbGrouped { a: Vec<Vec<MulPlain>>, b: Vec<Vec<MulPlain>> },
}

/// One weight matrix's masks, encoded + NTT-lifted once for a fixed
/// input shape `(packing, rows, in_cols)`, plus the rotation plan its
/// chains require.
pub struct PreparedMatmul {
    in_layout: Layout,
    out_layout: Layout,
    out_cols: usize,
    masks: Masks,
    mask_bytes: u64,
    steps: Vec<usize>,
    mode: RotationMode,
}

impl PreparedMatmul {
    /// Builds the plane for `Enc(X: rows × w.rows()) · w`, fanning the
    /// per-mask encoding across the thread pool (the build is a pure
    /// function of `(packing, rows, w)`, so parallelism cannot change
    /// the masks). Chains run in output-rotation mode; the layout
    /// selector uses [`PreparedMatmul::new_with_mode`].
    pub fn new(
        packing: Packing,
        rows: usize,
        w: &MatZ,
        eval: &Evaluator,
        encoder: &BatchEncoder,
    ) -> Self {
        Self::new_with_mode(packing, rows, w, eval, encoder, RotationMode::Output)
    }

    /// [`PreparedMatmul::new`] with an explicit rotation mode. In input
    /// mode (tokens-first only) the stored masks are the slot-rotated
    /// `σ_{b·pad}(m')` forms and the rotation plan is the per-input-ct
    /// hoisted step list instead of the single Horner stride.
    pub fn new_with_mode(
        packing: Packing,
        rows: usize,
        w: &MatZ,
        eval: &Evaluator,
        encoder: &BatchEncoder,
        mode: RotationMode,
    ) -> Self {
        assert!(
            packing == Packing::TokensFirst || mode == RotationMode::Output,
            "input-rotation mode is a tokens-first layout"
        );
        let simd = encoder.row_size();
        let in_l = Layout::plan(packing, rows, w.rows(), simd);
        let out_cols = w.cols();
        let prep = |slots: &[u64]| eval.prepare_mul_plain(&encoder.encode(slots));
        let (masks, out_layout, steps) = match packing {
            Packing::TokensFirst => {
                let out_l = Layout::plan(packing, rows, out_cols, simd);
                let block = in_l.block();
                let in_cts = in_l.num_cts;
                let total = out_l.num_cts * block * in_cts;
                let masks = rayon::par_iter_chunks(total, |idx| {
                    let (rb, k) = (idx / in_cts, idx % in_cts);
                    let (r, b) = (rb / block, rb % block);
                    match mode {
                        RotationMode::Output => {
                            tf_mask_slots(&in_l, w, r, b, k).map(|slots| prep(&slots))
                        }
                        RotationMode::Input => {
                            tf_mask_slots_rotated(&in_l, w, r, b, k).map(|slots| prep(&slots))
                        }
                    }
                });
                let steps = match mode {
                    RotationMode::Output => vec![in_l.pad],
                    RotationMode::Input => tf_input_steps(rows, w.rows(), out_cols, simd),
                };
                (Masks::TokensFirst { block, in_cts, masks }, out_l, steps)
            }
            Packing::FeatureBased if in_l.pad == simd => {
                let chunks = in_l.cols.div_ceil(simd);
                let out_chunks = out_cols.div_ceil(simd);
                let masks = rayon::par_iter_chunks(out_chunks, |oc| {
                    (0..simd * chunks)
                        .map(|i| {
                            let (delta, c) = (i / chunks, i % chunks);
                            prep(&fb_full_mask_slots(&in_l, w, oc, delta, c))
                        })
                        .collect()
                });
                (Masks::FbFull { chunks, masks }, fb_out_layout(&in_l, out_cols), vec![1])
            }
            Packing::FeatureBased => {
                let fp = in_l.pad;
                let out_chunks = out_cols.div_ceil(fp);
                let chain_a = in_l.cols.min(fp);
                let a = rayon::par_iter_chunks(out_chunks, |oc| {
                    (0..chain_a).map(|delta| prep(&fb_grouped_a_slots(&in_l, w, oc, delta))).collect()
                });
                let b = rayon::par_iter_chunks(out_chunks, |oc| {
                    let dout_chunk = fp.min(out_cols - oc * fp);
                    (1..dout_chunk).map(|k| prep(&fb_grouped_b_slots(&in_l, w, oc, k))).collect()
                });
                (Masks::FbGrouped { a, b }, fb_out_layout(&in_l, out_cols), vec![1, simd - 1])
            }
        };
        let mask_bytes = match &masks {
            Masks::TokensFirst { masks, .. } => {
                masks.iter().flatten().map(|m| m.resident_bytes() as u64).sum()
            }
            Masks::FbFull { masks, .. } => {
                masks.iter().flatten().map(|m| m.resident_bytes() as u64).sum()
            }
            Masks::FbGrouped { a, b } => a
                .iter()
                .chain(b)
                .flatten()
                .map(|m| m.resident_bytes() as u64)
                .sum(),
        };
        Self { in_layout: in_l, out_layout, out_cols, masks, mask_bytes, steps, mode }
    }

    /// The input layout this plane was built for.
    pub fn in_layout(&self) -> &Layout {
        &self.in_layout
    }

    /// The layout of the product this plane yields.
    pub fn out_layout(&self) -> &Layout {
        &self.out_layout
    }

    /// Weight input width (`w.rows()`).
    pub fn in_cols(&self) -> usize {
        self.in_layout.cols
    }

    /// Weight output width (`w.cols()`).
    pub fn out_cols(&self) -> usize {
        self.out_cols
    }

    /// Resident memory pinned by the encoded masks, in bytes.
    pub fn mask_bytes(&self) -> u64 {
        self.mask_bytes
    }

    /// The rotation steps this plane's chains issue — the plan Setup
    /// uses to verify dedicated Galois keys exist for every step.
    pub fn rotation_steps(&self) -> &[usize] {
        &self.steps
    }

    /// The rotation mode this plane's chains run in.
    pub fn mode(&self) -> RotationMode {
        self.mode
    }

    /// The steps this plane issues through hoisted `rotate_many` calls.
    /// Unlike ordinary rotations, hoisted steps cannot fall back to a
    /// power-of-two decomposition mid-hoist, so Setup must verify a
    /// *dedicated* key exists for each — a mismatch here is the
    /// layout/key-plan bug class that must fail at Setup, never
    /// mid-offline.
    pub fn hoisted_steps(&self) -> &[usize] {
        match self.mode {
            RotationMode::Output => &[],
            RotationMode::Input => &self.steps,
        }
    }

    pub(super) fn tf_mask(&self, r: usize, b: usize, k: usize) -> Option<&MulPlain> {
        let Masks::TokensFirst { block, in_cts, masks } = &self.masks else {
            panic!("prepared plane is not tokens-first");
        };
        masks[(r * block + b) * in_cts + k].as_ref()
    }

    pub(super) fn fb_full_mask(&self, oc: usize, delta: usize, c: usize) -> &MulPlain {
        let Masks::FbFull { chunks, masks } = &self.masks else {
            panic!("prepared plane is not feature-based full-width");
        };
        &masks[oc][delta * chunks + c]
    }

    pub(super) fn fb_grouped_a_mask(&self, oc: usize, delta: usize) -> &MulPlain {
        let Masks::FbGrouped { a, .. } = &self.masks else {
            panic!("prepared plane is not feature-based grouped");
        };
        &a[oc][delta]
    }

    pub(super) fn fb_grouped_b_mask(&self, oc: usize, k: usize) -> &MulPlain {
        let Masks::FbGrouped { b, .. } = &self.masks else {
            panic!("prepared plane is not feature-based grouped");
        };
        &b[oc][k - 1]
    }
}

impl std::fmt::Debug for PreparedMatmul {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedMatmul")
            .field("in_layout", &self.in_layout)
            .field("out_cols", &self.out_cols)
            .field("mask_bytes", &self.mask_bytes)
            .field("steps", &self.steps)
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}
