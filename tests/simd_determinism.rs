//! SIMD-tier determinism: the vector kernels under the NTT must be a
//! pure performance knob. For every protocol variant, end-to-end
//! private inference over a multi-bundle session must produce
//! **bit-identical** logits at `PRIMER_SIMD=scalar`, `avx2`, and
//! `avx512` — and match the plaintext fixed-point reference at every
//! setting.
//!
//! This is the contract DESIGN.md §11 states: every vectorized kernel
//! produces the exact canonical residues of the scalar reference, so
//! wire bytes and logits never depend on the CPU the party runs on.
//! The per-kernel lane-level checks live in `primer_he`'s
//! `simd_bit_identity` suite; this test pins the property through the
//! full protocol stack. Tiers the host CPU lacks are skipped with a
//! logged note (never silently — a forced tier degrades to the widest
//! supported one, so running it anyway would just re-test that tier).
//!
//! Everything runs in ONE `#[test]` because `PRIMER_SIMD` is
//! process-global state; integration-test files get their own process,
//! so no other suite observes the mutation.

use primer_core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer_he::simd;
use primer_math::rng::seeded;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};

fn engine_for(variant: ProtocolVariant) -> Engine {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(910));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    Engine::new(sys, variant, fixed, GcMode::Simulated, 911)
}

/// Three queries over a pool of two: one parallel refill batch of 2
/// bundles plus a remainder batch of 1, so both the fan-out and the
/// tail of the refill schedule run under each SIMD setting.
fn serve_logits(variant: ProtocolVariant, simd: &str) -> Vec<Vec<i64>> {
    std::env::set_var("PRIMER_SIMD", simd);
    let queries = vec![vec![3, 17, 0, 29], vec![5, 5, 30, 1], vec![9, 2, 31, 12]];
    let reports = engine_for(variant).serve_pooled(&queries, 2);
    for (i, report) in reports.iter().enumerate() {
        assert!(
            report.matches_plaintext_reference(),
            "{} query {i} at PRIMER_SIMD={simd}: private {:?} != reference {:?}",
            variant.name(),
            report.logits,
            report.reference_logits
        );
    }
    reports.into_iter().map(|r| r.logits).collect()
}

#[test]
fn all_variants_bit_identical_across_simd_tiers() {
    // The forced tiers the host can genuinely exercise, plus the legacy
    // auto spelling (kept so the historical `0` vs `1` contract stays
    // pinned verbatim).
    let mut tiers = vec!["1"];
    if simd::avx2_available() {
        tiers.push("avx2");
    } else {
        eprintln!("note: host lacks AVX2 — skipping the avx2 forced tier");
    }
    if simd::avx512_available() {
        tiers.push("avx512");
    } else {
        eprintln!("note: host lacks AVX-512 (F+DQ) — skipping the avx512 forced tier");
    }

    for variant in ProtocolVariant::all() {
        let scalar = serve_logits(variant, "scalar");
        for tier in &tiers {
            let got = serve_logits(variant, tier);
            assert_eq!(
                got,
                scalar,
                "{} logits diverged between forced-scalar and PRIMER_SIMD={}",
                variant.name(),
                tier
            );
        }
    }
    std::env::remove_var("PRIMER_SIMD");
}
