//! Regenerates **Figure 6**'s quantitative claim: homomorphic rotation
//! counts under feature-based vs tokens-first packing for the paper's
//! matmul shapes, plus a live measured comparison at test scale.
//!
//! Run: `cargo run --release -p primer-bench --bin fig6_packing`

use primer_core::packing::{encrypt_matrix, matmul_plain_weights};
use primer_core::{matmul_counts, Packing};
use primer_he::{BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator};
use primer_math::rng::seeded;
use primer_math::MatZ;
use std::time::Instant;

fn main() {
    println!("# Figure 6 — rotation counts per encrypted matmul (paper shapes, M = 4096)");
    println!(
        "{:<28} {:>14} {:>14} {:>8}",
        "shape (rows x cols x out)", "feature-based", "tokens-first", "ratio"
    );
    let simd = 4096;
    for (label, rows, cols, out) in [
        ("embed 30x30522x768", 30, 30522, 768),
        ("qkv 30x768x768", 30, 768, 768),
        ("ffn-up 30x768x3072", 30, 768, 3072),
        ("ffn-down 30x3072x768", 30, 3072, 768),
    ] {
        let fb = matmul_counts(Packing::FeatureBased, rows, cols, out, simd);
        let tf = matmul_counts(Packing::TokensFirst, rows, cols, out, simd);
        println!(
            "{:<28} {:>14} {:>14} {:>7.1}x",
            label,
            fb.rotations,
            tf.rotations,
            fb.rotations as f64 / tf.rotations.max(1) as f64
        );
    }

    println!();
    println!("# live measured matmul (toy HE profile, 4x300x16)");
    let ctx = HeContext::new(HeParams::toy());
    let encoder = BatchEncoder::new(&ctx);
    let mut rng = seeded(540);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 541);
    let eval = Evaluator::new(&ctx);
    let m = ctx.params().row_size();
    let keys = kg.galois_keys_pow2(&[1, 4, m - 1, m - 4], false, &mut rng);
    let x = MatZ::from_fn(4, 300, |i, j| ((i * 7 + j) % 30) as u64);
    let w = MatZ::from_fn(300, 16, |i, j| ((i + j * 3) % 30) as u64);
    for packing in [Packing::FeatureBased, Packing::TokensFirst] {
        let packed = encrypt_matrix(packing, &x, &encoder, &encryptor);
        let before = eval.counts();
        let start = Instant::now();
        let _ = matmul_plain_weights(&packed, &w, &eval, &encoder, &keys).expect("keys");
        let elapsed = start.elapsed();
        let spent = eval.counts().since(&before);
        println!(
            "{:?}: {} rotations, {} pt-mults, {:.1} ms",
            packing,
            spent.rotations,
            spent.mul_plain,
            elapsed.as_secs_f64() * 1e3
        );
    }
}
