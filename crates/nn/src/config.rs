//! Transformer model configurations (Table III of the paper, plus
//! scaled-down test profiles).

/// Hyper-parameters of a BERT-style encoder stack.
///
/// ```
/// use primer_nn::TransformerConfig;
/// let base = TransformerConfig::bert_base();
/// assert_eq!(base.n_blocks, 12);
/// assert_eq!(base.d_model, 768);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Vocabulary size `d_oh` (one-hot width; WordPiece uses 30522).
    pub vocab: usize,
    /// Number of encoder blocks `N`.
    pub n_blocks: usize,
    /// Embedding / hidden width `d_emb`.
    pub d_model: usize,
    /// Attention heads `H`.
    pub n_heads: usize,
    /// Input tokens `n`.
    pub n_tokens: usize,
    /// Feed-forward inner width (4 × d_model for BERT).
    pub d_ff: usize,
    /// Output classes of the classification head.
    pub n_classes: usize,
}

impl TransformerConfig {
    /// Generic constructor with BERT's `d_ff = 4·d_model` convention.
    ///
    /// # Panics
    ///
    /// Panics unless `d_model` is divisible by `n_heads` and all
    /// dimensions are non-zero.
    pub fn new(
        name: &str,
        vocab: usize,
        n_blocks: usize,
        d_model: usize,
        n_heads: usize,
        n_tokens: usize,
        n_classes: usize,
    ) -> Self {
        assert!(vocab > 0 && n_blocks > 0 && d_model > 0 && n_tokens > 0 && n_classes > 1);
        assert_eq!(d_model % n_heads, 0, "d_model must divide into heads");
        Self {
            name: name.to_owned(),
            vocab,
            n_blocks,
            d_model,
            n_heads,
            n_tokens,
            d_ff: 4 * d_model,
            n_classes,
        }
    }

    /// BERT-tiny (Table III): N=3, d=768, H=12, n=30.
    pub fn bert_tiny() -> Self {
        Self::new("BERT-tiny", 30522, 3, 768, 12, 30, 3)
    }

    /// BERT-small (Table III): N=6, d=768, H=12, n=30.
    pub fn bert_small() -> Self {
        Self::new("BERT-small", 30522, 6, 768, 12, 30, 3)
    }

    /// BERT-base (Table III): N=12, d=768, H=12, n=30.
    pub fn bert_base() -> Self {
        Self::new("BERT-base", 30522, 12, 768, 12, 30, 3)
    }

    /// BERT-medium (Table III): N=12, d=1024, H=16, n=30.
    pub fn bert_medium() -> Self {
        Self::new("BERT-medium", 30522, 12, 1024, 16, 30, 3)
    }

    /// BERT-large (Table III): N=24, d=1024, H=16, n=30.
    pub fn bert_large() -> Self {
        Self::new("BERT-large", 30522, 24, 1024, 16, 30, 3)
    }

    /// All five Table III models, in the paper's order.
    pub fn table3_models() -> Vec<Self> {
        vec![
            Self::bert_tiny(),
            Self::bert_small(),
            Self::bert_base(),
            Self::bert_medium(),
            Self::bert_large(),
        ]
    }

    /// Minimal profile for end-to-end private-inference tests.
    pub fn test_tiny() -> Self {
        Self::new("test-tiny", 32, 1, 8, 2, 4, 3)
    }

    /// Slightly larger test profile (two blocks).
    pub fn test_small() -> Self {
        Self::new("test-small", 64, 2, 16, 4, 6, 3)
    }

    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Attention scale η = √n, following the paper's definition
    /// (`Attention = SoftMax(X_Q·X_Kᵀ/√n)·X_V` with n = token count).
    pub fn attn_scale(&self) -> f64 {
        1.0 / (self.n_tokens as f64).sqrt()
    }

    /// Total parameter count (for reports).
    pub fn param_count(&self) -> usize {
        let block = 4 * self.d_model * self.d_model
            + 2 * self.d_model * self.d_ff
            + 4 * self.d_model;
        self.vocab * self.d_model
            + self.n_tokens * self.d_model
            + self.n_blocks * block
            + self.d_model * self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_hyperparameters_match_paper() {
        let models = TransformerConfig::table3_models();
        let expect = [
            ("BERT-tiny", 3usize, 768usize, 12usize),
            ("BERT-small", 6, 768, 12),
            ("BERT-base", 12, 768, 12),
            ("BERT-medium", 12, 1024, 16),
            ("BERT-large", 24, 1024, 16),
        ];
        for (m, (name, n, d, h)) in models.iter().zip(expect) {
            assert_eq!(m.name, name);
            assert_eq!(m.n_blocks, n);
            assert_eq!(m.d_model, d);
            assert_eq!(m.n_heads, h);
            assert_eq!(m.n_tokens, 30);
            assert_eq!(m.vocab, 30522);
        }
    }

    #[test]
    fn bert_base_param_count_plausible() {
        // BERT-base is ~110M parameters; our encoder-only accounting
        // (no segment embeddings etc.) should land in the same decade.
        let p = TransformerConfig::bert_base().param_count();
        assert!(p > 80_000_000 && p < 130_000_000, "params {p}");
    }

    #[test]
    #[should_panic(expected = "divide into heads")]
    fn head_divisibility_enforced() {
        TransformerConfig::new("bad", 10, 1, 10, 3, 4, 2);
    }
}
