//! Fixed-point and modular-ring linear algebra for the Primer
//! private-inference stack.
//!
//! This crate is the numeric foundation shared by every other crate in the
//! workspace:
//!
//! * [`Ring`] — arithmetic in the plaintext ring `Z_t` (the same `t` serves
//!   as HE batching modulus, secret-sharing modulus and GC word ring),
//! * [`FixedSpec`] — the paper's 15-bit fixed-point format and its
//!   re-truncation semantics,
//! * [`Matrix`] / [`MatZ`] / [`MatF`] — dense matrices over `Z_t` and f64,
//! * [`fxp`] — the shared fixed-point algorithms (exp, reciprocal, rsqrt,
//!   softmax, GELU, LayerNorm) that the garbled circuits replicate
//!   bit-exactly,
//! * [`activation`] — f64 references and THE-X-style polynomial
//!   approximations,
//! * [`rng`] — deterministic seeded randomness.
//!
//! ```
//! use primer_math::{FixedSpec, Ring};
//! let ring = Ring::new(65537);
//! let spec = FixedSpec::paper();
//! let x = spec.encode(&ring, -1.25);
//! assert_eq!(spec.decode(&ring, x), -1.25);
//! ```

pub mod activation;
pub mod fixed;
pub mod fxp;
pub mod matrix;
pub mod ring;
pub mod rng;

pub use fixed::FixedSpec;
pub use matrix::{MatF, MatZ, Matrix};
pub use ring::Ring;
