//! Fig. 6 on real hardware: encrypted matmul latency under feature-based
//! vs tokens-first packing at matched shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use primer_core::packing::{encrypt_matrix, matmul_plain_weights, Packing};
use primer_he::{BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator};
use primer_math::rng::seeded;
use primer_math::MatZ;

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing_matmul");
    group.sample_size(10);
    let ctx = HeContext::new(HeParams::toy());
    let encoder = BatchEncoder::new(&ctx);
    let mut rng = seeded(520);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 521);
    let eval = Evaluator::new(&ctx);
    let simd = ctx.params().row_size();
    let keys = kg.galois_keys_pow2(&[1, 4, simd - 1, simd - 4], false, &mut rng);

    // Embedding-shaped (tall) and projection-shaped (square) matmuls.
    for (label, rows, cols, out) in [("embed_4x300x16", 4, 300, 16), ("proj_4x16x16", 4, 16, 16)] {
        let x = MatZ::from_fn(rows, cols, |i, j| ((i * 7 + j) % 30) as u64);
        let w = MatZ::from_fn(cols, out, |i, j| ((i + j * 3) % 30) as u64);
        for packing in [Packing::FeatureBased, Packing::TokensFirst] {
            let packed = encrypt_matrix(packing, &x, &encoder, &encryptor);
            group.bench_function(BenchmarkId::new(format!("{packing:?}"), label), |b| {
                b.iter(|| {
                    matmul_plain_weights(&packed, &w, &eval, &encoder, &keys).expect("keys")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
