//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose
/// length is uniform in `size` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn vec_respects_size_and_element_bounds() {
        let strat = vec(0u64..10, 1..20);
        let mut rng = case_rng("collection::vec", 0);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
