//! SIMD batching encoder.
//!
//! With `t ≡ 1 (mod 2n)`, the plaintext ring `Z_t[x]/(x^n+1)` splits into
//! `n` slots, arranged SEAL-style as a 2 × (n/2) matrix. The Galois
//! automorphism `x → x^(3^k)` rotates each row by `k`; `x → x^(2n-1)`
//! swaps the rows.
//!
//! Instead of hard-coding the output ordering of our NTT, the constructor
//! *measures* it: the forward NTT of the polynomial `x` yields the
//! evaluation point of every output position, whose discrete logs (base a
//! primitive `2n`-th root) pin down the slot ↔ position map. This makes
//! the encoder robust to any internally consistent NTT variant, and the
//! rotation semantics are locked in by tests.

use crate::cipher::Plaintext;
use crate::context::HeContext;
use crate::simd;
use std::collections::HashMap;

/// Encoder between slot vectors (`Z_t^n`) and plaintext polynomials.
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    ctx: HeContext,
    /// `pos_of_slot[s]` = NTT output position storing slot `s` (the
    /// decode gather map).
    pos_of_slot: Vec<u32>,
    /// Inverse permutation: `slot_of_pos[p]` = slot stored at NTT output
    /// position `p`, so encode's scatter runs as a vectorized gather
    /// through it (PR 10).
    slot_of_pos: Vec<u32>,
}

impl BatchEncoder {
    /// Builds the encoder for a context.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext modulus does not support batching (cannot
    /// happen for validated parameter sets).
    pub fn new(ctx: &HeContext) -> Self {
        let n = ctx.n();
        let two_n = 2 * n as u64;
        let t = ctx.plain();

        // Evaluation point of every NTT output position = forward NTT of
        // the polynomial "x".
        let mut x_poly = vec![0u64; n];
        x_poly[1] = 1;
        ctx.plain_ntt().forward(&mut x_poly);

        // Discrete logs base psi (a primitive 2n-th root mod t).
        let psi = t.primitive_root(two_n);
        let mut dlog: HashMap<u64, u64> = HashMap::with_capacity(2 * n);
        let mut acc = 1u64;
        for k in 0..two_n {
            dlog.insert(acc, k);
            acc = t.mul(acc, psi);
        }
        let mut pos_of_exp: HashMap<u64, usize> = HashMap::with_capacity(n);
        for (i, &root) in x_poly.iter().enumerate() {
            let e = *dlog.get(&root).expect("NTT output is not a 2n-th root — invalid t");
            pos_of_exp.insert(e, i);
        }

        // Slot s = (row, col): exponent 3^col (row 0) or -3^col (row 1).
        let row_size = n / 2;
        let mut pos_of_slot = vec![0u32; n];
        let mut g = 1u64; // 3^col mod 2n
        for col in 0..row_size {
            let e0 = g;
            let e1 = two_n - g;
            pos_of_slot[col] =
                *pos_of_exp.get(&e0).expect("missing exponent in slot map") as u32;
            pos_of_slot[row_size + col] =
                *pos_of_exp.get(&e1).expect("missing exponent in slot map") as u32;
            g = (g * 3) % two_n;
        }
        let mut slot_of_pos = vec![0u32; n];
        for (s, &p) in pos_of_slot.iter().enumerate() {
            slot_of_pos[p as usize] = s as u32;
        }
        Self { ctx: ctx.clone(), pos_of_slot, slot_of_pos }
    }

    /// Number of slots (= n).
    pub fn slot_count(&self) -> usize {
        self.pos_of_slot.len()
    }

    /// Slots per row (= n/2).
    pub fn row_size(&self) -> usize {
        self.pos_of_slot.len() / 2
    }

    /// Encodes up to `slot_count` values (mod `t`); missing slots are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than `slot_count` values are supplied or any value
    /// is `>= t`.
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        let n = self.slot_count();
        assert!(values.len() <= n, "too many values for {n} slots");
        let t = self.ctx.plain().value();
        // Zero-extend to all slots, then run the scatter as a vectorized
        // gather through the inverse permutation — bit-identical because
        // unassigned slots hold the same zeros the scatter left behind.
        let mut padded = vec![0u64; n];
        for (s, &v) in values.iter().enumerate() {
            assert!(v < t, "slot value {v} not reduced mod {t}");
            padded[s] = v;
        }
        let mut buf = vec![0u64; n];
        simd::gather(&padded, &self.slot_of_pos, &mut buf, simd::level());
        self.ctx.plain_ntt().inverse(&mut buf);
        Plaintext::from_coeffs(buf)
    }

    /// Encodes signed values through the centered embedding.
    pub fn encode_signed(&self, values: &[i64]) -> Plaintext {
        let t = self.ctx.plain();
        let mapped: Vec<u64> = values.iter().map(|&v| t.from_signed(v)).collect();
        self.encode(&mapped)
    }

    /// Decodes a plaintext back to all `slot_count` slot values.
    pub fn decode(&self, plain: &Plaintext) -> Vec<u64> {
        let mut buf = plain.coeffs().to_vec();
        self.ctx.plain_ntt().forward(&mut buf);
        let mut out = vec![0u64; buf.len()];
        simd::gather(&buf, &self.pos_of_slot, &mut out, simd::level());
        out
    }

    /// Decodes to centered signed values.
    pub fn decode_signed(&self, plain: &Plaintext) -> Vec<i64> {
        let t = self.ctx.plain();
        self.decode(plain).into_iter().map(|v| t.to_signed(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HeParams;
    use crate::poly::RnsPoly;

    fn setup() -> (HeContext, BatchEncoder) {
        let ctx = HeContext::new(HeParams::toy());
        let enc = BatchEncoder::new(&ctx);
        (ctx, enc)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (_ctx, enc) = setup();
        let vals: Vec<u64> = (0..enc.slot_count() as u64).collect();
        assert_eq!(enc.decode(&enc.encode(&vals)), vals);
    }

    #[test]
    fn signed_roundtrip() {
        let (_ctx, enc) = setup();
        let vals: Vec<i64> = (0..enc.slot_count() as i64).map(|i| i - 512).collect();
        assert_eq!(enc.decode_signed(&enc.encode_signed(&vals)), vals);
    }

    #[test]
    fn partial_encode_zero_fills() {
        let (_ctx, enc) = setup();
        let out = enc.decode(&enc.encode(&[5, 6, 7]));
        assert_eq!(&out[..3], &[5, 6, 7]);
        assert!(out[3..].iter().all(|&v| v == 0));
    }

    /// The load-bearing property: the automorphism x → x^(3^k) rotates
    /// each batching row left by k (slot i takes the value of slot i+k).
    #[test]
    fn galois_3_rotates_rows_left() {
        let (ctx, enc) = setup();
        let n = enc.slot_count();
        let rs = enc.row_size();
        let vals: Vec<u64> = (0..n as u64).map(|v| v + 1).collect();
        let pt = enc.encode(&vals);

        // Apply the automorphism via a single-prime "plaintext ring" poly.
        let plain_only = plain_poly_automorphism(&ctx, pt.coeffs(), 3);
        let rotated = enc.decode(&Plaintext::from_coeffs(plain_only));
        for i in 0..rs {
            assert_eq!(rotated[i], vals[(i + 1) % rs], "row 0 slot {i}");
            assert_eq!(rotated[rs + i], vals[rs + (i + 1) % rs], "row 1 slot {i}");
        }
    }

    #[test]
    fn galois_2n_minus_1_swaps_rows() {
        let (ctx, enc) = setup();
        let n = enc.slot_count();
        let rs = enc.row_size();
        let vals: Vec<u64> = (0..n as u64).map(|v| v + 1).collect();
        let pt = enc.encode(&vals);
        let g = 2 * ctx.n() as u64 - 1;
        let swapped = enc.decode(&Plaintext::from_coeffs(plain_poly_automorphism(
            &ctx,
            pt.coeffs(),
            g,
        )));
        for i in 0..rs {
            assert_eq!(swapped[i], vals[rs + i]);
            assert_eq!(swapped[rs + i], vals[i]);
        }
    }

    /// Applies x→x^g to a plaintext polynomial mod t (test helper mirroring
    /// RnsPoly::apply_automorphism but over the plaintext modulus).
    fn plain_poly_automorphism(ctx: &HeContext, coeffs: &[u64], g: u64) -> Vec<u64> {
        let n = ctx.n();
        let two_n = 2 * n as u64;
        let t = ctx.plain();
        let mut out = vec![0u64; n];
        for (i, &c) in coeffs.iter().enumerate() {
            let idx = (i as u64 * g) % two_n;
            if idx < n as u64 {
                out[idx as usize] = c;
            } else {
                out[(idx - n as u64) as usize] = t.neg(c);
            }
        }
        out
    }

    #[test]
    fn works_on_two_prime_profile() {
        let ctx = HeContext::new(HeParams::test_2k());
        let enc = BatchEncoder::new(&ctx);
        let vals: Vec<u64> = (0..100u64).map(|v| v * 31 % ctx.params().t()).collect();
        let got = enc.decode(&enc.encode(&vals));
        assert_eq!(&got[..100], &vals[..]);
    }

    #[test]
    fn rns_poly_automorphism_agrees_with_plain_model() {
        // Sanity link between the ciphertext-side automorphism and the
        // plaintext-side model used above.
        let ctx = HeContext::new(HeParams::toy());
        let coeffs: Vec<i64> = (0..ctx.n() as i64).map(|i| i % 17 - 8).collect();
        let p = RnsPoly::from_signed(&ctx, &coeffs);
        let rotated = p.apply_automorphism(&ctx, 3);
        // Independent model on signed coefficients.
        let n = ctx.n();
        let mut want = vec![0i64; n];
        for (i, &c) in coeffs.iter().enumerate() {
            let idx = (i * 3) % (2 * n);
            if idx < n {
                want[idx] = c;
            } else {
                want[idx - n] = -c;
            }
        }
        let m = ctx.moduli()[0];
        let got: Vec<i64> = rotated.residues(0).iter().map(|&x| m.to_signed(x)).collect();
        assert_eq!(got, want);
    }
}
