//! Galois element bookkeeping for slot rotations.
//!
//! Rotating both batching rows left by `k` corresponds to the automorphism
//! `x → x^(3^k mod 2n)`; swapping the rows corresponds to `x → x^(2n-1)`.
//! (The direction convention is pinned down by the encoder tests.)

/// Galois element implementing `rotate_rows(step)` (step in `1..n/2`).
pub fn element_for_row_step(n: usize, step: usize) -> u64 {
    let two_n = 2 * n as u64;
    let s = (step % (n / 2)) as u64;
    pow_mod(3, s, two_n)
}

/// Galois element implementing the row swap.
pub fn element_for_columns(n: usize) -> u64 {
    2 * n as u64 - 1
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    base %= m;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % m; // m = 2n < 2^32: no overflow
        }
        base = base * base % m;
        exp >>= 1;
    }
    acc
}

/// Decomposes `step` into a sequence of available elementary steps
/// (greedy over set bits). Returns `None` if some power of two has no key.
pub fn decompose_step(step: usize, available: &[usize]) -> Option<Vec<usize>> {
    if available.contains(&step) {
        return Some(vec![step]);
    }
    let mut hops = Vec::new();
    for bit in 0..usize::BITS {
        let p = 1usize << bit;
        if step & p != 0 {
            if !available.contains(&p) {
                return None;
            }
            hops.push(p);
        }
    }
    Some(hops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_are_odd() {
        for step in 1..10 {
            assert_eq!(element_for_row_step(1024, step) % 2, 1);
        }
        assert_eq!(element_for_columns(1024), 2047);
    }

    #[test]
    fn element_composition() {
        let n = 1024;
        let e1 = element_for_row_step(n, 1);
        let e2 = element_for_row_step(n, 2);
        assert_eq!(e1 * e1 % (2 * n as u64), e2);
    }

    #[test]
    fn decompose_prefers_dedicated() {
        assert_eq!(decompose_step(30, &[30, 1, 2, 4, 8, 16]), Some(vec![30]));
    }

    #[test]
    fn decompose_falls_back_to_bits() {
        assert_eq!(decompose_step(5, &[1, 2, 4]), Some(vec![1, 4]));
        assert_eq!(decompose_step(5, &[1, 2]), None);
    }
}
