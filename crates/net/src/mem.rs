//! In-process channel transport between two party threads.

use crate::metering::Meter;
use crate::transport::Transport;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// One endpoint of an in-memory duplex channel.
#[derive(Debug)]
pub struct MemTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    meter: Arc<Meter>,
    is_client: bool,
}

impl MemTransport {
    /// Creates a connected (client, server) endpoint pair sharing a meter.
    pub fn pair() -> (MemTransport, MemTransport, Arc<Meter>) {
        let meter = Meter::new();
        let (tx_c2s, rx_c2s) = unbounded();
        let (tx_s2c, rx_s2c) = unbounded();
        let client = MemTransport {
            tx: tx_c2s,
            rx: rx_s2c,
            meter: Arc::clone(&meter),
            is_client: true,
        };
        let server = MemTransport {
            tx: tx_s2c,
            rx: rx_c2s,
            meter: Arc::clone(&meter),
            is_client: false,
        };
        (client, server, meter)
    }

    /// The shared traffic meter.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }
}

impl Transport for MemTransport {
    fn send(&self, bytes: Vec<u8>) {
        if self.is_client {
            self.meter.c2s.record(bytes.len());
        } else {
            self.meter.s2c.record(bytes.len());
        }
        self.tx.send(bytes).expect("peer endpoint dropped mid-protocol");
    }

    fn recv(&self) -> Vec<u8> {
        self.rx.recv().expect("peer endpoint dropped mid-protocol")
    }
}

/// Runs a two-party protocol: `client` and `server` closures execute on
/// their own threads with connected transports; returns both results and
/// the shared meter.
///
/// # Panics
///
/// Propagates panics from either party (protocol bugs fail loudly).
pub fn run_two_party<C, S, RC, RS>(client: C, server: S) -> (RC, RS, Arc<Meter>)
where
    C: FnOnce(MemTransport) -> RC + Send + 'static,
    S: FnOnce(MemTransport) -> RS + Send + 'static,
    RC: Send + 'static,
    RS: Send + 'static,
{
    let (ct, st, meter) = MemTransport::pair();
    let server_handle = std::thread::spawn(move || server(st));
    let client_out = client(ct);
    let server_out = server_handle.join().expect("server thread panicked");
    (client_out, server_out, meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::wire;

    #[test]
    fn ping_pong() {
        let (c, s, meter) = MemTransport::pair();
        let h = std::thread::spawn(move || {
            let msg = s.recv();
            let vals = wire::decode_u64s(&msg);
            s.send(wire::encode_u64s(&[vals.iter().sum::<u64>()]));
        });
        c.send(wire::encode_u64s(&[1, 2, 3]));
        let reply = wire::decode_u64s(&c.recv());
        h.join().expect("server ok");
        assert_eq!(reply, vec![6]);
        assert_eq!(meter.c2s.messages(), 1);
        assert_eq!(meter.s2c.messages(), 1);
        assert!(meter.total_bytes() > 0);
    }

    #[test]
    fn run_two_party_returns_both_results() {
        let (c_out, s_out, meter) = run_two_party(
            |t| {
                t.send(vec![9]);
                t.recv()[0]
            },
            |t| {
                let v = t.recv()[0];
                t.send(vec![v + 1]);
                v
            },
        );
        assert_eq!(c_out, 10);
        assert_eq!(s_out, 9);
        assert_eq!(meter.total_messages(), 2);
    }
}
