//! Zero-rotation replicated column packing (ZeRo-MOAI style) for the
//! encrypted-operand products FHGS runs online.
//!
//! The diagonal layouts in [`super::matmul`] minimize ciphertext count
//! and pay for it with rotation chains. This layout spends *slots*
//! instead: to multiply an encrypted `rows × cols` matrix `X` by a
//! plaintext operand on the right, every row of `X` is replicated once
//! per output column, so each output entry owns a private region of
//! `cols` slots and the whole product is **one slot-wise plaintext
//! multiplication — zero rotations, zero Galois keys**. The inner-product
//! sum is *not* performed homomorphically; the decrypting party sums each
//! region in plaintext ([`ZrLayout::decrypt_grid`]).
//!
//! Layout geometry (one global slot index, flattened across as many
//! ciphertexts as needed):
//!
//! ```text
//! slot((i·reps + r)·cols + l) = X[i, l]      for r in 0..reps
//! ```
//!
//! Region `p = i·reps + r` (its `cols` slots) is where output entry
//! `(i, r)` accumulates. Because region slots hold *unsummed partial
//! products* — data, once the other operand is secret-shared — any
//! additive mask subtracted from a flight in this layout must cover
//! **every used slot** (a full `(rows·reps) × cols` matrix via
//! [`ZrLayout::flat_slots`]), not just one value per region: a
//! per-region mask would leave `cols − 1` raw partials per region for
//! the decryptor to read.
//!
//! Since nothing ever rotates, the layout is free to use the full slot
//! count `n` (both batching rows), not just one row.

use primer_he::{BatchEncoder, Ciphertext, Encryptor};
use primer_math::{MatZ, Ring};
use rand::rngs::StdRng;

/// Replicated-row layout metadata (public, shape-derived).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZrLayout {
    /// Logical rows of the replicated matrix.
    pub rows: usize,
    /// Logical columns (the inner-product dimension).
    pub cols: usize,
    /// Replication factor (output columns of the product).
    pub reps: usize,
    /// Slots per ciphertext (the full slot count, both batching rows).
    pub slots: usize,
    /// Ciphertexts needed.
    pub num_cts: usize,
}

impl ZrLayout {
    /// Plans the layout for `rows × cols` replicated `reps` times.
    pub fn plan(rows: usize, cols: usize, reps: usize, slots: usize) -> Self {
        assert!(rows * cols * reps > 0, "degenerate replicated layout");
        let num_cts = (rows * reps * cols).div_ceil(slots);
        Self { rows, cols, reps, slots, num_cts }
    }

    /// Used slots (the tail of the last ciphertext stays zero).
    pub fn used_slots(&self) -> usize {
        self.rows * self.reps * self.cols
    }

    /// Builds the per-ciphertext slot vectors from a global-slot filler.
    fn slot_vectors(&self, value: impl Fn(usize, usize, usize) -> u64) -> Vec<Vec<u64>> {
        let mut cts = vec![vec![0u64; self.slots]; self.num_cts];
        for i in 0..self.rows {
            for r in 0..self.reps {
                for l in 0..self.cols {
                    let g = (i * self.reps + r) * self.cols + l;
                    cts[g / self.slots][g % self.slots] = value(i, r, l);
                }
            }
        }
        cts
    }

    /// Slot vectors of `x` (`rows × cols`) replicated `reps` times.
    pub fn replicated_slots(&self, x: &MatZ) -> Vec<Vec<u64>> {
        assert_eq!(x.shape(), (self.rows, self.cols), "replicated operand shape");
        self.slot_vectors(|i, _r, l| x[(i, l)])
    }

    /// Slot vectors of a rep-indexed mask `m` (`reps × cols`): region
    /// `(i, r)` gets row `r` of `m`, independent of `i` — multiplying by
    /// this against replicated `x` leaves `x[i,l]·m[r,l]` in slot
    /// `(i·reps+r)·cols+l`, whose region sum is the product entry.
    pub fn mask_slots(&self, m: &MatZ) -> Vec<Vec<u64>> {
        assert_eq!(m.shape(), (self.reps, self.cols), "rep-indexed mask shape");
        self.slot_vectors(|_i, r, l| m[(r, l)])
    }

    /// Slot vectors placing `v` (`rows × reps`) at each region's origin
    /// slot (`l = 0`), zeros elsewhere — a value already summed, aligned
    /// for addition to a grid of partial products.
    pub fn grid_origin_slots(&self, v: &MatZ) -> Vec<Vec<u64>> {
        assert_eq!(v.shape(), (self.rows, self.reps), "grid value shape");
        self.slot_vectors(|i, r, l| if l == 0 { v[(i, r)] } else { 0 })
    }

    /// Slot vectors of a full-slot matrix `s` (`(rows·reps) × cols`) —
    /// the only mask shape that blinds every partial product (see the
    /// module docs' security note).
    pub fn flat_slots(&self, s: &MatZ) -> Vec<Vec<u64>> {
        assert_eq!(s.shape(), (self.rows * self.reps, self.cols), "flat mask shape");
        self.slot_vectors(|i, r, l| s[(i * self.reps + r, l)])
    }

    /// Encrypts slot vectors, one sub-rng per ciphertext drawn in order
    /// first so the bytes are thread-count independent (the same idiom
    /// as `encrypt_matrix_in_layout_with`).
    pub fn encrypt(
        &self,
        slot_vecs: &[Vec<u64>],
        encoder: &BatchEncoder,
        encryptor: &Encryptor,
        rng: &mut StdRng,
    ) -> Vec<Ciphertext> {
        assert_eq!(slot_vecs.len(), self.num_cts, "slot vector count");
        let seeds: Vec<u64> = (0..self.num_cts).map(|_| rand::Rng::gen(rng)).collect();
        rayon::par_iter_chunks(self.num_cts, |k| {
            let mut ct_rng: StdRng = rand::SeedableRng::seed_from_u64(seeds[k]);
            encryptor.encrypt_with(&encoder.encode(&slot_vecs[k]), &mut ct_rng)
        })
    }

    /// Decrypts a ciphertext batch and sums each region mod `t`,
    /// yielding the `rows × reps` product-grid readout.
    pub fn decrypt_grid(
        &self,
        cts: &[Ciphertext],
        ring: &Ring,
        encoder: &BatchEncoder,
        encryptor: &Encryptor,
    ) -> MatZ {
        assert_eq!(cts.len(), self.num_cts, "ciphertext count");
        let decoded: Vec<Vec<u64>> = rayon::par_iter_chunks(self.num_cts, |k| {
            encoder.decode(&encryptor.decrypt(&cts[k]))
        });
        let at = |g: usize| decoded[g / self.slots][g % self.slots];
        MatZ::from_fn(self.rows, self.reps, |i, r| {
            let base = (i * self.reps + r) * self.cols;
            (0..self.cols).fold(0u64, |acc, l| ring.add(acc, at(base + l)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{fixture, small_matrix};
    use super::*;

    #[test]
    fn replicated_times_mask_grid_reads_the_product() {
        // Enc(X rep m) · mask(Wᵀ) must region-sum to X·W with zero
        // rotations — the whole point of the layout.
        let fx = fixture(4);
        let slots = 2 * fx.encoder.row_size();
        let (rows, cols, reps) = (3usize, 6usize, 4usize);
        let x = small_matrix(&fx.ring, rows, cols, 300);
        let w = small_matrix(&fx.ring, cols, reps, 301);

        let l = ZrLayout::plan(rows, cols, reps, slots);
        let mut rng = fx.encryptor.fork_rng();
        let enc = l.encrypt(&l.replicated_slots(&x), &fx.encoder, &fx.encryptor, &mut rng);
        assert_eq!(enc.len(), l.num_cts);

        let before = fx.eval.counts();
        let masks = l.mask_slots(&w.transpose());
        let prod: Vec<Ciphertext> = enc
            .iter()
            .zip(&masks)
            .map(|(ct, m)| fx.eval.mul_plain(ct, &fx.eval.prepare_mul_plain(&fx.encoder.encode(m))))
            .collect();
        let spent = fx.eval.counts().since(&before);
        assert_eq!(spent.rotations, 0, "zero-rotation layout rotated");
        assert_eq!(spent.mul_plain, l.num_cts as u64);

        let got = l.decrypt_grid(&prod, &fx.ring, &fx.encoder, &fx.encryptor);
        assert_eq!(got, x.matmul(&fx.ring, &w));
    }

    #[test]
    fn grid_origin_and_flat_masks_align_with_regions() {
        let fx = fixture(4);
        let slots = 2 * fx.encoder.row_size();
        let (rows, cols, reps) = (2usize, 5usize, 3usize);
        let l = ZrLayout::plan(rows, cols, reps, slots);
        let v = small_matrix(&fx.ring, rows, reps, 310);
        let s = small_matrix(&fx.ring, rows * reps, cols, 311);

        // grid(v) − flat(s) region-sums to v − row-sums(s).
        let grid = l.grid_origin_slots(&v);
        let flat = l.flat_slots(&s);
        let mut rng = fx.encryptor.fork_rng();
        let enc = l.encrypt(&grid, &fx.encoder, &fx.encryptor, &mut rng);
        let diff: Vec<Ciphertext> = enc
            .iter()
            .zip(&flat)
            .map(|(ct, m)| fx.eval.sub_plain(ct, &fx.encoder.encode(m)))
            .collect();
        let got = l.decrypt_grid(&diff, &fx.ring, &fx.encoder, &fx.encryptor);
        let expect = MatZ::from_fn(rows, reps, |i, r| {
            let row_sum =
                (0..cols).fold(0u64, |acc, c| fx.ring.add(acc, s[(i * reps + r, c)]));
            fx.ring.sub(v[(i, r)], row_sum)
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn layout_spans_multiple_ciphertexts_when_needed() {
        let fx = fixture(4);
        let slots = 2 * fx.encoder.row_size();
        // Big enough to need > 1 ct at toy params (2048 slots).
        let (rows, cols, reps) = (8usize, 48usize, 8usize);
        let l = ZrLayout::plan(rows, cols, reps, slots);
        assert!(l.num_cts > 1, "test shape must straddle ciphertexts");
        let x = small_matrix(&fx.ring, rows, cols, 320);
        let w = small_matrix(&fx.ring, cols, reps, 321);
        let mut rng = fx.encryptor.fork_rng();
        let enc = l.encrypt(&l.replicated_slots(&x), &fx.encoder, &fx.encryptor, &mut rng);
        let masks = l.mask_slots(&w.transpose());
        let prod: Vec<Ciphertext> = enc
            .iter()
            .zip(&masks)
            .map(|(ct, m)| fx.eval.mul_plain(ct, &fx.eval.prepare_mul_plain(&fx.encoder.encode(m))))
            .collect();
        let got = l.decrypt_grid(&prod, &fx.ring, &fx.encoder, &fx.encryptor);
        assert_eq!(got, x.matmul(&fx.ring, &w));
    }
}
