//! Thread-count determinism: the parallel offline/HE hot path must be a
//! pure performance knob. For every protocol variant, end-to-end private
//! inference over a multi-bundle session must produce **bit-identical**
//! logits at `PRIMER_THREADS=1`, `2` and `8` — and match the plaintext
//! fixed-point reference at every setting.
//!
//! This is the contract DESIGN.md §9 states: masks, encryption
//! randomness and the wire schedule are derived from session seeds and
//! the negotiated batch size alone, never from worker scheduling. The
//! companion failure-path tests (a worker panic inside a parallel refill
//! closing the shared pool loudly) live in `primer_core`'s
//! `session::pool` unit tests and `vendor/rayon`'s scope tests.
//!
//! Everything runs in ONE `#[test]` because `PRIMER_THREADS` is
//! process-global state; integration-test files get their own process,
//! so no other suite observes the mutation.

use primer_core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer_math::rng::seeded;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};

fn engine_for(variant: ProtocolVariant) -> Engine {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(900));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    Engine::new(sys, variant, fixed, GcMode::Simulated, 901)
}

/// Three queries over a pool of two: the session runs one parallel
/// refill batch of 2 bundles plus a remainder batch of 1, covering both
/// the fan-out and the tail of the refill schedule.
fn serve_logits(variant: ProtocolVariant, threads: usize) -> Vec<Vec<i64>> {
    std::env::set_var("PRIMER_THREADS", threads.to_string());
    let queries = vec![vec![3, 17, 0, 29], vec![5, 5, 30, 1], vec![9, 2, 31, 12]];
    let reports = engine_for(variant).serve_pooled(&queries, 2);
    for (i, report) in reports.iter().enumerate() {
        assert!(
            report.matches_plaintext_reference(),
            "{} query {i} at {threads} thread(s): private {:?} != reference {:?}",
            variant.name(),
            report.logits,
            report.reference_logits
        );
    }
    reports.into_iter().map(|r| r.logits).collect()
}

#[test]
fn all_variants_bit_identical_across_thread_counts() {
    for variant in ProtocolVariant::all() {
        let baseline = serve_logits(variant, 1);
        for threads in [2usize, 8] {
            let got = serve_logits(variant, threads);
            assert_eq!(
                got,
                baseline,
                "{} logits diverged between 1 and {threads} threads",
                variant.name()
            );
        }
    }
}
