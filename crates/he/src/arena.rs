//! A free-list arena for polynomial-shaped scratch buffers.
//!
//! The NTT-resident evaluator (PR 5) allocates short-lived `RnsPoly`
//! temporaries on every rotation and plaintext add — `num_primes × n`
//! `u64` limbs each — which shows up as allocator churn once the modular
//! kernels themselves are SIMD-fast. The arena recycles that storage:
//!
//! * [`ScratchArena::take_zeroed`] / [`ScratchArena::take_uninit`] hand
//!   out a poly backed by recycled limbs (allocating only when the free
//!   list is empty);
//! * [`ScratchArena::recycle`] returns the storage when the temporary
//!   dies.
//!
//! **Ownership rules** (DESIGN.md §11): the arena is for *true scratch*
//! only — buffers whose lifetime ends inside the operation that took
//! them, plus one structured exception: a hoist's digit decomposition
//! escapes into the `HoistedCiphertext` but every consumer returns it
//! via `Evaluator::recycle_hoisted` when the hoist dies, so those
//! buffers are scratch with a longer leash. Polynomials that escape for
//! good (ciphertext components, anything stored indefinitely) use plain
//! allocation, so the free list stays balanced at the high-water mark
//! of concurrent scratch, not the working set. `take_uninit` is reserved
//! for consumers that overwrite every limb before reading any
//! (`permute_ntt_into`, `scale_plain_into`, `decompose_ntt`); everything
//! else takes zeroed storage. "Uninit" contents are stale limbs from a
//! previous take, never actually uninitialised memory — a logic bug
//! reading them produces wrong residues, not UB.
//!
//! The free list sits behind a [`Mutex`]: takes/recycles are
//! a few pointer moves, orders of magnitude cheaper than the NTT work
//! done per buffer, so one lock is not a scalability concern even with
//! the offline producer pool sharing a session's arena across workers.

use crate::context::HeContext;
use crate::poly::RnsPoly;
use std::sync::Mutex;

/// Recycled `num_primes × n` limb buffers for one parameter set.
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Mutex<Vec<Vec<Vec<u64>>>>,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch polynomial with **every limb zeroed**.
    pub fn take_zeroed(&self, ctx: &HeContext, ntt_form: bool) -> RnsPoly {
        match self.pop(ctx) {
            Some(mut values) => {
                for row in &mut values {
                    row.fill(0);
                }
                RnsPoly::from_raw_parts(values, ntt_form)
            }
            None => RnsPoly::zero(ctx, ntt_form),
        }
    }

    /// A scratch polynomial with **stale limb contents** — only for
    /// callers that overwrite every residue before reading any.
    pub fn take_uninit(&self, ctx: &HeContext, ntt_form: bool) -> RnsPoly {
        match self.pop(ctx) {
            Some(values) => RnsPoly::from_raw_parts(values, ntt_form),
            None => RnsPoly::zero(ctx, ntt_form),
        }
    }

    /// Returns a scratch polynomial's storage to the free list.
    ///
    /// Buffers whose shape does not match `ctx` (a poly from a different
    /// parameter set) are dropped instead of pooled, so the arena can
    /// never hand out a wrongly-shaped buffer.
    pub fn recycle(&self, ctx: &HeContext, poly: RnsPoly) {
        let values = poly.into_raw_parts();
        if values.len() == ctx.num_primes() && values.iter().all(|row| row.len() == ctx.n()) {
            self.free.lock().expect("arena poisoned").push(values);
        }
    }

    /// Buffers currently parked in the free list (test observability).
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("arena poisoned").len()
    }

    fn pop(&self, ctx: &HeContext) -> Option<Vec<Vec<u64>>> {
        let values = self.free.lock().expect("arena poisoned").pop()?;
        // Shape is enforced at recycle time; debug-check it anyway.
        debug_assert!(
            values.len() == ctx.num_primes() && values.iter().all(|row| row.len() == ctx.n()),
            "arena buffer shape drifted"
        );
        Some(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HeParams;
    use primer_math::rng::seeded;

    #[test]
    fn recycle_then_take_reuses_storage() {
        let ctx = HeContext::new(HeParams::toy());
        let arena = ScratchArena::new();
        assert_eq!(arena.pooled(), 0);
        let a = arena.take_zeroed(&ctx, false);
        arena.recycle(&ctx, a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.take_uninit(&ctx, true);
        assert_eq!(arena.pooled(), 0, "take must pop the free list");
        assert!(b.is_ntt());
        arena.recycle(&ctx, b);
    }

    #[test]
    fn take_zeroed_clears_stale_limbs() {
        let ctx = HeContext::new(HeParams::toy());
        let arena = ScratchArena::new();
        let dirty = RnsPoly::uniform(&ctx, &mut seeded(33));
        arena.recycle(&ctx, dirty);
        let clean = arena.take_zeroed(&ctx, false);
        assert_eq!(clean, RnsPoly::zero(&ctx, false));
    }

    #[test]
    fn wrong_shape_is_dropped_not_pooled() {
        let ctx = HeContext::new(HeParams::toy());
        let arena = ScratchArena::new();
        arena.recycle(&ctx, RnsPoly::from_raw_parts(vec![vec![0u64; 3]], false));
        assert_eq!(arena.pooled(), 0);
    }
}
