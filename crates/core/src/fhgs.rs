//! The Fully-HGS (FHGS) protocol (Fig. 5): Beaver-style support for the
//! ciphertext–ciphertext products of attention (`X_Q·X_Kᵀ`,
//! `SoftMax·X_V`) using **additive-only** HE.
//!
//! For a product `A·B` (`A: n×k` client-masked by `R_a`, `B: k×m` masked
//! by `R_b`, server holding `U_a = A−R_a`, `U_b = B−R_b`):
//!
//! ```text
//! A·B = U_a·U_b + U_a·R_b + R_a·U_b + R_a·R_b
//! ```
//!
//! Offline, the client ships `Enc(R_a)`, `Enc(R_bᵀ)` and `Enc(R_a·R_b)`
//! (it knows both masks, so the "triple" needs no ct–ct multiply — the
//! paper's key observation). Online, the server computes
//!
//! * `E1 = matmul(Enc(R_a), U_b) + Enc(R_a·R_b) + encode(U_a·U_b) − R_s1`
//! * `E2 = matmul(Enc(R_bᵀ), U_aᵀ) − R_s2`  (the transpose of `U_a·R_b`)
//!
//! and sends both. The client decrypts and assembles its share as
//! `dec(E1) + dec(E2)ᵀ` — the transpose happens **in plaintext at the
//! client**, avoiding expensive slot-permuting rotations; the server's
//! share is `R_s1 + R_s2ᵀ`. Both decryptions are masked, so the client
//! learns nothing beyond its share.

use crate::hgs::{add_plain_matrix, sub_plain_matrix};
use crate::packing::{
    encrypt_matrix_in_layout_with, encrypt_matrix_with, matmul_out_layout, matmul_plain_weights,
    Layout, Packing, PackedMatrix,
};
use crate::wire::{recv_packed, send_packed};
use primer_he::{BatchEncoder, Encryptor, Evaluator, GaloisKeys, HeContext};
use primer_math::{MatZ, Ring};
use primer_net::Transport;
use rand::rngs::StdRng;
use rand::Rng;

/// Shapes of one FHGS product `A (n×k) · B (k×m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FhgsDims {
    /// Rows of A.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B.
    pub m: usize,
}

/// Client-side precomputed state.
#[derive(Debug, Clone)]
pub struct FhgsClient {
    /// Mask for A.
    pub rc_a: MatZ,
    /// Mask for B.
    pub rc_b: MatZ,
    dims: FhgsDims,
}

/// Server-side precomputed state.
#[derive(Debug)]
pub struct FhgsServer {
    enc_rc_a: PackedMatrix,
    enc_rc_bt: PackedMatrix,
    enc_ab: PackedMatrix,
    rs1: MatZ,
    rs2: MatZ,
    dims: FhgsDims,
}

/// Client offline: samples masks and ships the encrypted triple.
#[allow(clippy::too_many_arguments)]
pub fn client_offline<R: Rng + ?Sized>(
    ring: &Ring,
    packing: Packing,
    dims: FhgsDims,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    transport: &dyn Transport,
    rng: &mut R,
) -> FhgsClient {
    let rc_a = MatZ::random(ring, dims.n, dims.k, rng);
    let rc_b = MatZ::random(ring, dims.k, dims.m, rng);
    client_offline_with_masks(ring, packing, rc_a, rc_b, encoder, encryptor, transport)
}

/// Client offline with externally chosen masks (the masks under which the
/// upstream GC steps re-share `A` and `B`).
pub fn client_offline_with_masks(
    ring: &Ring,
    packing: Packing,
    rc_a: MatZ,
    rc_b: MatZ,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    transport: &dyn Transport,
) -> FhgsClient {
    let mut rng = encryptor.fork_rng();
    let (client, requests) =
        client_request(ring, packing, rc_a, rc_b, encoder, encryptor, &mut rng);
    for flight in &requests {
        send_packed(transport, flight);
    }
    client
}

/// Pipelined client half: encrypts the whole FHGS triple — `Enc(R_a)`,
/// `Enc(R_bᵀ)`, `Enc(R_a·R_b)` — as three request flights without
/// touching the transport, with explicit encryption randomness so many
/// instances can be prepared concurrently. FHGS expects no offline
/// reply; the returned [`FhgsClient`] is complete.
pub fn client_request(
    ring: &Ring,
    packing: Packing,
    rc_a: MatZ,
    rc_b: MatZ,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    rng: &mut StdRng,
) -> (FhgsClient, [PackedMatrix; 3]) {
    assert_eq!(rc_a.cols(), rc_b.rows(), "mask inner dimensions");
    let dims = FhgsDims { n: rc_a.rows(), k: rc_a.cols(), m: rc_b.cols() };
    let simd = encoder.row_size();
    let enc_a = encrypt_matrix_with(packing, &rc_a, encoder, encryptor, rng);
    let enc_bt = encrypt_matrix_with(packing, &rc_b.transpose(), encoder, encryptor, rng);
    // Enc(R_a·R_b) must align slot-for-slot with the matmul output of
    // Enc(R_a)·U_b, so it is encrypted in that product's layout.
    let prod_layout = matmul_out_layout(packing, dims.n, dims.k, dims.m, simd);
    let ab = rc_a.matmul(ring, &rc_b);
    let enc_ab = encrypt_matrix_in_layout_with(prod_layout, &ab, encoder, encryptor, rng);
    (FhgsClient { rc_a, rc_b, dims }, [enc_a, enc_bt, enc_ab])
}

/// Layouts of the three request flights a [`client_request`] produces,
/// in wire order — what the server's batched receiver expects.
pub fn request_layouts(packing: Packing, dims: FhgsDims, simd: usize) -> [Layout; 3] {
    [
        Layout::plan(packing, dims.n, dims.k, simd),
        Layout::plan(packing, dims.m, dims.k, simd),
        matmul_out_layout(packing, dims.n, dims.k, dims.m, simd),
    ]
}

/// Pipelined server half: stores a received triple with pre-sampled
/// output masks. No HE compute happens offline on the server side of
/// FHGS — the matmuls run online against `U_a`, `U_b`.
pub fn server_accept(
    dims: FhgsDims,
    [enc_rc_a, enc_rc_bt, enc_ab]: [PackedMatrix; 3],
    rs1: MatZ,
    rs2: MatZ,
) -> FhgsServer {
    assert_eq!(rs1.shape(), (dims.n, dims.m), "R_s1 shape");
    assert_eq!(rs2.shape(), (dims.m, dims.n), "R_s2 shape");
    FhgsServer { enc_rc_a, enc_rc_bt, enc_ab, rs1, rs2, dims }
}

/// Server offline: receives the triple, samples output masks.
///
/// # Errors
///
/// [`primer_he::HeError::Malformed`] on a corrupt request flight.
pub fn server_offline<R: Rng + ?Sized>(
    ring: &Ring,
    packing: Packing,
    dims: FhgsDims,
    ctx: &HeContext,
    encoder: &BatchEncoder,
    transport: &dyn Transport,
    rng: &mut R,
) -> Result<FhgsServer, primer_he::HeError> {
    let simd = encoder.row_size();
    let [l_a, l_bt, l_ab] = request_layouts(packing, dims, simd);
    let flights = [
        recv_packed(transport, ctx, l_a)?,
        recv_packed(transport, ctx, l_bt)?,
        recv_packed(transport, ctx, l_ab)?,
    ];
    let rs1 = MatZ::random(ring, dims.n, dims.m, rng);
    let rs2 = MatZ::random(ring, dims.m, dims.n, rng);
    Ok(server_accept(dims, flights, rs1, rs2))
}

/// Server online: two ct–pt matmuls plus plaintext work; returns the
/// server's share `R_s1 + R_s2ᵀ`.
///
/// # Panics
///
/// Panics on shape mismatch or missing Galois keys (engine setup bugs).
#[allow(clippy::too_many_arguments)]
pub fn server_online(
    server: &FhgsServer,
    ring: &Ring,
    ua: &MatZ,
    ub: &MatZ,
    encoder: &BatchEncoder,
    eval: &Evaluator,
    keys: &GaloisKeys,
    transport: &dyn Transport,
) -> MatZ {
    let dims = server.dims;
    assert_eq!(ua.shape(), (dims.n, dims.k), "U_a shape");
    assert_eq!(ub.shape(), (dims.k, dims.m), "U_b shape");
    // E1 = Enc(R_a)·U_b + Enc(R_a·R_b) + encode(U_a·U_b) − R_s1.
    let t3 = matmul_plain_weights(&server.enc_rc_a, ub, eval, encoder, keys)
        .expect("galois keys provisioned");
    assert_eq!(t3.layout, server.enc_ab.layout, "triple layout mismatch");
    let mut e1_cts = Vec::with_capacity(t3.cts.len());
    for (a, b) in t3.cts.iter().zip(&server.enc_ab.cts) {
        e1_cts.push(eval.add(a, b));
    }
    let e1 = PackedMatrix { layout: t3.layout.clone(), cts: e1_cts };
    let uaub = ua.matmul(ring, ub);
    let e1 = add_plain_matrix(&e1, &uaub, eval, encoder);
    let e1 = sub_plain_matrix(&e1, &server.rs1, eval, encoder);
    send_packed(transport, &e1);
    // E2 = Enc(R_bᵀ)·U_aᵀ − R_s2  (= (U_a·R_b)ᵀ − R_s2).
    let y = matmul_plain_weights(&server.enc_rc_bt, &ua.transpose(), eval, encoder, keys)
        .expect("galois keys provisioned");
    let e2 = sub_plain_matrix(&y, &server.rs2, eval, encoder);
    send_packed(transport, &e2);
    server.rs1.add(ring, &server.rs2.transpose())
}

/// Client online: decrypts both flights and assembles its share
/// `dec(E1) + dec(E2)ᵀ` (plaintext transpose).
///
/// # Errors
///
/// [`primer_he::HeError::Malformed`] on a corrupt reply flight.
pub fn client_online(
    client: &FhgsClient,
    ring: &Ring,
    packing: Packing,
    ctx: &HeContext,
    encoder: &BatchEncoder,
    encryptor: &Encryptor,
    transport: &dyn Transport,
) -> Result<MatZ, primer_he::HeError> {
    let dims = client.dims;
    let simd = encoder.row_size();
    let e1 =
        recv_packed(transport, ctx, matmul_out_layout(packing, dims.n, dims.k, dims.m, simd))?;
    let e2 =
        recv_packed(transport, ctx, matmul_out_layout(packing, dims.m, dims.k, dims.n, simd))?;
    let a1 = crate::packing::decrypt_matrix(&e1, encoder, encryptor);
    let y = crate::packing::decrypt_matrix(&e2, encoder, encryptor);
    Ok(a1.add(ring, &y.transpose()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_he::{HeParams, KeyGenerator};
    use primer_math::rng::seeded;
    use primer_net::run_two_party;
    use std::sync::Arc;

    /// End-to-end FHGS: shares reconstruct A·B exactly with additive-only
    /// HE (no ct–ct multiplications ever issued).
    #[test]
    fn fhgs_shares_reconstruct_ct_ct_product() {
        for packing in [Packing::TokensFirst, Packing::FeatureBased] {
            let ctx = HeContext::new(HeParams::toy());
            let ring = Ring::new(ctx.params().t());
            let mut rng = seeded(250);
            let kg = KeyGenerator::new(&ctx, &mut rng);
            let sk = kg.secret_key().clone();
            let simd = ctx.params().row_size();
            let keys = Arc::new(kg.galois_keys_pow2(
                &[1, 4, 8, simd - 1, simd - 4, simd - 8],
                false,
                &mut rng,
            ));
            let dims = FhgsDims { n: 4, k: 6, m: 5 };
            let a = MatZ::from_fn(dims.n, dims.k, |i, j| ((i * 13 + j * 3) % 50) as u64);
            let b = MatZ::from_fn(dims.k, dims.m, |i, j| ((i * 7 + j * 17) % 50) as u64);

            let (ctx_c, ctx_s) = (ctx.clone(), ctx.clone());
            let (a_c, b_c) = (a.clone(), b.clone());
            let (a_s, b_s) = (a.clone(), b.clone());
            let keys_s = Arc::clone(&keys);

            let (client_share, server_share, _) = run_two_party(
                move |t| {
                    let encoder = BatchEncoder::new(&ctx_c);
                    let encryptor = Encryptor::new(&ctx_c, sk, 251);
                    let ring = Ring::new(ctx_c.params().t());
                    let pre = client_offline(
                        &ring, packing, dims, &encoder, &encryptor, &t, &mut seeded(252),
                    );
                    // Online: server must hold U_a, U_b.
                    let ua = a_c.sub(&ring, &pre.rc_a);
                    let ub = b_c.sub(&ring, &pre.rc_b);
                    crate::wire::send_matrix(&t, &ua);
                    crate::wire::send_matrix(&t, &ub);
                    client_online(&pre, &ring, packing, &ctx_c, &encoder, &encryptor, &t)
                        .expect("in-process flight")
                },
                move |t| {
                    let encoder = BatchEncoder::new(&ctx_s);
                    let eval = Evaluator::new(&ctx_s);
                    let ring = Ring::new(ctx_s.params().t());
                    let pre = server_offline(
                        &ring, packing, dims, &ctx_s, &encoder, &t, &mut seeded(253),
                    )
                    .expect("in-process flight");
                    let ua = crate::wire::recv_matrix(&t).expect("in-process flight");
                    let ub = crate::wire::recv_matrix(&t).expect("in-process flight");
                    let share =
                        server_online(&pre, &ring, &ua, &ub, &encoder, &eval, &keys_s, &t);
                    // FHGS never multiplies two ciphertexts.
                    assert_eq!(eval.counts().mul_ct, 0);
                    let _ = (a_s, b_s);
                    share
                },
            );
            let got = client_share.add(&ring, &server_share);
            assert_eq!(got, a.matmul(&ring, &b), "{packing:?}");
        }
    }
}
