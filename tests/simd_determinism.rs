//! SIMD-level determinism: the AVX2 kernels under the NTT must be a
//! pure performance knob. For every protocol variant, end-to-end
//! private inference over a multi-bundle session must produce
//! **bit-identical** logits with `PRIMER_SIMD=0` (forced scalar) and
//! `PRIMER_SIMD=1` (auto dispatch) — and match the plaintext
//! fixed-point reference at both settings.
//!
//! This is the contract DESIGN.md §11 states: every vectorized kernel
//! produces the exact canonical residues of the scalar reference, so
//! wire bytes and logits never depend on the CPU the party runs on.
//! The per-kernel lane-level checks live in `primer_he`'s
//! `simd_bit_identity` suite; this test pins the property through the
//! full protocol stack. On a machine without AVX2 both settings run
//! scalar and the test is vacuous (but still green).
//!
//! Everything runs in ONE `#[test]` because `PRIMER_SIMD` is
//! process-global state; integration-test files get their own process,
//! so no other suite observes the mutation.

use primer_core::{Engine, GcMode, ProtocolVariant, SystemConfig};
use primer_math::rng::seeded;
use primer_nn::{FixedTransformer, TransformerConfig, TransformerWeights};

fn engine_for(variant: ProtocolVariant) -> Engine {
    let cfg = TransformerConfig::test_tiny();
    let sys = SystemConfig::test_profile(&cfg).expect("profile");
    let weights = TransformerWeights::random(&cfg, &mut seeded(910));
    let fixed = FixedTransformer::quantize(&cfg, &weights, sys.pipeline);
    Engine::new(sys, variant, fixed, GcMode::Simulated, 911)
}

/// Three queries over a pool of two: one parallel refill batch of 2
/// bundles plus a remainder batch of 1, so both the fan-out and the
/// tail of the refill schedule run under each SIMD setting.
fn serve_logits(variant: ProtocolVariant, simd: &str) -> Vec<Vec<i64>> {
    std::env::set_var("PRIMER_SIMD", simd);
    let queries = vec![vec![3, 17, 0, 29], vec![5, 5, 30, 1], vec![9, 2, 31, 12]];
    let reports = engine_for(variant).serve_pooled(&queries, 2);
    for (i, report) in reports.iter().enumerate() {
        assert!(
            report.matches_plaintext_reference(),
            "{} query {i} at PRIMER_SIMD={simd}: private {:?} != reference {:?}",
            variant.name(),
            report.logits,
            report.reference_logits
        );
    }
    reports.into_iter().map(|r| r.logits).collect()
}

#[test]
fn all_variants_bit_identical_across_simd_levels() {
    for variant in ProtocolVariant::all() {
        let scalar = serve_logits(variant, "0");
        let auto = serve_logits(variant, "1");
        assert_eq!(
            auto,
            scalar,
            "{} logits diverged between forced-scalar and auto SIMD",
            variant.name()
        );
    }
    std::env::remove_var("PRIMER_SIMD");
}
