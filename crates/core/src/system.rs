//! System configuration binding the model, numeric pipeline, HE
//! parameters, GC parameters and network model together.

use primer_gc::{GcNumCfg, OtGroup};
use primer_he::{HeContext, HeParams};
use primer_math::{FixedSpec, Ring};
use primer_net::NetworkModel;
use primer_nn::{PipelineSpec, TransformerConfig};
use std::fmt;

/// Errors raised while assembling a system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The padded token count does not fit the HE row size.
    TokensExceedSlots {
        /// Padded token count.
        padded: usize,
        /// Available slots per row.
        slots: usize,
    },
    /// `PRIMER_LAYOUT` is set to something other than
    /// `auto|output|input|zerorot`. Rejected here, at assembly, so a
    /// typo'd experiment fails at session Setup with a typed error
    /// instead of panicking deep inside the first layout decision.
    InvalidLayoutPolicy {
        /// The offending value, verbatim.
        value: String,
    },
    /// `PRIMER_SIMD` is set to something other than
    /// `scalar|avx2|avx512|auto` (or the legacy `0|off|1|on`). Rejected
    /// at assembly for the same reason as
    /// [`ConfigError::InvalidLayoutPolicy`]: a typo'd kernel-tier
    /// experiment should fail at session Setup, not panic inside the
    /// first SIMD dispatch.
    InvalidSimdPolicy {
        /// The offending value, verbatim.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TokensExceedSlots { padded, slots } => {
                write!(f, "padded token count {padded} exceeds HE row size {slots}")
            }
            ConfigError::InvalidLayoutPolicy { value } => {
                write!(f, "PRIMER_LAYOUT must be auto|output|input|zerorot, got {value:?}")
            }
            ConfigError::InvalidSimdPolicy { value } => {
                write!(
                    f,
                    "PRIMER_SIMD must be scalar|avx2|avx512|auto (or 0|off|1|on), got {value:?}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything a private-inference run needs to know.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The transformer being evaluated.
    pub model: TransformerConfig,
    /// HE context (the plaintext modulus `t` is the system ring).
    pub he: HeContext,
    /// Numeric pipeline (ring = `Z_t`, fixed format, GC precision).
    pub pipeline: PipelineSpec,
    /// GC word configuration.
    pub gc: GcNumCfg,
    /// Base-OT group.
    pub ot_group: OtGroupKind,
    /// Network model for time accounting.
    pub network: NetworkModel,
}

/// Which base-OT group to instantiate (kept as an enum so the config
/// stays `Clone` without carrying Montgomery tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OtGroupKind {
    /// RFC 3526 2048-bit (production parameters).
    Modp2048,
    /// RFC 2409 768-bit (fast tests).
    Modp768,
}

impl OtGroupKind {
    /// Instantiates the group.
    pub fn group(&self) -> OtGroup {
        match self {
            OtGroupKind::Modp2048 => OtGroup::rfc3526_2048(),
            OtGroupKind::Modp768 => OtGroup::test_768(),
        }
    }
}

impl SystemConfig {
    /// Test profile: `n = 2048` HE ring, ~30-bit plaintext, 12-bit/5-frac
    /// values, 768-bit OT group, paper LAN model. Suitable for the
    /// scaled-down end-to-end tests.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the model's tokens cannot be packed.
    pub fn test_profile(model: &TransformerConfig) -> Result<Self, ConfigError> {
        let he = HeContext::new(HeParams::test_2k_wide());
        let fixed = FixedSpec::new(12, 5);
        Self::assemble(model, he, fixed, 12, OtGroupKind::Modp768)
    }

    /// Paper-scale profile: `n = 8192`, 43-bit plaintext, the paper's
    /// 15-bit format, 2048-bit OT group.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the model's tokens cannot be packed.
    pub fn paper_profile(model: &TransformerConfig) -> Result<Self, ConfigError> {
        let he = HeContext::new(HeParams::paper_8k());
        Self::assemble(model, he, FixedSpec::paper(), 12, OtGroupKind::Modp2048)
    }

    fn assemble(
        model: &TransformerConfig,
        he: HeContext,
        fixed: FixedSpec,
        gc_frac: u32,
        ot_group: OtGroupKind,
    ) -> Result<Self, ConfigError> {
        let padded = model.n_tokens.next_power_of_two();
        let slots = he.params().row_size();
        if padded > slots {
            return Err(ConfigError::TokensExceedSlots { padded, slots });
        }
        // Layout policy is re-read from the environment on every
        // selector call, but a bad value is rejected once, here, so the
        // failure surfaces at session Setup as a typed error.
        if let Err(value) = crate::costmodel::layout::LayoutPolicy::from_env() {
            return Err(ConfigError::InvalidLayoutPolicy { value });
        }
        // Same early rejection for the SIMD tier override.
        if let Err(value) = primer_he::simd::SimdPolicy::from_env() {
            return Err(ConfigError::InvalidSimdPolicy { value });
        }
        let ring = Ring::new(he.params().t());
        let pipeline = PipelineSpec::new(ring, fixed, gc_frac);
        Ok(Self {
            model: model.clone(),
            he,
            pipeline,
            gc: GcNumCfg { width: 48, frac: gc_frac },
            ot_group,
            network: NetworkModel::paper_lan(),
        })
    }

    /// The system ring `Z_t`.
    pub fn ring(&self) -> Ring {
        self.pipeline.ring
    }

    /// Usable SIMD width (one batching row).
    pub fn simd_width(&self) -> usize {
        self.he.params().row_size()
    }

    /// Tokens padded to a power of two (the tokens-first block stride).
    pub fn padded_tokens(&self) -> usize {
        self.model.n_tokens.next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_profile_assembles() {
        let cfg = SystemConfig::test_profile(&TransformerConfig::test_tiny()).expect("profile");
        assert_eq!(cfg.ring().modulus(), cfg.he.params().t());
        assert_eq!(cfg.padded_tokens(), 4);
        assert!(cfg.simd_width() >= 1024);
    }

    #[test]
    fn oversized_tokens_rejected() {
        let mut model = TransformerConfig::test_tiny();
        model.n_tokens = 5000;
        let err = SystemConfig::test_profile(&model).unwrap_err();
        assert!(matches!(err, ConfigError::TokensExceedSlots { .. }));
    }
}
