//! Runtime-dispatched SIMD kernels for the modular hot loops.
//!
//! PR 5 made the HE pipeline NTT-resident, so essentially all hot-path
//! time is pointwise `u64` arithmetic over RNS limbs: NTT butterflies
//! (Shoup multiplication), pointwise multiply (Barrett), ciphertext
//! add/sub, key-switch digit extraction/accumulation, base conversion
//! and the encode/decode permutations. This module hand-rolls AVX2 and
//! AVX-512 versions of exactly those loops with `std::arch`, behind a
//! scalar fallback, under one invariant:
//!
//! > **Bit identity.** For every input, every vector kernel produces the
//! > same bytes as the scalar kernel — the same guarantee the PR 4
//! > thread pool gives for thread counts. SIMD width is a pure
//! > performance knob; wire bytes and logits never depend on it.
//!
//! The invariant holds by construction, not by rounding luck: every
//! kernel ends in a *canonical* residue in `[0, p)`.
//!
//! * add/sub/neg and the butterflies use the identical `+p` / conditional-
//!   subtract branch structure as the scalar code, just 4 or 8 lanes wide.
//! * Shoup multiplication uses the identical `q = mulhi(x, w_shoup)`;
//!   `r = x·w − q·p (mod 2^64)`; one conditional subtract.
//! * Pointwise multiply differs in *algorithm* (lane-wise Barrett with the
//!   cached [`Modulus::barrett_mu`] vs the scalar `u128 %`) but both fully
//!   reduce, and the canonical residue of `a·b mod p` is unique.
//! * The AVX-512 tier has two interchangeable 64×64→128 product
//!   implementations — `_mm512_mul_epu32` partial products, or an IFMA
//!   `vpmadd52{lo,hi}` 52-bit-limb synthesis picked at dispatch when the
//!   CPU reports `avx512ifma` — and both compute the *exact* integer
//!   product, so the choice is invisible in the output.
//!
//! # Tiers and dispatch
//!
//! | tier     | lanes | requires                          |
//! |----------|-------|-----------------------------------|
//! | `scalar` | 1     | nothing (reference semantics)     |
//! | `avx2`   | 4×64  | `avx2`                            |
//! | `avx512` | 8×64  | `avx512f` + `avx512dq` (IFMA sub-path also `avx512ifma`) |
//!
//! Dispatch is runtime: [`level`] re-reads the `PRIMER_SIMD` environment
//! variable on every call (the same idiom the thread pool uses for
//! `PRIMER_THREADS`, so tests can flip it in-process). The variable is a
//! [`SimdPolicy`]: `scalar|avx2|avx512|auto` (plus the legacy `0`/`off`
//! for scalar and `1`/`on` for auto), and a typo is a **typed error** at
//! config assembly — `SystemConfig` validates it the way it validates
//! `PRIMER_LAYOUT`, so `PRIMER_SIMD=axv512` fails Setup instead of
//! silently running some other tier. A *valid* request that exceeds what
//! the CPU offers degrades to the best supported tier (never UB):
//! `avx512` on an AVX2-only host runs the AVX2 kernels, `avx2` on a
//! non-x86 host runs scalar. Every entry point re-checks CPU support
//! before taking a vector arm, so even a forged [`SimdLevel`] can never
//! execute unsupported instructions. Non-x86_64 targets compile the
//! scalar path only.
//!
//! Beyond the PR 6 slice kernels, this module carries the key-switch and
//! conversion kernels PR 10 vectorized: [`extract_digit`] (decomposition
//! shift/mask), [`ks_accumulate`] (fused dual-accumulator multiply-add —
//! one pass per digit covers both ciphertext parts across all RNS
//! limbs), [`gather`] (NTT-point permutations and encode/decode slot
//! maps), [`lift_centered`] (centered plaintext lift) and
//! [`scale_combine`] (the `round(q·m/t)` base-conversion combine).

use crate::modulus::Modulus;

/// Lane width selected for a kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops — the reference semantics.
    Scalar,
    /// 4×64-bit lanes via AVX2 (`x86_64` only; falls back to scalar on
    /// other architectures or CPUs without the feature).
    Avx2,
    /// 8×64-bit lanes via AVX-512F/DQ, with an IFMA `vpmadd52` product
    /// sub-path when the CPU additionally reports `avx512ifma`.
    Avx512,
}

impl SimdLevel {
    /// Short human-readable name (bench metadata, logs).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// The parsed `PRIMER_SIMD` policy: what the operator *asked for*, before
/// CPU capability clamps it to a [`SimdLevel`].
///
/// Mirrors `PRIMER_LAYOUT`'s [`parse`](SimdPolicy::parse)/`from_env`
/// split: unknown values are a hard error surfaced as a typed
/// `ConfigError` at config assembly, because a typo silently selecting a
/// different tier would invalidate whatever experiment set it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPolicy {
    /// Best tier the CPU supports (the default).
    Auto,
    /// Force the scalar reference kernels.
    Scalar,
    /// Cap at the AVX2 tier (scalar where AVX2 is unavailable).
    Avx2,
    /// Cap at the AVX-512 tier (degrades to AVX2, then scalar).
    Avx512,
}

impl SimdPolicy {
    /// Parses a `PRIMER_SIMD` value (case-insensitive, whitespace
    /// trimmed). `0|off|scalar` force scalar and `1|on|auto` mean
    /// auto-detect — the first two spellings of each are the PR 6 legacy
    /// forms and keep old scripts working.
    ///
    /// # Errors
    ///
    /// The offending value, verbatim, on anything but
    /// `scalar|avx2|avx512|auto` / `0|off` / `1|on`.
    pub fn parse(value: &str) -> Result<SimdPolicy, String> {
        let v = value.trim();
        if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("scalar") {
            Ok(SimdPolicy::Scalar)
        } else if v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("auto") {
            Ok(SimdPolicy::Auto)
        } else if v.eq_ignore_ascii_case("avx2") {
            Ok(SimdPolicy::Avx2)
        } else if v.eq_ignore_ascii_case("avx512") {
            Ok(SimdPolicy::Avx512)
        } else {
            Err(value.to_string())
        }
    }

    /// Reads `PRIMER_SIMD` (re-evaluated per call; see the module docs).
    /// Unset means [`SimdPolicy::Auto`].
    ///
    /// # Errors
    ///
    /// The unrecognised value (see [`SimdPolicy::parse`]).
    pub fn from_env() -> Result<SimdPolicy, String> {
        match std::env::var("PRIMER_SIMD") {
            Err(_) => Ok(SimdPolicy::Auto),
            Ok(v) => Self::parse(&v),
        }
    }

    /// Clamps the requested policy to what the running CPU supports:
    /// degrade (512 → 2 → scalar), never UB.
    pub fn level(self) -> SimdLevel {
        match self {
            SimdPolicy::Scalar => SimdLevel::Scalar,
            SimdPolicy::Auto | SimdPolicy::Avx512 if avx512_available() => SimdLevel::Avx512,
            SimdPolicy::Auto | SimdPolicy::Avx512 | SimdPolicy::Avx2 if avx2_available() => {
                SimdLevel::Avx2
            }
            _ => SimdLevel::Scalar,
        }
    }
}

/// True when the running CPU can execute the AVX2 kernels.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the running CPU can execute the AVX-512 kernels
/// (`avx512f` for the lane ops **and** `avx512dq` for `vpmullq`).
#[inline]
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the AVX-512 tier will take the IFMA (`vpmadd52`) product
/// sub-path. Purely informational outside this module — both product
/// implementations are exact, so IFMA changes speed, never bytes.
#[inline]
pub fn ifma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx512_available() && std::arch::is_x86_feature_detected!("avx512ifma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Selects the lane width for this call: `PRIMER_SIMD` policy (re-read
/// from the environment **every call**, never cached) clamped to CPU
/// support.
///
/// # Panics
///
/// Panics on an unparseable `PRIMER_SIMD`. This is the backstop for
/// callers that bypassed config assembly — `primer_core::SystemConfig`
/// validates the variable with [`SimdPolicy::from_env`] and rejects a
/// typo as a typed `ConfigError` before any session reaches this point.
#[inline]
pub fn level() -> SimdLevel {
    SimdPolicy::from_env()
        .unwrap_or_else(|v| {
            panic!("PRIMER_SIMD must be scalar|avx2|avx512|auto (or 0|off|1|on), got {v:?}")
        })
        .level()
}

/// One RNS limb of a key-switch digit accumulation: the borrowed rows
/// [`ks_accumulate`] walks in a single fused pass.
pub struct KsLimb<'a> {
    /// The limb's prime.
    pub m: Modulus,
    /// Accumulator row of the output `c0` part.
    pub acc0: &'a mut [u64],
    /// Accumulator row of the output `c1` part.
    pub acc1: &'a mut [u64],
    /// The decomposed digit row (NTT form) — loaded once, used twice.
    pub x: &'a [u64],
    /// Key-switch key row multiplying into `acc0`.
    pub b: &'a [u64],
    /// Key-switch key row multiplying into `acc1`.
    pub a: &'a [u64],
}

/// Fused key-switch accumulation over **all** RNS limbs of one digit:
/// per limb, `acc0 += x ⊙ b` and `acc1 += x ⊙ a` in a single interleaved
/// pass — each digit chunk is loaded into lanes once and multiplied
/// against both key parts while it sits in registers, instead of the two
/// separate `add_mul` sweeps (and three extra digit loads) the pre-PR 10
/// code made per limb.
///
/// Bit-identical to the two-sweep formulation: the per-element operations
/// and their order within each element are unchanged.
///
/// # Panics
///
/// Panics if any limb's slice lengths disagree.
pub fn ks_accumulate(limbs: &mut [KsLimb<'_>], lvl: SimdLevel) {
    for l in limbs.iter_mut() {
        add_mul_mod2(l.m, l.acc0, l.acc1, l.x, l.b, l.a, lvl);
    }
}

/// `a[i] = a[i] + b[i] mod p` lane-wise.
///
/// # Panics
///
/// Panics if the slices differ in length (all kernels in this module).
pub fn add_mod(m: Modulus, a: &mut [u64], b: &[u64], lvl: SimdLevel) {
    assert_eq!(a.len(), b.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                avx512::add_mod(m, a, b)
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::add_mod(m, a, b)
            }
        }
        _ => scalar::add_mod(m, a, b),
    }
}

/// `a[i] = a[i] - b[i] mod p` lane-wise.
pub fn sub_mod(m: Modulus, a: &mut [u64], b: &[u64], lvl: SimdLevel) {
    assert_eq!(a.len(), b.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                avx512::sub_mod(m, a, b)
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::sub_mod(m, a, b)
            }
        }
        _ => scalar::sub_mod(m, a, b),
    }
}

/// `a[i] = -a[i] mod p` lane-wise.
pub fn neg_mod(m: Modulus, a: &mut [u64], lvl: SimdLevel) {
    match lvl {
        SimdLevel::Avx512 if use_avx512(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                avx512::neg_mod(m, a)
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::neg_mod(m, a)
            }
        }
        _ => scalar::neg_mod(m, a),
    }
}

/// `a[i] = a[i] * b[i] mod p` lane-wise (Barrett under AVX2/AVX-512).
pub fn mul_mod(m: Modulus, a: &mut [u64], b: &[u64], lvl: SimdLevel) {
    assert_eq!(a.len(), b.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                if ifma_available() {
                    avx512::ifma::mul_mod(m, a, b)
                } else {
                    avx512::dq::mul_mod(m, a, b)
                }
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::mul_mod(m, a, b)
            }
        }
        _ => scalar::mul_mod(m, a, b),
    }
}

/// `acc[i] = acc[i] + a[i] * b[i] mod p` lane-wise.
pub fn add_mul_mod(m: Modulus, acc: &mut [u64], a: &[u64], b: &[u64], lvl: SimdLevel) {
    assert_eq!(acc.len(), a.len(), "simd kernel length mismatch");
    assert_eq!(acc.len(), b.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(acc.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                if ifma_available() {
                    avx512::ifma::add_mul_mod(m, acc, a, b)
                } else {
                    avx512::dq::add_mul_mod(m, acc, a, b)
                }
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(acc.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::add_mul_mod(m, acc, a, b)
            }
        }
        _ => scalar::add_mul_mod(m, acc, a, b),
    }
}

/// Fused dual accumulate: `acc0[i] += x[i] * b[i]` and
/// `acc1[i] += x[i] * a[i]` (mod p) in one pass — `x` is loaded once per
/// chunk. Element-wise identical to two [`add_mul_mod`] calls.
pub fn add_mul_mod2(
    m: Modulus,
    acc0: &mut [u64],
    acc1: &mut [u64],
    x: &[u64],
    b: &[u64],
    a: &[u64],
    lvl: SimdLevel,
) {
    assert_eq!(acc0.len(), acc1.len(), "simd kernel length mismatch");
    assert_eq!(acc0.len(), x.len(), "simd kernel length mismatch");
    assert_eq!(acc0.len(), b.len(), "simd kernel length mismatch");
    assert_eq!(acc0.len(), a.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(acc0.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                if ifma_available() {
                    avx512::ifma::add_mul_mod2(m, acc0, acc1, x, b, a)
                } else {
                    avx512::dq::add_mul_mod2(m, acc0, acc1, x, b, a)
                }
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(acc0.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::add_mul_mod2(m, acc0, acc1, x, b, a)
            }
        }
        _ => scalar::add_mul_mod2(m, acc0, acc1, x, b, a),
    }
}

/// One level of Cooley–Tukey forward butterflies with a shared twiddle:
/// `(lo[i], hi[i]) = (lo[i] + w·hi[i], lo[i] − w·hi[i]) mod p`.
pub fn forward_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64], lvl: SimdLevel) {
    assert_eq!(lo.len(), hi.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(lo.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                if ifma_available() {
                    avx512::ifma::forward_butterflies(p, w, ws, lo, hi)
                } else {
                    avx512::dq::forward_butterflies(p, w, ws, lo, hi)
                }
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(lo.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::forward_butterflies(p, w, ws, lo, hi)
            }
        }
        _ => scalar::forward_butterflies(p, w, ws, lo, hi),
    }
}

/// One level of Gentleman–Sande inverse butterflies with a shared twiddle:
/// `(lo[i], hi[i]) = (lo[i] + hi[i], w·(lo[i] − hi[i])) mod p`.
pub fn inverse_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64], lvl: SimdLevel) {
    assert_eq!(lo.len(), hi.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(lo.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                if ifma_available() {
                    avx512::ifma::inverse_butterflies(p, w, ws, lo, hi)
                } else {
                    avx512::dq::inverse_butterflies(p, w, ws, lo, hi)
                }
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(lo.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::inverse_butterflies(p, w, ws, lo, hi)
            }
        }
        _ => scalar::inverse_butterflies(p, w, ws, lo, hi),
    }
}

/// `a[i] = a[i] * w mod p` with a Shoup-precomputed constant (the inverse
/// NTT's final `n^{-1}` scaling).
pub fn mul_shoup_slice(p: u64, w: u64, ws: u64, a: &mut [u64], lvl: SimdLevel) {
    match lvl {
        SimdLevel::Avx512 if use_avx512(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                if ifma_available() {
                    avx512::ifma::mul_shoup_slice(p, w, ws, a)
                } else {
                    avx512::dq::mul_shoup_slice(p, w, ws, a)
                }
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(a.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::mul_shoup_slice(p, w, ws, a)
            }
        }
        _ => scalar::mul_shoup_slice(p, w, ws, a),
    }
}

/// Digit extraction for key-switch decomposition:
/// `dst[i] = (src[i] >> shift) & mask`.
///
/// # Panics
///
/// Panics if `shift >= 64` or the slices differ in length.
pub fn extract_digit(src: &[u64], shift: u32, mask: u64, dst: &mut [u64], lvl: SimdLevel) {
    assert!(shift < 64, "digit shift out of range");
    assert_eq!(src.len(), dst.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(src.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                avx512::extract_digit(src, shift, mask, dst)
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(src.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::extract_digit(src, shift, mask, dst)
            }
        }
        _ => scalar::extract_digit(src, shift, mask, dst),
    }
}

/// Permutation gather: `dst[i] = src[idx[i]]` — the NTT-domain Galois
/// automorphism and the encoder's slot↔position maps.
///
/// # Panics
///
/// Panics if `idx` and `dst` differ in length or any index is out of
/// bounds for `src` (checked up front so the vector gathers are safe).
pub fn gather(src: &[u64], idx: &[u32], dst: &mut [u64], lvl: SimdLevel) {
    assert_eq!(idx.len(), dst.len(), "simd kernel length mismatch");
    let max = idx.iter().copied().max().unwrap_or(0);
    assert!(idx.is_empty() || (max as usize) < src.len(), "gather index out of bounds");
    match lvl {
        SimdLevel::Avx512 if use_avx512(idx.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support; indices bounds-
            // checked above.
            unsafe {
                avx512::gather(src, idx, dst)
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(idx.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support; indices bounds-
            // checked above.
            unsafe {
                avx2::gather(src, idx, dst)
            }
        }
        _ => scalar::gather(src, idx, dst),
    }
}

/// Centered plaintext lift into one RNS limb:
/// `dst[i] = if src[i] > t/2 { p − t + src[i] } else { src[i] }`.
/// Bit-identical to `Modulus::from_signed(t.to_signed(c))` whenever
/// `t < p` and `src[i] < t` (the dispatcher asserts the former; callers
/// guarantee the latter — plaintexts are reduced mod `t`).
///
/// # Panics
///
/// Panics if `t >= p` or the slices differ in length.
pub fn lift_centered(p: u64, t: u64, src: &[u64], dst: &mut [u64], lvl: SimdLevel) {
    assert!(t < p, "centered lift requires t < p");
    assert_eq!(src.len(), dst.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(src.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                avx512::lift_centered(p, t, src, dst)
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(src.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::lift_centered(p, t, src, dst)
            }
        }
        _ => scalar::lift_centered(p, t, src, dst),
    }
}

/// Base-conversion combine for `round(q·m/t)` scaling into one RNS limb:
/// `out[i] = (Δ_p · plain[i] + rt[i]) mod p`, with `Δ_p = Δ mod p` fed as
/// a Shoup pair `(delta, delta_shoup)` and `rt[i] < p` the per-coefficient
/// rounding term (computed once, scalar, by the caller). Canonical-residue
/// identical to reducing the full `u128` product: both are the unique
/// value of `(Δ·m + rt) mod p`.
#[allow(clippy::too_many_arguments)]
pub fn scale_combine(
    m: Modulus,
    delta: u64,
    delta_shoup: u64,
    plain: &[u64],
    rt: &[u64],
    out: &mut [u64],
    lvl: SimdLevel,
) {
    assert_eq!(plain.len(), rt.len(), "simd kernel length mismatch");
    assert_eq!(plain.len(), out.len(), "simd kernel length mismatch");
    match lvl {
        SimdLevel::Avx512 if use_avx512(plain.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx512 verified CPU support.
            unsafe {
                if ifma_available() {
                    avx512::ifma::scale_combine(m, delta, delta_shoup, plain, rt, out)
                } else {
                    avx512::dq::scale_combine(m, delta, delta_shoup, plain, rt, out)
                }
            }
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 if use_avx2(plain.len()) => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: use_avx2 verified CPU support.
            unsafe {
                avx2::scale_combine(m, delta, delta_shoup, plain, rt, out)
            }
        }
        _ => scalar::scale_combine(m, delta, delta_shoup, plain, rt, out),
    }
}

/// Tiny slices are all tail; skip the `target_feature` call and (on every
/// entry) re-verify CPU support so a forged [`SimdLevel::Avx2`] on a
/// non-AVX2 CPU degrades to scalar instead of executing illegal
/// instructions.
#[inline]
fn use_avx2(len: usize) -> bool {
    len >= 4 && avx2_available()
}

/// AVX-512 twin of [`use_avx2`]: 8 lanes minimum, CPU support re-checked
/// on every entry.
#[inline]
fn use_avx512(len: usize) -> bool {
    len >= 8 && avx512_available()
}

/// Shoup modular multiplication: `x · w mod p` with `w_shoup` precomputed
/// as `floor(w · 2^64 / p)`. Requires `p < 2^63` and `w < p` (any `x`);
/// result is canonical.
#[inline]
pub fn mul_shoup(x: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let q = ((x as u128 * w_shoup as u128) >> 64) as u64;
    let r = (x.wrapping_mul(w)).wrapping_sub(q.wrapping_mul(p));
    if r >= p {
        r - p
    } else {
        r
    }
}

/// The portable reference kernels. The AVX2 and AVX-512 kernels must
/// match these bit-for-bit (proptested in `tests/simd_bit_identity.rs`).
pub mod scalar {
    use super::{mul_shoup, Modulus};

    pub fn add_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.add(*x, y);
        }
    }

    pub fn sub_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.sub(*x, y);
        }
    }

    pub fn neg_mod(m: Modulus, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = m.neg(*x);
        }
    }

    pub fn mul_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.mul(*x, y);
        }
    }

    pub fn add_mul_mod(m: Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        for ((d, &x), &y) in acc.iter_mut().zip(a).zip(b) {
            *d = m.add(*d, m.mul(x, y));
        }
    }

    pub fn add_mul_mod2(
        m: Modulus,
        acc0: &mut [u64],
        acc1: &mut [u64],
        x: &[u64],
        b: &[u64],
        a: &[u64],
    ) {
        for ((((d0, d1), &xv), &bv), &av) in
            acc0.iter_mut().zip(acc1.iter_mut()).zip(x).zip(b).zip(a)
        {
            *d0 = m.add(*d0, m.mul(xv, bv));
            *d1 = m.add(*d1, m.mul(xv, av));
        }
    }

    pub fn forward_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        for (u_ref, v_ref) in lo.iter_mut().zip(hi.iter_mut()) {
            let u = *u_ref;
            let v = mul_shoup(*v_ref, w, ws, p);
            let sum = u + v;
            *u_ref = if sum >= p { sum - p } else { sum };
            *v_ref = if u >= v { u - v } else { u + p - v };
        }
    }

    pub fn inverse_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        for (u_ref, v_ref) in lo.iter_mut().zip(hi.iter_mut()) {
            let u = *u_ref;
            let v = *v_ref;
            let sum = u + v;
            *u_ref = if sum >= p { sum - p } else { sum };
            let diff = if u >= v { u - v } else { u + p - v };
            *v_ref = mul_shoup(diff, w, ws, p);
        }
    }

    pub fn mul_shoup_slice(p: u64, w: u64, ws: u64, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = mul_shoup(*x, w, ws, p);
        }
    }

    pub fn extract_digit(src: &[u64], shift: u32, mask: u64, dst: &mut [u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = (s >> shift) & mask;
        }
    }

    pub fn gather(src: &[u64], idx: &[u32], dst: &mut [u64]) {
        for (d, &i) in dst.iter_mut().zip(idx) {
            *d = src[i as usize];
        }
    }

    pub fn lift_centered(p: u64, t: u64, src: &[u64], dst: &mut [u64]) {
        let half = t / 2;
        let offset = p - t;
        for (d, &c) in dst.iter_mut().zip(src) {
            debug_assert!(c < t, "plaintext coefficient not reduced");
            *d = if c > half { offset + c } else { c };
        }
    }

    pub fn scale_combine(
        m: Modulus,
        delta: u64,
        delta_shoup: u64,
        plain: &[u64],
        rt: &[u64],
        out: &mut [u64],
    ) {
        let p = m.value();
        for ((o, &c), &r) in out.iter_mut().zip(plain).zip(rt) {
            *o = m.add(mul_shoup(c, delta, delta_shoup, p), r);
        }
    }
}

/// The AVX2 kernels: 4×64-bit lanes, `target_feature(enable = "avx2")`.
///
/// # Safety
///
/// Every function in this module must only be called on a CPU with AVX2
/// (the public dispatchers in the parent module enforce this). Lane math
/// notes:
///
/// * 64×64→128 multiplication is synthesised from four
///   `_mm256_mul_epu32` partial products plus a cross-term carry.
/// * Unsigned 64-bit compares go through a sign-bit flip and
///   `_mm256_cmpgt_epi64`.
/// * Barrett reduction uses per-modulus runtime shift counts
///   (`L−1`, `L+1` with `L = Modulus::bits()`, all within `[1, 63]`
///   because `2 ≤ p < 2^62`), fed via `_mm256_srl_epi64`/`_mm256_sll_epi64`.
/// * `gather` relies on the dispatcher's up-front index bounds check.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Modulus;
    use std::arch::x86_64::*;

    const LO32: i64 = 0xFFFF_FFFF;

    /// Full 64×64→128 lane product as (low 64, high 64) halves.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_lo_hi(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let lomask = _mm256_set1_epi64x(LO32);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        // cross < 3·2^32, so its own carry lives in bits 32..34 and the
        // three-way add below cannot overflow a lane.
        let cross = _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64::<32>(ll), _mm256_and_si256(lh, lomask)),
            _mm256_and_si256(hl, lomask),
        );
        let hi = _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64::<32>(lh)),
            _mm256_add_epi64(_mm256_srli_epi64::<32>(hl), _mm256_srli_epi64::<32>(cross)),
        );
        let lo = _mm256_or_si256(_mm256_slli_epi64::<32>(cross), _mm256_and_si256(ll, lomask));
        (lo, hi)
    }

    /// Low 64 bits of the lane product (wrapping, matches `wrapping_mul`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_lo(a: __m256i, b: __m256i) -> __m256i {
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, _mm256_srli_epi64::<32>(b));
        let hl = _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), b);
        _mm256_add_epi64(ll, _mm256_slli_epi64::<32>(_mm256_add_epi64(lh, hl)))
    }

    /// Per-modulus lane constants shared by the kernels.
    struct Lanes {
        p: __m256i,
        /// `(p − 1) ^ SIGN` — the unsigned-compare threshold for `x ≥ p`.
        pm1s: __m256i,
        sign: __m256i,
    }

    impl Lanes {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn new(p: u64) -> Self {
            let sign = _mm256_set1_epi64x(i64::MIN);
            Lanes {
                p: _mm256_set1_epi64x(p as i64),
                pm1s: _mm256_xor_si256(_mm256_set1_epi64x((p - 1) as i64), sign),
                sign,
            }
        }

        /// Conditional subtract: `x − p` where `x ≥ p` (unsigned), else `x`.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn csub(&self, x: __m256i) -> __m256i {
            let ge = _mm256_cmpgt_epi64(_mm256_xor_si256(x, self.sign), self.pm1s);
            _mm256_sub_epi64(x, _mm256_and_si256(self.p, ge))
        }

        /// Shoup multiply by a broadcast constant; canonical result.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn mul_shoup(&self, x: __m256i, w: __m256i, ws: __m256i) -> __m256i {
            let (_, q) = mul_lo_hi(x, ws);
            let r = _mm256_sub_epi64(mul_lo(x, w), mul_lo(q, self.p));
            self.csub(r)
        }
    }

    /// Barrett context: reduces a full 128-bit lane product to the
    /// canonical residue, bit-identical to the scalar `u128 %`.
    struct Barrett {
        lanes: Lanes,
        mu: __m256i,
        sh1: __m128i,
        sh1c: __m128i,
        sh2: __m128i,
        sh2c: __m128i,
    }

    impl Barrett {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn new(m: Modulus) -> Self {
            let bits = m.bits() as i32;
            Barrett {
                lanes: Lanes::new(m.value()),
                mu: _mm256_set1_epi64x(m.barrett_mu() as i64),
                // q1 combines (lo >> (L−1)) | (hi << (64−(L−1))); q3 the
                // same with L+1. All four counts are in [1, 63].
                sh1: _mm_cvtsi32_si128(bits - 1),
                sh1c: _mm_cvtsi32_si128(64 - (bits - 1)),
                sh2: _mm_cvtsi32_si128(bits + 1),
                sh2c: _mm_cvtsi32_si128(64 - (bits + 1)),
            }
        }

        /// `a · b mod p`, fully reduced.
        ///
        /// With `L = bits(p)`: `q1 = floor(x / 2^(L−1))` fits 64 bits
        /// because `x < p² < 2^(2L)`; `q3 = floor(q1·mu / 2^(L+1))`
        /// satisfies `q3 ≤ floor(x/p) ≤ q3 + 2`, so the remainder after
        /// one low-64 subtraction sits in `[0, 3p)` (`3p < 2^64` since
        /// `p < 2^62`) and two conditional subtracts canonicalise it.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn mul_mod(&self, a: __m256i, b: __m256i) -> __m256i {
            let (xlo, xhi) = mul_lo_hi(a, b);
            let q1 = _mm256_or_si256(
                _mm256_srl_epi64(xlo, self.sh1),
                _mm256_sll_epi64(xhi, self.sh1c),
            );
            let (qlo, qhi) = mul_lo_hi(q1, self.mu);
            let q3 = _mm256_or_si256(
                _mm256_srl_epi64(qlo, self.sh2),
                _mm256_sll_epi64(qhi, self.sh2c),
            );
            let r = _mm256_sub_epi64(xlo, mul_lo(q3, self.lanes.p));
            self.lanes.csub(self.lanes.csub(r))
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(chunk: &[u64]) -> __m256i {
        _mm256_loadu_si256(chunk.as_ptr() as *const __m256i)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(chunk: &mut [u64], v: __m256i) {
        _mm256_storeu_si256(chunk.as_mut_ptr() as *mut __m256i, v)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        let lanes = Lanes::new(m.value());
        let mut bs = b.chunks_exact(4);
        let mut av = a.chunks_exact_mut(4);
        for (x, y) in av.by_ref().zip(bs.by_ref()) {
            store(x, lanes.csub(_mm256_add_epi64(load(x), load(y))));
        }
        super::scalar::add_mod(m, av.into_remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        let lanes = Lanes::new(m.value());
        let mut bs = b.chunks_exact(4);
        let mut av = a.chunks_exact_mut(4);
        for (x, y) in av.by_ref().zip(bs.by_ref()) {
            // a + p − b lands in (0, 2p); one csub matches both scalar
            // branches exactly.
            let t = _mm256_sub_epi64(_mm256_add_epi64(load(x), lanes.p), load(y));
            store(x, lanes.csub(t));
        }
        super::scalar::sub_mod(m, av.into_remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn neg_mod(m: Modulus, a: &mut [u64]) {
        let lanes = Lanes::new(m.value());
        let zero = _mm256_setzero_si256();
        let mut av = a.chunks_exact_mut(4);
        for x in av.by_ref() {
            let v = load(x);
            let nz = _mm256_cmpeq_epi64(v, zero);
            // p − a, forced to 0 where a == 0 (andnot keeps non-zero lanes).
            store(x, _mm256_andnot_si256(nz, _mm256_sub_epi64(lanes.p, v)));
        }
        super::scalar::neg_mod(m, av.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        let barrett = Barrett::new(m);
        let mut bs = b.chunks_exact(4);
        let mut av = a.chunks_exact_mut(4);
        for (x, y) in av.by_ref().zip(bs.by_ref()) {
            store(x, barrett.mul_mod(load(x), load(y)));
        }
        super::scalar::mul_mod(m, av.into_remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_mul_mod(m: Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        let barrett = Barrett::new(m);
        let mut asl = a.chunks_exact(4);
        let mut bs = b.chunks_exact(4);
        let mut accv = acc.chunks_exact_mut(4);
        for ((d, x), y) in accv.by_ref().zip(asl.by_ref()).zip(bs.by_ref()) {
            let prod = barrett.mul_mod(load(x), load(y));
            store(d, barrett.lanes.csub(_mm256_add_epi64(load(d), prod)));
        }
        super::scalar::add_mul_mod(m, accv.into_remainder(), asl.remainder(), bs.remainder());
    }

    /// Fused dual accumulate: the digit chunk `x` is loaded once and
    /// multiplied against both key parts while in registers.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_mul_mod2(
        m: Modulus,
        acc0: &mut [u64],
        acc1: &mut [u64],
        x: &[u64],
        b: &[u64],
        a: &[u64],
    ) {
        let barrett = Barrett::new(m);
        let mut xs = x.chunks_exact(4);
        let mut bs = b.chunks_exact(4);
        let mut asl = a.chunks_exact(4);
        let mut a0 = acc0.chunks_exact_mut(4);
        let mut a1 = acc1.chunks_exact_mut(4);
        for ((((d0, d1), xv), bv), av) in a0
            .by_ref()
            .zip(a1.by_ref())
            .zip(xs.by_ref())
            .zip(bs.by_ref())
            .zip(asl.by_ref())
        {
            let xc = load(xv);
            let p0 = barrett.mul_mod(xc, load(bv));
            store(d0, barrett.lanes.csub(_mm256_add_epi64(load(d0), p0)));
            let p1 = barrett.mul_mod(xc, load(av));
            store(d1, barrett.lanes.csub(_mm256_add_epi64(load(d1), p1)));
        }
        super::scalar::add_mul_mod2(
            m,
            a0.into_remainder(),
            a1.into_remainder(),
            xs.remainder(),
            bs.remainder(),
            asl.remainder(),
        );
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn forward_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        let lanes = Lanes::new(p);
        let wv = _mm256_set1_epi64x(w as i64);
        let wsv = _mm256_set1_epi64x(ws as i64);
        let mut los = lo.chunks_exact_mut(4);
        let mut his = hi.chunks_exact_mut(4);
        for (lc, hc) in los.by_ref().zip(his.by_ref()) {
            let u = load(lc);
            let v = lanes.mul_shoup(load(hc), wv, wsv);
            store(lc, lanes.csub(_mm256_add_epi64(u, v)));
            let diff = _mm256_sub_epi64(_mm256_add_epi64(u, lanes.p), v);
            store(hc, lanes.csub(diff));
        }
        super::scalar::forward_butterflies(p, w, ws, los.into_remainder(), his.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn inverse_butterflies(p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        let lanes = Lanes::new(p);
        let wv = _mm256_set1_epi64x(w as i64);
        let wsv = _mm256_set1_epi64x(ws as i64);
        let mut los = lo.chunks_exact_mut(4);
        let mut his = hi.chunks_exact_mut(4);
        for (lc, hc) in los.by_ref().zip(his.by_ref()) {
            let u = load(lc);
            let v = load(hc);
            store(lc, lanes.csub(_mm256_add_epi64(u, v)));
            let diff = lanes.csub(_mm256_sub_epi64(_mm256_add_epi64(u, lanes.p), v));
            store(hc, lanes.mul_shoup(diff, wv, wsv));
        }
        super::scalar::inverse_butterflies(p, w, ws, los.into_remainder(), his.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_shoup_slice(p: u64, w: u64, ws: u64, a: &mut [u64]) {
        let lanes = Lanes::new(p);
        let wv = _mm256_set1_epi64x(w as i64);
        let wsv = _mm256_set1_epi64x(ws as i64);
        let mut av = a.chunks_exact_mut(4);
        for x in av.by_ref() {
            store(x, lanes.mul_shoup(load(x), wv, wsv));
        }
        super::scalar::mul_shoup_slice(p, w, ws, av.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn extract_digit(src: &[u64], shift: u32, mask: u64, dst: &mut [u64]) {
        let cnt = _mm_cvtsi32_si128(shift as i32);
        let maskv = _mm256_set1_epi64x(mask as i64);
        let mut ss = src.chunks_exact(4);
        let mut ds = dst.chunks_exact_mut(4);
        for (d, s) in ds.by_ref().zip(ss.by_ref()) {
            store(d, _mm256_and_si256(_mm256_srl_epi64(load(s), cnt), maskv));
        }
        super::scalar::extract_digit(ss.remainder(), shift, mask, ds.into_remainder());
    }

    /// # Safety
    ///
    /// Besides AVX2, every `idx` entry must be in bounds for `src` (the
    /// dispatcher checks this before calling).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather(src: &[u64], idx: &[u32], dst: &mut [u64]) {
        let base = src.as_ptr() as *const i64;
        let mut is = idx.chunks_exact(4);
        let mut ds = dst.chunks_exact_mut(4);
        for (d, i) in ds.by_ref().zip(is.by_ref()) {
            let iv = _mm_loadu_si128(i.as_ptr() as *const __m128i);
            store(d, _mm256_i32gather_epi64::<8>(base, iv));
        }
        super::scalar::gather(src, is.remainder(), ds.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn lift_centered(p: u64, t: u64, src: &[u64], dst: &mut [u64]) {
        let sign = _mm256_set1_epi64x(i64::MIN);
        let halfs = _mm256_xor_si256(_mm256_set1_epi64x((t / 2) as i64), sign);
        let offset = _mm256_set1_epi64x((p - t) as i64);
        let mut ss = src.chunks_exact(4);
        let mut ds = dst.chunks_exact_mut(4);
        for (d, s) in ds.by_ref().zip(ss.by_ref()) {
            let c = load(s);
            let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(c, sign), halfs);
            store(d, _mm256_add_epi64(c, _mm256_and_si256(offset, gt)));
        }
        super::scalar::lift_centered(p, t, ss.remainder(), ds.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_combine(
        m: Modulus,
        delta: u64,
        delta_shoup: u64,
        plain: &[u64],
        rt: &[u64],
        out: &mut [u64],
    ) {
        let lanes = Lanes::new(m.value());
        let wv = _mm256_set1_epi64x(delta as i64);
        let wsv = _mm256_set1_epi64x(delta_shoup as i64);
        let mut ps = plain.chunks_exact(4);
        let mut rs = rt.chunks_exact(4);
        let mut os = out.chunks_exact_mut(4);
        for ((o, c), r) in os.by_ref().zip(ps.by_ref()).zip(rs.by_ref()) {
            let v = lanes.mul_shoup(load(c), wv, wsv);
            store(o, lanes.csub(_mm256_add_epi64(v, load(r))));
        }
        super::scalar::scale_combine(
            m,
            delta,
            delta_shoup,
            ps.remainder(),
            rs.remainder(),
            os.into_remainder(),
        );
    }
}

/// The AVX-512 kernels: 8×64-bit lanes.
///
/// # Safety
///
/// Every function must only be called on a CPU with `avx512f` +
/// `avx512dq` (the public dispatchers enforce this; the `ifma` submodule
/// additionally requires `avx512ifma`). Lane math notes:
///
/// * Unsigned compares and conditional subtracts use native mask
///   registers (`_mm512_cmpge_epu64_mask` + `_mm512_mask_sub_epi64`) —
///   no sign-flip tricks needed at this width.
/// * The low 64 bits of a product are a single `vpmullq`
///   (`_mm512_mullo_epi64`, the reason `avx512dq` is required).
/// * The product kernels exist twice via one macro: [`dq`] synthesises
///   the 128-bit product from `_mm512_mul_epu32` partials exactly like
///   the AVX2 tier; [`ifma`] splits operands into 52-bit limbs and uses
///   `vpmadd52{lo,hi}` — fewer µops on CPUs that have it. Both compute
///   the exact integer product, so results are bit-identical and the
///   dispatcher picks by `ifma_available()` alone.
/// * `gather` relies on the dispatcher's up-front index bounds check.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::Modulus;
    use std::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn load(chunk: &[u64]) -> __m512i {
        _mm512_loadu_epi64(chunk.as_ptr() as *const i64)
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn store(chunk: &mut [u64], v: __m512i) {
        _mm512_storeu_epi64(chunk.as_mut_ptr() as *mut i64, v)
    }

    /// Conditional subtract: `x − p` where `x ≥ p` (unsigned), else `x`.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn csub(x: __m512i, p: __m512i) -> __m512i {
        let ge = _mm512_cmpge_epu64_mask(x, p);
        _mm512_mask_sub_epi64(x, ge, x, p)
    }

    /// `_mm512_mul_epu32`-synthesised 64×64→128 product (lo, hi). Exact
    /// for arbitrary `u64` lanes; mirrors the AVX2 derivation, except the
    /// low half is a native `vpmullq`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn mul_lo_hi_u32(a: __m512i, b: __m512i) -> (__m512i, __m512i) {
        let lomask = _mm512_set1_epi64(0xFFFF_FFFF);
        let a_hi = _mm512_srli_epi64::<32>(a);
        let b_hi = _mm512_srli_epi64::<32>(b);
        let ll = _mm512_mul_epu32(a, b);
        let lh = _mm512_mul_epu32(a, b_hi);
        let hl = _mm512_mul_epu32(a_hi, b);
        let hh = _mm512_mul_epu32(a_hi, b_hi);
        let cross = _mm512_add_epi64(
            _mm512_add_epi64(_mm512_srli_epi64::<32>(ll), _mm512_and_si512(lh, lomask)),
            _mm512_and_si512(hl, lomask),
        );
        let hi = _mm512_add_epi64(
            _mm512_add_epi64(hh, _mm512_srli_epi64::<32>(lh)),
            _mm512_add_epi64(_mm512_srli_epi64::<32>(hl), _mm512_srli_epi64::<32>(cross)),
        );
        (_mm512_mullo_epi64(a, b), hi)
    }

    /// IFMA 64×64→128 product (lo, hi) from 52-bit limbs. With
    /// `a = a_lo + 2^52·a_hi` (`a_hi < 2^12`, ditto `b`):
    ///
    /// `a·b = ll + 2^52·cross + 2^104·hh`, where `vpmadd52lo/hi` deliver
    /// the 52-bit halves of `a_lo·b_lo` (`ll_lo`, `ll_hi`) and of the two
    /// cross products (accumulated: `cr_lo < 2^53`, `cr_hi < 2^13`).
    /// Writing `mid = ll_hi + cr_lo < 2^54`, `top = cr_hi + a_hi·b_hi`:
    ///
    /// * `lo = ll_lo + (mid << 52)` is exact (`ll_lo < 2^52`, no carry);
    /// * `hi = (mid >> 12) + (top << 40)` is exact because the full
    ///   product is `< 2^128`, forcing `top < 2^24`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn mul_lo_hi_ifma(a: __m512i, b: __m512i) -> (__m512i, __m512i) {
        let z = _mm512_setzero_si512();
        let a_hi = _mm512_srli_epi64::<52>(a);
        let b_hi = _mm512_srli_epi64::<52>(b);
        let ll_lo = _mm512_madd52lo_epu64(z, a, b);
        let ll_hi = _mm512_madd52hi_epu64(z, a, b);
        let cr_lo = _mm512_madd52lo_epu64(_mm512_madd52lo_epu64(z, a_hi, b), a, b_hi);
        let cr_hi = _mm512_madd52hi_epu64(_mm512_madd52hi_epu64(z, a_hi, b), a, b_hi);
        let hh = _mm512_mullo_epi64(a_hi, b_hi);
        let mid = _mm512_add_epi64(ll_hi, cr_lo);
        let top = _mm512_add_epi64(cr_hi, hh);
        let lo = _mm512_add_epi64(ll_lo, _mm512_slli_epi64::<52>(mid));
        let hi = _mm512_add_epi64(_mm512_srli_epi64::<12>(mid), _mm512_slli_epi64::<40>(top));
        (lo, hi)
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn add_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        let p = _mm512_set1_epi64(m.value() as i64);
        let mut bs = b.chunks_exact(8);
        let mut av = a.chunks_exact_mut(8);
        for (x, y) in av.by_ref().zip(bs.by_ref()) {
            store(x, csub(_mm512_add_epi64(load(x), load(y)), p));
        }
        super::scalar::add_mod(m, av.into_remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn sub_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
        let p = _mm512_set1_epi64(m.value() as i64);
        let mut bs = b.chunks_exact(8);
        let mut av = a.chunks_exact_mut(8);
        for (x, y) in av.by_ref().zip(bs.by_ref()) {
            let t = _mm512_sub_epi64(_mm512_add_epi64(load(x), p), load(y));
            store(x, csub(t, p));
        }
        super::scalar::sub_mod(m, av.into_remainder(), bs.remainder());
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn neg_mod(m: Modulus, a: &mut [u64]) {
        let p = _mm512_set1_epi64(m.value() as i64);
        let zero = _mm512_setzero_si512();
        let mut av = a.chunks_exact_mut(8);
        for x in av.by_ref() {
            let v = load(x);
            // p − a, zeroed (via maskz) where a == 0.
            let nz = _mm512_cmpneq_epi64_mask(v, zero);
            store(x, _mm512_maskz_sub_epi64(nz, p, v));
        }
        super::scalar::neg_mod(m, av.into_remainder());
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn extract_digit(src: &[u64], shift: u32, mask: u64, dst: &mut [u64]) {
        let cnt = _mm_cvtsi32_si128(shift as i32);
        let maskv = _mm512_set1_epi64(mask as i64);
        let mut ss = src.chunks_exact(8);
        let mut ds = dst.chunks_exact_mut(8);
        for (d, s) in ds.by_ref().zip(ss.by_ref()) {
            store(d, _mm512_and_si512(_mm512_srl_epi64(load(s), cnt), maskv));
        }
        super::scalar::extract_digit(ss.remainder(), shift, mask, ds.into_remainder());
    }

    /// # Safety
    ///
    /// Besides AVX-512F, every `idx` entry must be in bounds for `src`
    /// (the dispatcher checks this before calling).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gather(src: &[u64], idx: &[u32], dst: &mut [u64]) {
        let base = src.as_ptr() as *const i64;
        let mut is = idx.chunks_exact(8);
        let mut ds = dst.chunks_exact_mut(8);
        for (d, i) in ds.by_ref().zip(is.by_ref()) {
            let iv = _mm256_loadu_si256(i.as_ptr() as *const __m256i);
            store(d, _mm512_i32gather_epi64::<8>(iv, base));
        }
        super::scalar::gather(src, is.remainder(), ds.into_remainder());
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn lift_centered(p: u64, t: u64, src: &[u64], dst: &mut [u64]) {
        let half = _mm512_set1_epi64((t / 2) as i64);
        let offset = _mm512_set1_epi64((p - t) as i64);
        let mut ss = src.chunks_exact(8);
        let mut ds = dst.chunks_exact_mut(8);
        for (d, s) in ds.by_ref().zip(ss.by_ref()) {
            let c = load(s);
            let gt = _mm512_cmpgt_epu64_mask(c, half);
            store(d, _mm512_mask_add_epi64(c, gt, c, offset));
        }
        super::scalar::lift_centered(p, t, ss.remainder(), ds.into_remainder());
    }

    /// Expands the product-dependent kernel set once per 64×64→128
    /// implementation ([`dq`] / [`ifma`]); bodies are identical, only the
    /// `mul_lo_hi` callee and the enabled features differ.
    macro_rules! product_kernels {
        ($modname:ident, $feat:literal, $mul_lo_hi:path, $doc:literal) => {
            #[doc = $doc]
            pub mod $modname {
                use super::super::Modulus;
                use super::{csub, load, store};
                use std::arch::x86_64::*;

                /// Shoup multiply by a broadcast constant; canonical result.
                #[inline]
                #[target_feature(enable = $feat)]
                unsafe fn mul_shoup(x: __m512i, w: __m512i, ws: __m512i, p: __m512i) -> __m512i {
                    let (_, q) = $mul_lo_hi(x, ws);
                    let r = _mm512_sub_epi64(
                        _mm512_mullo_epi64(x, w),
                        _mm512_mullo_epi64(q, p),
                    );
                    csub(r, p)
                }

                /// Barrett lane constants (shift counts are per-modulus
                /// runtime values, all in `[1, 63]` since `2 ≤ p < 2^62`).
                pub(super) struct Barrett {
                    p: __m512i,
                    mu: __m512i,
                    sh1: __m128i,
                    sh1c: __m128i,
                    sh2: __m128i,
                    sh2c: __m128i,
                }

                impl Barrett {
                    #[inline]
                    #[target_feature(enable = $feat)]
                    unsafe fn new(m: Modulus) -> Self {
                        let bits = m.bits() as i32;
                        Barrett {
                            p: _mm512_set1_epi64(m.value() as i64),
                            mu: _mm512_set1_epi64(m.barrett_mu() as i64),
                            sh1: _mm_cvtsi32_si128(bits - 1),
                            sh1c: _mm_cvtsi32_si128(64 - (bits - 1)),
                            sh2: _mm_cvtsi32_si128(bits + 1),
                            sh2c: _mm_cvtsi32_si128(64 - (bits + 1)),
                        }
                    }

                    /// `a · b mod p`, fully reduced (same derivation as the
                    /// AVX2 tier: remainder in `[0, 3p)`, two csubs).
                    #[inline]
                    #[target_feature(enable = $feat)]
                    unsafe fn mul_mod(&self, a: __m512i, b: __m512i) -> __m512i {
                        let (xlo, xhi) = $mul_lo_hi(a, b);
                        let q1 = _mm512_or_si512(
                            _mm512_srl_epi64(xlo, self.sh1),
                            _mm512_sll_epi64(xhi, self.sh1c),
                        );
                        let (qlo, qhi) = $mul_lo_hi(q1, self.mu);
                        let q3 = _mm512_or_si512(
                            _mm512_srl_epi64(qlo, self.sh2),
                            _mm512_sll_epi64(qhi, self.sh2c),
                        );
                        let r = _mm512_sub_epi64(xlo, _mm512_mullo_epi64(q3, self.p));
                        csub(csub(r, self.p), self.p)
                    }
                }

                #[target_feature(enable = $feat)]
                pub unsafe fn mul_mod(m: Modulus, a: &mut [u64], b: &[u64]) {
                    let barrett = Barrett::new(m);
                    let mut bs = b.chunks_exact(8);
                    let mut av = a.chunks_exact_mut(8);
                    for (x, y) in av.by_ref().zip(bs.by_ref()) {
                        store(x, barrett.mul_mod(load(x), load(y)));
                    }
                    super::super::scalar::mul_mod(m, av.into_remainder(), bs.remainder());
                }

                #[target_feature(enable = $feat)]
                pub unsafe fn add_mul_mod(m: Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
                    let barrett = Barrett::new(m);
                    let mut asl = a.chunks_exact(8);
                    let mut bs = b.chunks_exact(8);
                    let mut accv = acc.chunks_exact_mut(8);
                    for ((d, x), y) in accv.by_ref().zip(asl.by_ref()).zip(bs.by_ref()) {
                        let prod = barrett.mul_mod(load(x), load(y));
                        store(d, csub(_mm512_add_epi64(load(d), prod), barrett.p));
                    }
                    super::super::scalar::add_mul_mod(
                        m,
                        accv.into_remainder(),
                        asl.remainder(),
                        bs.remainder(),
                    );
                }

                /// Fused dual accumulate: the digit chunk `x` is loaded
                /// once and multiplied against both key parts in registers.
                #[target_feature(enable = $feat)]
                pub unsafe fn add_mul_mod2(
                    m: Modulus,
                    acc0: &mut [u64],
                    acc1: &mut [u64],
                    x: &[u64],
                    b: &[u64],
                    a: &[u64],
                ) {
                    let barrett = Barrett::new(m);
                    let mut xs = x.chunks_exact(8);
                    let mut bs = b.chunks_exact(8);
                    let mut asl = a.chunks_exact(8);
                    let mut a0 = acc0.chunks_exact_mut(8);
                    let mut a1 = acc1.chunks_exact_mut(8);
                    for ((((d0, d1), xv), bv), av) in a0
                        .by_ref()
                        .zip(a1.by_ref())
                        .zip(xs.by_ref())
                        .zip(bs.by_ref())
                        .zip(asl.by_ref())
                    {
                        let xc = load(xv);
                        let p0 = barrett.mul_mod(xc, load(bv));
                        store(d0, csub(_mm512_add_epi64(load(d0), p0), barrett.p));
                        let p1 = barrett.mul_mod(xc, load(av));
                        store(d1, csub(_mm512_add_epi64(load(d1), p1), barrett.p));
                    }
                    super::super::scalar::add_mul_mod2(
                        m,
                        a0.into_remainder(),
                        a1.into_remainder(),
                        xs.remainder(),
                        bs.remainder(),
                        asl.remainder(),
                    );
                }

                #[target_feature(enable = $feat)]
                pub unsafe fn forward_butterflies(
                    p: u64,
                    w: u64,
                    ws: u64,
                    lo: &mut [u64],
                    hi: &mut [u64],
                ) {
                    let pv = _mm512_set1_epi64(p as i64);
                    let wv = _mm512_set1_epi64(w as i64);
                    let wsv = _mm512_set1_epi64(ws as i64);
                    let mut los = lo.chunks_exact_mut(8);
                    let mut his = hi.chunks_exact_mut(8);
                    for (lc, hc) in los.by_ref().zip(his.by_ref()) {
                        let u = load(lc);
                        let v = mul_shoup(load(hc), wv, wsv, pv);
                        store(lc, csub(_mm512_add_epi64(u, v), pv));
                        let diff = _mm512_sub_epi64(_mm512_add_epi64(u, pv), v);
                        store(hc, csub(diff, pv));
                    }
                    super::super::scalar::forward_butterflies(
                        p,
                        w,
                        ws,
                        los.into_remainder(),
                        his.into_remainder(),
                    );
                }

                #[target_feature(enable = $feat)]
                pub unsafe fn inverse_butterflies(
                    p: u64,
                    w: u64,
                    ws: u64,
                    lo: &mut [u64],
                    hi: &mut [u64],
                ) {
                    let pv = _mm512_set1_epi64(p as i64);
                    let wv = _mm512_set1_epi64(w as i64);
                    let wsv = _mm512_set1_epi64(ws as i64);
                    let mut los = lo.chunks_exact_mut(8);
                    let mut his = hi.chunks_exact_mut(8);
                    for (lc, hc) in los.by_ref().zip(his.by_ref()) {
                        let u = load(lc);
                        let v = load(hc);
                        store(lc, csub(_mm512_add_epi64(u, v), pv));
                        let diff = csub(_mm512_sub_epi64(_mm512_add_epi64(u, pv), v), pv);
                        store(hc, mul_shoup(diff, wv, wsv, pv));
                    }
                    super::super::scalar::inverse_butterflies(
                        p,
                        w,
                        ws,
                        los.into_remainder(),
                        his.into_remainder(),
                    );
                }

                #[target_feature(enable = $feat)]
                pub unsafe fn mul_shoup_slice(p: u64, w: u64, ws: u64, a: &mut [u64]) {
                    let pv = _mm512_set1_epi64(p as i64);
                    let wv = _mm512_set1_epi64(w as i64);
                    let wsv = _mm512_set1_epi64(ws as i64);
                    let mut av = a.chunks_exact_mut(8);
                    for x in av.by_ref() {
                        store(x, mul_shoup(load(x), wv, wsv, pv));
                    }
                    super::super::scalar::mul_shoup_slice(p, w, ws, av.into_remainder());
                }

                #[target_feature(enable = $feat)]
                pub unsafe fn scale_combine(
                    m: Modulus,
                    delta: u64,
                    delta_shoup: u64,
                    plain: &[u64],
                    rt: &[u64],
                    out: &mut [u64],
                ) {
                    let pv = _mm512_set1_epi64(m.value() as i64);
                    let wv = _mm512_set1_epi64(delta as i64);
                    let wsv = _mm512_set1_epi64(delta_shoup as i64);
                    let mut ps = plain.chunks_exact(8);
                    let mut rs = rt.chunks_exact(8);
                    let mut os = out.chunks_exact_mut(8);
                    for ((o, c), r) in os.by_ref().zip(ps.by_ref()).zip(rs.by_ref()) {
                        let v = mul_shoup(load(c), wv, wsv, pv);
                        store(o, csub(_mm512_add_epi64(v, load(r)), pv));
                    }
                    super::super::scalar::scale_combine(
                        m,
                        delta,
                        delta_shoup,
                        ps.remainder(),
                        rs.remainder(),
                        os.into_remainder(),
                    );
                }
            }
        };
    }

    product_kernels!(
        dq,
        "avx512f,avx512dq",
        super::mul_lo_hi_u32,
        "Product kernels on the `_mm512_mul_epu32` synthesis (no IFMA)."
    );
    product_kernels!(
        ifma,
        "avx512f,avx512dq,avx512ifma",
        super::mul_lo_hi_ifma,
        "Product kernels on the `vpmadd52` 52-bit-limb synthesis."
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn vecs(m: Modulus, len: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = |rng: &mut StdRng| (0..len).map(|_| rng.gen_range(0..m.value())).collect();
        (g(&mut rng), g(&mut rng), g(&mut rng))
    }

    /// Odd lengths exercise the scalar tail inside the vector kernels;
    /// 5 and 9 straddle the 4- and 8-lane minimums.
    const LENS: [usize; 6] = [1, 4, 5, 9, 31, 256];

    /// Small, medium and near-limit moduli (the last stresses the
    /// Barrett shift counts at `L = 62`).
    fn moduli() -> Vec<Modulus> {
        vec![
            Modulus::new(97),
            Modulus::new(65537),
            Modulus::new(1032193),
            Modulus::new((1u64 << 50) + 4097),
            Modulus::new((1u64 << 62) - 57), // not prime; kernels don't care
        ]
    }

    /// The vector tiers this CPU can actually run (testing an
    /// unsupported tier would silently degrade — vacuous, not wrong).
    fn vector_tiers() -> Vec<SimdLevel> {
        let mut tiers = Vec::new();
        if avx2_available() {
            tiers.push(SimdLevel::Avx2);
        }
        if avx512_available() {
            tiers.push(SimdLevel::Avx512);
        }
        tiers
    }

    #[test]
    fn vector_tiers_match_scalar_on_all_kernels() {
        for tier in vector_tiers() {
            for m in moduli() {
                for len in LENS {
                    let (a, b, c) = vecs(m, len, 0xC0FFEE ^ m.value() ^ len as u64);
                    let check = |name: &str, f: &dyn Fn(&mut [u64], SimdLevel)| {
                        let mut s = a.clone();
                        let mut v = a.clone();
                        f(&mut s, SimdLevel::Scalar);
                        f(&mut v, tier);
                        assert_eq!(
                            s,
                            v,
                            "{name} diverged (tier={}, p={}, len={len})",
                            tier.name(),
                            m.value()
                        );
                    };
                    check("add", &|x, l| add_mod(m, x, &b, l));
                    check("sub", &|x, l| sub_mod(m, x, &b, l));
                    check("neg", &|x, l| neg_mod(m, x, l));
                    check("mul", &|x, l| mul_mod(m, x, &b, l));
                    check("add_mul", &|x, l| add_mul_mod(m, x, &b, &c, l));
                    let p = m.value();
                    let w = b[0] % p;
                    let ws = (((w as u128) << 64) / p as u128) as u64;
                    check("mul_shoup_slice", &|x, l| mul_shoup_slice(p, w, ws, x, l));
                    check("scale_combine", &|x, l| {
                        let src = x.to_vec();
                        scale_combine(m, w, ws, &src, &c, x, l)
                    });
                    let shift = (m.value() % 23) as u32;
                    let mask = (1u64 << 16) - 1;
                    check("extract_digit", &|x, l| {
                        let src = x.to_vec();
                        extract_digit(&src, shift, mask, x, l)
                    });
                    let idx: Vec<u32> = (0..len as u32).rev().collect();
                    check("gather", &|x, l| {
                        let src = x.to_vec();
                        gather(&src, &idx, x, l)
                    });
                    type PairKernel<'f> = &'f dyn Fn(&mut [u64], &mut [u64], SimdLevel);
                    let check2 = |name: &str, f: PairKernel<'_>| {
                        let (mut sl, mut sh) = (a.clone(), b.clone());
                        let (mut vl, mut vh) = (a.clone(), b.clone());
                        f(&mut sl, &mut sh, SimdLevel::Scalar);
                        f(&mut vl, &mut vh, tier);
                        assert_eq!(
                            (sl, sh),
                            (vl, vh),
                            "{name} diverged (tier={}, p={}, len={len})",
                            tier.name(),
                            m.value()
                        );
                    };
                    check2("fwd_bfly", &|l0, h0, l| forward_butterflies(p, w, ws, l0, h0, l));
                    check2("inv_bfly", &|l0, h0, l| inverse_butterflies(p, w, ws, l0, h0, l));
                    check2("add_mul2", &|a0, a1, l| add_mul_mod2(m, a0, a1, &a, &b, &c, l));
                }
            }
        }
    }

    /// The fused dual accumulate must equal two independent single
    /// accumulates — at every tier (this is what lets `key_switch` fuse
    /// its two sweeps without changing bytes).
    #[test]
    fn fused_accumulate_equals_two_passes() {
        for m in moduli() {
            for len in LENS {
                let (x, b, a) = vecs(m, len, 0xFACE ^ m.value());
                let (acc0_init, acc1_init, _) = vecs(m, len, 0xBEEF ^ len as u64);
                let mut want0 = acc0_init.clone();
                let mut want1 = acc1_init.clone();
                add_mul_mod(m, &mut want0, &x, &b, SimdLevel::Scalar);
                add_mul_mod(m, &mut want1, &x, &a, SimdLevel::Scalar);
                for tier in
                    [SimdLevel::Scalar].into_iter().chain(vector_tiers())
                {
                    let mut acc0 = acc0_init.clone();
                    let mut acc1 = acc1_init.clone();
                    let mut limbs = [KsLimb {
                        m,
                        acc0: &mut acc0,
                        acc1: &mut acc1,
                        x: &x,
                        b: &b,
                        a: &a,
                    }];
                    ks_accumulate(&mut limbs, tier);
                    assert_eq!(acc0, want0, "acc0 diverged (tier={})", tier.name());
                    assert_eq!(acc1, want1, "acc1 diverged (tier={})", tier.name());
                }
            }
        }
    }

    /// The lift/scale kernels' scalar references must match the original
    /// formulas they replaced (`to_signed`/`from_signed` round trip; full
    /// `u128` reduction).
    #[test]
    fn conversion_kernels_match_original_formulas() {
        let mut rng = StdRng::seed_from_u64(0x51D);
        for m in moduli() {
            let p = m.value();
            let t_candidates = [2u64, 97, 65537, p / 2 + 1, p - 1];
            for &tv in t_candidates.iter().filter(|&&tv| (2..p).contains(&tv)) {
                let t = Modulus::new(tv);
                let src: Vec<u64> = (0..64)
                    .map(|i| match i {
                        0 => 0,
                        1 => tv - 1,
                        2 => tv / 2,
                        3 => (tv / 2).saturating_add(1).min(tv - 1),
                        _ => rng.gen_range(0..tv),
                    })
                    .collect();
                let mut got = vec![0u64; src.len()];
                lift_centered(p, tv, &src, &mut got, SimdLevel::Scalar);
                let want: Vec<u64> =
                    src.iter().map(|&c| m.from_signed(t.to_signed(c))).collect();
                assert_eq!(got, want, "lift_centered != from_signed∘to_signed (p={p}, t={tv})");

                let delta = rng.gen_range(0..p);
                let ds = (((delta as u128) << 64) / p as u128) as u64;
                let rt: Vec<u64> = src.iter().map(|&c| c % tv).collect();
                let mut out = vec![0u64; src.len()];
                scale_combine(m, delta, ds, &src, &rt, &mut out, SimdLevel::Scalar);
                let want: Vec<u64> = src
                    .iter()
                    .zip(&rt)
                    .map(|(&c, &r)| m.reduce_u128(delta as u128 * c as u128 + r as u128))
                    .collect();
                assert_eq!(out, want, "scale_combine != u128 reduction (p={p})");
            }
        }
    }

    #[test]
    fn policy_parses_tier_names_and_rejects_typos() {
        for (s, want) in [
            ("scalar", SimdPolicy::Scalar),
            ("0", SimdPolicy::Scalar),
            ("off", SimdPolicy::Scalar),
            ("OFF", SimdPolicy::Scalar),
            ("auto", SimdPolicy::Auto),
            ("1", SimdPolicy::Auto),
            ("on", SimdPolicy::Auto),
            ("avx2", SimdPolicy::Avx2),
            ("AVX2", SimdPolicy::Avx2),
            ("avx512", SimdPolicy::Avx512),
            (" avx512 ", SimdPolicy::Avx512),
        ] {
            assert_eq!(SimdPolicy::parse(s), Ok(want), "parse({s:?})");
        }
        for bad in ["axv512", "avx", "2", "scalar512", "avx-512", ""] {
            assert_eq!(SimdPolicy::parse(bad), Err(bad.to_string()), "parse({bad:?})");
        }
    }

    /// Requested tiers beyond CPU support degrade (never UB), and the
    /// degradation order is 512 → 2 → scalar.
    #[test]
    fn policy_degrades_to_cpu_support() {
        assert_eq!(SimdPolicy::Scalar.level(), SimdLevel::Scalar);
        let best = SimdPolicy::Auto.level();
        match best {
            SimdLevel::Avx512 => assert!(avx512_available()),
            SimdLevel::Avx2 => assert!(avx2_available() && !avx512_available()),
            SimdLevel::Scalar => assert!(!avx2_available()),
        }
        assert_eq!(SimdPolicy::Avx512.level(), best, "avx512 request = best tier");
        let capped = SimdPolicy::Avx2.level();
        assert!(capped != SimdLevel::Avx512, "avx2 request must cap below 512");
        assert_eq!(capped == SimdLevel::Avx2, avx2_available());
    }

    #[test]
    fn forced_scalar_override() {
        std::env::set_var("PRIMER_SIMD", "0");
        assert_eq!(level(), SimdLevel::Scalar);
        std::env::set_var("PRIMER_SIMD", "off");
        assert_eq!(level(), SimdLevel::Scalar);
        std::env::set_var("PRIMER_SIMD", "1");
        let auto = level();
        std::env::remove_var("PRIMER_SIMD");
        assert_eq!(auto, level(), "legacy \"1\" must mean auto-detect");
        assert_eq!(auto, SimdPolicy::Auto.level());
    }

    #[test]
    fn boundary_values_reduce_canonically() {
        // p−1 in every lane is the worst case for every csub chain.
        for tier in vector_tiers() {
            for m in moduli() {
                let top = m.value() - 1;
                let mut a = vec![top; 16];
                let b = vec![top; 16];
                let want: Vec<u64> = a.iter().map(|&x| m.mul(x, top)).collect();
                mul_mod(m, &mut a, &b, tier);
                assert_eq!(a, want, "tier={}", tier.name());
                let mut s = vec![top; 16];
                add_mod(m, &mut s, &b, SimdLevel::Scalar);
                let mut v = vec![top; 16];
                add_mod(m, &mut v, &b, tier);
                assert_eq!(s, v, "tier={}", tier.name());
            }
        }
    }
}
