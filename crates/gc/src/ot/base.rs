//! Chou–Orlandi "simplest OT" over a MODP group.
//!
//! Used only to bootstrap the IKNP extension (128 base OTs per session).

use crate::aes::Aes128;
use crate::ot::bignum::{BigUint, MontCtx};
use primer_net::Transport;
use rand::Rng;

/// A multiplicative group `Z_p^*` with generator `g` for the base OTs.
#[derive(Debug, Clone)]
pub struct OtGroup {
    ctx: MontCtx,
    g: BigUint,
    limbs: usize,
}

impl OtGroup {
    /// The RFC 3526 2048-bit MODP group (generator 2) — the
    /// production-parameter group.
    pub fn rfc3526_2048() -> Self {
        let hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
                   020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
                   4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
                   EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
                   98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
                   9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
                   E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
                   3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";
        let limbs = 32;
        Self {
            ctx: MontCtx::new(BigUint::from_hex(hex, limbs)),
            g: BigUint::from_u64(2, limbs),
            limbs,
        }
    }

    /// The RFC 2409 Oakley Group 1 768-bit MODP group — fast enough for
    /// unit tests (below today's security margin; test profile only).
    pub fn test_768() -> Self {
        let hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
                   020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
                   4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF";
        let limbs = 12;
        Self {
            ctx: MontCtx::new(BigUint::from_hex(hex, limbs)),
            g: BigUint::from_u64(2, limbs),
            limbs,
        }
    }

    fn random_exponent<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        // Exponents one limb short of p keep values < p without bias
        // concerns that matter here.
        (0..(self.limbs - 1) * 8).map(|_| rng.gen()).collect()
    }

    fn pow_g(&self, exp: &[u8]) -> BigUint {
        self.ctx.pow_mod(&self.g, exp)
    }
}

/// Hashes a group element (plus an index tweak) to a 128-bit key with a
/// Matyas–Meyer–Oseas chain over fixed-key AES.
fn hash_to_key(elem: &BigUint, tweak: u64) -> u128 {
    let aes = Aes128::fixed();
    let mut h: u128 = tweak as u128;
    for chunk in elem.to_bytes_le().chunks(16) {
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        let m = u128::from_le_bytes(block);
        h = aes.encrypt_block(h ^ m) ^ h ^ m;
    }
    h
}

/// Sender side of `choices.len()` base OTs; `pairs[i]` are the two
/// 128-bit messages of OT `i`.
pub fn base_ot_send<R: Rng + ?Sized>(
    group: &OtGroup,
    transport: &dyn Transport,
    pairs: &[(u128, u128)],
    rng: &mut R,
) {
    let a = group.random_exponent(rng);
    let big_a = group.pow_g(&a);
    transport.send_owned(big_a.to_bytes_le());
    let a_inv = group.ctx.inv_mod(&big_a);
    for (i, &(m0, m1)) in pairs.iter().enumerate() {
        let b_bytes = transport.recv();
        let big_b = BigUint::from_bytes_le(&b_bytes, group.limbs);
        let k0 = hash_to_key(&group.ctx.pow_mod(&big_b, &a), i as u64);
        let b_over_a = group.ctx.mul_mod(&big_b, &a_inv);
        let k1 = hash_to_key(&group.ctx.pow_mod(&b_over_a, &a), i as u64);
        let mut payload = (m0 ^ k0).to_le_bytes().to_vec();
        payload.extend_from_slice(&(m1 ^ k1).to_le_bytes());
        transport.send_owned(payload);
    }
}

/// Receiver side; returns message `choices[i] ? m1 : m0` for each OT.
pub fn base_ot_receive<R: Rng + ?Sized>(
    group: &OtGroup,
    transport: &dyn Transport,
    choices: &[bool],
    rng: &mut R,
) -> Vec<u128> {
    let big_a = BigUint::from_bytes_le(&transport.recv(), group.limbs);
    let mut out = Vec::with_capacity(choices.len());
    for (i, &c) in choices.iter().enumerate() {
        let b = group.random_exponent(rng);
        let g_b = group.pow_g(&b);
        let big_b = if c { group.ctx.mul_mod(&g_b, &big_a) } else { g_b };
        transport.send_owned(big_b.to_bytes_le());
        let key = hash_to_key(&group.ctx.pow_mod(&big_a, &b), i as u64);
        let payload = transport.recv();
        let m0 = u128::from_le_bytes(payload[..16].try_into().expect("16 bytes"));
        let m1 = u128::from_le_bytes(payload[16..32].try_into().expect("16 bytes"));
        out.push(if c { m1 ^ key } else { m0 ^ key });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use primer_math::rng::seeded;
    use primer_net::run_two_party;

    #[test]
    fn base_ot_transfers_chosen_messages() {
        let pairs: Vec<(u128, u128)> = (0..8).map(|i| (100 + i as u128, 200 + i as u128)).collect();
        let choices: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let pairs_c = pairs.clone();
        let choices_c = choices.clone();
        let (got, _, _) = run_two_party(
            move |t| {
                base_ot_receive(&OtGroup::test_768(), &t, &choices_c, &mut seeded(110))
            },
            move |t| base_ot_send(&OtGroup::test_768(), &t, &pairs_c, &mut seeded(111)),
        );
        for i in 0..8 {
            let want = if choices[i] { pairs[i].1 } else { pairs[i].0 };
            assert_eq!(got[i], want, "ot {i}");
        }
    }

    #[test]
    fn group_inverse_sanity() {
        let g = OtGroup::test_768();
        let x = g.pow_g(&42u64.to_le_bytes());
        let xi = g.ctx.inv_mod(&x);
        let one = BigUint::from_u64(1, 12);
        assert_eq!(g.ctx.mul_mod(&x, &xi), one);
    }
}
