//! Property-based test: both packing strategies compute the exact ring
//! matmul for arbitrary shapes and entries.

use primer_core::packing::{decrypt_matrix, encrypt_matrix, matmul_plain_weights, Packing};
use primer_he::{BatchEncoder, Encryptor, Evaluator, HeContext, HeParams, KeyGenerator};
use primer_math::rng::seeded;
use primer_math::{MatZ, Ring};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

struct Fx {
    encoder: BatchEncoder,
    encryptor: Encryptor,
    eval: Evaluator,
    keys: primer_he::GaloisKeys,
    ring: Ring,
}

thread_local! {
    static FX: Fx = {
        let ctx = HeContext::new(HeParams::toy());
        let encoder = BatchEncoder::new(&ctx);
        let mut rng = seeded(950);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encryptor = Encryptor::new(&ctx, kg.secret_key().clone(), 951);
        let eval = Evaluator::new(&ctx);
        let simd = ctx.params().row_size();
        let keys = kg.galois_keys_pow2(
            &[1, 2, 4, 8, simd - 1, simd - 2, simd - 4, simd - 8],
            false,
            &mut rng,
        );
        let ring = Ring::new(ctx.params().t());
        Fx { encoder, encryptor, eval, keys, ring }
    };
}

fn with_fixture(
    body: impl FnOnce(&Fx) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    FX.with(|fx| body(fx))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Encrypted matmul == plaintext ring matmul, for both packings,
    /// arbitrary small shapes and values.
    #[test]
    fn encrypted_matmul_is_exact(
        rows in 1usize..6,
        cols in 1usize..24,
        out in 1usize..20,
        seed in 0u64..10_000,
    ) {
        with_fixture(|f| {
            let mut rng = seeded(seed);
            let x = MatZ::from_fn(rows, cols, |_, _| {
                f.ring.from_signed(rand::Rng::gen_range(&mut rng, -15i64..=15))
            });
            let w = MatZ::from_fn(cols, out, |_, _| {
                f.ring.from_signed(rand::Rng::gen_range(&mut rng, -15i64..=15))
            });
            let want = x.matmul(&f.ring, &w);
            for packing in [Packing::TokensFirst, Packing::FeatureBased] {
                let packed = encrypt_matrix(packing, &x, &f.encoder, &f.encryptor);
                let product =
                    matmul_plain_weights(&packed, &w, &f.eval, &f.encoder, &f.keys)
                        .expect("keys provisioned");
                let got = decrypt_matrix(&product, &f.encoder, &f.encryptor);
                prop_assert_eq!(&got, &want, "{:?} {}x{}x{}", packing, rows, cols, out);
            }
            Ok(())
        })?;
    }
}
