//! Fixed-point number format of the Primer pipeline.
//!
//! The paper uses a 15-bit two's-complement fixed-point representation for
//! inputs and weights, and truncates intermediate results back to 15 bits
//! after every linear layer. [`FixedSpec`] captures the format; conversion
//! to/from the ring `Z_t` goes through the centered representative.

use crate::ring::Ring;

/// A fixed-point format: `bits` total (including sign), `frac` fractional.
///
/// The representable range is `[-2^(bits-1), 2^(bits-1))` raw steps, i.e.
/// real values in `[-2^(bits-1-frac), 2^(bits-1-frac))` at a resolution of
/// `2^-frac`.
///
/// ```
/// use primer_math::FixedSpec;
/// let f = FixedSpec::paper(); // 15 bits, 7 fractional
/// let raw = f.quantize(1.5);
/// assert_eq!(raw, 192);
/// assert_eq!(f.dequantize(raw), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedSpec {
    bits: u32,
    frac: u32,
}

impl FixedSpec {
    /// Creates a format with `bits` total bits and `frac` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac < bits <= 62`.
    pub fn new(bits: u32, frac: u32) -> Self {
        assert!(bits > 1 && bits <= 62, "bits out of range: {bits}");
        assert!(frac > 0 && frac < bits, "frac out of range: {frac} for {bits} bits");
        Self { bits, frac }
    }

    /// The paper's format: 15-bit values, 7 fractional bits.
    pub fn paper() -> Self {
        Self::new(15, 7)
    }

    /// A compact format for fast garbled-circuit tests.
    pub fn test_small() -> Self {
        Self::new(12, 5)
    }

    /// Total bits including sign.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Fractional bits.
    #[inline]
    pub fn frac(&self) -> u32 {
        self.frac
    }

    /// The scale factor `2^frac`.
    #[inline]
    pub fn scale(&self) -> f64 {
        (1u64 << self.frac) as f64
    }

    /// Largest representable raw value, `2^(bits-1) - 1`.
    #[inline]
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Smallest representable raw value, `-2^(bits-1)`.
    #[inline]
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.bits - 1))
    }

    /// Quantizes a real number to the nearest representable raw value,
    /// saturating at the format bounds.
    pub fn quantize(&self, x: f64) -> i64 {
        let scaled = (x * self.scale()).round();
        if scaled.is_nan() {
            0
        } else {
            (scaled as i64).clamp(self.min_raw(), self.max_raw())
        }
    }

    /// Recovers the real number represented by a raw value.
    #[inline]
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 / self.scale()
    }

    /// Saturates an arbitrary signed integer into the format's raw range.
    #[inline]
    pub fn saturate(&self, raw: i64) -> i64 {
        raw.clamp(self.min_raw(), self.max_raw())
    }

    /// The paper's re-truncation step: after a linear layer accumulates
    /// products (which carry `2·frac` fractional bits), shift right by
    /// `frac` (arithmetic, rounding toward negative infinity) and saturate
    /// back into the format. This exact semantics is replicated inside the
    /// garbled truncation circuit.
    #[inline]
    pub fn truncate_product(&self, wide: i64) -> i64 {
        self.saturate(wide >> self.frac)
    }

    /// Fixed-point multiply: `(a*b) >> frac`, saturated.
    #[inline]
    pub fn mul(&self, a: i64, b: i64) -> i64 {
        let wide = (a as i128 * b as i128) >> self.frac;
        self.saturate(wide.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
    }

    /// Embeds a raw value into `Z_t`.
    #[inline]
    pub fn to_ring(&self, ring: &Ring, raw: i64) -> u64 {
        ring.from_signed(raw)
    }

    /// Extracts the raw value from a ring element (centered lift).
    #[inline]
    pub fn from_ring(&self, ring: &Ring, elem: u64) -> i64 {
        ring.to_signed(elem)
    }

    /// Quantizes directly into the ring.
    #[inline]
    pub fn encode(&self, ring: &Ring, x: f64) -> u64 {
        self.to_ring(ring, self.quantize(x))
    }

    /// Dequantizes directly from the ring.
    #[inline]
    pub fn decode(&self, ring: &Ring, elem: u64) -> f64 {
        self.dequantize(self.from_ring(ring, elem))
    }
}

impl Default for FixedSpec {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrips_on_grid() {
        let f = FixedSpec::paper();
        for i in -100..100 {
            let x = i as f64 / 128.0;
            assert_eq!(f.dequantize(f.quantize(x)), x);
        }
    }

    #[test]
    fn quantize_saturates() {
        let f = FixedSpec::new(8, 4);
        assert_eq!(f.quantize(1e9), f.max_raw());
        assert_eq!(f.quantize(-1e9), f.min_raw());
    }

    #[test]
    fn truncate_product_matches_shift() {
        let f = FixedSpec::new(15, 7);
        // 1.5 * 2.0 = 3.0: raw 192 * 256 = 49152; >>7 = 384 = 3.0
        assert_eq!(f.truncate_product(192 * 256), 384);
        // Negative values round toward -inf, like an arithmetic shift.
        assert_eq!(f.truncate_product(-1), -1);
    }

    #[test]
    fn mul_is_quantized_product() {
        let f = FixedSpec::paper();
        let a = f.quantize(1.25);
        let b = f.quantize(-2.5);
        assert!((f.dequantize(f.mul(a, b)) - (-3.125)).abs() < 1.0 / f.scale());
    }

    #[test]
    fn ring_embedding_roundtrips() {
        let f = FixedSpec::paper();
        let r = Ring::new((1 << 20) + 7);
        for i in [-100i64, -1, 0, 1, 99, f.max_raw(), f.min_raw()] {
            assert_eq!(f.from_ring(&r, f.to_ring(&r, i)), i);
        }
    }

    #[test]
    fn paper_spec_has_15_bits() {
        let f = FixedSpec::paper();
        assert_eq!(f.bits(), 15);
        assert_eq!(f.frac(), 7);
        assert_eq!(f.max_raw(), 16383);
    }
}
