//! `primer-client` — run private inferences against a `primer-server`.
//!
//! ```text
//! primer-client [--addr 127.0.0.1:9470] [--variant base|f|fp|fpc]
//!               [--mode simulated|garbled] [--queries N] [--pool N] [--seed N]
//!               [--threads N] [--tokens "1,2,3,4;5,6,7,8"] [--wan | --lan]
//!               [--suspend-at K] [--stats]
//! ```
//!
//! `--threads` overrides the `PRIMER_THREADS` environment variable (the
//! client-side offline/HE thread-pool size; default = available cores).
//!
//! Without `--tokens`, generates `--queries` random token sequences
//! from `--seed`. Prints one line per prediction plus the server's
//! session summary.
//!
//! `--suspend-at K` exercises suspend/resume: after K queries the client
//! suspends the session (printing `suspended session <token>`), then
//! reconnects — retrying while the server restarts, if need be — and
//! resumes to run the remaining queries.
//!
//! `--stats` runs no queries: it polls the server's live `/stats`
//! admin surface and prints the snapshot (sessions by state, pool
//! depths, worker occupancy, plane cache, admission/suspension churn,
//! per-phase percentiles, per-channel traffic, HE op counts).

use primer_core::{GcMode, ProtocolVariant};
use primer_net::NetworkModel;
use primer_serve::{poll_stats, sample_random_queries, ClientBuilder, ClientError};
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: primer-client [--addr HOST:PORT] [--variant base|f|fp|fpc] \
         [--mode simulated|garbled] [--queries N] [--pool N] [--seed N] \
         [--threads N] [--tokens \"1,2,3;4,5,6\"] [--wan | --lan] \
         [--suspend-at K] [--stats]"
    );
    exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:9470".to_string();
    let mut variant = ProtocolVariant::Fpc;
    let mut mode = GcMode::Simulated;
    let mut pool = 2usize;
    let mut shape: Option<NetworkModel> = None;
    let mut seed: Option<u64> = None;
    let mut queries = 1usize;
    let mut tokens: Option<Vec<Vec<usize>>> = None;
    let mut suspend_at: Option<usize> = None;
    let mut stats = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = value(&mut i),
            "--variant" => {
                variant = match value(&mut i).as_str() {
                    "base" => ProtocolVariant::Base,
                    "f" => ProtocolVariant::F,
                    "fp" => ProtocolVariant::Fp,
                    "fpc" => ProtocolVariant::Fpc,
                    other => {
                        eprintln!("unknown variant {other:?}");
                        usage()
                    }
                };
            }
            "--mode" => {
                mode = match value(&mut i).as_str() {
                    "simulated" => GcMode::Simulated,
                    "garbled" => GcMode::Garbled,
                    other => {
                        eprintln!("unknown mode {other:?}");
                        usage()
                    }
                };
            }
            "--queries" => queries = parse(&value(&mut i)) as usize,
            "--pool" => pool = parse(&value(&mut i)) as usize,
            "--seed" => seed = Some(parse(&value(&mut i))),
            // Overrides PRIMER_THREADS for this process; set before any
            // parallel work so the first pool use sees it.
            "--threads" => std::env::set_var("PRIMER_THREADS", value(&mut i)),
            "--tokens" => tokens = Some(parse_tokens(&value(&mut i))),
            "--wan" => shape = Some(NetworkModel::paper_wan()),
            "--lan" => shape = Some(NetworkModel::paper_lan()),
            "--suspend-at" => suspend_at = Some(parse(&value(&mut i)) as usize),
            "--stats" => stats = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    let seed = seed.unwrap_or_else(entropy_seed);
    let builder = ClientBuilder::new(variant).mode(mode).pool(pool).shape(shape).seed(seed);

    // --stats is an admin poll, not a session: one request frame on the
    // control channel, answered by the event loop even while every
    // worker slot is busy (or hellos are being shed).
    if stats {
        match poll_stats(&addr) {
            Ok(snap) => print!("{}", snap.render()),
            Err(e) => {
                eprintln!("stats poll: {e}");
                exit(1);
            }
        }
        return;
    }

    let outcome = run(&builder, &addr, queries, tokens, suspend_at, seed);
    match outcome {
        Ok(out) => {
            let s = &out.summary;
            println!(
                "session {}: {} queries, server threads {}, offline {:.1} ms / {} B, \
                 online {:.1} ms / {} B, setup {:.1} ms / {} B, client traffic {} B",
                s.session_id,
                s.queries,
                s.threads,
                s.offline.compute_ns as f64 / 1e6,
                s.offline.bytes,
                s.online.compute_ns as f64 / 1e6,
                s.online.bytes,
                s.setup.compute_ns as f64 / 1e6,
                s.setup.bytes,
                out.client_traffic.total_bytes(),
            );
        }
        Err(e) => {
            eprintln!("client: {e}");
            exit(1);
        }
    }
}

/// Runs the session, suspending and resuming partway when asked.
fn run(
    builder: &ClientBuilder,
    addr: &str,
    queries: usize,
    tokens: Option<Vec<Vec<usize>>>,
    suspend_at: Option<usize>,
    seed: u64,
) -> Result<primer_serve::RunOutcome, ClientError> {
    let count = tokens.as_ref().map_or(queries, Vec::len);
    let mut handle = builder.open(addr, count)?;
    let qs = match tokens {
        Some(qs) => qs,
        None => sample_random_queries(handle.model(), seed, count),
    };
    for (i, q) in qs.iter().enumerate() {
        if suspend_at == Some(i) {
            let parked = handle.suspend()?;
            println!(
                "suspended session {} with {} queries remaining",
                parked.token(),
                parked.remaining()
            );
            handle = parked.resume_retrying(addr.to_string(), Duration::from_secs(60))?;
            println!("resumed session {}", handle.session_id());
        }
        let p = handle.infer(q)?;
        println!("query {i}: class {} logits {:?}", p.predicted, p.logits);
    }
    handle.finish()
}

/// A fresh unpredictable seed from OS entropy (`RandomState` hashes
/// per-process random keys), without an OS rng dependency.
fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(std::time::UNIX_EPOCH.elapsed().map_or(0, |d| d.subsec_nanos() as u64));
    h.finish()
}

fn parse(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s:?}");
        usage()
    })
}

fn parse_tokens(s: &str) -> Vec<Vec<usize>> {
    s.split(';')
        .map(|q| {
            q.split(',')
                .map(|t| t.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad token {t:?}");
                    usage()
                }))
                .collect()
        })
        .collect()
}
